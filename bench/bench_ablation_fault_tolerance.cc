// Ablation: fault tolerance across partitioner families. The paper
// evaluates a healthy cluster; this harness injects the same fault plan
// into every run and compares what each placement buys when a worker
// dies: availability and degraded reads online, checkpoint/replay
// overhead for analytics, and the migration volume of repairing the
// placement after a permanent loss.
#include <iostream>
#include <limits>
#include <string>

#include "bench/bench_util.h"
#include "common/faults.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "graphdb/event_sim.h"
#include "partition/dynamic/dynamic_partitioner.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv(12);
  const PartitionId k = 8;
  bench::PrintBanner("Ablation: fault tolerance",
                     "Availability, recovery overhead and repair cost "
                     "under one shared fault plan (k=8, worker 0 fails)",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  const std::vector<std::string> algos = {"ECR", "LDG", "FNL",
                                          "DBH", "HDRF", "HG"};

  // --- Online availability under a mid-run outage -----------------------
  // Size the outage from a healthy calibration run so it covers the middle
  // 40% of the run for every algorithm.
  Workload w(g, {});
  SimConfig base;
  base.clients = 48;
  base.num_queries = 8000;
  {
    PartitionConfig cfg;
    cfg.k = k;
    GraphDatabase db(g, CreatePartitioner("ECR")->Run(g, cfg));
    SimResult healthy = SimulateClosedLoop(db, w, base);
    const double span = healthy.window_seconds / 0.9;
    base.faults = FaultPlan::SingleOutage(0, 0.3 * span, 0.4 * span);
    base.faults.message_loss_probability = 0.002;
  }
  std::cout << "--- Online queries: single-worker outage ---\n";
  TablePrinter online({"Algorithm", "Model", "Availability", "Failed",
                       "Timed out", "Retries", "Degraded reads",
                       "p99 steady (ms)", "p99 outage (ms)",
                       "p999 outage (ms)"});
  for (const std::string& algo : algos) {
    PartitionConfig cfg;
    cfg.k = k;
    auto partitioner = CreatePartitioner(algo);
    GraphDatabase db(g, partitioner->Run(g, cfg));
    SimResult r = SimulateClosedLoop(db, w, base);
    const AvailabilityStats& a = r.availability;
    online.AddRow({algo, std::string(CutModelName(partitioner->model())),
                   FormatDouble(a.availability, 4), FormatCount(a.failed),
                   FormatCount(a.timed_out), FormatCount(a.retries),
                   FormatCount(a.degraded_reads),
                   FormatDouble(a.latency_steady.p99 * 1e3, 3),
                   FormatDouble(a.latency_during_outage.p99 * 1e3, 3),
                   FormatDouble(a.latency_during_outage.p999 * 1e3, 3)});
  }
  online.Print(std::cout);
  std::cout << "\nReplicated placements (vertex-cut / hybrid) fail over "
               "reads to surviving\nreplicas — degraded but available; "
               "edge-cut placements lose the only copy\nand burn the "
               "retry budget.\n\n";

  // --- Analytics: checkpoint + replay overhead --------------------------
  std::cout << "--- Analytics: crash at superstep 6, checkpoints every 3 "
               "---\n";
  TablePrinter engine_table({"Algorithm", "Clean (ms)", "Faulty (ms)",
                             "Checkpoint (ms)", "Recovery (ms)",
                             "Replayed", "Overhead %"});
  EngineFaultConfig efaults;
  efaults.checkpoint_interval = 3;
  efaults.crashes.push_back({0, 6});
  for (const std::string& algo : algos) {
    PartitionConfig cfg;
    cfg.k = k;
    AnalyticsEngine engine(g, CreatePartitioner(algo)->Run(g, cfg));
    PageRankProgram pr(10);
    EngineStats clean = engine.Run(pr);
    EngineStats faulty = engine.Run(pr, efaults);
    const double overhead =
        (faulty.simulated_seconds - clean.simulated_seconds) /
        clean.simulated_seconds * 100.0;
    engine_table.AddRow(
        {algo, FormatDouble(clean.simulated_seconds * 1e3, 2),
         FormatDouble(faulty.simulated_seconds * 1e3, 2),
         FormatDouble(faulty.checkpoint_seconds * 1e3, 2),
         FormatDouble(faulty.recovery_seconds * 1e3, 2),
         FormatCount(faulty.replayed_supersteps),
         FormatDouble(overhead, 1)});
  }
  engine_table.Print(std::cout);
  std::cout << "\n";

  // --- Repair: migration volume after a permanent loss ------------------
  std::cout << "--- Placement repair after losing worker 0 permanently "
               "---\n";
  TablePrinter repair_table({"Algorithm", "Model", "Moved masters",
                             "Copied vertices", "Moved edges",
                             "Migration MB"});
  for (const std::string& algo : algos) {
    PartitionConfig cfg;
    cfg.k = k;
    auto partitioner = CreatePartitioner(algo);
    Partitioning p = partitioner->Run(g, cfg);
    DynamicOptions dopt;
    dopt.k = k;
    FailoverRepair repair = RepairAfterWorkerLoss(g, p, 0, dopt);
    repair_table.AddRow(
        {algo, std::string(CutModelName(partitioner->model())),
         FormatCount(repair.moved_masters),
         FormatCount(repair.copied_vertices),
         FormatCount(repair.moved_edges),
         FormatDouble(static_cast<double>(repair.migration_bytes) / 1e6,
                      2)});
  }
  repair_table.Print(std::cout);
  std::cout << "\nVertex-cut repair promotes surviving replicas to master "
               "(few copies);\nedge-cut repair must re-ship every record "
               "the dead worker owned.\n";
  sgp::bench::WriteBenchJson("ablation_fault_tolerance", scale);
  return 0;
}
