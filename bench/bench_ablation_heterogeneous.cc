// Ablation (Appendix A: BMI [44], LeBeane et al. [29]): heterogeneous
// clusters. Half the workers are 3x faster; capacity-aware placement
// (load proportional to speed) is compared against capacity-oblivious
// placement on simulated PageRank time.
#include <iostream>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: heterogeneous cluster",
                     "Capacity-oblivious vs capacity-aware placement, "
                     "PageRank on 8 workers (4 slow + 4 fast at 3x)",
                     scale);
  Graph g = MakeDataset("twitter", scale);
  const PartitionId k = 8;
  EngineCostModel cost;
  cost.worker_speeds = {1, 1, 1, 1, 3, 3, 3, 3};

  TablePrinter table({"Algorithm", "Oblivious(ms)", "Aware(ms)", "Speedup",
                      "Aware max/mean load"});
  for (const std::string algo :
       {"ECR", "LDG", "FNL", "VCR", "HDRF", "HG", "MTS"}) {
    PartitionConfig oblivious;
    oblivious.k = k;
    PartitionConfig aware = oblivious;
    aware.capacity_weights = {1, 1, 1, 1, 3, 3, 3, 3};
    auto partitioner = CreatePartitioner(algo);

    EngineStats so = AnalyticsEngine(g, partitioner->Run(g, oblivious), cost)
                         .Run(PageRankProgram(20));
    EngineStats sa = AnalyticsEngine(g, partitioner->Run(g, aware), cost)
                         .Run(PageRankProgram(20));
    DistributionSummary load = Summarize(sa.compute_seconds_per_worker);
    table.AddRow({algo, FormatDouble(so.simulated_seconds * 1e3, 1),
                  FormatDouble(sa.simulated_seconds * 1e3, 1),
                  FormatDouble(so.simulated_seconds / sa.simulated_seconds,
                               2),
                  FormatDouble(load.ImbalanceFactor(), 2)});
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape ([29], [44]): matching data placement to machine\n"
         "capability speeds up every algorithm (speedup > 1), because the\n"
         "slow machines stop being stragglers; the aware max/mean column\n"
         "shows the residual *time* imbalance after weighting.\n";
  sgp::bench::WriteBenchJson("ablation_heterogeneous", scale);
  return 0;
}
