// Ablation (Section 4.1.2): vertex streams vs edge streams for edge-cut
// partitioning. Vertex streams carry complete adjacency; edge streams
// never do, so edge-stream edge-cut (ESG, the CST/IOGP family) trails the
// vertex-stream algorithms — the reason the paper excludes that class.
// Also contrasts the dynamic re-partitioner (Hermes/Leopard family)
// refining the same stream with a migration budget.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "graph/io.h"
#include "partition/dynamic/dynamic_partitioner.h"
#include "partition/edgecut/edge_stream_greedy.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "stream/source.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: input stream model",
                     "Edge-cut quality by input model (ldbc)", scale);
  Graph g = MakeDataset("ldbc", scale);

  TablePrinter table({"Method", "Input", "k=8 cut", "k=32 cut",
                      "Migrations(k=8)"});
  auto run_static = [&](const char* algo, const char* input) {
    std::vector<std::string> row{algo, input};
    for (PartitionId k : {8u, 32u}) {
      PartitionConfig cfg;
      cfg.k = k;
      PartitionMetrics m =
          ComputeMetrics(g, CreatePartitioner(algo)->Run(g, cfg));
      row.push_back(FormatDouble(m.edge_cut_ratio, 3));
    }
    row.push_back("-");
    table.AddRow(std::move(row));
  };
  run_static("ECR", "none (hash)");
  run_static("LDG", "vertex stream");
  run_static("FNL", "vertex stream");
  run_static("ESG", "edge stream");

  // The same ESG loop fed from disk through the bounded-memory
  // EdgeListFileSource — one page-sized chunk of edges in memory at a
  // time, never a materialized stream. Quality matches the in-memory
  // natural-order run; this row is about the ingest path, not the score.
  {
    const std::string path = "/tmp/sgp_input_stream_bench_edges.txt";
    WriteEdgeListFile(g, path);
    std::vector<std::string> row{"ESG (disk)", "edge stream from file"};
    for (PartitionId k : {8u, 32u}) {
      PartitionConfig cfg;
      cfg.k = k;
      EdgeListFileSource source(path);
      Partitioning p = internal_edgecut::RunEdgeStreamGreedy(
          source, g.num_vertices(), cfg);
      DeriveEdgePlacement(g, &p);
      row.push_back(FormatDouble(ComputeMetrics(g, p).edge_cut_ratio, 3));
    }
    row.push_back("-");
    table.AddRow(std::move(row));
    std::remove(path.c_str());
  }

  // Dynamic refinement over the same edge stream.
  std::vector<std::string> row{"Leopard-style", "edge stream + migration"};
  uint64_t migrations8 = 0;
  for (PartitionId k : {8u, 32u}) {
    DynamicOptions opts;
    opts.k = k;
    opts.migration_gain = 1.3;
    DynamicPartitioner dp(opts);
    for (const Edge& e : g.edges()) dp.AddEdge(e.src, e.dst);
    if (k == 8) migrations8 = dp.total_migrations();
    PartitionMetrics m = ComputeMetrics(g, dp.Snapshot(g));
    row.push_back(FormatDouble(m.edge_cut_ratio, 3));
  }
  row.push_back(FormatCount(migrations8));
  table.AddRow(std::move(row));

  table.Print(std::cout);
  std::cout
      << "\nExpected shape: hash worst; vertex-stream LDG/FNL best (full\n"
         "adjacency at decision time); the edge-stream greedy lands in\n"
         "between (Section 4.1.2: \"they produce partitionings of lower\n"
         "quality than their vertex stream counterparts\"); allowing\n"
         "migrations (the re-partitioning family of Section 2) buys back\n"
         "part of the gap at the cost of vertex moves.\n";
  sgp::bench::WriteBenchJson("ablation_input_stream", scale);
  return 0;
}
