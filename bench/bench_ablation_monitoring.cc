// Ablation: live monitoring of the serving loop. Sweeps the registry
// sampling interval and the SLO window pair under the PR-1 fault plans,
// for one edge-cut and one vertex-cut placement. Proves the burn-rate
// policy end to end: every outage cell must fire at least one alert,
// every fault-free cell must stay silent, and an identical rerun must
// reproduce the sampled series, the alert stream and every flight-recorder
// dump byte for byte. A violated invariant fails the bench (nonzero exit).
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "bench/bench_util.h"
#include "common/faults.h"
#include "common/monitor.h"
#include "common/table_printer.h"
#include "common/telemetry.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv(12);
  const PartitionId k = 8;
  bench::PrintBanner("Ablation: live monitoring",
                     "SLO burn-rate alerts: sampling interval x window "
                     "pair x fault plan (k=8)",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  Workload w(g, {});

  SimConfig base;
  base.clients = 32;
  base.num_queries = 6000;

  // Golden-pinned alert totals: the committed BENCH json proves outage
  // cells alert and fault-free cells stay silent at this scale.
  Counter* alerts_fault_free =
      MetricsRegistry::Global().GetCounter("bench.monitor.alerts.fault_free");
  Counter* alerts_outage =
      MetricsRegistry::Global().GetCounter("bench.monitor.alerts.outage");

  int violations = 0;
  TablePrinter table({"Algorithm", "Interval", "Windows", "Faults", "Samples",
                      "Alerts", "First @", "First SLO", "Dumps",
                      "Recommendation"});
  for (const std::string& algo : {std::string("LDG"), std::string("HDRF")}) {
    PartitionConfig cfg;
    cfg.k = k;
    GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));

    // Healthy calibration run: measures the span (windows, sampling
    // intervals and the outage are sized as fractions of it, so every
    // cell sees the same geometry regardless of scale) and the healthy
    // latency quantiles the SLO targets derive from. Targets at 2x the
    // healthy quantile keep a burn near 1.0 — let alone the 2x threshold
    // — out of reach for fault-free cells.
    double span = 0;
    double target_p99 = 0;
    double target_p999 = 0;
    {
      SimResult healthy = SimulateClosedLoop(db, w, base);
      span = healthy.window_seconds / (1.0 - base.warmup_fraction);
      target_p99 = 2.0 * healthy.latency.p99;
      target_p999 = 2.0 * healthy.latency.p999;
    }

    const std::vector<std::pair<const char*, double>> intervals = {
        {"fine", span / 200}, {"coarse", span / 50}};
    const std::vector<std::pair<const char*, std::pair<double, double>>>
        window_pairs = {{"tight", {0.02 * span, 0.10 * span}},
                        {"wide", {0.05 * span, 0.25 * span}}};
    for (const auto& [interval_name, interval] : intervals) {
      for (const auto& [window_name, windows] : window_pairs) {
        for (const char* fault_mode : {"none", "outage"}) {
          SimConfig sim = base;
          sim.monitor.enabled = true;
          sim.monitor.sample_interval = interval;
          auto slo = [&](const char* name, SloKind kind, double objective) {
            SloConfig s;
            s.name = name;
            s.kind = kind;
            s.objective = objective;
            s.short_window = windows.first;
            s.long_window = windows.second;
            s.burn_threshold = 2.0;
            return s;
          };
          sim.monitor.slos = {
              slo("availability", SloKind::kAvailability, 0.999),
              slo("latency-p99", SloKind::kLatencyP99, target_p99),
              slo("latency-p999", SloKind::kLatencyP999, target_p999)};
          const bool outage = fault_mode[0] == 'o';
          if (outage) {
            // [30%, 50%] of the run without worker 0 — the same geometry
            // the fault-tolerance and resharding ablations use.
            sim.faults = FaultPlan::SingleOutage(0, 0.3 * span, 0.2 * span);
          }

          // Each cell runs under its own scoped registry (the experiment-
          // grid pattern): sampled quantile series never see another
          // cell's histogram state.
          MetricsRegistry cell;
          SimResult r;
          {
            ScopedMetricsRegistry scope(&cell);
            r = SimulateClosedLoop(db, w, sim);
          }
          MetricsRegistry::Global().MergeFrom(cell);

          // Determinism invariant: an identical rerun in a fresh registry
          // reproduces every monitoring artifact byte for byte.
          {
            MetricsRegistry rerun_reg;
            ScopedMetricsRegistry scope(&rerun_reg);
            SimResult rerun = SimulateClosedLoop(db, w, sim);
            if (rerun.time_series != r.time_series ||
                rerun.blackbox != r.blackbox || !(rerun.alerts == r.alerts)) {
              std::cerr << "VIOLATION: monitoring artifacts not reproducible ("
                        << algo << ", " << interval_name << ", " << window_name
                        << ", " << fault_mode << ")\n";
              ++violations;
            }
          }

          // Alert invariants: outage cells fire, fault-free cells don't.
          if (outage && r.alerts.empty()) {
            std::cerr << "VIOLATION: no alert under the outage plan (" << algo
                      << ", " << interval_name << ", " << window_name << ")\n";
            ++violations;
          }
          if (!outage && !r.alerts.empty()) {
            std::cerr << "VIOLATION: " << r.alerts.size()
                      << " alert(s) in a fault-free cell (" << algo << ", "
                      << interval_name << ", " << window_name << ")\n";
            ++violations;
          }
          (outage ? alerts_outage : alerts_fault_free)
              ->Increment(r.alerts.size());

          LiveRecommendation rec =
              RecommendFromTimeSeries(r.monitor_series, r.alerts);
          table.AddRow(
              {algo, interval_name, window_name, fault_mode,
               FormatCount(r.monitor_series.num_samples()),
               FormatCount(r.alerts.size()),
               r.alerts.empty()
                   ? std::string("-")
                   : FormatDouble(r.alerts.front().time / span, 2),
               r.alerts.empty() ? std::string("-") : r.alerts.front().slo,
               FormatCount(r.blackbox.size()), LiveActionName(rec.action)});
        }
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\n\"First @\" is the first alert's fire time as a fraction "
               "of the run; the\noutage covers [0.30, 0.50]. Tight windows "
               "catch it earlier, coarse\nsampling delays detection by up "
               "to one interval; fault-free cells stay\nsilent because the "
               "latency targets sit at 2x the healthy quantiles.\n";
  sgp::bench::WriteBenchJson("ablation_monitoring", scale);
  if (violations > 0) {
    std::cerr << "\n" << violations << " monitoring invariant(s) violated\n";
    return 1;
  }
  return 0;
}
