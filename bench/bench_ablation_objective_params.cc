// Ablations of the objective-function parameters called out in Section 4:
//   - FENNEL's γ and α (Equation 5),
//   - HDRF's λ (Equation 7),
//   - re-streaming pass count ([34]),
//   - the hybrid-cut degree threshold (Section 4.3).
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: objective parameters",
                     "Parameter sensitivity of FENNEL / HDRF / "
                     "re-streaming / hybrid threshold",
                     scale);

  {
    Graph g = MakeDataset("ldbc", scale);
    std::cout << "--- FENNEL gamma (ldbc, k=16) ---\n";
    TablePrinter table({"gamma", "EdgeCutRatio", "VertexImbalance"});
    for (double gamma : {1.1, 1.25, 1.5, 2.0, 3.0}) {
      PartitionConfig cfg;
      cfg.k = 16;
      cfg.fennel_gamma = gamma;
      PartitionMetrics m =
          ComputeMetrics(g, CreatePartitioner("FNL")->Run(g, cfg));
      table.AddRow({FormatDouble(gamma, 2),
                    FormatDouble(m.edge_cut_ratio, 3),
                    FormatDouble(m.vertex_imbalance, 3)});
    }
    table.Print(std::cout);
    std::cout << "Expected: γ=1.5 (the paper's default) is at or near the\n"
                 "best cut; larger γ trades cut quality for tighter\n"
                 "balance.\n\n";
  }

  {
    Graph g = MakeDataset("twitter", scale);
    std::cout << "--- HDRF lambda (twitter, k=16, BFS order) ---\n";
    TablePrinter table({"lambda", "ReplFactor", "EdgeImbalance"});
    for (double lambda : {0.0, 0.5, 1.0, 1.1, 2.0, 4.0}) {
      PartitionConfig cfg;
      cfg.k = 16;
      cfg.hdrf_lambda = lambda;
      cfg.order = StreamOrder::kBfs;
      PartitionMetrics m =
          ComputeMetrics(g, CreatePartitioner("HDRF")->Run(g, cfg));
      table.AddRow({FormatDouble(lambda, 1),
                    FormatDouble(m.replication_factor, 2),
                    FormatDouble(m.edge_imbalance, 2)});
    }
    table.Print(std::cout);
    std::cout << "Expected: λ=0 degenerates to order-sensitive greedy\n"
                 "(imbalanced under BFS); λ>1 restores balance at a small\n"
                 "replication cost (Section 4.2.2).\n\n";
  }

  {
    Graph g = MakeDataset("ldbc", scale);
    std::cout << "--- Re-streaming passes (ldbc, k=16) ---\n";
    TablePrinter table({"passes", "RLDG cut", "RFNL cut"});
    for (uint32_t passes : {1u, 2u, 3u, 5u, 10u}) {
      PartitionConfig cfg;
      cfg.k = 16;
      cfg.restream_passes = passes;
      PartitionMetrics ldg =
          ComputeMetrics(g, CreatePartitioner("RLDG")->Run(g, cfg));
      PartitionMetrics fnl =
          ComputeMetrics(g, CreatePartitioner("RFNL")->Run(g, cfg));
      table.AddRow({std::to_string(passes),
                    FormatDouble(ldg.edge_cut_ratio, 3),
                    FormatDouble(fnl.edge_cut_ratio, 3)});
    }
    table.Print(std::cout);
    std::cout << "Expected: the cut drops steeply over the first few\n"
                 "passes and converges ([34] reports near-METIS quality).\n\n";
  }

  {
    Graph g = MakeDataset("twitter", scale);
    std::cout << "--- Hybrid degree threshold (twitter, k=16) ---\n";
    TablePrinter table({"threshold", "HCR repl", "HG repl"});
    for (uint32_t threshold : {0u, 10u, 100u, 1000u, 1u << 30}) {
      PartitionConfig cfg;
      cfg.k = 16;
      cfg.hybrid_threshold = threshold;
      PartitionMetrics hcr =
          ComputeMetrics(g, CreatePartitioner("HCR")->Run(g, cfg));
      PartitionMetrics hg =
          ComputeMetrics(g, CreatePartitioner("HG")->Run(g, cfg));
      table.AddRow({std::to_string(threshold),
                    FormatDouble(hcr.replication_factor, 2),
                    FormatDouble(hg.replication_factor, 2)});
    }
    table.Print(std::cout);
    std::cout << "Expected: a moderate threshold (~100, PowerLyra's\n"
                 "default) minimizes replication — both extremes degrade\n"
                 "toward pure source- or target-hashing.\n";
  }
  sgp::bench::WriteBenchJson("ablation_objective_params", scale);
  return 0;
}
