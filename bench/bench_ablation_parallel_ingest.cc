// Ablation (Table 1 "Parallelization" column, Section 4.1.1): greedy
// streaming partitioners parallelize only by sharing their assignment
// history; this sweep shows the quality/coordination trade-off of
// parallel LDG ingest vs stale shared state — and why hash partitioning
// (zero coordination) is attractive for parallel loaders.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/edgecut/parallel_streaming.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: parallel ingest",
                     "Parallel LDG: cut quality vs synchronization "
                     "interval (ldbc, k=16)",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  PartitionConfig cfg;
  cfg.k = 16;

  TablePrinter table({"Ingest workers", "Sync interval", "EdgeCutRatio",
                      "Sync rounds", "Sync messages"});
  // Sequential and hash baselines.
  PartitionMetrics ldg =
      ComputeMetrics(g, CreatePartitioner("LDG")->Run(g, cfg));
  table.AddRow({"1 (sequential LDG)", "-", FormatDouble(ldg.edge_cut_ratio, 3),
                "-", "-"});
  PartitionMetrics ecr =
      ComputeMetrics(g, CreatePartitioner("ECR")->Run(g, cfg));
  table.AddRow({"any (hash ECR)", "none needed",
                FormatDouble(ecr.edge_cut_ratio, 3), "0", "0"});

  for (uint32_t streams : {4u, 16u}) {
    for (uint32_t interval : {1u, 16u, 256u, 1u << 20}) {
      ParallelStreamOptions opts;
      opts.num_streams = streams;
      opts.sync_interval = interval;
      ParallelStreamResult r = ParallelStreamingLdg(g, cfg, opts);
      PartitionMetrics m = ComputeMetrics(g, r.partitioning);
      table.AddRow({std::to_string(streams),
                    interval == 1u << 20 ? "once at end"
                                         : std::to_string(interval),
                    FormatDouble(m.edge_cut_ratio, 3),
                    FormatCount(r.sync_rounds),
                    FormatCount(r.sync_messages)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: frequent synchronization matches sequential LDG\n"
         "quality; as the interval grows the stale state erodes the cut\n"
         "toward (but not to) hash quality, while barrier count drops —\n"
         "the coordination/quality trade-off that Section 4.1.1 contrasts\n"
         "with hash partitioning's zero-communication parallelism.\n";
  sgp::bench::WriteBenchJson("ablation_parallel_ingest", scale);
  return 0;
}
