// Ablation (Table 1 "Parallelization" column, Section 4.1.1): greedy
// streaming partitioners parallelize only by sharing their synopsis —
// assignment history for the edge-cut family, degree tables and replica
// sets for the vertex-cut family. This sweep runs the generalized parallel
// driver over all four objectives and shows the quality/coordination
// trade-off vs stale shared state — and why hash partitioning (zero
// coordination) is attractive for parallel loaders.
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/edgecut/parallel_streaming.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: parallel ingest",
                     "Parallel streaming ingest: quality vs synchronization "
                     "interval (ldbc, k=16)",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  PartitionConfig cfg;
  cfg.k = 16;

  // Quality is each family's own objective: edge-cut ratio for the
  // vertex-stream algorithms, replication factor for the edge-stream ones.
  auto quality = [&](ParallelAlgo algo, const Partitioning& p) {
    PartitionMetrics m = ComputeMetrics(g, p);
    return algo == ParallelAlgo::kLdg || algo == ParallelAlgo::kFennel
               ? m.edge_cut_ratio
               : m.replication_factor;
  };

  TablePrinter table({"Algo", "Ingest workers", "Sync interval",
                      "Cut ratio / RF", "Sync rounds", "Sync messages"});
  // Hash baselines: zero coordination at any worker count.
  PartitionMetrics ecr =
      ComputeMetrics(g, CreatePartitioner("ECR")->Run(g, cfg));
  table.AddRow({"ECR (hash)", "any", "none needed",
                FormatDouble(ecr.edge_cut_ratio, 3), "0", "0"});
  PartitionMetrics vcr =
      ComputeMetrics(g, CreatePartitioner("VCR")->Run(g, cfg));
  table.AddRow({"VCR (hash)", "any", "none needed",
                FormatDouble(vcr.replication_factor, 3), "0", "0"});

  for (ParallelAlgo algo : {ParallelAlgo::kLdg, ParallelAlgo::kFennel,
                            ParallelAlgo::kHdrf, ParallelAlgo::kPgg}) {
    const std::string name(ParallelAlgoName(algo));
    // Sequential baseline == the parallel driver with one worker.
    {
      ParallelStreamOptions opts;
      opts.num_streams = 1;
      opts.sync_interval = 1u << 20;
      ParallelStreamResult r = RunParallelStreaming(g, cfg, opts, algo);
      table.AddRow({name, "1 (sequential)", "-",
                    FormatDouble(quality(algo, r.partitioning), 3), "-",
                    "0"});
    }
    for (uint32_t streams : {4u, 16u}) {
      for (uint32_t interval : {1u, 256u, 1u << 20}) {
        ParallelStreamOptions opts;
        opts.num_streams = streams;
        opts.sync_interval = interval;
        ParallelStreamResult r = RunParallelStreaming(g, cfg, opts, algo);
        table.AddRow({name, std::to_string(streams),
                      interval == 1u << 20 ? "once at end"
                                           : std::to_string(interval),
                      FormatDouble(quality(algo, r.partitioning), 3),
                      FormatCount(r.sync_rounds),
                      FormatCount(r.sync_messages)});
      }
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: frequent synchronization matches each sequential\n"
         "algorithm's quality; as the interval grows the stale synopsis\n"
         "(assignment history for LDG/FNL, degree + replica tables for\n"
         "HDRF/PGG) erodes quality toward the corresponding hash baseline,\n"
         "while barrier count drops — the coordination/quality trade-off\n"
         "that Section 4.1.1 contrasts with hash partitioning's\n"
         "zero-communication parallelism.\n";
  sgp::bench::WriteBenchJson("ablation_parallel_ingest", scale);
  return 0;
}
