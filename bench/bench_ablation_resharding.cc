// Ablation: elastic resharding under traffic. Sweeps when the reshard is
// triggered (early vs. inside the outage), how much it moves per batch,
// and whether a worker outage lands mid-reshard, for one edge-cut and one
// vertex-cut placement and both reshape kinds. Measures what the paper's
// static view cannot: availability and tail latency through the
// transition, wire volume of the migration, and how often the controller
// had to retry, re-plan or cancel around the fault.
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/faults.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/dynamic/reshard.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv(12);
  const PartitionId k = 8;
  bench::PrintBanner("Ablation: elastic resharding",
                     "Split/merge under traffic: trigger point x batch "
                     "size x fault plan (k=8)",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  Workload w(g, {});

  // Default retry posture (3 attempts, 50 ms deadline): clients park on a
  // query whose data is unreachable for at most one deadline, so the
  // during-reshard window keeps a mix of outcomes instead of stalling.
  SimConfig base;
  base.clients = 32;
  base.num_queries = 6000;

  // Healthy calibration run: size the trigger points and the outage
  // window as fractions of the run so every cell sees the same geometry
  // regardless of scale.
  double span = 0;
  {
    PartitionConfig cfg;
    cfg.k = k;
    GraphDatabase db(g, CreatePartitioner("LDG")->Run(g, cfg));
    span = SimulateClosedLoop(db, w, base).window_seconds / 0.9;
  }
  // The outage covers [30%, 50%] of the run on the reshape's target
  // worker. An early trigger mostly finishes before it; a late trigger
  // starts inside it and must retry / re-plan its way out.
  const std::vector<std::pair<const char*, double>> triggers = {
      {"early", 0.15}, {"late", 0.40}};
  const std::vector<uint32_t> batch_sizes = {16, 128};
  const std::vector<std::pair<const char*, ReshardOpKind>> ops = {
      {"split", ReshardOpKind::kSplit}, {"merge", ReshardOpKind::kMerge}};

  TablePrinter table({"Algorithm", "Op", "Trigger", "Batch", "Faults",
                      "Phase", "Moved", "Mig KB", "Retries", "Replanned",
                      "Cancelled", "Fwd reads", "Avail", "Avail during",
                      "p99 during (ms)", "p999 during (ms)"});
  for (const std::string& algo : {std::string("LDG"), std::string("HDRF")}) {
    PartitionConfig cfg;
    cfg.k = k;
    GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
    for (const auto& [op_name, op_kind] : ops) {
      // Merge drains partition 1; split halves partition 2. The outage
      // hits the reshape's own target worker — the hardest placement of
      // the fault relative to the migration.
      const PartitionId target = op_kind == ReshardOpKind::kMerge ? 1 : 2;
      for (const auto& [trig_name, trig_frac] : triggers) {
        for (uint32_t batch : batch_sizes) {
          for (const char* fault_mode : {"none", "outage", "crash"}) {
            SimConfig sim = base;
            sim.reshard.op = {op_kind, target};
            sim.reshard.start_time = trig_frac * span;
            sim.reshard.config.batch_vertices = batch;
            sim.reshard.config.retry = base.retry;
            if (fault_mode[0] == 'o') {
              // Transient outage of the reshape's target worker.
              sim.faults =
                  FaultPlan::SingleOutage(target, 0.3 * span, 0.2 * span);
            } else if (fault_mode[0] == 'c') {
              // Worker 2 crash-stops for good: the split loses its source
              // (moves cancelled), the merge loses a destination (moves
              // re-planned onto survivors).
              sim.faults.outages.push_back(
                  {2, 0.3 * span,
                   std::numeric_limits<double>::infinity()});
            }
            SimResult r = SimulateClosedLoop(db, w, sim);
            const ReshardSimStats& rs = r.reshard;
            table.AddRow(
                {algo, op_name, trig_name, FormatCount(batch),
                 fault_mode, ReshardPhaseName(rs.phase),
                 FormatCount(rs.moved_vertices),
                 FormatDouble(static_cast<double>(rs.migration_bytes) / 1e3,
                              1),
                 FormatCount(rs.batch_retries),
                 FormatCount(rs.moves_replanned),
                 FormatCount(rs.moves_cancelled),
                 FormatCount(rs.forwarded_reads),
                 FormatDouble(r.availability.availability, 4),
                 FormatDouble(rs.availability_during, 4),
                 FormatDouble(rs.latency_during.p99 * 1e3, 3),
                 FormatDouble(rs.latency_during.p999 * 1e3, 3)});
          }
        }
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nForwarded reads are the price of serving through the "
               "move (a detour, never\nan error); retries / re-plans "
               "appear only when the outage overlaps the\ntransition. "
               "Replicated placements ride it out; edge-cut loses the "
               "only copy\nof whatever the dead worker still holds.\n";
  sgp::bench::WriteBenchJson("ablation_resharding", scale);
  return 0;
}
