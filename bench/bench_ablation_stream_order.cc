// Ablation (Section 4.2.2): sensitivity of the partitioners to the stream
// arrival order. Plain PowerGraph greedy collapses toward one partition
// under BFS order; HDRF's λ term and the hash-based methods do not care.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "stream/stream.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: stream order",
                     "Replication factor and balance vs stream order "
                     "(Twitter, k=16)",
                     scale);
  Graph g = MakeDataset("twitter", scale);
  TablePrinter table({"Algorithm", "Order", "ReplFactor", "EdgeImbalance",
                      "VertexImbalance"});
  for (const std::string algo :
       {"VCR", "DBH", "HDRF", "PGG", "LDG", "FNL"}) {
    for (StreamOrder order : {StreamOrder::kRandom, StreamOrder::kBfs,
                              StreamOrder::kDfs}) {
      PartitionConfig cfg;
      cfg.k = 16;
      cfg.order = order;
      PartitionMetrics m =
          ComputeMetrics(g, CreatePartitioner(algo)->Run(g, cfg));
      table.AddRow({algo, std::string(StreamOrderName(order)),
                    FormatDouble(m.replication_factor, 2),
                    FormatDouble(m.edge_imbalance, 2),
                    FormatDouble(m.vertex_imbalance, 2)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: hash-based rows are order-invariant; greedy\n"
         "rows improve their replication factor under BFS/DFS locality but\n"
         "PGG pays with severe edge imbalance (the \"single partition\"\n"
         "pathology of Section 4.2.2), while HDRF stays balanced.\n";
  sgp::bench::WriteBenchJson("ablation_stream_order", scale);
  return 0;
}
