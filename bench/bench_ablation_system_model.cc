// Ablations of system-model choices the paper discusses:
//   - sender-side message aggregation (Figure 10, Bourse et al. [10]):
//     with aggregation off, edge-cut and vertex-cut random partitionings
//     incur near-identical traffic; aggregation is what separates them;
//   - the partitioning-aware query router of Appendix C vs an oblivious
//     front end.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: system model",
                     "Message aggregation (engine) and query routing (db)",
                     scale);

  {
    Graph g = MakeDataset("twitter", scale);
    std::cout << "--- Sender-side aggregation, PageRank, k=16 ---\n";
    TablePrinter table({"Algorithm", "Aggregated msgs/iter",
                        "Unaggregated msgs/iter", "Ratio"});
    for (const std::string algo : {"ECR", "LDG", "VCR", "HDRF"}) {
      PartitionConfig cfg;
      cfg.k = 16;
      Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
      EngineCostModel with;
      EngineCostModel without = with;
      without.sender_side_aggregation = false;
      EngineStats sa = AnalyticsEngine(g, p, with).Run(PageRankProgram(5));
      EngineStats sn =
          AnalyticsEngine(g, p, without).Run(PageRankProgram(5));
      const double ma = static_cast<double>(sa.gather_messages +
                                            sa.sync_messages) /
                        5.0;
      const double mn = static_cast<double>(sn.gather_messages +
                                            sn.sync_messages) /
                        5.0;
      table.AddRow({algo, FormatDouble(ma, 0), FormatDouble(mn, 0),
                    FormatDouble(mn / ma, 2)});
    }
    table.Print(std::cout);
    std::cout
        << "Expected ([10], Section 4.2.2): without aggregation the hash\n"
           "rows (ECR vs VCR) converge — expected communication of edge-\n"
           "and vertex-cut is identical under uniform random placement;\n"
           "aggregation compresses edge-cut traffic the most (highest\n"
           "ratio), which is why vertex-cut only wins *with* aggregation.\n\n";
  }

  {
    Graph g = MakeDataset("ldbc", scale);
    std::cout << "--- Query router, 1-hop, 16 workers, medium load ---\n";
    TablePrinter table({"Algorithm", "Aware q/s", "Oblivious q/s",
                        "Aware mean ms", "Oblivious mean ms"});
    Workload workload(g, {});
    SimConfig sim;
    sim.clients = 12 * 16;
    sim.num_queries = 15000;
    for (const std::string algo : {"ECR", "FNL", "MTS"}) {
      PartitionConfig cfg;
      cfg.k = 16;
      Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
      GraphDatabase aware(g, p, {}, RouterMode::kPartitionAware);
      GraphDatabase oblivious(g, p, {}, RouterMode::kRandom);
      SimResult ra = SimulateClosedLoop(aware, workload, sim);
      SimResult ro = SimulateClosedLoop(oblivious, workload, sim);
      table.AddRow({algo, FormatDouble(ra.throughput_qps, 0),
                    FormatDouble(ro.throughput_qps, 0),
                    FormatDouble(ra.latency.mean * 1e3, 2),
                    FormatDouble(ro.latency.mean * 1e3, 2)});
    }
    table.Print(std::cout);
    std::cout
        << "Expected (Appendix C): routing each query to the worker owning\n"
           "its start vertex saves one remote round trip per query, so the\n"
           "aware router wins throughput and latency for every algorithm —\n"
           "and the win grows with the partitioning's locality.\n";
  }
  sgp::bench::WriteBenchJson("ablation_system_model", scale);
  return 0;
}
