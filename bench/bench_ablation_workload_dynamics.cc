// Ablation (Section 5.1.3): per-iteration dynamics of the three analytics
// workloads — why PageRank "closely matches the structural metrics" while
// WCC and SSSP violate the uniform-workload assumption behind the SGP
// objective functions.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv(12);
  bench::PrintBanner("Ablation: workload dynamics",
                     "Active vertices and messages per iteration "
                     "(HDRF, k=8)",
                     scale);
  struct Run {
    const char* name;
    const char* dataset;
  };
  for (const Run& run : {Run{"PageRank", "twitter"}, Run{"WCC", "ldbc"},
                         Run{"SSSP", "usaroad"}}) {
    Graph g = MakeDataset(run.dataset, scale);
    PartitionConfig cfg;
    cfg.k = 8;
    AnalyticsEngine engine(g, CreatePartitioner("HDRF")->Run(g, cfg));
    EngineStats stats;
    if (std::string(run.name) == "PageRank") {
      stats = engine.Run(PageRankProgram(10));
    } else if (std::string(run.name) == "WCC") {
      stats = engine.Run(WccProgram());
    } else {
      VertexId source = 0;
      while (g.Degree(source) == 0) ++source;
      stats = engine.Run(SsspProgram(source));
    }
    std::cout << "--- " << run.name << " on " << run.dataset << " ("
              << stats.iterations << " iterations) ---\n";
    TablePrinter table({"Iteration", "Active vertices", "Messages"});
    // Print up to 12 evenly spaced iterations.
    const size_t n = stats.active_per_iteration.size();
    const size_t step = std::max<size_t>(1, n / 12);
    for (size_t i = 0; i < n; i += step) {
      table.AddRow({std::to_string(i),
                    FormatCount(stats.active_per_iteration[i]),
                    FormatCount(stats.messages_per_iteration[i])});
    }
    if ((n - 1) % step != 0) {
      table.AddRow({std::to_string(n - 1),
                    FormatCount(stats.active_per_iteration[n - 1]),
                    FormatCount(stats.messages_per_iteration[n - 1])});
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (Section 5.1.3): PageRank rows are identical\n"
         "(all-active, stable); WCC starts all-active and decays; SSSP\n"
         "starts from one vertex, peaks mid-run in BFS order and decays —\n"
         "the \"ordered activation\" that defeats uniform-load objectives.\n";
  sgp::bench::WriteBenchJson("ablation_workload_dynamics", scale);
  return 0;
}
