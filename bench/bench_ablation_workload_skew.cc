// Ablation (Section 6.3.3): impact of the workload skew on online
// performance. As the Zipf exponent of binding popularity grows, the
// advantage of cut-minimizing partitioners (LDG/FNL/MTS) over plain hash
// erodes and eventually inverts — the paper's core online finding.
#include <iostream>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Ablation: workload skew",
                     "1-hop throughput and p99 latency vs Zipf skew of the "
                     "request stream (16 workers, high load)",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  const PartitionId k = 16;

  TablePrinter table({"Skew", "Algorithm", "Throughput(q/s)", "p99(ms)",
                      "Read RSD"});
  for (double skew : {0.0, 0.8, 1.1, 1.4}) {
    WorkloadConfig wcfg;
    wcfg.skew = skew;
    Workload workload(g, wcfg);
    for (const std::string& algo : bench::OnlineAlgos()) {
      PartitionConfig cfg;
      cfg.k = k;
      GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
      SimConfig sim;
      sim.clients = 24 * k;
      sim.num_queries = 15000;
      SimResult r = SimulateClosedLoop(db, workload, sim);
      table.AddRow({FormatDouble(skew, 1), algo,
                    FormatDouble(r.throughput_qps, 0),
                    FormatDouble(r.latency.p99 * 1e3, 1),
                    FormatDouble(Summarize(r.reads_per_worker)
                                     .RelativeStdDev(),
                                 2)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: at skew 0 the cut-minimizing algorithms hold\n"
         "their full throughput advantage over ECR; as skew grows their\n"
         "read distribution (RSD column) degrades and the advantage\n"
         "shrinks — MTS falls to or below hash at skew 1.4 — while ECR's\n"
         "RSD stays flat. Structural cut metrics cannot see any of this\n"
         "(Section 6.3.3).\n";
  sgp::bench::WriteBenchJson("ablation_workload_skew", scale);
  return 0;
}
