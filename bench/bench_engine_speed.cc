// Engine superstep-kernel speed: wall-clock cost of the analytics engine's
// specialized kernels vs the generic virtual-dispatch path, for PageRank
// (all-active) and SSSP (frontier-driven) on the R-MAT "twitter" graph
// across cluster sizes. The two paths produce byte-identical EngineStats
// (tests/engine_kernel_test.cc), so the ratio is pure kernel overhead:
// virtual calls per gather edge, per-superstep direction resolution and
// speed division, and O(n) frontier resets.
//
// ns/edge/superstep normalizes wall time by iterations × |E| — for the
// frontier-driven SSSP most supersteps touch few edges, so treat its
// number as a normalized rate, not a per-edge cost.
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "partition/partitioner.h"

namespace {

// Fixed repetition count keeps every engine.* counter in the deterministic
// JSON section a pure function of the inputs (adaptive rep counts would
// leak wall time into it).
constexpr int kReps = 3;

struct KernelTiming {
  double ns_per_edge_step = 0;
  uint32_t iterations = 0;
};

template <typename RunFn>
KernelTiming TimeKernel(const sgp::Graph& g, RunFn&& run) {
  double best_nanos = 0;
  sgp::EngineStats stats;
  for (int rep = 0; rep < kReps; ++rep) {
    sgp::Timer timer;
    stats = run();
    const double nanos = static_cast<double>(timer.ElapsedNanos());
    if (rep == 0 || nanos < best_nanos) best_nanos = nanos;
  }
  KernelTiming t;
  t.iterations = stats.iterations;
  const double edge_steps = static_cast<double>(stats.iterations) *
                            static_cast<double>(g.num_edges());
  t.ns_per_edge_step = edge_steps == 0 ? 0 : best_nanos / edge_steps;
  return t;
}

void RecordWallGauge(const std::string& name, double value) {
  sgp::MetricsRegistry::Global()
      .GetGauge(name, sgp::MetricOptions::WallClock())
      ->Set(value);
}

}  // namespace

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner(
      "Engine kernel speed",
      "Wall-clock ns/edge/superstep of the specialized GAS kernels vs the "
      "generic virtual path (byte-identical results)",
      scale);
  Graph g = MakeDataset("twitter", scale);
  VertexId source = 0;
  while (g.Degree(source) == 0) ++source;

  TablePrinter table({"Program", "k", "generic ns/edge", "specialized ns/edge",
                      "speedup", "supersteps"});
  for (PartitionId k : {8u, 32u, 128u}) {
    PartitionConfig cfg;
    cfg.k = k;
    Partitioning p = CreatePartitioner("HDRF")->Run(g, cfg);
    AnalyticsEngine engine(g, p);

    for (int which : {0, 1}) {
      const char* prog_name = which == 0 ? "PageRank" : "SSSP";
      PageRankProgram pagerank(20);
      SsspProgram sssp(source);
      const VertexProgram& program =
          which == 0 ? static_cast<const VertexProgram&>(pagerank)
                     : static_cast<const VertexProgram&>(sssp);
      GenericProgramView generic(program);

      const KernelTiming spec =
          TimeKernel(g, [&] { return engine.Run(program); });
      const KernelTiming gen =
          TimeKernel(g, [&] { return engine.Run(generic); });
      const double speedup = spec.ns_per_edge_step == 0
                                 ? 0
                                 : gen.ns_per_edge_step / spec.ns_per_edge_step;

      const std::string prefix = std::string("engine_speed.") + prog_name +
                                 ".k" + std::to_string(k);
      RecordWallGauge(prefix + ".generic.ns_per_edge.wall", gen.ns_per_edge_step);
      RecordWallGauge(prefix + ".specialized.ns_per_edge.wall",
                      spec.ns_per_edge_step);
      RecordWallGauge(prefix + ".speedup.wall", speedup);

      table.AddRow({prog_name, std::to_string(k),
                    FormatDouble(gen.ns_per_edge_step, 2),
                    FormatDouble(spec.ns_per_edge_step, 2),
                    FormatDouble(speedup, 2) + "x",
                    std::to_string(spec.iterations)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the specialized all-active PageRank kernel runs\n"
         ">=2x faster than the generic path (devirtualized gather, replica\n"
         "cost tables, superstep-invariant accounting); SSSP gains most at\n"
         "small frontiers where the epoch-stamped frontier replaces O(n)\n"
         "resets. The engine.* counters below are identical for both paths\n"
         "except engine.kernel.{specialized,generic}.\n";
  sgp::bench::WriteBenchJson("engine_speed", scale);
  return 0;
}
