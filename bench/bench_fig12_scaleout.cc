// Figure 12: aggregate throughput of 192 concurrent clients running 1-hop
// traversals on LDBC SNB over 4 to 32 workers — beyond ~16 workers the
// added communication outweighs the added capacity.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 12",
                     "Throughput of 192 fixed clients vs cluster size, "
                     "1-hop on LDBC SNB",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  WorkloadConfig wcfg;
  Workload workload(g, wcfg);

  TablePrinter table({"Algorithm", "Metric", "k=4", "k=8", "k=16", "k=32"});
  for (const std::string& algo : bench::OnlineAlgos()) {
    std::vector<std::string> tput{algo, "q/s"};
    std::vector<std::string> per_worker{algo, "q/s/worker"};
    for (PartitionId k : {4u, 8u, 16u, 32u}) {
      PartitionConfig cfg;
      cfg.k = k;
      GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
      SimConfig sim;
      sim.clients = 192;
      sim.num_queries = 15000;
      SimResult r = SimulateClosedLoop(db, workload, sim);
      tput.push_back(FormatDouble(r.throughput_qps, 0));
      per_worker.push_back(FormatDouble(r.throughput_qps / k, 0));
    }
    table.AddRow(std::move(tput));
    table.AddRow(std::move(per_worker));
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape (paper Fig. 12): scaling out stops paying off —\n"
         "the paper sees absolute degradation beyond 16 workers on the\n"
         "SF-1000 graph (avg degree 124, so every query touches every\n"
         "worker); at this synthetic scale (avg degree ~20) the effect\n"
         "appears as collapsing per-worker efficiency (q/s/worker falls\n"
         "steeply from k=4 to k=32) as the growing cut ratio turns extra\n"
         "workers into extra round trips per query.\n";
  sgp::bench::WriteBenchJson("fig12_scaleout", scale);
  return 0;
}
