// Figure 12: aggregate throughput of 192 concurrent clients running 1-hop
// traversals on LDBC SNB over 4 to 32 workers — beyond ~16 workers the
// added communication outweighs the added capacity.
//
// Runs on the experiment-grid runner (export SGP_THREADS to parallelize
// the cells); the printed table is reconstructed from the grid records.
#include <iostream>
#include <map>
#include <utility>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "experiments/grid.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 12",
                     "Throughput of 192 fixed clients vs cluster size, "
                     "1-hop on LDBC SNB",
                     scale);

  OnlineGridSpec spec;
  spec.datasets = {"ldbc"};
  spec.algorithms = bench::OnlineAlgos();
  spec.cluster_sizes = {4, 8, 16, 32};
  spec.workloads = {QueryKind::kOneHop};
  spec.total_clients = {192};  // fixed load while the cluster grows
  spec.scale = scale;
  spec.queries_per_run = 15000;
  // The defaults this figure's hand-rolled loop always used:
  // WorkloadConfig{}.seed and SimConfig{}.seed.
  spec.workload_seed = 7;
  spec.sim_seed = 123;
  GridOptions options;
  options.threads = bench::ThreadsFromEnv();
  const auto records = RunOnlineGrid(spec, options);

  std::map<std::pair<std::string, PartitionId>, double> qps_by_cell;
  for (const OnlineRunRecord& r : records) {
    qps_by_cell[{r.algorithm, r.k}] = r.throughput_qps;
  }

  TablePrinter table({"Algorithm", "Metric", "k=4", "k=8", "k=16", "k=32"});
  for (const std::string& algo : bench::OnlineAlgos()) {
    std::vector<std::string> tput{algo, "q/s"};
    std::vector<std::string> per_worker{algo, "q/s/worker"};
    for (PartitionId k : {4u, 8u, 16u, 32u}) {
      const double qps = qps_by_cell.at({algo, k});
      tput.push_back(FormatDouble(qps, 0));
      per_worker.push_back(FormatDouble(qps / k, 0));
    }
    table.AddRow(std::move(tput));
    table.AddRow(std::move(per_worker));
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape (paper Fig. 12): scaling out stops paying off —\n"
         "the paper sees absolute degradation beyond 16 workers on the\n"
         "SF-1000 graph (avg degree 124, so every query touches every\n"
         "worker); at this synthetic scale (avg degree ~20) the effect\n"
         "appears as collapsing per-worker efficiency (q/s/worker falls\n"
         "steeply from k=4 to k=32) as the growing cut ratio turns extra\n"
         "workers into extra round trips per query.\n";
  sgp::bench::WriteBenchCsv("fig12_scaleout", OnlineCsvSchema(), records);
  sgp::bench::WriteBenchJson("fig12_scaleout", scale);
  return 0;
}
