// Figure 13: the full offline-analytics sweep — simulated execution time
// of all three workloads on all three graphs over all cluster sizes.
// (Reduced default scale: this is the largest sweep in the suite.)
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv(12);
  bench::PrintBanner("Figure 13",
                     "Full sweep: simulated execution time (s), all "
                     "workloads x graphs x cluster sizes",
                     scale);
  const std::vector<PartitionId> cluster_sizes{8, 16, 32, 64, 128};

  for (const std::string dataset : {"usaroad", "twitter", "uk2007"}) {
    Graph g = MakeDataset(dataset, scale);
    VertexId source = 0;
    while (g.Degree(source) == 0) ++source;
    for (int which : {0, 1, 2}) {
      const char* name =
          which == 0 ? "PageRank" : which == 1 ? "WCC" : "SSSP";
      std::cout << "--- " << dataset << " / " << name << " ---\n";
      std::vector<std::string> header{"Algorithm"};
      for (PartitionId k : cluster_sizes) {
        header.push_back("k=" + std::to_string(k));
      }
      TablePrinter table(header);
      for (const std::string& algo : bench::OfflineAlgos()) {
        auto partitioner = CreatePartitioner(algo);
        std::vector<std::string> row{algo};
        for (PartitionId k : cluster_sizes) {
          PartitionConfig cfg;
          cfg.k = k;
          Partitioning p = partitioner->Run(g, cfg);
          AnalyticsEngine engine(g, p);
          EngineStats stats;
          switch (which) {
            case 0:
              stats = engine.Run(PageRankProgram(20));
              break;
            case 1:
              stats = engine.Run(WccProgram());
              break;
            default:
              stats = engine.Run(SsspProgram(source));
          }
          row.push_back(FormatDouble(stats.simulated_seconds, 3));
        }
        table.AddRow(std::move(row));
      }
      table.Print(std::cout);
      std::cout << '\n';
    }
  }
  std::cout
      << "Expected shape (paper Fig. 13): LDG/FNL fastest on the road\n"
         "network (balanced + low replication); vertex-cut/hybrid fastest\n"
         "on twitter/uk2007; PageRank separates algorithms the most; the\n"
         "k=128 column rarely beats k=64 (communication dominates).\n";
  sgp::bench::WriteBenchJson("fig13_full_analytics", scale);
  return 0;
}
