// Figure 13: the full offline-analytics sweep — simulated execution time
// of all three workloads on all three graphs over all cluster sizes.
// (Reduced default scale: this is the largest sweep in the suite.)
//
// Runs on the experiment-grid runner (export SGP_THREADS to parallelize
// the cells); the printed tables are reconstructed from the grid records.
#include <iostream>
#include <map>
#include <string>
#include <tuple>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "experiments/grid.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv(12);
  bench::PrintBanner("Figure 13",
                     "Full sweep: simulated execution time (s), all "
                     "workloads x graphs x cluster sizes",
                     scale);
  const std::vector<PartitionId> cluster_sizes{8, 16, 32, 64, 128};

  OfflineGridSpec spec;
  spec.datasets = {"usaroad", "twitter", "uk2007"};
  spec.algorithms = bench::OfflineAlgos();
  spec.cluster_sizes = cluster_sizes;
  spec.workloads = {"pagerank", "wcc", "sssp"};
  spec.scale = scale;
  GridOptions options;
  options.threads = bench::ThreadsFromEnv();
  const auto records = RunOfflineGrid(spec, options);

  std::map<std::tuple<std::string, std::string, std::string, PartitionId>,
           double>
      seconds_by_cell;
  for (const OfflineRunRecord& r : records) {
    seconds_by_cell[{r.dataset, r.workload, r.algorithm, r.k}] =
        r.simulated_seconds;
  }

  const std::pair<const char*, const char*> workloads[] = {
      {"PageRank", "pagerank"}, {"WCC", "wcc"}, {"SSSP", "sssp"}};
  for (const std::string& dataset : spec.datasets) {
    for (const auto& [title, workload] : workloads) {
      std::cout << "--- " << dataset << " / " << title << " ---\n";
      std::vector<std::string> header{"Algorithm"};
      for (PartitionId k : cluster_sizes) {
        header.push_back("k=" + std::to_string(k));
      }
      TablePrinter table(header);
      for (const std::string& algo : bench::OfflineAlgos()) {
        std::vector<std::string> row{algo};
        for (PartitionId k : cluster_sizes) {
          row.push_back(FormatDouble(
              seconds_by_cell.at({dataset, workload, algo, k}), 3));
        }
        table.AddRow(std::move(row));
      }
      table.Print(std::cout);
      std::cout << '\n';
    }
  }
  std::cout
      << "Expected shape (paper Fig. 13): LDG/FNL fastest on the road\n"
         "network (balanced + low replication); vertex-cut/hybrid fastest\n"
         "on twitter/uk2007; PageRank separates algorithms the most; the\n"
         "k=128 column rarely beats k=64 (communication dominates).\n";
  sgp::bench::WriteBenchCsv("fig13_full_analytics", OfflineCsvSchema(),
                            records);
  sgp::bench::WriteBenchJson("fig13_full_analytics", scale);
  return 0;
}
