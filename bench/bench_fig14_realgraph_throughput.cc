// Figure 14: aggregate 1-hop throughput on the real-world graph analogues
// (USA-Road, Twitter, UK2007-05) on 16 workers under medium and high load.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 14",
                     "1-hop throughput (queries/s) on real-world graphs, "
                     "16 workers",
                     scale);
  const PartitionId k = 16;
  for (const std::string dataset : {"usaroad", "twitter", "uk2007"}) {
    Graph g = MakeDataset(dataset, scale);
    WorkloadConfig wcfg;
    Workload workload(g, wcfg);
    std::cout << "--- " << dataset << " ---\n";
    TablePrinter table({"Algorithm", "Medium load", "High load"});
    for (const std::string& algo : bench::OnlineAlgos()) {
      PartitionConfig cfg;
      cfg.k = k;
      GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
      std::vector<std::string> row{algo};
      for (uint32_t clients_per_worker : {12u, 24u}) {
        SimConfig sim;
        sim.clients = clients_per_worker * k;
        sim.num_queries = 15000;
        SimResult r = SimulateClosedLoop(db, workload, sim);
        row.push_back(FormatDouble(r.throughput_qps, 0));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Fig. 14): cut-minimizing algorithms gain\n"
         "under medium load but lose their edge (or invert) under high\n"
         "load on every dataset, because workload-skew hotspots — not the\n"
         "cut ratio — dominate saturated-cluster behaviour.\n";
  sgp::bench::WriteBenchJson("fig14_realgraph_throughput", scale);
  return 0;
}
