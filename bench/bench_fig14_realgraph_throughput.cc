// Figure 14: aggregate 1-hop throughput on the real-world graph analogues
// (USA-Road, Twitter, UK2007-05) on 16 workers under medium and high load.
//
// Runs on the experiment-grid runner (export SGP_THREADS to parallelize
// the cells); the printed tables are reconstructed from the grid records.
#include <iostream>
#include <map>
#include <string>
#include <tuple>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "experiments/grid.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 14",
                     "1-hop throughput (queries/s) on real-world graphs, "
                     "16 workers",
                     scale);
  const PartitionId k = 16;

  OnlineGridSpec spec;
  spec.datasets = {"usaroad", "twitter", "uk2007"};
  spec.algorithms = bench::OnlineAlgos();
  spec.cluster_sizes = {k};
  spec.workloads = {QueryKind::kOneHop};
  spec.clients_per_worker = {12, 24};  // medium, high load
  spec.scale = scale;
  spec.queries_per_run = 15000;
  // The defaults this figure's hand-rolled loop always used:
  // WorkloadConfig{}.seed and SimConfig{}.seed.
  spec.workload_seed = 7;
  spec.sim_seed = 123;
  GridOptions options;
  options.threads = bench::ThreadsFromEnv();
  const auto records = RunOnlineGrid(spec, options);

  std::map<std::tuple<std::string, std::string, uint32_t>, double>
      qps_by_cell;
  for (const OnlineRunRecord& r : records) {
    qps_by_cell[{r.dataset, r.algorithm, r.clients}] = r.throughput_qps;
  }

  for (const std::string& dataset : spec.datasets) {
    std::cout << "--- " << dataset << " ---\n";
    TablePrinter table({"Algorithm", "Medium load", "High load"});
    for (const std::string& algo : bench::OnlineAlgos()) {
      std::vector<std::string> row{algo};
      for (uint32_t clients_per_worker : {12u, 24u}) {
        row.push_back(FormatDouble(
            qps_by_cell.at({dataset, algo, clients_per_worker * k}), 0));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Fig. 14): cut-minimizing algorithms gain\n"
         "under medium load but lose their edge (or invert) under high\n"
         "load on every dataset, because workload-skew hotspots — not the\n"
         "cut ratio — dominate saturated-cluster behaviour.\n";
  sgp::bench::WriteBenchCsv("fig14_realgraph_throughput", OnlineCsvSchema(),
                            records);
  sgp::bench::WriteBenchJson("fig14_realgraph_throughput", scale);
  return 0;
}
