// Figure 1: replication factor vs total network I/O during PageRank, WCC
// and SSSP on the Twitter graph, separated by cut model. Each point is one
// (algorithm, cluster size) configuration.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 1",
                     "Replication factor vs total network I/O (PageRank, "
                     "WCC, SSSP) on Twitter, per cut model",
                     scale);
  Graph g = MakeDataset("twitter", scale);
  VertexId source = 0;
  while (g.Degree(source) == 0) ++source;

  struct Workload {
    const char* name;
    int which;  // 0 = PR, 1 = WCC, 2 = SSSP
  };
  const Workload workloads[] = {{"PageRank", 0}, {"WCC", 1}, {"SSSP", 2}};

  for (const auto& wl : workloads) {
    std::cout << "--- " << wl.name << " ---\n";
    TablePrinter table({"CutModel", "Algorithm", "k", "ReplFactor",
                        "NetworkMB", "MB/RF"});
    for (const std::string& algo : bench::OfflineAlgos()) {
      auto partitioner = CreatePartitioner(algo);
      for (PartitionId k : {8u, 32u, 128u}) {
        PartitionConfig cfg;
        cfg.k = k;
        Partitioning p = partitioner->Run(g, cfg);
        AnalyticsEngine engine(g, p);
        EngineStats stats;
        switch (wl.which) {
          case 0:
            stats = engine.Run(PageRankProgram(20));
            break;
          case 1:
            stats = engine.Run(WccProgram());
            break;
          default:
            stats = engine.Run(SsspProgram(source));
        }
        const double rf = engine.distributed_graph().replication_factor();
        const double mb =
            static_cast<double>(stats.total_network_bytes) / 1e6;
        table.AddRow({std::string(CutModelName(partitioner->model())), algo,
                      std::to_string(k), FormatDouble(rf, 2),
                      FormatDouble(mb, 2),
                      FormatDouble(rf > 1.0 ? mb / (rf - 1.0) : 0.0, 2)});
      }
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Fig. 1): network I/O grows linearly with\n"
         "the replication factor; for PageRank (uni-directional) the\n"
         "edge-cut rows have a visibly smaller MB/RF slope than vertex-cut\n"
         "rows (no master->mirror sync, Appendix B), while for WCC the\n"
         "models coincide; PageRank moves the most data overall.\n";
  sgp::bench::WriteBenchJson("fig1_comm_volume", scale);
  return 0;
}
