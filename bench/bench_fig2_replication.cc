// Figure 2: replication factors of USA-Road, Twitter and UK2007-05 over
// 8 to 128 partitions, for every algorithm in Table 2 plus the two-phase
// and clustering families (2PS, HEP, NE).
//
// Every (dataset, algorithm, k) cell also lands in the deterministic
// metrics section as bench.fig2.rf_milli.* (replication factor in
// thousandths), so the whole figure is golden-gated byte-for-byte by
// scripts/bench_diff.py. The bench additionally asserts the headline
// claim of the 2PS family — lower replication than single-pass HDRF at
// k=128 on at least one paper dataset — and exits nonzero if it fails at
// a meaningful scale (>= 11: below that, k=128 leaves fewer than ~16
// edges per partition and the clustering pass has nothing to exploit).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner(
      "Figure 2",
      "Replication factor vs number of partitions, all algorithms", scale);
  const std::vector<PartitionId> cluster_sizes{8, 16, 32, 64, 128};

  // rf at k=128 per dataset for the acceptance comparison below.
  std::map<std::string, double> hdrf_rf128;
  std::map<std::string, double> twophase_rf128;

  for (const std::string dataset : {"usaroad", "twitter", "uk2007"}) {
    Graph g = MakeDataset(dataset, scale);
    std::cout << "--- " << dataset << " ---\n";
    std::vector<std::string> header{"Algorithm"};
    for (PartitionId k : cluster_sizes) {
      header.push_back("k=" + std::to_string(k));
    }
    TablePrinter table(header);
    for (const std::string& algo : bench::OfflineAlgos()) {
      std::vector<std::string> row{algo};
      auto partitioner = CreatePartitioner(algo);
      for (PartitionId k : cluster_sizes) {
        PartitionConfig cfg;
        cfg.k = k;
        PartitionMetrics m = ComputeMetrics(g, partitioner->Run(g, cfg));
        row.push_back(FormatDouble(m.replication_factor, 2));
        MetricsRegistry::Global()
            .GetCounter("bench.fig2.rf_milli." + dataset + "." + algo +
                        ".k" + std::to_string(k))
            ->Increment(static_cast<uint64_t>(
                std::llround(m.replication_factor * 1000.0)));
        if (k == 128 && algo == "HDRF") {
          hdrf_rf128[dataset] = m.replication_factor;
        }
        if (k == 128 && algo == "2PS") {
          twophase_rf128[dataset] = m.replication_factor;
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Fig. 2): edge-cut (LDG/FNL) lowest on the\n"
         "low-degree road network; vertex-cut (HDRF/DBH) and hybrid lowest\n"
         "on the skewed twitter/uk2007 graphs; 2PS's clustering pass beats\n"
         "single-pass HDRF where locality exists; replication grows with k\n"
         "for every algorithm; no algorithm wins everywhere.\n";

  // Headline check for the two-phase family: 2PS < HDRF at k=128 on at
  // least one paper dataset. Informational at smoke scales, enforced at
  // scale >= 11 where the synthetic graphs have real structure.
  int wins = 0;
  for (const auto& [dataset, rf] : twophase_rf128) {
    const double hdrf = hdrf_rf128[dataset];
    const bool win = rf < hdrf;
    wins += win ? 1 : 0;
    std::cout << "2PS vs HDRF @ k=128 on " << dataset << ": "
              << FormatDouble(rf, 3) << " vs " << FormatDouble(hdrf, 3)
              << (win ? "  (2PS lower)" : "") << '\n';
  }
  sgp::bench::WriteBenchJson("fig2_replication", scale);
  if (scale >= 11 && wins == 0) {
    std::cerr << "FAIL: 2PS did not beat HDRF at k=128 on any dataset\n";
    return 1;
  }
  return 0;
}
