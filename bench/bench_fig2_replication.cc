// Figure 2: replication factors of USA-Road, Twitter and UK2007-05 over
// 8 to 128 partitions, for every algorithm in Table 2.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner(
      "Figure 2",
      "Replication factor vs number of partitions, all algorithms", scale);
  const std::vector<PartitionId> cluster_sizes{8, 16, 32, 64, 128};

  for (const std::string dataset : {"usaroad", "twitter", "uk2007"}) {
    Graph g = MakeDataset(dataset, scale);
    std::cout << "--- " << dataset << " ---\n";
    std::vector<std::string> header{"Algorithm"};
    for (PartitionId k : cluster_sizes) {
      header.push_back("k=" + std::to_string(k));
    }
    TablePrinter table(header);
    for (const std::string& algo : bench::OfflineAlgos()) {
      std::vector<std::string> row{algo};
      auto partitioner = CreatePartitioner(algo);
      for (PartitionId k : cluster_sizes) {
        PartitionConfig cfg;
        cfg.k = k;
        PartitionMetrics m = ComputeMetrics(g, partitioner->Run(g, cfg));
        row.push_back(FormatDouble(m.replication_factor, 2));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Fig. 2): edge-cut (LDG/FNL) lowest on the\n"
         "low-degree road network; vertex-cut (HDRF/DBH) and hybrid lowest\n"
         "on the skewed twitter/uk2007 graphs; replication grows with k\n"
         "for every algorithm; no algorithm wins everywhere.\n";
  sgp::bench::WriteBenchJson("fig2_replication", scale);
  return 0;
}
