// Figure 3: execution time of PageRank, WCC and SSSP on the Twitter graph
// for every algorithm over 8..128 partitions (cost-model simulated time).
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 3",
                     "Simulated execution time (s) of offline analytics on "
                     "Twitter vs cluster size",
                     scale);
  Graph g = MakeDataset("twitter", scale);
  VertexId source = 0;
  while (g.Degree(source) == 0) ++source;
  const std::vector<PartitionId> cluster_sizes{8, 16, 32, 64, 128};

  for (int which : {0, 1, 2}) {
    const char* name = which == 0 ? "PageRank" : which == 1 ? "WCC" : "SSSP";
    std::cout << "--- " << name << " ---\n";
    std::vector<std::string> header{"Algorithm"};
    for (PartitionId k : cluster_sizes) {
      header.push_back("k=" + std::to_string(k));
    }
    TablePrinter table(header);
    for (const std::string& algo : bench::OfflineAlgos()) {
      auto partitioner = CreatePartitioner(algo);
      std::vector<std::string> row{algo};
      for (PartitionId k : cluster_sizes) {
        PartitionConfig cfg;
        cfg.k = k;
        Partitioning p = partitioner->Run(g, cfg);
        AnalyticsEngine engine(g, p);
        EngineStats stats;
        switch (which) {
          case 0:
            stats = engine.Run(PageRankProgram(20));
            break;
          case 1:
            stats = engine.Run(WccProgram());
            break;
          default:
            stats = engine.Run(SsspProgram(source));
        }
        row.push_back(FormatDouble(stats.simulated_seconds, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Fig. 3): on the skewed Twitter graph the\n"
         "vertex-cut and hybrid algorithms (HDRF, HG, HCR) yield the\n"
         "fastest PageRank; edge-cut methods lag due to load imbalance\n"
         "despite decent cut sizes; differences shrink for WCC/SSSP; and\n"
         "scaling beyond ~64 partitions stops helping as communication\n"
         "dominates.\n";
  sgp::bench::WriteBenchJson("fig3_analytics_runtime", scale);
  return 0;
}
