// Figure 4: distribution of per-worker computation time on a 64-machine
// cluster during PageRank, for USA-Road, Twitter and UK2007-05. Rows give
// the min / p25 / median / p75 / max of the distribution (the paper's
// box plots).
#include <iostream>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 4",
                     "Per-worker computation time distribution (ms), "
                     "PageRank on 64 workers",
                     scale);
  for (const std::string dataset : {"usaroad", "twitter", "uk2007"}) {
    Graph g = MakeDataset(dataset, scale);
    std::cout << "--- " << dataset << " ---\n";
    TablePrinter table({"Algorithm", "min", "p25", "median", "p75", "max",
                        "max/mean"});
    for (const std::string& algo : bench::OfflineAlgos()) {
      PartitionConfig cfg;
      cfg.k = 64;
      Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
      AnalyticsEngine engine(g, p);
      EngineStats stats = engine.Run(PageRankProgram(20));
      std::vector<double> ms;
      ms.reserve(stats.compute_seconds_per_worker.size());
      for (double s : stats.compute_seconds_per_worker) {
        ms.push_back(s * 1e3);
      }
      DistributionSummary d = Summarize(std::move(ms));
      table.AddRow({algo, FormatDouble(d.min, 2), FormatDouble(d.p25, 2),
                    FormatDouble(d.median, 2), FormatDouble(d.p75, 2),
                    FormatDouble(d.max, 2),
                    FormatDouble(d.ImbalanceFactor(), 2)});
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Fig. 4): on the low-degree road network\n"
         "edge-cut methods are the most balanced (max/mean near 1); on the\n"
         "skewed twitter/uk2007 graphs edge-cut methods (ECR/LDG/FNL/MTS)\n"
         "show a long max tail because the edges of high-degree vertices\n"
         "pile onto single workers, while vertex-cut rows stay tight.\n";
  sgp::bench::WriteBenchJson("fig4_load_distribution", scale);
  return 0;
}
