// Figure 5: edge-cut ratio vs total network I/O during the 1-hop query
// workload on the LDBC SNB graph. Each point is one (algorithm, cluster
// size) configuration.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 5",
                     "Edge-cut ratio vs network I/O, 1-hop workload on "
                     "LDBC SNB",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  WorkloadConfig wcfg;
  Workload workload(g, wcfg);
  SimConfig sim;
  sim.clients = 64;
  sim.num_queries = 20000;

  TablePrinter table({"Algorithm", "k", "EdgeCutRatio", "NetworkMB",
                      "MB/cut"});
  for (const std::string& algo : bench::OnlineAlgos()) {
    for (PartitionId k : {4u, 8u, 16u, 32u}) {
      PartitionConfig cfg;
      cfg.k = k;
      Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
      PartitionMetrics m = ComputeMetrics(g, p);
      GraphDatabase db(g, p);
      SimResult r = SimulateClosedLoop(db, workload, sim);
      const double mb = static_cast<double>(r.total_network_bytes) / 1e6;
      table.AddRow({algo, std::to_string(k),
                    FormatDouble(m.edge_cut_ratio, 2), FormatDouble(mb, 2),
                    FormatDouble(m.edge_cut_ratio > 0
                                     ? mb / m.edge_cut_ratio
                                     : 0.0,
                                 1)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape (paper Fig. 5): network I/O is a linear function\n"
         "of the edge-cut ratio regardless of the algorithm — the MB/cut\n"
         "column is roughly constant across all rows.\n";
  sgp::bench::WriteBenchJson("fig5_online_comm", scale);
  return 0;
}
