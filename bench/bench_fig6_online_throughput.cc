// Figure 6: aggregate throughput of the 1-hop and 2-hop workloads on the
// LDBC SNB graph under medium load (12 clients/worker) and high load
// (24 clients/worker), over 4 to 32 workers.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 6",
                     "Aggregate throughput (queries/s) on LDBC SNB, medium "
                     "vs high load",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  for (QueryKind kind : {QueryKind::kOneHop, QueryKind::kTwoHop}) {
    WorkloadConfig wcfg;
    wcfg.kind = kind;
    Workload workload(g, wcfg);
    for (uint32_t clients_per_worker : {12u, 24u}) {
      std::cout << "--- " << QueryKindName(kind) << " / "
                << (clients_per_worker == 12 ? "medium" : "high")
                << " load ---\n";
      TablePrinter table({"Algorithm", "k=4", "k=8", "k=16", "k=32"});
      for (const std::string& algo : bench::OnlineAlgos()) {
        std::vector<std::string> row{algo};
        for (PartitionId k : {4u, 8u, 16u, 32u}) {
          PartitionConfig cfg;
          cfg.k = k;
          GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
          SimConfig sim;
          sim.clients = clients_per_worker * k;
          sim.num_queries = 15000;
          SimResult r = SimulateClosedLoop(db, workload, sim);
          row.push_back(FormatDouble(r.throughput_qps, 0));
        }
        table.AddRow(std::move(row));
      }
      table.Print(std::cout);
      std::cout << '\n';
    }
  }
  std::cout
      << "Expected shape (paper Fig. 6): the choice of algorithm matters\n"
         "far less than offline (within ~25-50%, vs up to 5x offline). On\n"
         "1-hop, MTS leads and FNL/LDG beat ECR thanks to fewer remote\n"
         "rounds per query. On 2-hop the ordering inverts toward hash:\n"
         "the huge fan-out touches every worker regardless of the cut, so\n"
         "only the load balance is left to differentiate — the same\n"
         "skew-sensitivity that Table 5 shows in the tail latencies.\n";
  sgp::bench::WriteBenchJson("fig6_online_throughput", scale);
  return 0;
}
