// Figures 7 and 15: distribution of the number of vertices read from each
// worker on a 16-machine cluster during the 1-hop workload — LDBC SNB
// (Figure 7) plus the three real-world graph analogues (Figure 15).
#include <iostream>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figures 7 and 15",
                     "Per-worker vertex reads, 1-hop workload, 16 workers",
                     scale);
  for (const std::string dataset : {"ldbc", "usaroad", "twitter", "uk2007"}) {
    Graph g = MakeDataset(dataset, scale);
    WorkloadConfig wcfg;
    Workload workload(g, wcfg);
    std::cout << "--- " << dataset << " ---\n";
    TablePrinter table({"Algorithm", "min", "p25", "median", "p75", "max",
                        "RSD"});
    for (const std::string& algo : bench::OnlineAlgos()) {
      PartitionConfig cfg;
      cfg.k = 16;
      GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
      SimConfig sim;
      sim.clients = 12 * 16;
      sim.num_queries = 15000;
      SimResult r = SimulateClosedLoop(db, workload, sim);
      DistributionSummary d = Summarize(r.reads_per_worker);
      table.AddRow({algo, FormatCount(static_cast<uint64_t>(d.min)),
                    FormatCount(static_cast<uint64_t>(d.p25)),
                    FormatCount(static_cast<uint64_t>(d.median)),
                    FormatCount(static_cast<uint64_t>(d.p75)),
                    FormatCount(static_cast<uint64_t>(d.max)),
                    FormatDouble(d.RelativeStdDev(), 2)});
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Expected shape (paper Figs. 7/15): unlike the analytics case,\n"
         "LDG and FNL show a wide read-count spread on every dataset —\n"
         "workload skew concentrates reads on the workers owning hot\n"
         "neighborhoods, which the structural objectives cannot see; hash\n"
         "(ECR) spreads hot vertices and stays the tightest.\n";
  sgp::bench::WriteBenchJson("fig7_15_access_distribution", scale);
  return 0;
}
