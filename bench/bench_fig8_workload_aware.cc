// Figure 8: throughput and load-distribution RSD of the 1-hop workload on
// LDBC SNB for ECR / LDG / FNL / MTS and the workload-aware weighted
// multilevel partitioning (MTS-W), on a 16-worker cluster.
#include <iostream>

#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "graphdb/workload_aware.h"
#include "partition/edgecut/query_aware.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 8",
                     "Workload-aware partitioning: throughput and load RSD, "
                     "1-hop workload, 16 workers",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  const PartitionId k = 16;
  WorkloadConfig wcfg;
  wcfg.skew = 1.2;  // pronounced request skew, the Figure 8 scenario
  Workload workload(g, wcfg);
  SimConfig sim;
  sim.clients = 12 * k;
  sim.num_queries = 20000;

  TablePrinter table({"Algorithm", "Throughput(q/s)", "Load RSD"});
  GraphDatabase* observed_db = nullptr;
  std::vector<std::pair<std::string, Partitioning>> configs;
  for (const std::string& algo : bench::OnlineAlgos()) {
    PartitionConfig cfg;
    cfg.k = k;
    configs.emplace_back(algo, CreatePartitioner(algo)->Run(g, cfg));
  }
  // MTS-W: observe accesses through the deployed MTS partitioning, then
  // re-partition the access-weighted graph (Section 6.3.3).
  GraphDatabase mts_db(g, configs.back().second);
  observed_db = &mts_db;
  configs.emplace_back(
      "MTS-W", WorkloadAwarePartition(g, *observed_db, workload, k,
                                      /*total_queries=*/100000, /*seed=*/7));
  // TAPER-S: the streaming counterpart — same access weights, single pass.
  QueryAwareOptions qa;
  qa.k = k;
  configs.emplace_back(
      "TAPER-S", QueryAwareStreamingPartition(
                     g, workload.AccessWeights(*observed_db, 100000), qa));

  for (const auto& [name, partitioning] : configs) {
    GraphDatabase db(g, partitioning);
    SimResult r = SimulateClosedLoop(db, workload, sim);
    table.AddRow({name, FormatDouble(r.throughput_qps, 0),
                  FormatDouble(Summarize(r.reads_per_worker).RelativeStdDev(),
                               3)});
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape (paper Fig. 8): MTS-W has by far the lowest load\n"
         "RSD and improves throughput over every workload-oblivious\n"
         "configuration (the paper reports 13%-35% over the others),\n"
         "showing that workload information — not better structural cuts —\n"
         "is what unlocks online performance. TAPER-S (the Appendix A\n"
         "streaming variant) recovers much of MTS-W's gain in one pass.\n";
  sgp::bench::WriteBenchJson("fig8_workload_aware", scale);
  return 0;
}
