// Figure 9: the decision tree, validated empirically — for every branch,
// run the candidate algorithms on the branch's scenario and check that
// the recommended one is on the Pareto frontier the paper puts it on.
#include <iostream>

#include "advisor/advisor.h"
#include "bench/bench_util.h"
#include "common/statistics.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Figure 9",
                     "Decision-tree branches, validated against measured "
                     "outcomes",
                     scale);

  // --- Analytics branches: simulated PageRank time on 32 workers ---
  std::cout << "--- Analytics: simulated PageRank time (ms), 32 workers ---\n";
  TablePrinter analytics({"Dataset (branch)", "Recommended", "Rec. time",
                          "Hash time", "Best other", "Best other time"});
  struct Branch {
    const char* dataset;
    DegreeDistribution degree;
  };
  for (const Branch& branch :
       {Branch{"usaroad", DegreeDistribution::kLowDegree},
        Branch{"twitter", DegreeDistribution::kHeavyTailed},
        Branch{"uk2007", DegreeDistribution::kPowerLaw}}) {
    Graph g = MakeDataset(branch.dataset, scale);
    AdvisorQuery q;
    q.workload = WorkloadClass::kOfflineAnalytics;
    q.degree = branch.degree;
    Recommendation rec = Recommend(q);
    double rec_time = 0;
    double hash_time = 0;
    std::string best_other;
    double best_other_time = 0;
    for (const std::string& algo : bench::OfflineAlgos()) {
      PartitionConfig cfg;
      cfg.k = 32;
      AnalyticsEngine engine(g, CreatePartitioner(algo)->Run(g, cfg));
      double t = engine.Run(PageRankProgram(20)).simulated_seconds * 1e3;
      if (algo == rec.partitioner) rec_time = t;
      if (algo == "ECR" || algo == "VCR") {
        if (hash_time == 0 || t < hash_time) hash_time = t;
      }
      if (algo != rec.partitioner &&
          (best_other.empty() || t < best_other_time)) {
        best_other = algo;
        best_other_time = t;
      }
    }
    analytics.AddRow({std::string(branch.dataset) + " (" +
                          std::string(DegreeDistributionName(branch.degree)) +
                          ")",
                      rec.partitioner, FormatDouble(rec_time, 1),
                      FormatDouble(hash_time, 1), best_other,
                      FormatDouble(best_other_time, 1)});
  }
  analytics.Print(std::cout);

  // --- Online branches: 1-hop on ldbc, 16 workers ---
  std::cout << "\n--- Online: 1-hop on ldbc, 16 workers, high load ---\n";
  Graph g = MakeDataset("ldbc", scale);
  Workload workload(g, {});
  TablePrinter online({"Branch", "Recommended", "Throughput", "p99(ms)"});
  for (bool latency_critical : {true, false}) {
    AdvisorQuery q;
    q.workload = WorkloadClass::kOnlineQueries;
    q.latency_critical = latency_critical;
    q.high_load = latency_critical;
    Recommendation rec = Recommend(q);
    PartitionConfig cfg;
    cfg.k = 16;
    GraphDatabase db(g, CreatePartitioner(rec.partitioner)->Run(g, cfg));
    SimConfig sim;
    sim.clients = (latency_critical ? 24 : 12) * 16;
    sim.num_queries = 15000;
    SimResult r = SimulateClosedLoop(db, workload, sim);
    online.AddRow({latency_critical ? "tail-latency SLO / high load"
                                    : "throughput / medium load",
                   rec.partitioner, FormatDouble(r.throughput_qps, 0),
                   FormatDouble(r.latency.p99 * 1e3, 1)});
  }
  online.Print(std::cout);
  std::cout
      << "\nExpected shape (Section 6.4): each branch's recommendation is\n"
         "at or near the measured optimum for its scenario, and no\n"
         "algorithm wins every branch (the reason a decision tree exists).\n"
         "Known deviation: on the heavy-tailed branch our HDRF beats the\n"
         "recommended hybrid — Ginger's vertex-dominant balance (Eq. 8\n"
         "weighs an edge at |V|/|E| of a vertex) admits edge-load skew\n"
         "that the paper's cluster absorbs via hybrid's lower sync cost;\n"
         "at simulator scale that advantage is smaller than the skew.\n";
  sgp::bench::WriteBenchJson("fig9_decision_tree", scale);
  return 0;
}
