// Scoring-path speed: ns/edge of every ScoreCore-backed streaming
// partitioner across the three scoring modes — the scalar reference
// scorer, the batched bit-packed path, and the SIMD kernel tier (AVX2 or
// the portable omp-simd twin, picked by runtime dispatch) — across
// partition counts. All modes are bit-identical (the fingerprint gauges
// below and tests/score_core_test.cc pin that), so the ratios are pure
// scoring cost: per-candidate Contains probes and branchy score loops vs
// word-at-a-time membership and fused score/argmax sweeps vs vectorized
// 4-lane score+argmax.
//
// Also keeps the Section 4.1 memory claim visible: streaming partitioners
// hold only an O(n + k) synopsis (state_KB column), a fraction of what the
// offline multilevel baseline needs for its coarsening hierarchy.
//
// Timing runs execute inside a scoped throwaway registry so repetition
// can never leak wall time into the deterministic JSON section; one
// canonical run per (algo, k, mode) cell then executes in the global
// registry, contributing the decision counters and the partition.score.*
// namespace plus a fingerprint gauge per cell. The deterministic section
// is golden-gated by scripts/check.sh.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "graph/datasets.h"
#include "partition/partitioner.h"
#include "partition/score_core.h"

namespace {

using namespace sgp;

// Fixed repetition count: best-of-N wall time, no adaptive iteration.
constexpr int kReps = 3;

uint64_t Fnv1a(uint64_t h, const std::vector<PartitionId>& v) {
  for (PartitionId p : v) {
    h ^= p;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Folded to 32 bits so the fingerprint is exactly representable in the
// gauge's double payload (and therefore byte-stable in the golden JSON).
uint64_t Fingerprint32(const Partitioning& p) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, p.vertex_to_partition);
  h = Fnv1a(h, p.edge_to_partition);
  return (h ^ (h >> 32)) & 0xFFFFFFFFULL;
}

struct Cell {
  double ns_per_edge = 0;
  uint64_t fingerprint = 0;
  uint64_t state_bytes = 0;
};

Cell RunCell(const Graph& g, const std::string& algo, PartitionId k,
             ScoreMode mode) {
  auto partitioner = CreatePartitioner(algo);
  PartitionConfig cfg;
  cfg.k = k;
  cfg.score_mode = mode;

  Cell cell;
  double best_nanos = 0;
  {
    // Throwaway registry: timing repetitions must not touch the global
    // (golden-gated) counters.
    MetricsRegistry scratch;
    ScopedMetricsRegistry scoped(&scratch);
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      Partitioning p = partitioner->Run(g, cfg);
      const double nanos = static_cast<double>(timer.ElapsedNanos());
      if (rep == 0 || nanos < best_nanos) best_nanos = nanos;
    }
  }
  // Canonical run: decision counters land in the global registry.
  Partitioning p = partitioner->Run(g, cfg);
  cell.ns_per_edge = best_nanos / static_cast<double>(g.num_edges());
  cell.fingerprint = Fingerprint32(p);
  cell.state_bytes = p.state_bytes;
  return cell;
}

}  // namespace

int main() {
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner(
      "Partitioner scoring speed",
      "ns/edge of the scalar reference scorer vs the batched bit-packed "
      "ScoreCore path vs the SIMD kernel tier (bit-identical assignments)",
      scale);
  std::cout << "simd dispatch: "
            << score::SimdTierName(score::ActiveSimdTier()) << " tier\n";
  const Graph g(MakeDataset("twitter", scale));

  const std::vector<std::string> algos = {"LDG",  "FNL",  "HDRF", "PGG",
                                          "HG",   "ESG",  "RLDG", "RFNL"};
  constexpr ScoreMode kModes[3] = {ScoreMode::kScalar, ScoreMode::kBatched,
                                   ScoreMode::kSimd};
  TablePrinter table({"Algo", "k", "scalar ns/edge", "batched ns/edge",
                      "simd ns/edge", "batch_x", "simd_x", "state_KB"});
  bool fingerprints_agree = true;
  for (const std::string& algo : algos) {
    for (PartitionId k : {8u, 32u, 128u}) {
      Cell cells[3];
      for (int m = 0; m < 3; ++m) {
        cells[m] = RunCell(g, algo, k, kModes[m]);
        const std::string prefix = "partitioner_speed." + algo + ".k" +
                                   std::to_string(k) + "." +
                                   std::string(ScoreModeName(kModes[m]));
        MetricsRegistry::Global()
            .GetGauge(prefix + ".fingerprint")
            ->Set(static_cast<double>(cells[m].fingerprint));
        MetricsRegistry::Global()
            .GetGauge(prefix + ".ns_per_edge.wall", MetricOptions::WallClock())
            ->Set(cells[m].ns_per_edge);
      }
      // batch_x: scalar → batched gain. simd_x: batched → simd gain.
      const double speedup = cells[1].ns_per_edge == 0
                                 ? 0
                                 : cells[0].ns_per_edge / cells[1].ns_per_edge;
      const double simd_speedup =
          cells[2].ns_per_edge == 0
              ? 0
              : cells[1].ns_per_edge / cells[2].ns_per_edge;
      const std::string cell_key =
          "partitioner_speed." + algo + ".k" + std::to_string(k);
      MetricsRegistry::Global()
          .GetGauge(cell_key + ".speedup.wall", MetricOptions::WallClock())
          ->Set(speedup);
      MetricsRegistry::Global()
          .GetGauge(cell_key + ".simd_speedup.wall", MetricOptions::WallClock())
          ->Set(simd_speedup);
      for (int m = 1; m < 3; ++m) {
        if (cells[m].fingerprint != cells[0].fingerprint) {
          fingerprints_agree = false;
          std::cerr << "FINGERPRINT MISMATCH: " << algo << " k=" << k
                    << " scalar=" << cells[0].fingerprint << " "
                    << ScoreModeName(kModes[m]) << "="
                    << cells[m].fingerprint << "\n";
        }
      }
      table.AddRow({algo, std::to_string(k),
                    FormatDouble(cells[0].ns_per_edge, 2),
                    FormatDouble(cells[1].ns_per_edge, 2),
                    FormatDouble(cells[2].ns_per_edge, 2),
                    FormatDouble(speedup, 2) + "x",
                    FormatDouble(simd_speedup, 2) + "x",
                    FormatDouble(
                        static_cast<double>(cells[1].state_bytes) / 1024.0,
                        1)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the batched path pulls ahead as k grows — at\n"
         "k=128 a candidate sweep reads two cache lines of membership words\n"
         "instead of doing 128 probe round-trips, so HDRF lands >=3x — and\n"
         "the simd tier stacks a further gain on top (target >=1.5x on HDRF\n"
         "k=128; a wall-clock gauge, not hard-asserted). All columns place\n"
         "every edge and vertex identically: each cell's fingerprint gauge\n"
         "pins the assignment bytes in the golden.\n";
  bench::WriteBenchJson("partitioner_speed", scale);
  return fingerprints_agree ? 0 : 1;
}
