// Section 4.1 claim: streaming partitioners (LDG/FENNEL) are roughly an
// order of magnitude faster than offline METIS and use a fraction of the
// memory (they keep only a synopsis). google-benchmark microbenchmark of
// partitioning wall time, plus a synopsis-size counter.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "graph/datasets.h"
#include "partition/partitioner.h"

namespace {

using namespace sgp;

const Graph& BenchGraph() {
  static const Graph* graph =
      new Graph(MakeDataset("twitter", bench::ScaleFromEnv()));
  return *graph;
}

void RunPartitioner(benchmark::State& state, const char* algo) {
  const Graph& g = BenchGraph();
  auto partitioner = CreatePartitioner(algo);
  PartitionConfig cfg;
  cfg.k = 32;
  uint64_t state_bytes = 0;
  for (auto _ : state) {
    Partitioning p = partitioner->Run(g, cfg);
    benchmark::DoNotOptimize(p.vertex_to_partition.data());
    state_bytes = p.state_bytes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_edges()));
  // Streaming state is an O(n + k) synopsis; the offline multilevel
  // baseline holds the whole coarsening hierarchy (Section 4.1.1's
  // "fraction of the memory" claim).
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["state_KB"] = static_cast<double>(state_bytes) / 1024.0;
}

void BM_Hash(benchmark::State& s) { RunPartitioner(s, "ECR"); }
void BM_Ldg(benchmark::State& s) { RunPartitioner(s, "LDG"); }
void BM_Fennel(benchmark::State& s) { RunPartitioner(s, "FNL"); }
void BM_Hdrf(benchmark::State& s) { RunPartitioner(s, "HDRF"); }
void BM_Dbh(benchmark::State& s) { RunPartitioner(s, "DBH"); }
void BM_Ginger(benchmark::State& s) { RunPartitioner(s, "HG"); }
void BM_Metis(benchmark::State& s) { RunPartitioner(s, "MTS"); }

BENCHMARK(BM_Hash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ldg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fennel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hdrf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dbh)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ginger)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Metis)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN(): identical run loop, plus a dump of the
// decision counters the partitioners accumulated across all iterations
// (tie-breaks, degree-table hits, phase timings) to BENCH_*.json.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  sgp::bench::WriteBenchJson("partitioner_speed", sgp::bench::ScaleFromEnv());
  return 0;
}
