// Tables 1 and 2: the algorithm taxonomy and the experiment dimensions,
// as implemented in this repository. Purely descriptive — the one "table"
// without measurements — printed so the bench suite covers every table in
// the paper and the roster is verifiable against the registry.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  std::cout << "=== Tables 1 and 2 ===\nAlgorithm taxonomy and experiment "
               "dimensions (descriptive; no measurements)\n\n";

  std::cout << "--- Table 1: streaming graph partitioning algorithms ---\n";
  TablePrinter t1({"Algorithm", "Cut", "Stream", "Cost metric",
                   "Parallelization", "Updates", "Method", "Code"});
  struct Row {
    const char* name;
    const char* cut;
    const char* stream;
    const char* metric;
    const char* parallel;
    const char* updates;
    const char* method;
    const char* code;
  };
  const Row rows[] = {
      {"LDG [39]", "edge-cut", "vertex", "edge-cut ratio",
       "inter-stream comm.", "no", "greedy", "LDG"},
      {"FENNEL [40]", "edge-cut", "vertex", "edge-cut ratio",
       "inter-stream comm.", "no", "greedy", "FNL"},
      {"Restreaming LDG [34]", "edge-cut", "vertex", "edge-cut ratio",
       "intra-stream comm.", "yes", "greedy", "RLDG"},
      {"Re-FENNEL [34]", "edge-cut", "vertex", "edge-cut ratio",
       "intra-stream comm.", "no", "greedy", "RFNL"},
      {"TAPER [19]", "edge-cut", "vertex", "inter-partition traversal",
       "yes", "yes", "greedy", "QueryAwareStreamingPartition()"},
      {"Leopard/IOGP [23][15]", "edge-cut", "edge", "edge-cut ratio",
       "no", "yes", "greedy+migration", "ESG / DynamicPartitioner"},
      {"Hash (ECR)", "edge-cut", "any", "edge-cut ratio",
       "embarrassingly parallel", "yes", "hash", "ECR"},
      {"DBH [43]", "vertex-cut", "edge", "replication factor", "yes",
       "yes", "hash", "DBH"},
      {"Grid [24]", "vertex-cut", "edge", "replication factor", "yes",
       "yes", "constrained", "GRID"},
      {"PowerGraph [20]", "vertex-cut", "edge", "replication factor",
       "inter-stream comm.", "yes", "greedy", "PGG"},
      {"HDRF [36]", "vertex-cut", "edge", "replication factor",
       "inter-stream comm.", "yes", "greedy", "HDRF"},
      {"Hash (VCR)", "vertex-cut", "edge", "replication factor",
       "embarrassingly parallel", "yes", "hash", "VCR"},
      {"Hybrid Random [13]", "hybrid", "edge", "replication factor",
       "yes", "no", "hash", "HCR"},
      {"Ginger [13]", "hybrid", "hybrid", "replication factor",
       "inter-stream comm.", "no", "greedy", "HG"},
      {"METIS [27]", "edge-cut", "offline", "edge-cut ratio", "no", "no",
       "multilevel", "MTS"},
  };
  for (const Row& r : rows) {
    t1.AddRow({r.name, r.cut, r.stream, r.metric, r.parallel, r.updates,
               r.method, r.code});
  }
  t1.Print(std::cout);

  // Verify the registry actually serves every measured code.
  std::cout << "\nregistry check:";
  for (const std::string& code : PartitionerNames()) {
    auto p = CreatePartitioner(code);
    std::cout << ' ' << p->name();
  }
  std::cout << " — all constructible\n";

  std::cout << "\n--- Table 2: experiment dimensions ---\n";
  TablePrinter t2({"Scenario", "System (here)", "Algorithms", "Workloads",
                   "Cluster sizes", "Datasets"});
  t2.AddRow({"Offline analytics", "GAS engine simulator (src/engine)",
             "VCR GRID DBH HDRF HCR HG ECR LDG FNL MTS",
             "PageRank, WCC, SSSP", "8-128",
             "twitter, uk2007, usaroad"});
  t2.AddRow({"Online queries", "graph DB simulator (src/graphdb)",
             "ECR LDG FNL MTS", "1-hop, 2-hop, shortest path", "4-32",
             "twitter, uk2007, usaroad, ldbc"});
  t2.Print(std::cout);
  sgp::bench::WriteBenchJson("table1_taxonomy", sgp::bench::ScaleFromEnv());
  return 0;
}
