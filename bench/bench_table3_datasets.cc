// Table 3: graph datasets used in the experiments. Prints the structural
// statistics of the synthetic analogues (see DESIGN.md §2 for the
// substitution rationale).
#include <iostream>

#include "advisor/advisor.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Table 3", "Graph datasets used in experiments",
                     scale);
  TablePrinter table({"Dataset", "Edges", "Vertices", "Avg.Degree",
                      "Max.Degree", "Type", "Directed"});
  for (const std::string& name : DatasetNames()) {
    Graph g = MakeDataset(name, scale);
    GraphStats s = ComputeStats(g);
    table.AddRow({name, FormatCount(s.num_edges),
                  FormatCount(s.num_vertices), FormatDouble(s.avg_degree, 1),
                  FormatCount(s.max_degree),
                  std::string(DegreeDistributionName(ClassifyGraph(g))),
                  s.directed ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper (Table 3): Twitter 1.46B/41M heavy-tailed, "
               "UK2007-05 3.73B/105M power-law,\nUS-Road 58.3M/23M "
               "low-degree, LDBC-SNB heavy-tailed. The synthetic analogues\n"
               "preserve the type contrasts at laptop scale.\n";
  sgp::bench::WriteBenchJson("table3_datasets", scale);
  return 0;
}
