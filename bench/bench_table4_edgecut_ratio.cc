// Table 4: edge-cut ratio of ECR / LDG / FNL / MTS on the LDBC SNB graph
// for 4 to 32 partitions.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Table 4", "Edge-cut ratio on the LDBC SNB graph",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  TablePrinter table({"Partitions", "ECR", "LDG", "FNL", "MTS"});
  for (PartitionId k : {4u, 8u, 16u, 32u}) {
    std::vector<std::string> row{std::to_string(k)};
    for (const std::string& algo : bench::OnlineAlgos()) {
      PartitionConfig cfg;
      cfg.k = k;
      PartitionMetrics m =
          ComputeMetrics(g, CreatePartitioner(algo)->Run(g, cfg));
      row.push_back(FormatDouble(m.edge_cut_ratio, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper (Table 4): ECR 0.75→0.97, LDG 0.74→0.84, FNL 0.47→0.66,\n"
         "MTS 0.31→0.51 as k grows 4→32. Expected shape: every column\n"
         "grows with k and MTS < FNL < LDG < ECR throughout (FNL\n"
         "approaches offline METIS quality, confirming [40]).\n";
  sgp::bench::WriteBenchJson("table4_edgecut_ratio", scale);
  return 0;
}
