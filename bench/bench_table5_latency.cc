// Table 5: mean and tail (p99) latencies of the 1-hop workload on a
// 16-worker cluster under medium and high load.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "graphdb/event_sim.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const uint32_t scale = bench::ScaleFromEnv();
  bench::PrintBanner("Table 5",
                     "Mean and p99 latency (ms), 1-hop workload, 16 workers",
                     scale);
  Graph g = MakeDataset("ldbc", scale);
  WorkloadConfig wcfg;
  Workload workload(g, wcfg);
  const PartitionId k = 16;

  TablePrinter table({"Algorithm", "Medium Mean", "Medium p99", "Medium p999",
                      "High Mean", "High p99", "High p999"});
  for (const std::string& algo : bench::OnlineAlgos()) {
    PartitionConfig cfg;
    cfg.k = k;
    GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
    std::vector<std::string> row{algo};
    for (uint32_t clients_per_worker : {12u, 24u}) {
      SimConfig sim;
      sim.clients = clients_per_worker * k;
      sim.num_queries = 20000;
      SimResult r = SimulateClosedLoop(db, workload, sim);
      row.push_back(FormatDouble(r.latency.mean * 1e3, 2));
      row.push_back(FormatDouble(r.latency.p99 * 1e3, 2));
      row.push_back(FormatDouble(r.latency.p999 * 1e3, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper (Table 5): ECR 30/64 → 46/95 ms, LDG 30/65 → 47/155,\n"
         "FNL 29/81 → 56/323, MTS 25/60 → 42/96. Expected shape: under\n"
         "high load the cut-minimizing streaming algorithms (FNL, LDG) pay\n"
         "a much larger p99 inflation than hash (up to ~3.5x for FNL),\n"
         "because their load imbalance creates queueing hotspots; hash\n"
         "remains the best latency/throughput trade-off.\n";
  sgp::bench::WriteBenchJson("table5_latency", scale);
  return 0;
}
