#ifndef SGP_BENCH_BENCH_UTIL_H_
#define SGP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "graph/graph.h"

namespace sgp::bench {

/// Graph scale (log2 vertices) used by the harnesses. Default 13 (8K
/// vertices) keeps every binary in the seconds range; export SGP_SCALE to
/// rerun at larger sizes (e.g. SGP_SCALE=16).
inline uint32_t ScaleFromEnv(uint32_t default_scale = 13) {
  const char* env = std::getenv("SGP_SCALE");
  if (env == nullptr) return default_scale;
  int v = std::atoi(env);
  if (v < 6 || v > 24) return default_scale;
  return static_cast<uint32_t>(v);
}

/// The paper's Table 2 algorithm roster for offline analytics.
inline std::vector<std::string> OfflineAlgos() {
  return {"VCR", "GRID", "DBH", "HDRF", "HCR",
          "HG",  "ECR",  "LDG", "FNL",  "MTS"};
}

/// The paper's Table 2 algorithm roster for online queries (JanusGraph
/// supports only the edge-cut model).
inline std::vector<std::string> OnlineAlgos() {
  return {"ECR", "LDG", "FNL", "MTS"};
}

/// Prints the standard experiment banner.
inline void PrintBanner(const char* experiment, const char* description,
                        uint32_t scale) {
  std::printf("=== %s ===\n%s\n(synthetic datasets at scale %u; export "
              "SGP_SCALE to change)\n\n",
              experiment, description, scale);
}

}  // namespace sgp::bench

#endif  // SGP_BENCH_BENCH_UTIL_H_
