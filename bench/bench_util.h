#ifndef SGP_BENCH_BENCH_UTIL_H_
#define SGP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/telemetry.h"
#include "graph/datasets.h"
#include "graph/graph.h"

namespace sgp::bench {

/// Graph scale (log2 vertices) used by the harnesses. Default 13 (8K
/// vertices) keeps every binary in the seconds range; export SGP_SCALE to
/// rerun at larger sizes (e.g. SGP_SCALE=16).
inline uint32_t ScaleFromEnv(uint32_t default_scale = 13) {
  const char* env = std::getenv("SGP_SCALE");
  if (env == nullptr) return default_scale;
  int v = std::atoi(env);
  if (v < 6 || v > 24) return default_scale;
  return static_cast<uint32_t>(v);
}

/// Grid worker threads for the bench harnesses: export SGP_THREADS to run
/// experiment-grid cells in parallel (0 = one per hardware thread). The
/// printed tables are identical for every value — only wall time changes.
inline uint32_t ThreadsFromEnv(uint32_t default_threads = 1) {
  const char* env = std::getenv("SGP_THREADS");
  if (env == nullptr) return default_threads;
  int v = std::atoi(env);
  if (v < 0 || v > 1024) return default_threads;
  return static_cast<uint32_t>(v);
}

/// The paper's Table 2 algorithm roster for offline analytics, extended
/// with the two-phase / clustering families (2PS, HEP, NE).
inline std::vector<std::string> OfflineAlgos() {
  return {"VCR", "GRID", "DBH", "HDRF", "HCR", "HG", "ECR",
          "LDG", "FNL",  "MTS", "2PS",  "HEP", "NE"};
}

/// The paper's Table 2 algorithm roster for online queries (JanusGraph
/// supports only the edge-cut model).
inline std::vector<std::string> OnlineAlgos() {
  return {"ECR", "LDG", "FNL", "MTS"};
}

/// Prints the standard experiment banner.
inline void PrintBanner(const char* experiment, const char* description,
                        uint32_t scale) {
  std::printf("=== %s ===\n%s\n(synthetic datasets at scale %u; export "
              "SGP_SCALE to change)\n\n",
              experiment, description, scale);
}

/// Dumps the global metrics registry to BENCH_<name>.json — the
/// machine-readable companion to the printed tables (schema
/// "sgp.bench.v1", see docs/OBSERVABILITY.md). Deterministic metrics and
/// wall-clock metrics land in separate arrays so the former can be diffed
/// byte-for-byte across runs with identical seeds. Files are written to
/// the working directory, or to $SGP_BENCH_JSON_DIR when set. Returns the
/// path written, or "" on I/O failure (reported on stderr, never fatal).
inline std::string WriteBenchJson(const char* bench_name, uint32_t scale) {
  const MetricsRegistry& reg = MetricsRegistry::Global();
  ExportOptions deterministic;
  deterministic.filter = MetricFilter::kDeterministicOnly;
  ExportOptions wall;
  wall.filter = MetricFilter::kWallTimeOnly;

  std::string json;
  json += "{\"schema\":\"sgp.bench.v1\",\"bench\":\"";
  json += bench_name;
  json += "\",\"scale\":";
  json += std::to_string(scale);
  json += ",\"metrics\":";
  json += SerializeMetricsArrayJson(reg.Snapshot(deterministic));
  json += ",\"wall_time_metrics\":";
  json += SerializeMetricsArrayJson(reg.Snapshot(wall));
  json += "}\n";

  std::string path = std::string("BENCH_") + bench_name + ".json";
  if (const char* dir = std::getenv("SGP_BENCH_JSON_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[metrics] cannot write %s\n", path.c_str());
    return "";
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("[metrics] wrote %s\n", path.c_str());
  return path;
}

/// Writes grid records to BENCH_<name>.csv next to the JSON dump, using
/// the same column schema the library's CSV exports use (grid.h is the
/// source of truth). Honors $SGP_BENCH_JSON_DIR like WriteBenchJson.
/// Returns the path written, or "" on I/O failure (reported on stderr,
/// never fatal).
template <typename Record>
std::string WriteBenchCsv(const char* bench_name,
                          const CsvSchema<Record>& schema,
                          const std::vector<Record>& records) {
  std::string path = std::string("BENCH_") + bench_name + ".csv";
  if (const char* dir = std::getenv("SGP_BENCH_JSON_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[metrics] cannot write %s\n", path.c_str());
    return "";
  }
  schema.Write(out, records);
  std::printf("[metrics] wrote %s\n", path.c_str());
  return path;
}

}  // namespace sgp::bench

#endif  // SGP_BENCH_BENCH_UTIL_H_
