// The paper's decision tree (Figure 9) as a tool: describe your workload
// on the command line — or point it at an edge list — and get the
// recommended partitioning algorithm with the paper's reasoning.
//
// Usage:
//   advisor analytics <low-degree|heavy-tailed|power-law>
//   advisor online <latency|throughput> [high-load]
//   advisor classify <edge-list-file> [directed]
// Every mode accepts --metrics-out <file> to dump the telemetry registry
// as JSON.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "common/telemetry.h"
#include "graph/io.h"
#include "partition/partitioner.h"

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
         "  advisor analytics <low-degree|heavy-tailed|power-law>\n"
         "  advisor online <latency|throughput> [high-load]\n"
         "  advisor classify <edge-list-file> [directed]\n"
         "  (any mode also takes --metrics-out <file>)\n";
  return 1;
}

void Print(const sgp::Recommendation& r) {
  std::cout << "recommended algorithm: " << r.partitioner << " ("
            << sgp::CutModelName(r.model) << ")\n\nwhy: " << r.rationale
            << "\n";
}

int RunAdvisor(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  // Extract --metrics-out <file> (valid in every mode) before dispatch.
  std::string metrics_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  const int status = RunAdvisor(static_cast<int>(args.size()), args.data());
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_out << "\n";
      return 1;
    }
    out << sgp::MetricsRegistry::Global().ExportJson();
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  return status;
}

namespace {

int RunAdvisor(int argc, char** argv) {
  using namespace sgp;
  if (argc < 3) return Usage();
  const std::string mode = argv[1];

  if (mode == "analytics") {
    AdvisorQuery q;
    q.workload = WorkloadClass::kOfflineAnalytics;
    const std::string degree = argv[2];
    if (degree == "low-degree") {
      q.degree = DegreeDistribution::kLowDegree;
    } else if (degree == "heavy-tailed") {
      q.degree = DegreeDistribution::kHeavyTailed;
    } else if (degree == "power-law") {
      q.degree = DegreeDistribution::kPowerLaw;
    } else {
      return Usage();
    }
    Print(Recommend(q));
    return 0;
  }
  if (mode == "online") {
    AdvisorQuery q;
    q.workload = WorkloadClass::kOnlineQueries;
    const std::string objective = argv[2];
    if (objective == "latency") {
      q.latency_critical = true;
    } else if (objective == "throughput") {
      q.latency_critical = false;
    } else {
      return Usage();
    }
    q.high_load = argc > 3 && std::strcmp(argv[3], "high-load") == 0;
    Print(Recommend(q));
    return 0;
  }
  if (mode == "classify") {
    const bool directed = argc > 3 && std::strcmp(argv[3], "directed") == 0;
    EdgeListReadResult read = TryReadEdgeListFile(argv[2], directed);
    if (!read.ok) {
      std::cerr << "error: " << read.error << "\n";
      return 1;
    }
    if (read.skipped_lines > 0) {
      std::cerr << "warning: skipped " << read.skipped_lines
                << " malformed line(s)\n";
    }
    Graph g = std::move(read.graph);
    GraphStats stats = ComputeStats(g);
    DegreeDistribution d = ClassifyGraph(g);
    std::cout << "graph: " << stats.num_vertices << " vertices, "
              << stats.num_edges << " edges, avg degree "
              << stats.avg_degree << ", max degree " << stats.max_degree
              << "\nclassified as: " << DegreeDistributionName(d) << "\n\n";
    AdvisorQuery q;
    q.workload = WorkloadClass::kOfflineAnalytics;
    q.degree = d;
    Print(Recommend(q));
    return 0;
  }
  return Usage();
}

}  // namespace
