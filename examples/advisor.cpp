// The paper's decision tree (Figure 9) as a tool: describe your workload
// on the command line — or point it at an edge list — and get the
// recommended partitioning algorithm with the paper's reasoning.
//
// Usage:
//   advisor analytics <low-degree|heavy-tailed|power-law>
//   advisor online <latency|throughput> [high-load]
//   advisor classify <edge-list-file> [directed]
// Every mode accepts --metrics-out <file> to dump the telemetry registry
// as JSON, and --trace-out <file> to dump it with the trace buffer
// included (ExportOptions::include_traces).
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "common/telemetry.h"
#include "flags.h"
#include "graph/io.h"
#include "partition/partitioner.h"

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
         "  advisor analytics <low-degree|heavy-tailed|power-law>\n"
         "  advisor online <latency|throughput> [high-load]\n"
         "  advisor classify <edge-list-file> [directed]\n"
         "  (any mode also takes --metrics-out <file> and --trace-out "
         "<file>)\n"
         "recommendations draw from these algorithms:";
  for (const std::string& name : sgp::PartitionerNames()) {
    std::cerr << ' ' << name;
  }
  std::cerr << "\n";
  return 1;
}

void Print(const sgp::Recommendation& r) {
  std::cout << "recommended algorithm: " << r.partitioner << " ("
            << sgp::CutModelName(r.model) << ")\n\nwhy: " << r.rationale
            << "\n";
}

int RunAdvisor(const std::vector<std::string>& args);

}  // namespace

int main(int argc, char** argv) {
  // Extract --metrics-out <file> (valid in every mode) before dispatch.
  sgp::FlagParser flags(argc, argv);
  const std::string metrics_out =
      flags.TakeString("--metrics-out").value_or("");
  const std::string trace_out = flags.TakeString("--trace-out").value_or("");
  const std::vector<std::string> args = flags.TakePositional();
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n";
    return 1;
  }
  const int status = RunAdvisor(args);
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_out << "\n";
      return 1;
    }
    out << sgp::MetricsRegistry::Global().ExportJson();
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "error: cannot write " << trace_out << "\n";
      return 1;
    }
    sgp::ExportOptions options;
    options.include_traces = true;
    out << sgp::MetricsRegistry::Global().ExportJson(options);
    std::cout << "metrics+traces written to " << trace_out << "\n";
  }
  return status;
}

namespace {

int RunAdvisor(const std::vector<std::string>& args) {
  using namespace sgp;
  if (args.size() < 2) return Usage();
  const std::string& mode = args[0];

  if (mode == "analytics") {
    AdvisorQuery q;
    q.workload = WorkloadClass::kOfflineAnalytics;
    const std::string& degree = args[1];
    if (degree == "low-degree") {
      q.degree = DegreeDistribution::kLowDegree;
    } else if (degree == "heavy-tailed") {
      q.degree = DegreeDistribution::kHeavyTailed;
    } else if (degree == "power-law") {
      q.degree = DegreeDistribution::kPowerLaw;
    } else {
      return Usage();
    }
    Print(Recommend(q));
    return 0;
  }
  if (mode == "online") {
    AdvisorQuery q;
    q.workload = WorkloadClass::kOnlineQueries;
    const std::string& objective = args[1];
    if (objective == "latency") {
      q.latency_critical = true;
    } else if (objective == "throughput") {
      q.latency_critical = false;
    } else {
      return Usage();
    }
    q.high_load = args.size() > 2 && args[2] == "high-load";
    Print(Recommend(q));
    return 0;
  }
  if (mode == "classify") {
    const bool directed = args.size() > 2 && args[2] == "directed";
    EdgeListReadResult read = TryReadEdgeListFile(args[1], directed);
    if (!read.ok) {
      std::cerr << "error: " << read.error << "\n";
      return 1;
    }
    if (read.skipped_lines > 0) {
      std::cerr << "warning: skipped " << read.skipped_lines
                << " malformed line(s)\n";
    }
    Graph g = std::move(read.graph);
    GraphStats stats = ComputeStats(g);
    DegreeDistribution d = ClassifyGraph(g);
    std::cout << "graph: " << stats.num_vertices << " vertices, "
              << stats.num_edges << " edges, avg degree "
              << stats.avg_degree << ", max degree " << stats.max_degree
              << "\nclassified as: " << DegreeDistributionName(d) << "\n\n";
    AdvisorQuery q;
    q.workload = WorkloadClass::kOfflineAnalytics;
    q.degree = d;
    Print(Recommend(q));
    return 0;
  }
  return Usage();
}

}  // namespace
