// Offline-analytics scenario (the paper's PowerLyra pipeline): partition a
// skewed social graph with several algorithms and compare what actually
// matters — network traffic, per-worker load balance and simulated
// end-to-end PageRank time on a 32-worker cluster.
#include <iostream>

#include "common/statistics.h"
#include "common/table_printer.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "graph/datasets.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;

  Graph graph = MakeDataset("twitter", /*scale=*/13);
  std::cout << "PageRank (20 iterations) on a heavy-tailed graph, 32 "
               "simulated workers\n\n";

  TablePrinter table({"Algorithm", "CutModel", "ReplFactor", "NetworkMB",
                      "LoadImbalance", "SimTime(ms)"});
  for (const char* algo : {"VCR", "DBH", "HDRF", "HCR", "HG", "ECR", "LDG",
                           "FNL", "MTS"}) {
    auto partitioner = CreatePartitioner(algo);
    PartitionConfig config;
    config.k = 32;
    Partitioning partitioning = partitioner->Run(graph, config);

    AnalyticsEngine engine(graph, partitioning);
    EngineStats stats = engine.Run(PageRankProgram(20));

    DistributionSummary load =
        Summarize(stats.compute_seconds_per_worker);
    table.AddRow({algo, std::string(CutModelName(partitioner->model())),
                  FormatDouble(
                      engine.distributed_graph().replication_factor(), 2),
                  FormatDouble(stats.total_network_bytes / 1e6, 2),
                  FormatDouble(load.ImbalanceFactor(), 2),
                  FormatDouble(stats.simulated_seconds * 1e3, 1)});
  }
  table.Print(std::cout);
  std::cout
      << "\nReading the table the way Section 6.2 does: the replication\n"
         "factor predicts network traffic, but simulated time only follows\n"
         "it when the load-imbalance column stays near 1 — on skewed\n"
         "graphs the vertex-cut rows (HDRF in particular) win even when an\n"
         "edge-cut row has a similar cut size.\n";
  return 0;
}
