// Evolving-graph scenario (the re-partitioning family of the paper's
// Section 2): bootstrap a cluster from a partial social network, then
// stream the remaining half of the friendship edges while the dynamic
// partitioner keeps the placement good, and compare against re-running a
// static partitioner from scratch.
#include <iostream>

#include "common/table_printer.h"
#include "graph/generators.h"
#include "partition/dynamic/dynamic_partitioner.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;
  const PartitionId k = 8;

  // The "final" graph, and a prefix graph holding its first half.
  SocialNetworkParams params;
  params.num_vertices = 1 << 13;
  Graph full = SocialNetwork(params, /*seed=*/77);
  const size_t half = full.edges().size() / 2;
  GraphBuilder prefix_builder(full.num_vertices(), /*directed=*/false);
  for (size_t i = 0; i < half; ++i) {
    prefix_builder.AddEdge(full.edges()[i].src, full.edges()[i].dst);
  }
  Graph prefix = std::move(prefix_builder).Finalize();

  std::cout << "day 0: " << prefix.num_edges() << " edges; day 30: "
            << full.num_edges() << " edges, same " << full.num_vertices()
            << " users\n\n";

  // Deploy: partition the day-0 graph with LDG.
  PartitionConfig cfg;
  cfg.k = k;
  Partitioning initial = CreatePartitioner("LDG")->Run(prefix, cfg);
  std::cout << "day-0 LDG cut: "
            << ComputeMetrics(prefix, initial).edge_cut_ratio << "\n\n";

  TablePrinter table({"Strategy", "Final cut", "Vertex imbalance",
                      "Vertices migrated"});

  // Strategy 1: keep the day-0 placement, hash newcomers (no maintenance).
  {
    Partitioning frozen = initial;
    frozen.vertex_to_partition.resize(full.num_vertices());
    DeriveEdgePlacement(full, &frozen);
    PartitionMetrics m = ComputeMetrics(full, frozen);
    table.AddRow({"freeze day-0 placement",
                  FormatDouble(m.edge_cut_ratio, 3),
                  FormatDouble(m.vertex_imbalance, 2), "0"});
  }

  // Strategy 2: Hermes/Leopard-style incremental maintenance.
  {
    DynamicOptions opts;
    opts.k = k;
    opts.migration_gain = 1.3;
    DynamicPartitioner dp(opts);
    dp.Bootstrap(prefix, initial);
    for (size_t i = half; i < full.edges().size(); ++i) {
      dp.AddEdge(full.edges()[i].src, full.edges()[i].dst);
    }
    PartitionMetrics m = ComputeMetrics(full, dp.Snapshot(full));
    table.AddRow({"dynamic refinement", FormatDouble(m.edge_cut_ratio, 3),
                  FormatDouble(m.vertex_imbalance, 2),
                  FormatCount(dp.total_migrations())});
  }

  // Strategy 3: re-partition everything from scratch (the expensive gold
  // standard a production system avoids).
  {
    Partitioning fresh = CreatePartitioner("LDG")->Run(full, cfg);
    PartitionMetrics m = ComputeMetrics(full, fresh);
    table.AddRow({"re-run LDG from scratch",
                  FormatDouble(m.edge_cut_ratio, 3),
                  FormatDouble(m.vertex_imbalance, 2), "all"});
  }

  table.Print(std::cout);
  std::cout
      << "\nThe dynamic refiner matches or beats a from-scratch streaming\n"
         "re-run (its migrations act like re-streaming: later moves see\n"
         "the accumulated neighborhood) while only touching the vertices\n"
         "it migrated — the point of the Hermes/Leopard line of work the\n"
         "paper surveys in Section 2.\n";
  return 0;
}
