// Exports the paper's full experiment grids as CSV for external analysis
// (plotting, regression tracking). A reduced grid by default; pass
// "--full" for the paper's complete parameter space (slower).
//
// Usage: export_results [--full] [--threads n] [output-prefix]
// Writes <prefix>_offline.csv and <prefix>_online.csv. --threads n runs
// grid cells on n worker threads (0 = one per hardware thread); the
// records — and therefore the CSV bytes — are identical for every n.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/grid.h"
#include "flags.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace sgp;
  FlagParser flags(argc, argv);
  const bool full = flags.TakeBool("--full");
  GridOptions options;
  options.threads =
      static_cast<uint32_t>(flags.TakeUint64("--threads").value_or(1));
  std::string prefix = "sgp_results";
  std::vector<std::string> positional = flags.TakePositional();
  if (!flags.ok() || positional.size() > 1) {
    std::cerr << (flags.ok() ? "usage: export_results [--full] [--threads n]"
                               " [output-prefix]"
                             : flags.error())
              << "\n";
    return 1;
  }
  if (!positional.empty()) prefix = positional[0];

  OfflineGridSpec offline;
  OnlineGridSpec online;
  if (!full) {
    offline.datasets = {"twitter", "ldbc"};
    offline.cluster_sizes = {8, 32};
    offline.workloads = {"pagerank"};
    online.cluster_sizes = {8, 16};
    online.clients_per_worker = {12};
    online.queries_per_run = 8000;
  }

  GridRunner runner(options);
  std::cout << "running offline grid ("
            << offline.datasets.size() *
                   (offline.algorithms.empty()
                        ? PartitionerNames().size()
                        : offline.algorithms.size()) *
                   offline.cluster_sizes.size() * offline.workloads.size()
            << " cells, " << runner.threads() << " thread(s))...\n";
  auto offline_records = runner.Run(offline);
  std::ofstream offline_out(prefix + "_offline.csv");
  WriteOfflineCsv(offline_records, offline_out);
  std::cout << "wrote " << offline_records.size() << " rows to " << prefix
            << "_offline.csv\n";

  std::cout << "running online grid...\n";
  auto online_records = runner.Run(online);
  std::ofstream online_out(prefix + "_online.csv");
  WriteOnlineCsv(online_records, online_out);
  std::cout << "wrote " << online_records.size() << " rows to " << prefix
            << "_online.csv\n";
  return 0;
}
