// Exports the paper's full experiment grids as CSV for external analysis
// (plotting, regression tracking). A reduced grid by default; pass
// "--full" for the paper's complete parameter space (slower).
//
// Usage: export_results [--full] [output-prefix]
// Writes <prefix>_offline.csv and <prefix>_online.csv.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "experiments/grid.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace sgp;
  bool full = false;
  std::string prefix = "sgp_results";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      prefix = argv[i];
    }
  }

  OfflineGridSpec offline;
  OnlineGridSpec online;
  if (!full) {
    offline.datasets = {"twitter", "ldbc"};
    offline.cluster_sizes = {8, 32};
    offline.workloads = {"pagerank"};
    online.cluster_sizes = {8, 16};
    online.clients_per_worker = {12};
    online.queries_per_run = 8000;
  }

  std::cout << "running offline grid ("
            << offline.datasets.size() *
                   (offline.algorithms.empty()
                        ? PartitionerNames().size()
                        : offline.algorithms.size()) *
                   offline.cluster_sizes.size() * offline.workloads.size()
            << " cells)...\n";
  auto offline_records = RunOfflineGrid(offline);
  std::ofstream offline_out(prefix + "_offline.csv");
  WriteOfflineCsv(offline_records, offline_out);
  std::cout << "wrote " << offline_records.size() << " rows to " << prefix
            << "_offline.csv\n";

  std::cout << "running online grid...\n";
  auto online_records = RunOnlineGrid(online);
  std::ofstream online_out(prefix + "_online.csv");
  WriteOnlineCsv(online_records, online_out);
  std::cout << "wrote " << online_records.size() << " rows to " << prefix
            << "_online.csv\n";
  return 0;
}
