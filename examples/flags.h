// Minimal command-line flag parsing shared by the example tools, replacing
// the per-tool strcmp loops. Usage pattern:
//
//   FlagParser flags(argc, argv);
//   bool directed = flags.TakeBool("--directed");
//   uint64_t seed = flags.TakeUint64("--seed").value_or(42);
//   std::vector<std::string> positional = flags.TakePositional();
//   if (!flags.ok()) { std::cerr << "error: " << flags.error() << "\n"; ... }
//
// Each Take* removes the flag (and its value) from the argument list;
// TakePositional returns what is left and reports any unconsumed "--"
// argument as an unknown option. Errors are sticky: the first one wins and
// ok() stays false.
#ifndef SGP_EXAMPLES_FLAGS_H_
#define SGP_EXAMPLES_FLAGS_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sgp {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// True if "--name" is present (and consumes it).
  bool TakeBool(std::string_view name) {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        args_.erase(args_.begin() + i);
        return true;
      }
    }
    return false;
  }

  /// The value following "--name", if present (consumes both).
  std::optional<std::string> TakeString(std::string_view name) {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] != name) continue;
      if (i + 1 >= args_.size()) {
        Fail(std::string("option ") + std::string(name) +
             " requires a value");
        args_.erase(args_.begin() + i);
        return std::nullopt;
      }
      std::string value = args_[i + 1];
      args_.erase(args_.begin() + i, args_.begin() + i + 2);
      return value;
    }
    return std::nullopt;
  }

  std::optional<uint64_t> TakeUint64(std::string_view name) {
    std::optional<std::string> value = TakeString(name);
    if (!value) return std::nullopt;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
    if (end == value->c_str() || *end != '\0') {
      Fail(std::string("option ") + std::string(name) +
           " expects an unsigned integer, got '" + *value + "'");
      return std::nullopt;
    }
    return static_cast<uint64_t>(parsed);
  }

  std::optional<double> TakeDouble(std::string_view name) {
    std::optional<std::string> value = TakeString(name);
    if (!value) return std::nullopt;
    char* end = nullptr;
    const double parsed = std::strtod(value->c_str(), &end);
    if (end == value->c_str() || *end != '\0') {
      Fail(std::string("option ") + std::string(name) +
           " expects a number, got '" + *value + "'");
      return std::nullopt;
    }
    return parsed;
  }

  /// Remaining arguments, after every Take* call. Anything still starting
  /// with "--" is an unknown option and fails the parse.
  std::vector<std::string> TakePositional() {
    std::vector<std::string> positional;
    for (const std::string& arg : args_) {
      if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
        Fail("unknown option: " + arg);
      } else {
        positional.push_back(arg);
      }
    }
    args_.clear();
    return positional;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void Fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  std::vector<std::string> args_;
  std::string error_;
};

}  // namespace sgp

#endif  // SGP_EXAMPLES_FLAGS_H_
