// Dataset generator CLI: writes the synthetic analogues (or any custom
// generator configuration) as edge-list files, ready for partition_tool
// or external systems.
//
// Usage:
//   graphgen dataset <twitter|uk2007|usaroad|ldbc> <scale> <out.el>
//   graphgen er <n> <m> <seed> <out.el>
//   graphgen ba <n> <deg> <seed> <out.el>
//   graphgen ws <n> <nbrs> <rewire_p> <seed> <out.el>
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace {

int Usage() {
  std::cerr << "usage:\n"
               "  graphgen dataset <twitter|uk2007|usaroad|ldbc> <scale> "
               "<out.el>\n"
               "  graphgen er <n> <m> <seed> <out.el>\n"
               "  graphgen ba <n> <deg> <seed> <out.el>\n"
               "  graphgen ws <n> <nbrs> <rewire_p> <seed> <out.el>\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp;
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  Graph g;
  std::string out;
  if (mode == "dataset" && argc == 5) {
    g = MakeDataset(argv[2], static_cast<uint32_t>(std::stoul(argv[3])));
    out = argv[4];
  } else if (mode == "er" && argc == 6) {
    g = ErdosRenyi(static_cast<VertexId>(std::stoul(argv[2])),
                   std::stoull(argv[3]), std::stoull(argv[4]));
    out = argv[5];
  } else if (mode == "ba" && argc == 6) {
    g = BarabasiAlbert(static_cast<VertexId>(std::stoul(argv[2])),
                       static_cast<uint32_t>(std::stoul(argv[3])),
                       std::stoull(argv[4]));
    out = argv[5];
  } else if (mode == "ws" && argc == 7) {
    g = WattsStrogatz(static_cast<VertexId>(std::stoul(argv[2])),
                      static_cast<uint32_t>(std::stoul(argv[3])),
                      std::stod(argv[4]), std::stoull(argv[5]));
    out = argv[6];
  } else {
    return Usage();
  }
  WriteEdgeListFile(g, out);
  GraphStats s = ComputeStats(g);
  std::cout << "wrote " << out << ": " << s.num_vertices << " vertices, "
            << s.num_edges << " edges, avg degree " << s.avg_degree
            << ", max degree " << s.max_degree << "\n";
  return 0;
}
