// Online graph-database scenario (the paper's JanusGraph pipeline): serve
// a skewed 1-hop friendship-query workload from a 16-worker cluster and
// compare hash partitioning, FENNEL, offline METIS, and workload-aware
// re-partitioning.
#include <iostream>

#include "common/statistics.h"
#include "common/table_printer.h"
#include "graph/generators.h"
#include "graphdb/event_sim.h"
#include "graphdb/workload_aware.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;

  SocialNetworkParams params;
  params.num_vertices = 1 << 13;
  params.avg_degree = 24;
  Graph graph = SocialNetwork(params, /*seed=*/0x50c1a1);

  const PartitionId k = 16;
  WorkloadConfig wcfg;
  wcfg.kind = QueryKind::kOneHop;
  wcfg.skew = 1.0;  // a skewed request stream, as real services see
  Workload workload(graph, wcfg);

  SimConfig sim;
  sim.clients = 12 * k;
  sim.num_queries = 20000;

  std::cout << "1-hop neighborhood queries, " << sim.clients
            << " concurrent clients, " << k << " workers\n\n";
  TablePrinter table({"Partitioning", "Throughput(q/s)", "Mean(ms)",
                      "p99(ms)", "Read RSD"});

  auto evaluate = [&](const std::string& name, const Partitioning& p) {
    GraphDatabase db(graph, p);
    SimResult r = SimulateClosedLoop(db, workload, sim);
    table.AddRow({name, FormatDouble(r.throughput_qps, 0),
                  FormatDouble(r.latency.mean * 1e3, 2),
                  FormatDouble(r.latency.p99 * 1e3, 2),
                  FormatDouble(
                      Summarize(r.reads_per_worker).RelativeStdDev(), 3)});
  };

  PartitionConfig cfg;
  cfg.k = k;
  for (const char* algo : {"ECR", "FNL", "MTS"}) {
    evaluate(algo, CreatePartitioner(algo)->Run(graph, cfg));
  }

  // Workload-aware loop: observe access counts through the deployed hash
  // partitioning, then re-partition the access-weighted graph.
  GraphDatabase deployed(graph, CreatePartitioner("ECR")->Run(graph, cfg));
  evaluate("MTS-W", WorkloadAwarePartition(graph, deployed, workload, k,
                                           /*total_queries=*/100000,
                                           /*seed=*/9));

  table.Print(std::cout);
  std::cout
      << "\nTakeaways (Section 6.3): structural cut minimization helps\n"
         "throughput but inflates tail latency under skew; hash stays\n"
         "resilient; only workload-aware partitioning improves both sides\n"
         "at once.\n";
  return 0;
}
