// Deterministic partitioning fingerprints: one FNV-1a line per
// (algorithm, dataset, k, seed, order, capacity profile) cell, plus the
// parallel-ingest driver at several worker counts. Two builds of this
// repository must print byte-identical output — scripts/check.sh diffs a
// portable build against a -march=native one (and the PR workflow diffs
// refactors against the previous HEAD) to prove every scoring change is
// behavior-preserving down to the last tie-break. --score-mode switches
// every run onto the scalar / batched / simd kernels; the printed grid
// must be byte-identical across all three (check.sh diffs them too).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "flags.h"
#include "graph/datasets.h"
#include "partition/edgecut/parallel_streaming.h"
#include "partition/partitioner.h"
#include "partition/partitioning.h"

namespace {

using namespace sgp;

uint64_t Fnv1a(uint64_t h, const std::vector<PartitionId>& v) {
  for (PartitionId p : v) {
    h ^= static_cast<uint64_t>(p) + 1;  // +1 keeps kInvalidPartition distinct
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fingerprint(const Partitioning& p) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, p.vertex_to_partition);
  h = Fnv1a(h, p.edge_to_partition);
  return h;
}

const char* OrderName(StreamOrder order) {
  switch (order) {
    case StreamOrder::kNatural: return "natural";
    case StreamOrder::kRandom: return "random";
    case StreamOrder::kBfs: return "bfs";
    case StreamOrder::kDfs: return "dfs";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.TakeUint64("--scale").value_or(10));
  ScoreMode score_mode = ScoreMode::kBatched;
  if (auto mode = flags.TakeString("--score-mode")) {
    if (!ParseScoreMode(*mode, &score_mode)) {
      std::fprintf(stderr,
                   "error: unknown score mode '%s'; valid values: scalar, "
                   "batched, simd\n",
                   mode->c_str());
      return 1;
    }
  }
  flags.TakePositional();
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n", flags.error().c_str());
    return 1;
  }

  const std::vector<std::string> datasets = {"twitter", "usaroad"};
  const std::vector<PartitionId> ks = {3, 8, 32, 128};
  const std::vector<uint64_t> seeds = {1, 42};
  const std::vector<StreamOrder> orders = {StreamOrder::kRandom,
                                           StreamOrder::kBfs};

  for (const std::string& dataset : datasets) {
    const Graph g = MakeDataset(dataset, scale);
    for (const std::string& algo : PartitionerNames()) {
      for (PartitionId k : ks) {
        for (uint64_t seed : seeds) {
          for (StreamOrder order : orders) {
            for (bool hetero : {false, true}) {
              PartitionConfig cfg;
              cfg.k = k;
              cfg.seed = seed;
              cfg.order = order;
              cfg.score_mode = score_mode;
              if (hetero) {
                cfg.capacity_weights.resize(k);
                for (PartitionId i = 0; i < k; ++i) {
                  cfg.capacity_weights[i] = 1.0 + 0.5 * (i % 4);
                }
              }
              Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
              std::printf("%s %s k=%u seed=%" PRIu64 " %s %s %016" PRIx64
                          "\n",
                          dataset.c_str(), algo.c_str(), k, seed,
                          OrderName(order), hetero ? "hetero" : "plain",
                          Fingerprint(p));
            }
          }
        }
      }
    }
    // The parallel drivers share the sharded scoring path; one worker is
    // the sequential algorithm, three exercises the stale delta views.
    for (ParallelAlgo algo : {ParallelAlgo::kLdg, ParallelAlgo::kFennel,
                              ParallelAlgo::kHdrf, ParallelAlgo::kPgg}) {
      for (uint32_t workers : {1u, 3u}) {
        for (PartitionId k : {8u, 128u}) {
          PartitionConfig cfg;
          cfg.k = k;
          cfg.seed = 42;
          cfg.score_mode = score_mode;
          ParallelStreamOptions options;
          options.num_streams = workers;
          options.sync_interval = 64;
          ParallelStreamResult r =
              RunParallelStreaming(g, cfg, options, algo);
          std::printf("%s PAR-%s w=%u k=%u %016" PRIx64 "\n", dataset.c_str(),
                      std::string(ParallelAlgoName(algo)).c_str(), workers, k,
                      Fingerprint(r.partitioning));
        }
      }
    }
  }
  return 0;
}
