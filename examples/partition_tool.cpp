// Command-line partitioner: read an edge list, run any algorithm from the
// suite, report quality metrics, and optionally write the vertex→partition
// assignment — the shape of tool a downstream system would call during
// graph loading.
//
// Usage:
//   partition_tool <edge-list> <algorithm> <k> [options]        (in-memory)
//   partition_tool --input-edgelist <file> <algorithm> <k> ...  (streaming)
//
// The second form pulls the edge list chunk by chunk through
// EdgeListFileSource into Partitioner::RunOnSource. Any registered
// algorithm works: streaming-capable codes (VCR, DBH, HDRF, 2PS, HEP)
// keep only the O(n + k) synopsis in memory — multi-pass codes rewind the
// file between passes — while needs_graph codes fall back to the adapter
// that materializes the graph (the tool warns when that happens).
//
// Options:
//   --directed            treat the input as a directed graph (in-memory)
//   --order <o>           stream order: natural|random|bfs|dfs (in-memory)
//   --chunk-size <n>      elements per ingest chunk (both modes)
//   --seed <s>            RNG/hash seed
//   --slack <b>           balance slack β (default 1.05)
//   --score-mode <m>      scoring kernels: scalar|batched|simd (all modes
//                         produce bit-identical partitionings; simd prints
//                         the dispatched ISA tier at startup)
//   --output <file>       write "vertex partition" lines
//   --metrics-out <file>  dump the telemetry registry as JSON
//   --trace-out <file>    dump the registry with traces included
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/telemetry.h"
#include "flags.h"
#include "graph/io.h"
#include "partition/metrics.h"
#include "partition/partition_io.h"
#include "partition/partitioner.h"
#include "partition/score_core.h"
#include "partition/stream_ingest.h"
#include "stream/source.h"

namespace {

void PrintUsage() {
  std::cerr
      << "usage: partition_tool <edge-list> <algorithm> <k> [options]\n"
         "       partition_tool --input-edgelist <file> <algorithm> <k> "
         "[options]\n"
         "options: [--directed] [--order o] [--chunk-size n] [--seed s]\n"
         "         [--slack b] [--score-mode scalar|batched|simd]\n"
         "         [--output file] [--metrics-out file] [--trace-out file]\n"
         "algorithms (from the registry):\n"
      << sgp::PartitionerHelpText();
}

void PrintUnknownAlgorithm(const std::string& algo) {
  std::cerr << "error: unknown algorithm '" << algo
            << "'; valid names by cut model:\n"
            << sgp::PartitionerHelpText();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgp;
  PartitionConfig config;

  FlagParser flags(argc, argv);
  // --input-edgelist: partition without a Graph.
  const std::string stream_path =
      flags.TakeString("--input-edgelist").value_or("");
  const bool directed = flags.TakeBool("--directed");
  if (auto order = flags.TakeString("--order")) {
    config.order = ParseStreamOrder(*order);
  }
  const uint64_t chunk_size = flags.TakeUint64("--chunk-size").value_or(0);
  config.seed = flags.TakeUint64("--seed").value_or(config.seed);
  config.balance_slack =
      flags.TakeDouble("--slack").value_or(config.balance_slack);
  if (auto mode = flags.TakeString("--score-mode")) {
    if (!ParseScoreMode(*mode, &config.score_mode)) {
      std::cerr << "error: unknown score mode '" << *mode
                << "'; valid values: scalar, batched, simd\n";
      return 1;
    }
  }
  const std::string output = flags.TakeString("--output").value_or("");
  const std::string metrics_out =
      flags.TakeString("--metrics-out").value_or("");
  const std::string trace_out = flags.TakeString("--trace-out").value_or("");
  std::vector<std::string> positional = flags.TakePositional();
  if (!flags.ok()) {
    std::cerr << flags.error() << "\n";
    return 1;
  }

  // Streaming mode drops the edge-list positional: the file is the flag's
  // argument, so only <algorithm> <k> remain.
  const size_t expected = stream_path.empty() ? 3 : 2;
  if (positional.size() != expected) {
    PrintUsage();
    return 1;
  }
  const std::string algo = positional[expected - 2];
  config.k = static_cast<PartitionId>(std::stoul(positional[expected - 1]));
  config.ingest_chunk_size = chunk_size;

  std::cout << "score mode: " << ScoreModeName(config.score_mode);
  if (config.score_mode == ScoreMode::kSimd) {
    std::cout << " (dispatched ISA tier: "
              << score::SimdTierName(score::ActiveSimdTier()) << ")";
  }
  std::cout << "\n";

  Partitioning partitioning;
  if (!stream_path.empty()) {
    const PartitionerInfo* info = FindPartitionerInfo(algo);
    if (info == nullptr) {
      PrintUnknownAlgorithm(algo);
      return 1;
    }
    auto partitioner = info->factory();
    if (info->needs_graph) {
      std::cerr << "warning: " << info->name
                << " materializes the whole graph in memory (no O(n + k) "
                   "streaming path)\n";
    }
    EdgeListFileSource::Options opts;
    if (chunk_size > 0) opts.chunk_size = chunk_size;
    EdgeListFileSource source(stream_path, opts);
    StreamRunResult r = partitioner->RunOnSource(source, config);
    if (!r.ok) {
      std::cerr << "error: " << r.error << "\n";
      return 1;
    }
    if (source.skipped_lines() > 0) {
      std::cerr << "warning: skipped " << source.skipped_lines()
                << " malformed line(s)\n";
    }
    partitioning = std::move(r.partitioning);
    std::cout << "streamed " << r.num_edges << " edges over "
              << r.num_vertices << " vertices (chunk size "
              << opts.chunk_size << ", " << info->passes << " pass"
              << (info->passes > 1 ? "es" : "") << ")\n";

    // Without a materialized graph only stream-side quality measures are
    // available: edge balance over the k loads plus the synopsis size.
    std::vector<uint64_t> edge_loads(config.k, 0);
    for (PartitionId p : partitioning.edge_to_partition) {
      if (p < config.k) ++edge_loads[p];
    }
    const uint64_t max_load =
        *std::max_element(edge_loads.begin(), edge_loads.end());
    const double avg_load =
        static_cast<double>(r.num_edges) / static_cast<double>(config.k);
    std::cout << "algorithm:          " << info->name << " ("
              << CutModelName(info->model) << ", streamed)\n"
              << "partitions:         " << config.k << "\n"
              << "partitioning time:  "
              << partitioning.partitioning_seconds * 1e3 << " ms\n"
              << "edge imbalance:     "
              << (avg_load > 0 ? static_cast<double>(max_load) / avg_load
                               : 1.0)
              << "\n"
              << "synopsis bytes:     " << partitioning.state_bytes << "\n";
  } else {
    const std::string& path = positional[0];
    EdgeListReadResult read = TryReadEdgeListFile(path, directed);
    if (!read.ok) {
      std::cerr << "error: " << read.error << "\n";
      return 1;
    }
    if (read.skipped_lines > 0) {
      std::cerr << "warning: skipped " << read.skipped_lines
                << " malformed line(s)\n";
    }
    Graph graph = std::move(read.graph);
    GraphStats stats = ComputeStats(graph);
    std::cout << "loaded " << stats.num_vertices << " vertices, "
              << stats.num_edges << " edges\n";

    auto partitioner = TryCreatePartitioner(algo);
    if (partitioner == nullptr) {
      PrintUnknownAlgorithm(algo);
      return 1;
    }
    partitioning = partitioner->Run(graph, config);
    ValidatePartitioning(graph, partitioning);
    PartitionMetrics metrics = ComputeMetrics(graph, partitioning);

    std::cout << "algorithm:          " << partitioner->name() << " ("
              << CutModelName(partitioner->model()) << ")\n"
              << "partitions:         " << config.k << "\n"
              << "partitioning time:  "
              << partitioning.partitioning_seconds * 1e3 << " ms\n"
              << "edge-cut ratio:     " << metrics.edge_cut_ratio << "\n"
              << "replication factor: " << metrics.replication_factor << "\n"
              << "vertex imbalance:   " << metrics.vertex_imbalance << "\n"
              << "edge imbalance:     " << metrics.edge_imbalance << "\n";
  }

  if (!output.empty()) {
    WritePartitioningFile(partitioning, output);
    std::cout << "partitioning written to " << output
              << " (reload with ReadPartitioningFile)\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_out << "\n";
      return 1;
    }
    out << MetricsRegistry::Global().ExportJson();
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "error: cannot write " << trace_out << "\n";
      return 1;
    }
    ExportOptions options;
    options.include_traces = true;
    out << MetricsRegistry::Global().ExportJson(options);
    std::cout << "metrics+traces written to " << trace_out << "\n";
  }
  return 0;
}
