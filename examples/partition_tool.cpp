// Command-line partitioner: read an edge list, run any algorithm from the
// suite, report quality metrics, and optionally write the vertex→partition
// assignment — the shape of tool a downstream system would call during
// graph loading.
//
// Usage:
//   partition_tool <edge-list> <algorithm> <k> [options]
// Options:
//   --directed            treat the input as a directed graph
//   --order <o>           stream order: natural|random|bfs|dfs
//   --seed <s>            RNG/hash seed
//   --slack <b>           balance slack β (default 1.05)
//   --output <file>       write "vertex partition" lines
//   --metrics-out <file>  dump the telemetry registry as JSON
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "common/telemetry.h"
#include "graph/io.h"
#include "partition/metrics.h"
#include "partition/partition_io.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace sgp;
  if (argc < 4) {
    std::cerr << "usage: partition_tool <edge-list> <algorithm> <k> "
                 "[--directed] [--order o] [--seed s] [--slack b] "
                 "[--output file] [--metrics-out file]\n";
    return 1;
  }
  const std::string path = argv[1];
  const std::string algo = argv[2];
  PartitionConfig config;
  config.k = static_cast<PartitionId>(std::stoul(argv[3]));

  bool directed = false;
  std::string output;
  std::string metrics_out;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--directed") == 0) {
      directed = true;
    } else if (std::strcmp(argv[i], "--order") == 0 && i + 1 < argc) {
      config.order = ParseStreamOrder(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--slack") == 0 && i + 1 < argc) {
      config.balance_slack = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 1;
    }
  }

  EdgeListReadResult read = TryReadEdgeListFile(path, directed);
  if (!read.ok) {
    std::cerr << "error: " << read.error << "\n";
    return 1;
  }
  if (read.skipped_lines > 0) {
    std::cerr << "warning: skipped " << read.skipped_lines
              << " malformed line(s)\n";
  }
  Graph graph = std::move(read.graph);
  GraphStats stats = ComputeStats(graph);
  std::cout << "loaded " << stats.num_vertices << " vertices, "
            << stats.num_edges << " edges\n";

  auto partitioner = CreatePartitioner(algo);
  Partitioning partitioning = partitioner->Run(graph, config);
  ValidatePartitioning(graph, partitioning);
  PartitionMetrics metrics = ComputeMetrics(graph, partitioning);

  std::cout << "algorithm:          " << partitioner->name() << " ("
            << CutModelName(partitioner->model()) << ")\n"
            << "partitions:         " << config.k << "\n"
            << "partitioning time:  "
            << partitioning.partitioning_seconds * 1e3 << " ms\n"
            << "edge-cut ratio:     " << metrics.edge_cut_ratio << "\n"
            << "replication factor: " << metrics.replication_factor << "\n"
            << "vertex imbalance:   " << metrics.vertex_imbalance << "\n"
            << "edge imbalance:     " << metrics.edge_imbalance << "\n";

  if (!output.empty()) {
    WritePartitioningFile(partitioning, output);
    std::cout << "partitioning written to " << output
              << " (reload with ReadPartitioningFile)\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_out << "\n";
      return 1;
    }
    out << MetricsRegistry::Global().ExportJson();
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  return 0;
}
