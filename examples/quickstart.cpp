// Quickstart: generate a graph, partition it with a streaming algorithm,
// and inspect the structural quality metrics — the 60-second tour of the
// library's core API.
#include <iostream>

#include "graph/generators.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

int main() {
  using namespace sgp;

  // 1. Get a graph. Generators are deterministic per seed; ReadEdgeListFile
  //    in graph/io.h loads real edge lists instead.
  SocialNetworkParams params;
  params.num_vertices = 10000;
  params.avg_degree = 16;
  Graph graph = SocialNetwork(params, /*seed=*/42);
  GraphStats stats = ComputeStats(graph);
  std::cout << "graph: " << stats.num_vertices << " vertices, "
            << stats.num_edges << " edges, avg degree " << stats.avg_degree
            << "\n\n";

  // 2. Pick an algorithm by its paper code and partition into k parts.
  //    One pass over the stream, O(n + k) state — that is the whole point
  //    of streaming graph partitioning.
  PartitionConfig config;
  config.k = 8;
  config.seed = 1;

  for (const char* algo : {"ECR", "LDG", "FNL", "HDRF", "MTS"}) {
    auto partitioner = CreatePartitioner(algo);
    Partitioning partitioning = partitioner->Run(graph, config);

    // 3. Evaluate it.
    PartitionMetrics metrics = ComputeMetrics(graph, partitioning);
    std::cout << algo << " (" << CutModelName(partitioner->model()) << ")\n"
              << "  edge-cut ratio:     " << metrics.edge_cut_ratio << "\n"
              << "  replication factor: " << metrics.replication_factor
              << "\n"
              << "  vertex imbalance:   " << metrics.vertex_imbalance << "\n"
              << "  partitioning time:  "
              << partitioning.partitioning_seconds * 1e3 << " ms\n";
  }
  std::cout << "\nEvery vertex has a master partition "
               "(vertex_to_partition) and every edge a home partition\n"
               "(edge_to_partition) — both views exist for every cut model "
               "(Appendix B of the paper).\n";
  return 0;
}
