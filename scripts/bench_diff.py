#!/usr/bin/env python3
"""Compare the deterministic sections of two sgp bench JSON snapshots.

A BENCH_*.json file (bench/bench_util.h, WriteBenchJson) has two halves:
the deterministic sections -- "schema", "bench", "scale" and the
"metrics" list, whose entries are pure functions of the input and the
code -- and the "wall_time_metrics" list, which changes on every run.
This tool diffs only the deterministic half, so a committed golden
snapshot can gate refactors: if a change is behavior-preserving, the
counters (stream chunks, state builds, decision counts, ...) match
exactly.

Regenerate a golden after an intentional behavior change with the same
command that produced it, e.g.:
    SGP_SCALE=8 SGP_BENCH_JSON_DIR=tests/golden build/bench/<bench>

Usage: bench_diff.py GOLDEN CURRENT
Exit status: 0 when the deterministic sections match, 1 with a readable
diff when they do not, 2 on unreadable or malformed input.
"""

import json
import sys

DETERMINISTIC_SCALARS = ("schema", "bench", "scale")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.stderr.write(f"bench_diff: cannot read {path}: {err}\n")
        sys.exit(2)
    if doc.get("schema") != "sgp.bench.v1":
        sys.stderr.write(f"bench_diff: {path}: not an sgp.bench.v1 file\n")
        sys.exit(2)
    return doc


def metric_table(doc, path):
    table = {}
    for metric in doc.get("metrics", []):
        name = metric.get("name")
        if name is None:
            sys.stderr.write(f"bench_diff: {path}: metric without a name\n")
            sys.exit(2)
        if metric.get("wall_time"):
            sys.stderr.write(
                f"bench_diff: {path}: wall-time metric {name!r} in the "
                "deterministic section\n")
            sys.exit(2)
        table[name] = metric
    return table


def main(argv):
    if len(argv) != 3:
        sys.stderr.write("usage: bench_diff.py GOLDEN CURRENT\n")
        return 2
    golden_path, current_path = argv[1], argv[2]
    golden = load(golden_path)
    current = load(current_path)

    differences = []
    for key in DETERMINISTIC_SCALARS:
        if golden.get(key) != current.get(key):
            differences.append(
                f"  {key}: golden={golden.get(key)!r} "
                f"current={current.get(key)!r}")

    golden_metrics = metric_table(golden, golden_path)
    current_metrics = metric_table(current, current_path)
    for name in sorted(golden_metrics.keys() - current_metrics.keys()):
        differences.append(f"  metric {name}: missing from current")
    for name in sorted(current_metrics.keys() - golden_metrics.keys()):
        differences.append(f"  metric {name}: missing from golden")
    for name in sorted(golden_metrics.keys() & current_metrics.keys()):
        g, c = golden_metrics[name], current_metrics[name]
        for field in sorted(g.keys() | c.keys()):
            if g.get(field) != c.get(field):
                differences.append(
                    f"  metric {name}.{field}: golden={g.get(field)!r} "
                    f"current={c.get(field)!r}")

    if differences:
        sys.stderr.write(
            f"bench_diff: deterministic sections differ "
            f"({golden_path} vs {current_path}):\n")
        sys.stderr.write("\n".join(differences) + "\n")
        return 1
    print(f"bench_diff: {golden.get('bench')} deterministic sections match "
          f"({len(golden_metrics)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
