#!/usr/bin/env bash
# Full hygiene pass: configure with ASan+UBSan, build everything, and run
# the test suite under the sanitizers. Usage:
#   scripts/check.sh [build-dir]
# A separate build directory (default build-asan) keeps the instrumented
# artifacts away from the regular build.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSGP_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the test run instead of just
# printing; detect_leaks exercises the LeakSanitizer pass bundled with ASan.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "check.sh: all tests passed under address,undefined sanitizers"

# The telemetry layer is the one subsystem with lock-free concurrent
# mutation; give its test an extra dedicated sanitizer pass so a racing
# counter/histogram bug cannot hide behind a sharded ctest run.
"$BUILD_DIR/tests/telemetry_test"
# The monitor layer samples that same lock-free registry from the
# simulator loop while workers mutate it; its suite gets the same
# dedicated pass.
"$BUILD_DIR/tests/monitor_test"
echo "check.sh: telemetry_test + monitor_test passed standalone under sanitizers"

# The ingest-equivalence suite is the contract of the chunked source
# layer (chunk boundaries and the disk reader never change results); run
# it standalone under the sanitizers so a buffer-lifetime bug in a chunk
# refill cannot hide behind a sharded ctest run either.
"$BUILD_DIR/tests/source_equivalence_test"
echo "check.sh: source_equivalence_test passed standalone under sanitizers"

# The live-resharding suite moves ownership state while queries are in
# flight; run it and the drain-guard regressions standalone under the
# sanitizers so a dangling plan pointer or a use-after-move in the batch
# protocol cannot hide behind a sharded ctest run.
"$BUILD_DIR/tests/reshard_test"
"$BUILD_DIR/tests/fault_tolerance_test" --gtest_filter='RecoveryTest.*'
echo "check.sh: resharding + drain-guard tests passed standalone under sanitizers"

# The scoring core is the one place every partitioner's decision loop now
# runs through, and its batched path does word-level bit manipulation over
# externally grown membership rows; run its suite standalone under the
# sanitizers so an out-of-bounds word read in a partial tail block cannot
# hide behind a sharded ctest run. A second run forces the SIMD dispatch
# onto the portable omp-simd tier, so both tiers of the kSimd kernels get
# a sanitized pass regardless of host ISA.
"$BUILD_DIR/tests/score_core_test"
SGP_FORCE_SCALAR_DISPATCH=1 "$BUILD_DIR/tests/score_core_test"
echo "check.sh: score_core_test passed standalone under sanitizers (both SIMD tiers)"

# The two-phase family re-streams rewound sources and the registry hands
# out pointers into a growable table; run both new suites standalone
# under the sanitizers so a dangling PartitionerInfo pointer or a
# buffer-lifetime bug across a Rewind() cannot hide behind a sharded
# ctest run.
"$BUILD_DIR/tests/registry_test"
"$BUILD_DIR/tests/twophase_test"
echo "check.sh: registry_test + twophase_test passed standalone under sanitizers"

# Machine-readable bench output: run a representative subset at a small
# scale and verify every BENCH_*.json parses. The benches run sanitized
# too — they double as an integration pass over the instrumented paths.
JSON_DIR="$(mktemp -d)"
trap 'rm -rf "$JSON_DIR"' EXIT
for bench in bench_fig1_comm_volume bench_fig2_replication \
             bench_fig6_online_throughput \
             bench_partitioner_speed bench_ablation_parallel_ingest \
             bench_engine_speed bench_ablation_resharding \
             bench_ablation_monitoring; do
  SGP_SCALE=8 SGP_BENCH_JSON_DIR="$JSON_DIR" \
    "$BUILD_DIR/bench/$bench" > /dev/null
done
for json in "$JSON_DIR"/BENCH_*.json; do
  python3 -m json.tool "$json" > /dev/null
  echo "check.sh: $(basename "$json") is valid JSON"
done
echo "check.sh: bench JSON snapshots validated"

# Deterministic-regression gate: the committed golden pins the
# deterministic metric sections (stream chunks, state builds, item
# counts) of the parallel-ingest ablation at SGP_SCALE=8. A
# behavior-preserving change must reproduce them exactly; regenerate the
# golden (command in scripts/bench_diff.py) after intentional changes.
python3 scripts/bench_diff.py \
  tests/golden/BENCH_ablation_parallel_ingest.json \
  "$JSON_DIR/BENCH_ablation_parallel_ingest.json"

# Same gate for the engine kernel bench: its deterministic section is
# every engine.* counter the specialized and generic paths produce, so a
# divergence here means the kernels are no longer byte-equivalent.
python3 scripts/bench_diff.py \
  tests/golden/BENCH_engine_speed.json \
  "$JSON_DIR/BENCH_engine_speed.json"

# And for the elastic-resharding ablation: its deterministic section is
# the whole reshard.* namespace (batches, retries, re-plans, forwarded
# reads) plus the sim counters, so a divergence means live resharding no
# longer replays bit-identically under the pinned seeds.
python3 scripts/bench_diff.py \
  tests/golden/BENCH_ablation_resharding.json \
  "$JSON_DIR/BENCH_ablation_resharding.json"

# And for the monitoring ablation: its deterministic section pins the
# monitor.* namespace plus the per-fault-plan alert totals, so a
# divergence means burn-rate alerting either went quiet under an outage
# or started paging on healthy traffic.
python3 scripts/bench_diff.py \
  tests/golden/BENCH_ablation_monitoring.json \
  "$JSON_DIR/BENCH_ablation_monitoring.json"

# And for the partitioner scoring bench: its deterministic section pins a
# per-(algo, k, mode) fingerprint of the full assignment vectors plus the
# partition.score.* counters, so a divergence means the scalar reference
# scorer and the batched bit-packed ScoreCore path stopped agreeing
# byte-for-byte (the bench also exits nonzero on any in-run mismatch).
python3 scripts/bench_diff.py \
  tests/golden/BENCH_partitioner_speed.json \
  "$JSON_DIR/BENCH_partitioner_speed.json"

# And for the Figure 2 replication bench: its deterministic section pins
# every (dataset, algorithm, k) replication factor in thousandths
# (bench.fig2.rf_milli.*) plus the partition.cluster.* / partition.hep.*
# / partition.ne.* decision counters, so a divergence means some
# partitioner — old roster or the new two-phase family — no longer
# reproduces the committed figure bit-for-bit.
python3 scripts/bench_diff.py \
  tests/golden/BENCH_fig2_replication.json \
  "$JSON_DIR/BENCH_fig2_replication.json"
echo "check.sh: bench goldens match"

# ThreadSanitizer pass over the concurrent subsystems: the worker pool,
# the sharded ingest path, and the parallel grid runner (its determinism
# tests drive 4 worker threads through the memoized caches and the
# per-cell registry merge). TSan is incompatible with ASan, so it gets
# its own build tree; only the three concurrency suites need rebuilding.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSGP_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$(nproc)" \
  --target thread_pool_test parallel_streaming_test grid_test reshard_test \
  monitor_test score_core_test twophase_test

export TSAN_OPTIONS="halt_on_error=1"
"$TSAN_DIR/tests/thread_pool_test"
"$TSAN_DIR/tests/parallel_streaming_test"
"$TSAN_DIR/tests/grid_test" --gtest_filter='GridRunnerTest.*'
# The reshard controller's telemetry goes through the same thread-local
# registry cache the concurrent subsystems use; running the suite under
# TSan keeps the reshard.* counters honest if resharding ever moves onto
# the worker pool.
"$TSAN_DIR/tests/reshard_test"
# Concurrent time-series sampling against live lock-free counter and
# histogram updates is a real race surface; the monitor suite drives
# writer threads through the registry while a sampler reads it.
"$TSAN_DIR/tests/monitor_test"
# The sharded-scoring equivalence tests drive multi-worker ingest through
# the batched bit-index path (global rows read while delta rows mutate
# between barriers); TSan keeps that interval discipline honest. The
# forced-portable re-run covers the omp-simd twin of the kSimd kernels.
"$TSAN_DIR/tests/score_core_test"
SGP_FORCE_SCALAR_DISPATCH=1 "$TSAN_DIR/tests/score_core_test"
# The two-phase partitioners run inside the parallel grid runner (each
# cell a worker thread sharing the memoized dataset cache); their suite
# under TSan keeps the per-run state honestly run-local.
"$TSAN_DIR/tests/twophase_test"
echo "check.sh: concurrency tests passed under thread sanitizer"

# Portable-vs-native smoke: build partition_checksum twice — the default
# portable flags and -DSGP_NATIVE=ON (-march=native, FP contraction off) —
# and require byte-identical fingerprints for every (algorithm, dataset,
# k, seed, order, capacity profile) cell, in every score mode. This is
# the guard that the scalar/batched/simd equivalence is expression-shape
# stable, not an artifact of one compiler flag set.
PORTABLE_DIR="${BUILD_DIR}-portable"
NATIVE_DIR="${BUILD_DIR}-native"
cmake -B "$PORTABLE_DIR" -S . > /dev/null
cmake -B "$NATIVE_DIR" -S . -DSGP_NATIVE=ON > /dev/null
cmake --build "$PORTABLE_DIR" -j "$(nproc)" --target partition_checksum
cmake --build "$NATIVE_DIR" -j "$(nproc)" --target partition_checksum
for mode in scalar batched simd; do
  "$PORTABLE_DIR/examples/partition_checksum" --scale 9 --score-mode "$mode" \
    > "$JSON_DIR/ck_portable_$mode.txt"
  diff "$JSON_DIR/ck_portable_$mode.txt" \
       <("$NATIVE_DIR/examples/partition_checksum" --scale 9 --score-mode "$mode")
  # Cross-mode: every mode must reproduce the scalar reference grid.
  diff "$JSON_DIR/ck_portable_scalar.txt" "$JSON_DIR/ck_portable_$mode.txt"
done
echo "check.sh: portable and -march=native builds partition identically in every score mode"

# ISA-tier guard: forcing the SIMD dispatch onto the portable omp-simd
# tier via the env override must reproduce the hardware tier's grid
# byte-for-byte (on AVX2 hosts this diffs real vector kernels against
# the portable twin; elsewhere it is a no-op consistency check).
diff <(SGP_FORCE_SCALAR_DISPATCH=1 \
         "$PORTABLE_DIR/examples/partition_checksum" --scale 9 --score-mode simd) \
     "$JSON_DIR/ck_portable_simd.txt"
echo "check.sh: forced-portable and hardware SIMD tiers partition identically"
