#!/usr/bin/env bash
# Full hygiene pass: configure with ASan+UBSan, build everything, and run
# the test suite under the sanitizers. Usage:
#   scripts/check.sh [build-dir]
# A separate build directory (default build-asan) keeps the instrumented
# artifacts away from the regular build.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSGP_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the test run instead of just
# printing; detect_leaks exercises the LeakSanitizer pass bundled with ASan.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "check.sh: all tests passed under address,undefined sanitizers"
