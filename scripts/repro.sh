#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every table/figure bench.
# Usage: scripts/repro.sh [scale]   (default SGP_SCALE=13)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-13}"
export SGP_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure

echo "=== benchmarks (SGP_SCALE=$SCALE) ==="
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo
  "$b"
done
