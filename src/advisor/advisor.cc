#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace sgp {

std::string_view DegreeDistributionName(DegreeDistribution d) {
  switch (d) {
    case DegreeDistribution::kLowDegree:
      return "low-degree";
    case DegreeDistribution::kHeavyTailed:
      return "heavy-tailed";
    case DegreeDistribution::kPowerLaw:
      return "power-law";
  }
  return "unknown";
}

Recommendation Recommend(const AdvisorQuery& query) {
  Recommendation r;
  if (query.workload == WorkloadClass::kOnlineQueries) {
    if (query.latency_critical || query.high_load) {
      r.partitioner = "ECR";
      r.model = CutModel::kEdgeCut;
      r.rationale =
          "Online graph queries exhibit workload skew that structural "
          "metrics do not capture; hash partitioning is resilient to both "
          "data and execution skew, keeping tail latency low under load "
          "(Section 6.3.2, Table 5).";
    } else {
      r.partitioner = "FNL";
      r.model = CutModel::kEdgeCut;
      r.rationale =
          "Under medium load FENNEL's lower edge-cut ratio improves "
          "aggregate throughput (Figure 6) at the expense of higher tail "
          "latency (Table 5).";
    }
    return r;
  }
  switch (query.degree) {
    case DegreeDistribution::kLowDegree:
      r.partitioner = "FNL";
      r.model = CutModel::kEdgeCut;
      r.rationale =
          "On regular low-degree graphs edge-cut SGP preserves locality "
          "without load imbalance, so its lower replication factor "
          "translates directly to lower execution time (Figures 2 and 13).";
      break;
    case DegreeDistribution::kHeavyTailed:
      r.partitioner = "HG";
      r.model = CutModel::kHybrid;
      r.rationale =
          "The hybrid model distributes the edges of the heavy high-degree "
          "tail while keeping low-degree vertices local, and lowers the "
          "synchronization cost of uni-directional workloads like PageRank "
          "(Sections 6.2.1 and 6.2.2).";
      break;
    case DegreeDistribution::kPowerLaw:
      r.partitioner = "HDRF";
      r.model = CutModel::kVertexCut;
      r.rationale =
          "HDRF attains the lowest replication factor on power-law graphs "
          "while keeping edges balanced, giving the best workload "
          "performance among vertex-cut algorithms (Section 6.2.2).";
      break;
  }
  return r;
}

const char* LiveActionName(LiveAction action) {
  switch (action) {
    case LiveAction::kNone:
      return "none";
    case LiveAction::kScaleOut:
      return "scale-out";
    case LiveAction::kSplitHot:
      return "split-hot";
    case LiveAction::kRepartition:
      return "repartition";
  }
  return "unknown";
}

namespace {

// Did any sampled median (a `<histogram>.p50` series paired with a
// `.p999` sibling) rise to 1.5× its first nonzero — i.e. healthy — level?
// Quantile samples are cumulative, so a sustained systemic slowdown drags
// the median up while a single hot worker barely moves it.
bool AnyMedianRose(const TimeSeriesStore& store) {
  constexpr std::string_view kSuffix = ".p50";
  for (const auto& [name, series] : store.series()) {
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - kSuffix.size());
    if (store.Find(base + ".p999") == nullptr) continue;
    double healthy = 0;
    for (size_t i = 0; i < series.size(); ++i) {
      if (series.At(i).value > 0) {
        healthy = series.At(i).value;
        break;
      }
    }
    if (healthy <= 0) continue;
    if (series.Back().value > 1.5 * healthy) return true;
  }
  return false;
}

}  // namespace

LiveRecommendation RecommendFromTimeSeries(const TimeSeriesStore& store,
                                           const std::vector<Alert>& alerts) {
  LiveRecommendation r;
  if (alerts.empty()) {
    r.rationale = "No burn-rate alert fired; every objective held.";
    return r;
  }
  bool availability = false;
  bool reshard_in_flight = false;
  for (const Alert& a : alerts) {
    if (a.kind == SloKind::kAvailability) availability = true;
    if (a.detail.rfind("reshard=", 0) == 0) reshard_in_flight = true;
  }
  if (availability) {
    r.action = LiveAction::kScaleOut;
    r.rationale =
        "Availability burn: queries are failing outright, which no "
        "re-placement fixes — restore or add worker capacity";
  } else if (AnyMedianRose(store)) {
    r.action = LiveAction::kRepartition;
    r.rationale =
        "Latency burn with a rising median: the slowdown is systemic, so "
        "the current placement no longer fits the workload — repartition";
  } else {
    r.action = LiveAction::kSplitHot;
    r.rationale =
        "Latency burn confined to the tail (median flat, p999 inflated): "
        "the hotspot signature of one overloaded worker — split the hot "
        "partition";
  }
  if (reshard_in_flight) {
    r.rationale += " (a live reshard was in flight when an alert fired)";
  }
  r.rationale += ".";
  return r;
}

DegreeDistribution ClassifyGraph(const Graph& graph) {
  GraphStats stats = ComputeStats(graph);
  if (stats.num_vertices == 0 || stats.avg_degree == 0) {
    return DegreeDistribution::kLowDegree;
  }
  if (static_cast<double>(stats.max_degree) <= 8.0 * stats.avg_degree) {
    return DegreeDistribution::kLowDegree;
  }
  // Hill estimator of the tail index over the top 1% of degrees (at least
  // 16 samples): alpha_hat = k / Σ log(d_i / d_min_tail).
  std::vector<double> degrees(graph.num_vertices());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    degrees[u] = static_cast<double>(graph.Degree(u));
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  size_t tail = std::max<size_t>(16, degrees.size() / 100);
  tail = std::min(tail, degrees.size() - 1);
  double sum_log = 0;
  const double threshold = std::max(1.0, degrees[tail]);
  size_t used = 0;
  for (size_t i = 0; i < tail; ++i) {
    if (degrees[i] <= threshold) break;
    sum_log += std::log(degrees[i] / threshold);
    ++used;
  }
  if (used == 0) return DegreeDistribution::kHeavyTailed;
  const double alpha = static_cast<double>(used) / sum_log;
  return alpha < 2.0 ? DegreeDistribution::kPowerLaw
                     : DegreeDistribution::kHeavyTailed;
}

}  // namespace sgp
