#ifndef SGP_ADVISOR_ADVISOR_H_
#define SGP_ADVISOR_ADVISOR_H_

#include <string>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Workload class of the deployment (Section 5).
enum class WorkloadClass {
  kOfflineAnalytics,
  kOnlineQueries,
};

/// Degree-distribution class of the data graph (Table 3's "Type" column).
enum class DegreeDistribution {
  kLowDegree,    // road networks, meshes
  kHeavyTailed,  // online social networks (Twitter)
  kPowerLaw,     // web graphs (UK2007-05)
};

/// Human-readable name of the distribution class.
std::string_view DegreeDistributionName(DegreeDistribution d);

/// Inputs to the Figure 9 decision tree.
struct AdvisorQuery {
  WorkloadClass workload = WorkloadClass::kOfflineAnalytics;

  /// Degree distribution (analytics branch).
  DegreeDistribution degree = DegreeDistribution::kHeavyTailed;

  /// Online branch: is tail latency an SLO?
  bool latency_critical = true;

  /// Online branch: is the cluster expected to run near saturation?
  bool high_load = false;
};

/// A partitioner recommendation with the reasoning from Section 6.4.
struct Recommendation {
  std::string partitioner;  // code accepted by CreatePartitioner()
  CutModel model = CutModel::kEdgeCut;
  std::string rationale;
};

/// The paper's decision tree (Figure 9): picks a streaming partitioning
/// algorithm from workload class, degree distribution and application
/// requirements.
Recommendation Recommend(const AdvisorQuery& query);

/// Classifies a graph's degree distribution: low-degree when the maximum
/// degree is within a small factor of the average; otherwise the Hill
/// estimator on the top tail separates power-law (tail index < 2) from
/// merely heavy-tailed graphs.
DegreeDistribution ClassifyGraph(const Graph& graph);

}  // namespace sgp

#endif  // SGP_ADVISOR_ADVISOR_H_
