#ifndef SGP_ADVISOR_ADVISOR_H_
#define SGP_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "common/monitor.h"
#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Workload class of the deployment (Section 5).
enum class WorkloadClass {
  kOfflineAnalytics,
  kOnlineQueries,
};

/// Degree-distribution class of the data graph (Table 3's "Type" column).
enum class DegreeDistribution {
  kLowDegree,    // road networks, meshes
  kHeavyTailed,  // online social networks (Twitter)
  kPowerLaw,     // web graphs (UK2007-05)
};

/// Human-readable name of the distribution class.
std::string_view DegreeDistributionName(DegreeDistribution d);

/// Inputs to the Figure 9 decision tree.
struct AdvisorQuery {
  WorkloadClass workload = WorkloadClass::kOfflineAnalytics;

  /// Degree distribution (analytics branch).
  DegreeDistribution degree = DegreeDistribution::kHeavyTailed;

  /// Online branch: is tail latency an SLO?
  bool latency_critical = true;

  /// Online branch: is the cluster expected to run near saturation?
  bool high_load = false;
};

/// A partitioner recommendation with the reasoning from Section 6.4.
struct Recommendation {
  std::string partitioner;  // code accepted by CreatePartitioner()
  CutModel model = CutModel::kEdgeCut;
  std::string rationale;
};

/// The paper's decision tree (Figure 9): picks a streaming partitioning
/// algorithm from workload class, degree distribution and application
/// requirements.
Recommendation Recommend(const AdvisorQuery& query);

/// Classifies a graph's degree distribution: low-degree when the maximum
/// degree is within a small factor of the average; otherwise the Hill
/// estimator on the top tail separates power-law (tail index < 2) from
/// merely heavy-tailed graphs.
DegreeDistribution ClassifyGraph(const Graph& graph);

// ---------------------------------------------------------------------------
// Live advisor (ROADMAP items 4–5: closing the telemetry loop)
// ---------------------------------------------------------------------------

/// What a live alert stream asks the operator — or, eventually, the
/// ReshardController — to do.
enum class LiveAction : uint8_t {
  kNone,         // no sustained objective violation
  kScaleOut,     // availability burning: add capacity / repair workers
  kSplitHot,     // tail-only latency burn: split the hot partition
  kRepartition,  // broad latency burn: the placement no longer fits
};

const char* LiveActionName(LiveAction action);

struct LiveRecommendation {
  LiveAction action = LiveAction::kNone;
  std::string rationale;
};

/// Decision rule over the live-monitoring output (the alert stream and
/// the sampled time series of SimResult / TimeSeriesStore):
///  - any availability alert → kScaleOut (queries are failing outright;
///    no re-placement fixes missing capacity);
///  - latency alerts with a flat median but an inflated tail (the p50
///    series held steady while p999 burned) → kSplitHot, the hotspot
///    signature queueing theory predicts for a single overloaded worker;
///  - latency alerts with the median rising too → kRepartition, systemic
///    overload of the current placement.
/// Deterministic: same store + alerts → same recommendation.
LiveRecommendation RecommendFromTimeSeries(const TimeSeriesStore& store,
                                           const std::vector<Alert>& alerts);

}  // namespace sgp

#endif  // SGP_ADVISOR_ADVISOR_H_
