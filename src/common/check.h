#ifndef SGP_COMMON_CHECK_H_
#define SGP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sgp::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "SGP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace sgp::internal_check

/// Always-on invariant check. Used for programming errors that must never
/// occur regardless of build mode; aborts with a diagnostic when violated.
#define SGP_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::sgp::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (0)

/// Debug-only invariant check for hot paths.
#ifdef NDEBUG
#define SGP_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SGP_DCHECK(expr) SGP_CHECK(expr)
#endif

#endif  // SGP_COMMON_CHECK_H_
