#ifndef SGP_COMMON_CSV_H_
#define SGP_COMMON_CSV_H_

#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace sgp {

/// Column-schema-driven CSV writing. A record struct declares its columns
/// once — name plus member pointer — and the header and every row are
/// rendered from that single declaration, so a field added to the struct
/// cannot silently drift out of the CSV (or out of sync with its header).
/// Numeric fields print with the stream's default formatting, matching
/// the hand-written writers this replaces byte-for-byte.

namespace csv_internal {

inline void PrintField(std::ostream& out, const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) {
    out << value;
    return;
  }
  out << '"';
  for (char c : value) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

template <typename T>
void PrintField(std::ostream& out, const T& value) {
  out << value;
}

}  // namespace csv_internal

template <typename Record>
class CsvSchema {
 public:
  struct Column {
    std::string name;
    std::function<void(std::ostream&, const Record&)> print;
  };

  CsvSchema(std::initializer_list<Column> columns) : columns_(columns) {}

  void WriteHeader(std::ostream& out) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) out << ',';
      out << columns_[i].name;
    }
    out << '\n';
  }

  void WriteRow(std::ostream& out, const Record& record) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) out << ',';
      columns_[i].print(out, record);
    }
    out << '\n';
  }

  /// Header plus one row per record.
  void Write(std::ostream& out, const std::vector<Record>& records) const {
    WriteHeader(out);
    for (const Record& record : records) WriteRow(out, record);
  }

  const std::vector<Column>& columns() const { return columns_; }

 private:
  std::vector<Column> columns_;
};

/// Column reading a data member: CsvCol("dataset", &Record::dataset).
template <typename Record, typename T>
typename CsvSchema<Record>::Column CsvCol(std::string name,
                                          T Record::* member) {
  return {std::move(name), [member](std::ostream& out, const Record& r) {
            csv_internal::PrintField(out, r.*member);
          }};
}

}  // namespace sgp

#endif  // SGP_COMMON_CSV_H_
