#ifndef SGP_COMMON_DENSE_BITSET_H_
#define SGP_COMMON_DENSE_BITSET_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace sgp {

/// Word-packed bit vector. The GraphPartitioners-style `dense_bitset`
/// idiom: membership queries become single word loads, and a scan over a
/// block of 64 candidates touches one cache word instead of 64 probes.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(uint64_t bits) { Resize(bits); }

  /// Grows or shrinks to `bits`; newly exposed bits are zero.
  void Resize(uint64_t bits) {
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
  }

  uint64_t size() const { return bits_; }
  uint64_t num_words() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(uint64_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(uint64_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  uint64_t Popcount() const {
    uint64_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint64_t>(std::popcount(w));
    return n;
  }

  uint64_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  uint64_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Row-major bit matrix: `rows` rows of `cols` bits each. This is the
/// layout of the replica-membership index: one row per vertex, one bit
/// per partition, so a k-way scoring loop reads ceil(k/64) words per
/// endpoint instead of performing k set probes.
///
/// Cache-blocked layout: the base pointer is 64-byte aligned and rows are
/// placed at a stride rounded up from ceil(cols/64) words to a power of
/// two (≤ 8 words) or a multiple of 8 words beyond that. Every row start
/// therefore lands at a 64-byte-line-friendly offset and a row of ≤ 512
/// bits never straddles a cache line — one line fill serves the whole
/// membership sweep of an endpoint, and the scoring loops' row prefetches
/// pull exactly the lines they will read. `words_per_row()` stays the
/// logical ceil(cols/64); padding words past it are always zero.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(uint64_t rows, uint32_t cols) { Reset(rows, cols); }

  /// Reshapes to rows × cols with every bit cleared.
  void Reset(uint64_t rows, uint32_t cols) {
    rows_ = rows;
    cols_ = cols;
    words_per_row_ = (static_cast<uint64_t>(cols) + 63) / 64;
    row_stride_ = RowStride(words_per_row_);
    AllocateZeroed(rows * row_stride_);
  }

  /// Grows the row count (column width fixed); new rows are zero,
  /// existing rows keep their bits across the reallocation.
  void EnsureRows(uint64_t rows) {
    if (rows <= rows_) return;
    std::vector<uint64_t> old_storage = std::move(storage_);
    const uint64_t* old_base = base_;
    const uint64_t old_words = rows_ * row_stride_;
    rows_ = rows;
    AllocateZeroed(rows * row_stride_);
    if (old_words > 0) std::copy(old_base, old_base + old_words, base_);
  }

  uint64_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint64_t words_per_row() const { return words_per_row_; }
  uint64_t row_stride() const { return row_stride_; }

  const uint64_t* Row(uint64_t r) const { return base_ + r * row_stride_; }

  bool Test(uint64_t r, uint32_t c) const {
    return (Row(r)[c >> 6] >> (c & 63)) & 1u;
  }
  void Set(uint64_t r, uint32_t c) {
    base_[r * row_stride_ + (c >> 6)] |= uint64_t{1} << (c & 63);
  }
  void ResetBit(uint64_t r, uint32_t c) {
    base_[r * row_stride_ + (c >> 6)] &= ~(uint64_t{1} << (c & 63));
  }
  void ClearRow(uint64_t r) {
    std::memset(base_ + r * row_stride_, 0,
                words_per_row_ * sizeof(uint64_t));
  }

  uint64_t MemoryBytes() const {
    return storage_.capacity() * sizeof(uint64_t);
  }

 private:
  static constexpr uint64_t kAlignWords = 8;  // 64 bytes

  /// Row placement stride for a logical row of `wpr` words: the next
  /// power of two up to a full cache line, then whole lines.
  static uint64_t RowStride(uint64_t wpr) {
    if (wpr <= 1) return wpr;
    if (wpr <= 2) return 2;
    if (wpr <= 4) return 4;
    return (wpr + kAlignWords - 1) / kAlignWords * kAlignWords;
  }

  void AllocateZeroed(uint64_t words) {
    storage_.assign(words + kAlignWords - 1, 0);
    uint64_t addr = reinterpret_cast<uint64_t>(storage_.data());
    const uint64_t align = kAlignWords * sizeof(uint64_t);
    const uint64_t offset = (align - addr % align) % align;
    base_ = storage_.data() + offset / sizeof(uint64_t);
  }

  uint64_t rows_ = 0;
  uint32_t cols_ = 0;
  uint64_t words_per_row_ = 0;
  uint64_t row_stride_ = 0;
  uint64_t* base_ = nullptr;
  std::vector<uint64_t> storage_;
};

}  // namespace sgp

#endif  // SGP_COMMON_DENSE_BITSET_H_
