#ifndef SGP_COMMON_DENSE_BITSET_H_
#define SGP_COMMON_DENSE_BITSET_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace sgp {

/// Word-packed bit vector. The GraphPartitioners-style `dense_bitset`
/// idiom: membership queries become single word loads, and a scan over a
/// block of 64 candidates touches one cache word instead of 64 probes.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(uint64_t bits) { Resize(bits); }

  /// Grows or shrinks to `bits`; newly exposed bits are zero.
  void Resize(uint64_t bits) {
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
  }

  uint64_t size() const { return bits_; }
  uint64_t num_words() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(uint64_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(uint64_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  uint64_t Popcount() const {
    uint64_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint64_t>(std::popcount(w));
    return n;
  }

  uint64_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  uint64_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Row-major bit matrix: `rows` rows of `cols` bits each, padded to whole
/// words per row so `Row(r)` is a contiguous word span. This is the layout
/// of the replica-membership index: one row per vertex, one bit per
/// partition, so a k-way scoring loop reads ceil(k/64) words per endpoint
/// instead of performing k set probes.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(uint64_t rows, uint32_t cols) { Reset(rows, cols); }

  /// Reshapes to rows × cols with every bit cleared.
  void Reset(uint64_t rows, uint32_t cols) {
    rows_ = rows;
    cols_ = cols;
    words_per_row_ = (static_cast<uint64_t>(cols) + 63) / 64;
    words_.assign(rows * words_per_row_, 0);
  }

  /// Grows the row count (column width fixed); new rows are zero.
  void EnsureRows(uint64_t rows) {
    if (rows <= rows_) return;
    rows_ = rows;
    words_.resize(rows * words_per_row_, 0);
  }

  uint64_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  uint64_t words_per_row() const { return words_per_row_; }

  const uint64_t* Row(uint64_t r) const {
    return words_.data() + r * words_per_row_;
  }

  bool Test(uint64_t r, uint32_t c) const {
    return (Row(r)[c >> 6] >> (c & 63)) & 1u;
  }
  void Set(uint64_t r, uint32_t c) {
    words_[r * words_per_row_ + (c >> 6)] |= uint64_t{1} << (c & 63);
  }
  void ResetBit(uint64_t r, uint32_t c) {
    words_[r * words_per_row_ + (c >> 6)] &= ~(uint64_t{1} << (c & 63));
  }
  void ClearRow(uint64_t r) {
    std::memset(words_.data() + r * words_per_row_, 0,
                words_per_row_ * sizeof(uint64_t));
  }

  uint64_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  uint64_t rows_ = 0;
  uint32_t cols_ = 0;
  uint64_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sgp

#endif  // SGP_COMMON_DENSE_BITSET_H_
