#include "common/faults.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sgp {

bool FaultPlan::IsDown(PartitionId w, double t) const {
  for (const WorkerOutage& o : outages) {
    if (o.worker == w && t >= o.start && t < o.end) return true;
  }
  return false;
}

bool FaultPlan::PermanentlyDown(PartitionId w, double t) const {
  for (const WorkerOutage& o : outages) {
    if (o.worker == w && o.permanent() && t >= o.start) return true;
  }
  return false;
}

double FaultPlan::Slowdown(PartitionId w, double t) const {
  double factor = 1.0;
  for (const StragglerWindow& s : stragglers) {
    if (s.worker == w && t >= s.start && t < s.end) factor *= s.slowdown;
  }
  return factor;
}

bool FaultPlan::AnyOutageOverlaps(double begin, double end) const {
  for (const WorkerOutage& o : outages) {
    if (o.end <= o.start) continue;  // zero-length windows outage nothing
    if (o.start <= end && begin < o.end) return true;
  }
  return false;
}

std::vector<char> FaultPlan::DownMask(PartitionId k, double t) const {
  std::vector<char> mask;
  for (const WorkerOutage& o : outages) {
    if (t >= o.start && t < o.end) {
      if (mask.empty()) mask.assign(k, 0);
      SGP_CHECK(o.worker < k);
      mask[o.worker] = 1;
    }
  }
  return mask;
}

std::vector<double> FaultPlan::OutageTransitionTimes() const {
  std::vector<double> times;
  for (const WorkerOutage& o : outages) {
    times.push_back(o.start);
    if (!o.permanent()) times.push_back(o.end);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

void FaultPlan::Validate(PartitionId k) const {
  for (const WorkerOutage& o : outages) {
    SGP_CHECK(o.worker < k);
    // Zero-length windows (end == start) are legal no-ops: reshard
    // schedulers shrink planned outages to nothing rather than deleting
    // entries. Inverted windows are still bugs.
    SGP_CHECK(o.end >= o.start);
  }
  for (const StragglerWindow& s : stragglers) {
    SGP_CHECK(s.worker < k);
    SGP_CHECK(s.end >= s.start);
    SGP_CHECK(s.slowdown >= 1.0);
  }
  SGP_CHECK(message_loss_probability >= 0.0 &&
            message_loss_probability <= 1.0);
}

FaultPlan FaultPlan::SingleOutage(PartitionId worker, double start,
                                  double duration) {
  SGP_CHECK(duration > 0);
  FaultPlan plan;
  plan.outages.push_back({worker, start, start + duration});
  return plan;
}

FaultPlan MakeRandomFaultPlan(PartitionId k, double horizon,
                              const RandomFaultOptions& options,
                              uint64_t seed) {
  SGP_CHECK(k > 0);
  SGP_CHECK(horizon > 0);
  FaultPlan plan;
  plan.message_loss_probability = options.message_loss_probability;
  Rng rng(seed ^ 0xfa017ULL);
  // Worker k-1 is spared so at least one machine survives every scenario.
  const PartitionId last_faulty = k > 1 ? k - 1 : 0;
  for (PartitionId w = 0; w < last_faulty; ++w) {
    if (rng.Bernoulli(options.crash_probability)) {
      const double start = rng.UniformReal() * horizon;
      if (rng.Bernoulli(options.permanent_probability)) {
        plan.outages.push_back({w, start,
                                std::numeric_limits<double>::infinity()});
      } else {
        // Exponential around the mean outage length, truncated so the
        // window stays inside the horizon.
        const double mean = options.mean_outage_fraction * horizon;
        const double raw =
            -mean * std::log(std::max(1e-12, 1.0 - rng.UniformReal()));
        const double duration = std::min(raw, horizon - start);
        plan.outages.push_back({w, start, start + std::max(duration, 1e-9)});
      }
    }
    if (rng.Bernoulli(options.straggler_probability)) {
      const double start = rng.UniformReal() * horizon;
      const double duration =
          options.mean_outage_fraction * horizon * rng.UniformReal();
      plan.stragglers.push_back({w, start, start + std::max(duration, 1e-9),
                                 options.straggler_slowdown});
    }
  }
  plan.Validate(k);
  return plan;
}

double RetryPolicy::BackoffSeconds(uint32_t failures, Rng& rng) const {
  SGP_CHECK(failures >= 1);
  double backoff = initial_backoff_seconds;
  for (uint32_t i = 1; i < failures && backoff < max_backoff_seconds; ++i) {
    backoff *= backoff_multiplier;
  }
  backoff = std::min(backoff, max_backoff_seconds);
  if (jitter_fraction > 0) {
    backoff *= 1.0 - jitter_fraction + 2.0 * jitter_fraction *
                                           rng.UniformReal();
  }
  return backoff;
}

void RetryPolicy::Validate() const {
  SGP_CHECK(max_attempts >= 1);
  SGP_CHECK(initial_backoff_seconds >= 0);
  SGP_CHECK(backoff_multiplier >= 1.0);
  SGP_CHECK(max_backoff_seconds >= initial_backoff_seconds);
  SGP_CHECK(jitter_fraction >= 0.0 && jitter_fraction < 1.0);
  SGP_CHECK(query_timeout_seconds > 0);
}

}  // namespace sgp
