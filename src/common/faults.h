#ifndef SGP_COMMON_FAULTS_H_
#define SGP_COMMON_FAULTS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace sgp {

/// Fail-stop outage of one worker: requests arriving in [start, end) are
/// not served (in-flight service started before `start` completes). An
/// infinite `end` models a permanent crash-stop failure.
struct WorkerOutage {
  PartitionId worker = 0;
  double start = 0;
  double end = std::numeric_limits<double>::infinity();

  bool permanent() const {
    return end == std::numeric_limits<double>::infinity();
  }
};

/// Straggler window: service times on `worker` are multiplied by
/// `slowdown` (>= 1) inside [start, end) — the OS-noise / compaction-pause
/// stragglers the healthy-cluster simulators deliberately ignore.
struct StragglerWindow {
  PartitionId worker = 0;
  double start = 0;
  double end = std::numeric_limits<double>::infinity();
  double slowdown = 1.0;
};

/// Deterministic, seeded schedule of cluster faults shared by both
/// simulators: worker crash/recover windows, straggler slowdowns, and a
/// per-hop message-loss probability. All times are simulated seconds on
/// the same clock the discrete-event simulator runs on. An
/// empty plan reproduces the healthy-cluster behavior bit-for-bit.
struct FaultPlan {
  std::vector<WorkerOutage> outages;
  std::vector<StragglerWindow> stragglers;

  /// Probability that one one-way network hop drops its message.
  double message_loss_probability = 0.0;

  /// No faults of any kind configured.
  bool empty() const {
    return outages.empty() && stragglers.empty() &&
           message_loss_probability == 0.0;
  }

  /// Worker `w` is inside some outage window at time `t`.
  bool IsDown(PartitionId w, double t) const;

  /// Worker `w` has a permanent outage starting at or before `t`.
  bool PermanentlyDown(PartitionId w, double t) const;

  /// Product of the slowdown factors of every straggler window covering
  /// (w, t); 1.0 outside all windows.
  double Slowdown(PartitionId w, double t) const;

  /// Some outage window intersects [begin, end].
  bool AnyOutageOverlaps(double begin, double end) const;

  /// Per-worker down flags at time `t` (size k). Empty when no worker is
  /// down, so it can be passed directly to GraphDatabase::Plan.
  std::vector<char> DownMask(PartitionId k, double t) const;

  /// Sorted, deduplicated finite outage boundaries — the times at which
  /// the set of live workers changes.
  std::vector<double> OutageTransitionTimes() const;

  /// Aborts on malformed plans: worker ids >= k, end < start,
  /// slowdown < 1, loss probability outside [0, 1]. Zero-length windows
  /// (end == start) are valid and behave as if absent.
  void Validate(PartitionId k) const;

  /// Convenience: a plan with exactly one transient outage.
  static FaultPlan SingleOutage(PartitionId worker, double start,
                                double duration);
};

/// Knobs of MakeRandomFaultPlan.
struct RandomFaultOptions {
  /// Probability that a given worker crashes once during the horizon.
  double crash_probability = 0.3;

  /// Outage length as a fraction of the horizon (exponentially distributed
  /// around this mean, truncated to the horizon).
  double mean_outage_fraction = 0.2;

  /// Probability that a crash is permanent instead of transient.
  double permanent_probability = 0.0;

  /// Probability that a given worker has one straggler window.
  double straggler_probability = 0.0;

  /// Service-time multiplier of straggler windows.
  double straggler_slowdown = 4.0;

  /// Per-hop message-loss probability copied into the plan.
  double message_loss_probability = 0.0;
};

/// Deterministic random fault plan over `horizon` simulated seconds on a
/// k-worker cluster: the same (k, horizon, options, seed) always yields
/// the same plan. At least one worker is always left untouched so the
/// cluster cannot lose all replicas of everything at once.
FaultPlan MakeRandomFaultPlan(PartitionId k, double horizon,
                              const RandomFaultOptions& options,
                              uint64_t seed);

/// Client-side retry policy: capped exponential backoff with
/// multiplicative jitter plus a per-query deadline. Reused by the online
/// simulator for failed sub-requests and by anything else that needs to
/// pace retries deterministically.
struct RetryPolicy {
  /// Total tries of one sub-request (first attempt included).
  uint32_t max_attempts = 3;

  double initial_backoff_seconds = 500e-6;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 20e-3;

  /// Backoff is multiplied by a uniform draw in [1 - j, 1 + j].
  double jitter_fraction = 0.2;

  /// Client gives up on the whole query this long after issuing it.
  /// Infinity disables the deadline.
  double query_timeout_seconds = 50e-3;

  /// Delay before retry number `failures` (1-based count of failed
  /// attempts so far): min(max, initial * multiplier^(failures-1)),
  /// jittered. Deterministic given the rng state.
  double BackoffSeconds(uint32_t failures, Rng& rng) const;

  /// Aborts on malformed policies (zero attempts, negative backoff,
  /// multiplier < 1, jitter outside [0, 1), non-positive timeout).
  void Validate() const;
};

}  // namespace sgp

#endif  // SGP_COMMON_FAULTS_H_
