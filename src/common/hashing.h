#ifndef SGP_COMMON_HASHING_H_
#define SGP_COMMON_HASHING_H_

#include <cstdint>

namespace sgp {

/// Strong 64-bit integer mixer (the splitmix64/Murmur3 finalizer). Used by
/// every hash-based partitioner so that "hash partitioning" in this library
/// is well distributed even on consecutive vertex ids.
inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash of a 64-bit value with an additional seed (e.g., per-experiment).
inline uint64_t HashU64Seeded(uint64_t x, uint64_t seed) {
  return HashU64(x ^ (seed * 0x9e3779b97f4a7c15ULL));
}

/// Combines two hashes (order-sensitive), e.g., for hashing an edge by the
/// concatenation of its endpoint ids.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashU64(a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL);
}

}  // namespace sgp

#endif  // SGP_COMMON_HASHING_H_
