#include "common/monitor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace sgp {

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

TimeSeries::TimeSeries(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void TimeSeries::Append(double time, double value) {
  if (size_ < capacity_) {
    ring_.push_back({time, value});
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = {time, value};
  head_ = (head_ + 1) % capacity_;
  ++evicted_;
}

const TimeSeriesPoint& TimeSeries::At(size_t i) const {
  SGP_CHECK(i < size_);
  return ring_[(head_ + i) % ring_.size()];
}

const TimeSeriesPoint& TimeSeries::Back() const {
  SGP_CHECK(size_ > 0);
  return At(size_ - 1);
}

std::vector<TimeSeriesPoint> TimeSeries::Points() const {
  std::vector<TimeSeriesPoint> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
  return out;
}

std::vector<TimeSeriesPoint> TimeSeries::Since(double time) const {
  std::vector<TimeSeriesPoint> out;
  for (size_t i = 0; i < size_; ++i) {
    const TimeSeriesPoint& p = At(i);
    if (p.time >= time) out.push_back(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TimeSeriesStore
// ---------------------------------------------------------------------------

TimeSeriesStore::TimeSeriesStore(const TimeSeriesStoreOptions& options)
    : options_(options) {}

TimeSeries& TimeSeriesStore::SeriesFor(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(options_.capacity_per_series))
             .first;
  }
  return it->second;
}

void TimeSeriesStore::AppendDelta(const std::string& name, double now,
                                  double cumulative) {
  auto [it, inserted] = baselines_.try_emplace(name, cumulative);
  const double delta = inserted ? 0.0 : cumulative - it->second;
  it->second = cumulative;
  SeriesFor(name).Append(now, delta);
}

void TimeSeriesStore::Sample(const MetricsRegistry& registry, double now) {
  ExportOptions options;
  options.filter = options_.filter;
  for (const MetricSample& s : registry.Snapshot(options)) {
    switch (s.kind) {
      case MetricKind::kCounter:
        AppendDelta(s.name, now, static_cast<double>(s.counter_value));
        break;
      case MetricKind::kGauge:
        SeriesFor(s.name).Append(now, s.gauge_value);
        break;
      case MetricKind::kHistogram:
        AppendDelta(s.name + ".count", now, static_cast<double>(s.count));
        SeriesFor(s.name + ".p50").Append(now, s.p50);
        SeriesFor(s.name + ".p99").Append(now, s.p99);
        SeriesFor(s.name + ".p999").Append(now, s.p999);
        break;
    }
  }
  ++num_samples_;
}

const TimeSeries* TimeSeriesStore::Find(std::string_view name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

namespace {

void AppendSeriesJson(const std::string& name, uint64_t evicted,
                      const std::vector<TimeSeriesPoint>& points,
                      std::string* out) {
  *out += "{\"name\":";
  AppendJsonEscaped(name, out);
  *out += ",\"evicted\":" + std::to_string(evicted);
  *out += ",\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) *out += ',';
    *out += '[' + FormatJsonDouble(points[i].time) + ',' +
            FormatJsonDouble(points[i].value) + ']';
  }
  *out += "]}";
}

}  // namespace

std::string ExportTimeSeriesJson(const TimeSeriesStore& store) {
  std::string out = "{\"schema\":\"sgp.timeseries.v1\",\"samples\":";
  out += std::to_string(store.num_samples());
  out += ",\"series\":[";
  bool first = true;
  for (const auto& [name, series] : store.series()) {
    if (!first) out += ',';
    first = false;
    AppendSeriesJson(name, series.evicted(), series.Points(), &out);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kAvailability:
      return "availability";
    case SloKind::kLatencyP99:
      return "latency_p99";
    case SloKind::kLatencyP999:
      return "latency_p999";
  }
  return "unknown";
}

SloTracker::SloTracker(std::vector<SloConfig> slos)
    : slos_(std::move(slos)), firing_(slos_.size(), 0) {
  for (const SloConfig& slo : slos_) {
    SGP_CHECK(slo.short_window > 0 && slo.long_window >= slo.short_window);
    SGP_CHECK(slo.burn_threshold > 0);
    max_window_ = std::max(max_window_, slo.long_window);
  }
}

void SloTracker::RecordQuery(double now, bool ok, double latency_seconds) {
  outcomes_.push_back({now, latency_seconds, ok});
  while (!outcomes_.empty() && outcomes_.front().time < now - max_window_) {
    outcomes_.pop_front();
  }
}

double SloTracker::BurnRate(size_t i, double now, double window) const {
  SGP_CHECK(i < slos_.size());
  const SloConfig& slo = slos_[i];
  const double cutoff = now - window;
  uint64_t relevant = 0;
  uint64_t bad = 0;
  for (const Outcome& o : outcomes_) {
    if (o.time < cutoff || o.time > now) continue;
    switch (slo.kind) {
      case SloKind::kAvailability:
        ++relevant;
        if (!o.ok) ++bad;
        break;
      case SloKind::kLatencyP99:
      case SloKind::kLatencyP999:
        // Latency SLOs cover successful queries; failures are the
        // availability SLO's problem.
        if (!o.ok) break;
        ++relevant;
        if (o.latency > slo.objective) ++bad;
        break;
    }
  }
  if (relevant == 0) return 0.0;
  double budget = 1.0;  // tolerated bad fraction
  switch (slo.kind) {
    case SloKind::kAvailability:
      budget = 1.0 - slo.objective;
      break;
    case SloKind::kLatencyP99:
      budget = 0.01;
      break;
    case SloKind::kLatencyP999:
      budget = 0.001;
      break;
  }
  budget = std::max(budget, 1e-9);
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(relevant);
  return bad_fraction / budget;
}

std::vector<Alert> SloTracker::Evaluate(double now, std::string_view detail) {
  std::vector<Alert> fired;
  for (size_t i = 0; i < slos_.size(); ++i) {
    const SloConfig& slo = slos_[i];
    const double short_burn = BurnRate(i, now, slo.short_window);
    const double long_burn = BurnRate(i, now, slo.long_window);
    const bool over =
        short_burn >= slo.burn_threshold && long_burn >= slo.burn_threshold;
    if (over && !firing_[i]) {
      firing_[i] = 1;
      Alert alert;
      alert.slo = slo.name;
      alert.kind = slo.kind;
      alert.time = now;
      alert.short_burn = short_burn;
      alert.long_burn = long_burn;
      alert.detail = std::string(detail);
      alerts_.push_back(alert);
      fired.push_back(std::move(alert));
    } else if (firing_[i] && short_burn < slo.burn_threshold) {
      firing_[i] = 0;  // re-arm once the short window recovers
    }
  }
  return fired;
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder::FlightRecorder(const FlightRecorderConfig& config)
    : config_(config) {}

void FlightRecorder::ArmBaseline(const MetricsRegistry& registry) {
  baseline_.clear();
  ExportOptions options;
  options.filter = MetricFilter::kDeterministicOnly;
  for (MetricSample& s : registry.Snapshot(options)) {
    std::string name = s.name;
    baseline_.emplace(std::move(name), std::move(s));
  }
}

std::string FlightRecorder::Dump(std::string_view reason, double now,
                                 const TimeSeriesStore& store,
                                 const MetricsRegistry& registry) {
  if (dumps_.size() >= config_.max_dumps) {
    ++suppressed_;
    return {};
  }
  std::string out = "{\"schema\":\"sgp.blackbox.v1\",\"reason\":";
  AppendJsonEscaped(reason, &out);
  out += ",\"time\":" + FormatJsonDouble(now);
  out += ",\"lookback_seconds\":" + FormatJsonDouble(config_.lookback_seconds);

  // The last lookback_seconds of every series that has points there.
  out += ",\"series\":[";
  bool first = true;
  for (const auto& [name, series] : store.series()) {
    std::vector<TimeSeriesPoint> points =
        series.Since(now - config_.lookback_seconds);
    if (points.empty()) continue;
    if (!first) out += ',';
    first = false;
    AppendSeriesJson(name, series.evicted(), points, &out);
  }
  out += ']';

  // Trace tail: the newest max_trace_events events.
  std::vector<TraceEvent> traces = registry.traces().Snapshot();
  if (traces.size() > config_.max_trace_events) {
    traces.erase(traces.begin(),
                 traces.end() - static_cast<ptrdiff_t>(config_.max_trace_events));
  }
  out += ",\"traces\":" + SerializeTracesJson(traces);
  out += ",\"dropped_traces\":" + std::to_string(registry.traces().dropped());

  // What moved since ArmBaseline(): counter and histogram-count deltas,
  // gauge deltas — changed metrics only. Windowed histogram quantiles are
  // deliberately absent (cumulative quantiles cannot be subtracted); the
  // series section above carries the quantile history instead.
  out += ",\"registry_delta\":[";
  first = true;
  ExportOptions options;
  options.filter = MetricFilter::kDeterministicOnly;
  for (const MetricSample& s : registry.Snapshot(options)) {
    auto it = baseline_.find(s.name);
    const MetricSample* base = it == baseline_.end() ? nullptr : &it->second;
    double delta = 0;
    const char* kind = "counter";
    switch (s.kind) {
      case MetricKind::kCounter:
        delta = static_cast<double>(s.counter_value) -
                static_cast<double>(base != nullptr ? base->counter_value : 0);
        break;
      case MetricKind::kGauge:
        kind = "gauge";
        delta = s.gauge_value - (base != nullptr ? base->gauge_value : 0.0);
        break;
      case MetricKind::kHistogram:
        kind = "histogram";
        delta = static_cast<double>(s.count) -
                static_cast<double>(base != nullptr ? base->count : 0);
        break;
    }
    if (delta == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonEscaped(s.name, &out);
    out += ",\"kind\":\"";
    out += kind;
    out += "\",\"delta\":" + FormatJsonDouble(delta) + '}';
  }
  out += "]}";
  dumps_.push_back(out);
  return out;
}

}  // namespace sgp
