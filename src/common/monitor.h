#ifndef SGP_COMMON_MONITOR_H_
#define SGP_COMMON_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/telemetry.h"

namespace sgp {

/// Live-monitoring layer on top of MetricsRegistry. The end-of-run
/// snapshots of telemetry.h answer "what happened over the whole run";
/// this header answers "what is happening now": periodic samples of the
/// registry into bounded time series, SLO burn-rate alerting over sliding
/// windows, and a flight recorder that serializes a post-mortem the
/// moment something goes wrong. Every piece is driven by a caller-owned
/// clock (the simulators pass simulated seconds), so given identical
/// seeds the sampled series, the alert stream, and every dump are
/// byte-identical (see docs/OBSERVABILITY.md).

// ---------------------------------------------------------------------------
// Time series
// ---------------------------------------------------------------------------

/// One sampled point on the producer's clock.
struct TimeSeriesPoint {
  double time = 0;
  double value = 0;

  bool operator==(const TimeSeriesPoint&) const = default;
};

/// Bounded ring of points. A monitor wants the freshest window, so —
/// unlike TraceBuffer, which rejects appends at capacity — appends past
/// capacity evict the oldest point; evicted() counts the evictions.
class TimeSeries {
 public:
  explicit TimeSeries(size_t capacity = 4096);

  void Append(double time, double value);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  uint64_t evicted() const { return evicted_; }

  /// i-th retained point, 0 = oldest.
  const TimeSeriesPoint& At(size_t i) const;

  /// Most recent point (size() must be > 0).
  const TimeSeriesPoint& Back() const;

  /// Retained points, oldest first.
  std::vector<TimeSeriesPoint> Points() const;

  /// Retained points with time >= `time`, oldest first — the flight
  /// recorder's lookback query.
  std::vector<TimeSeriesPoint> Since(double time) const;

 private:
  std::vector<TimeSeriesPoint> ring_;
  size_t capacity_;
  size_t head_ = 0;  // index of the oldest point once the ring is full
  size_t size_ = 0;
  uint64_t evicted_ = 0;
};

struct TimeSeriesStoreOptions {
  /// Ring capacity of every series.
  size_t capacity_per_series = 4096;

  /// Which metrics to sample. The default excludes wall-clock metrics so
  /// sampled series are deterministic per seed.
  MetricFilter filter = MetricFilter::kDeterministicOnly;
};

/// Samples a MetricsRegistry into one bounded TimeSeries per signal:
///  - counter `c`            → series `c` of per-interval deltas
///  - gauge `g`              → series `g` of sampled values
///  - histogram `h`          → series `h.count` (per-interval delta of the
///                             sample count) plus `h.p50` / `h.p99` /
///                             `h.p999` quantile snapshots
/// The first observation of a cumulative signal establishes its baseline
/// and appends a zero delta, so sampling a registry that already carries
/// state from earlier runs starts every delta series clean.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(const TimeSeriesStoreOptions& options = {});

  /// Takes one sample of `registry` at time `now`.
  void Sample(const MetricsRegistry& registry, double now);

  /// Number of Sample() calls so far.
  uint64_t num_samples() const { return num_samples_; }

  /// Series registered under `name`, or nullptr.
  const TimeSeries* Find(std::string_view name) const;

  /// All series, name-ordered.
  const std::map<std::string, TimeSeries, std::less<>>& series() const {
    return series_;
  }

 private:
  TimeSeries& SeriesFor(const std::string& name);
  void AppendDelta(const std::string& name, double now, double cumulative);

  TimeSeriesStoreOptions options_;
  std::map<std::string, TimeSeries, std::less<>> series_;
  std::map<std::string, double, std::less<>> baselines_;
  uint64_t num_samples_ = 0;
};

/// JSON document {"schema":"sgp.timeseries.v1","samples":N,"series":[...]}
/// — series name-ordered, every point a [time, value] pair, doubles in
/// shortest round-trippable form. Byte-identical for identical stores.
std::string ExportTimeSeriesJson(const TimeSeriesStore& store);

// ---------------------------------------------------------------------------
// SLO burn-rate alerting
// ---------------------------------------------------------------------------

/// What an SloConfig objective means:
///  - kAvailability: `objective` is the target success fraction (0.999 →
///    an error budget of 0.1% of queries).
///  - kLatencyP99 / kLatencyP999: `objective` is the latency target in
///    seconds that 99% / 99.9% of successful queries must meet; queries
///    over the target spend the (1% / 0.1%) tail budget.
enum class SloKind : uint8_t { kAvailability, kLatencyP99, kLatencyP999 };

const char* SloKindName(SloKind kind);

struct SloConfig {
  std::string name;  // alert label, e.g. "availability" or "latency-p999"
  SloKind kind = SloKind::kAvailability;
  double objective = 0.999;

  /// Multi-window burn-rate alerting (the SRE-workbook policy): the burn
  /// rate is (budget-consumption rate) / (sustainable rate), i.e. a burn
  /// of 1.0 spends exactly the budget. An alert fires only when BOTH the
  /// short and the long window burn at `burn_threshold` or more — the
  /// long window proves the problem is sustained, the short window makes
  /// the alert reset quickly once the problem clears.
  double short_window = 5.0;  // seconds on the caller's clock
  double long_window = 60.0;
  double burn_threshold = 2.0;
};

/// One fired burn-rate alert.
struct Alert {
  std::string slo;  // SloConfig::name
  SloKind kind = SloKind::kAvailability;
  double time = 0;
  double short_burn = 0;
  double long_burn = 0;

  /// Caller-supplied context captured at fire time (the event simulator
  /// annotates the active reshard phase, e.g. "reshard=copying").
  std::string detail;

  bool operator==(const Alert&) const = default;
};

/// Evaluates a set of SLOs over a sliding window of query outcomes.
/// Single-threaded by design: the owner feeds it from one clock domain
/// (the simulator's event loop). An SLO that is firing re-arms when its
/// short-window burn drops back under the threshold, so a sustained
/// outage produces one alert, not one per evaluation tick.
class SloTracker {
 public:
  explicit SloTracker(std::vector<SloConfig> slos);

  /// Records one finished query: `ok` is the outcome, `latency_seconds`
  /// its client-observed latency (used by latency SLOs only when ok).
  void RecordQuery(double now, bool ok, double latency_seconds);

  /// Evaluates every SLO at `now`. Newly fired alerts (stamped with
  /// `detail`) are appended to alerts() and returned.
  std::vector<Alert> Evaluate(double now, std::string_view detail = {});

  /// Burn rate of slos()[i] over the trailing `window` ending at `now`.
  /// 0 when the window holds no relevant outcome.
  double BurnRate(size_t i, double now, double window) const;

  const std::vector<SloConfig>& slos() const { return slos_; }
  const std::vector<Alert>& alerts() const { return alerts_; }

 private:
  struct Outcome {
    double time = 0;
    double latency = 0;
    bool ok = false;
  };

  std::vector<SloConfig> slos_;
  std::vector<char> firing_;  // hysteresis state per SLO
  std::deque<Outcome> outcomes_;
  double max_window_ = 0;
  std::vector<Alert> alerts_;
};

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

struct FlightRecorderConfig {
  /// How much trailing time series each dump carries.
  double lookback_seconds = 10.0;

  /// Newest trace events included in a dump (the trace *tail*).
  size_t max_trace_events = 64;

  /// Hard cap on dumps per recorder; further triggers are counted in
  /// suppressed() instead of serialized, so a persistent failure cannot
  /// flood the run with post-mortems.
  size_t max_dumps = 8;
};

/// Serializes a deterministic post-mortem ("black box") when something
/// goes wrong: the last lookback_seconds of every time series, the trace
/// tail, and the registry delta since ArmBaseline(). Schema
/// "sgp.blackbox.v1"; see docs/OBSERVABILITY.md for the exact layout.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderConfig& config = {});

  /// Captures the registry snapshot that subsequent dumps diff against
  /// (deterministic metrics only). Call once at run start.
  void ArmBaseline(const MetricsRegistry& registry);

  /// Serializes one dump and retains it in dumps(). Returns the empty
  /// string (and counts the trigger in suppressed()) once max_dumps is
  /// reached.
  std::string Dump(std::string_view reason, double now,
                   const TimeSeriesStore& store,
                   const MetricsRegistry& registry);

  const std::vector<std::string>& dumps() const { return dumps_; }
  uint64_t suppressed() const { return suppressed_; }

 private:
  FlightRecorderConfig config_;
  std::map<std::string, MetricSample, std::less<>> baseline_;
  std::vector<std::string> dumps_;
  uint64_t suppressed_ = 0;
};

}  // namespace sgp

#endif  // SGP_COMMON_MONITOR_H_
