#include "common/random.h"

#include <cmath>

namespace sgp {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SGP_DCHECK(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  SGP_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformReal() {
  // 53 random bits into the mantissa.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(uint64_t n, double skew) : n_(n), skew_(skew) {
  SGP_CHECK(n >= 1);
  SGP_CHECK(skew >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -skew));
}

double ZipfSampler::H(double x) const {
  if (skew_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - skew_) - 1.0) / (1.0 - skew_);
}

double ZipfSampler::HInverse(double x) const {
  if (skew_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - skew_), 1.0 / (1.0 - skew_));
}

uint64_t ZipfSampler::Sample(Rng& rng) {
  if (skew_ == 0.0 || n_ == 1) return rng.UniformInt(n_);
  while (true) {
    double u = h_n_ + rng.UniformReal() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -skew_)) {
      return k - 1;  // map rank 1..n to id 0..n-1
    }
  }
}

}  // namespace sgp
