#ifndef SGP_COMMON_RANDOM_H_
#define SGP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sgp {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded through
/// splitmix64). All randomized components of the library take an explicit
/// seed so that every experiment is reproducible bit-for-bit.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator; the same seed always yields the same stream.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// unbiased multiply-shift reduction.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Samples from a Zipf distribution over {0, 1, ..., n-1} with exponent
/// `skew` (skew = 0 degenerates to uniform). Rank r is drawn with
/// probability proportional to 1/(r+1)^skew. Uses the rejection-inversion
/// method of Hörmann and Derflinger, which needs O(1) state and no
/// precomputed table, so it scales to very large n.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double skew);

  /// Draws one sample in [0, n).
  uint64_t Sample(Rng& rng);

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double skew_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace sgp

#endif  // SGP_COMMON_RANDOM_H_
