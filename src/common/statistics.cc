#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sgp {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  SGP_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

DistributionSummary Summarize(std::vector<double> values) {
  DistributionSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.p25 = QuantileSorted(values, 0.25);
  s.median = QuantileSorted(values, 0.50);
  s.p75 = QuantileSorted(values, 0.75);
  s.p99 = QuantileSorted(values, 0.99);
  s.p999 = QuantileSorted(values, 0.999);
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  var /= static_cast<double>(values.size());
  s.stddev = std::sqrt(var);
  return s;
}

}  // namespace sgp
