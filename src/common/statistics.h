#ifndef SGP_COMMON_STATISTICS_H_
#define SGP_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace sgp {

/// Five-number summary plus moments of a sample, as used by the paper's
/// box-plot style figures (Figures 4, 7 and 15 report min / p25 / median /
/// p75 / max of per-worker load distributions).
struct DistributionSummary {
  size_t count = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;

  /// Relative standard deviation (stddev / mean), the load-imbalance measure
  /// of Figure 8. Zero when the mean is zero.
  double RelativeStdDev() const { return mean == 0 ? 0 : stddev / mean; }

  /// max / mean, the classical load-imbalance factor of Section 4.1.
  double ImbalanceFactor() const { return mean == 0 ? 0 : max / mean; }
};

/// Linear-interpolated quantile of `values` (q in [0, 1]). The input does
/// not need to be sorted; a sorted copy is made internally.
double Quantile(std::vector<double> values, double q);

/// Quantile of an already-sorted sample (no copy).
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Computes the full summary of `values`. Returns a default (zero) summary
/// for an empty input.
DistributionSummary Summarize(std::vector<double> values);

}  // namespace sgp

#endif  // SGP_COMMON_STATISTICS_H_
