#include "common/table_printer.h"

#include <cstdint>
#include <cstdio>

#include "common/check.h"

namespace sgp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SGP_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SGP_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatCount(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int pos = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
    if (pos > 0 && pos % 3 == 0) out.push_back(',');
    out.push_back(*it);
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace sgp
