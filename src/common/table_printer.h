#ifndef SGP_COMMON_TABLE_PRINTER_H_
#define SGP_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sgp {

/// Aligned console table, used by the benchmark harnesses to print the
/// paper's tables and figure series in a readable fixed-width format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Writes the table with a header rule and right-padded columns.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

/// Formats a count with thousands separators (e.g., 1,234,567).
std::string FormatCount(uint64_t value);

}  // namespace sgp

#endif  // SGP_COMMON_TABLE_PRINTER_H_
