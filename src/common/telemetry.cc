#include "common/telemetry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace sgp {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(const HistogramOptions& options) : options_(options) {
  SGP_CHECK(options_.min_bound > 0);
  SGP_CHECK(options_.max_bound > options_.min_bound);
  SGP_CHECK(options_.buckets_per_decade > 0);
  const double decades =
      std::log10(options_.max_bound) - std::log10(options_.min_bound);
  const size_t spans = static_cast<size_t>(
      std::ceil(decades * options_.buckets_per_decade - 1e-9));
  // Bucket i covers (upper_bounds_[i-1], upper_bounds_[i]]; bucket 0 is
  // the underflow bucket (0, min_bound] and the last bucket is the
  // overflow bucket (max_bound, +inf).
  upper_bounds_.reserve(spans + 1);
  upper_bounds_.push_back(options_.min_bound);
  for (size_t i = 1; i <= spans; ++i) {
    upper_bounds_.push_back(
        options_.min_bound *
        std::pow(10.0, static_cast<double>(i) /
                           options_.buckets_per_decade));
  }
  upper_bounds_.back() = options_.max_bound;  // kill pow() rounding slack
  counts_ = std::vector<std::atomic<uint64_t>>(upper_bounds_.size() + 1);
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
  double m = min_.load(std::memory_order_relaxed);
  while (value < m &&
         !min_.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
  }
  double M = max_.load(std::memory_order_relaxed);
  while (value > M &&
         !max_.compare_exchange_weak(M, value, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::BucketUpperBound(size_t i) const {
  return i < upper_bounds_.size()
             ? upper_bounds_[i]
             : std::numeric_limits<double>::infinity();
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target over the bucket CDF, interpolated geometrically
  // inside the containing bucket (log-spacing makes the geometric mean
  // the minimax choice).
  const double target = q * static_cast<double>(n - 1) + 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(cumulative + c) >= target) {
      const double lo = i == 0 ? options_.min_bound : upper_bounds_[i - 1];
      const double hi = i < upper_bounds_.size()
                            ? upper_bounds_[i]
                            : max_.load(std::memory_order_relaxed);
      const double estimate =
          hi > lo ? std::sqrt(lo * std::max(hi, lo)) : lo;
      return std::clamp(estimate, min(), max());
    }
    cumulative += c;
  }
  return max();
}

void Histogram::MergeFrom(const Histogram& other) {
  SGP_CHECK(options_.min_bound == other.options_.min_bound &&
            options_.max_bound == other.options_.max_bound &&
            options_.buckets_per_decade == other.options_.buckets_per_decade);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  const double add = other.sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + add,
                                     std::memory_order_relaxed)) {
  }
  if (other.count() > 0) {
    const double omin = other.min_.load(std::memory_order_relaxed);
    double m = min_.load(std::memory_order_relaxed);
    while (omin < m &&
           !min_.compare_exchange_weak(m, omin, std::memory_order_relaxed)) {
    }
    const double omax = other.max_.load(std::memory_order_relaxed);
    double M = max_.load(std::memory_order_relaxed);
    while (omax > M &&
           !max_.compare_exchange_weak(M, omax, std::memory_order_relaxed)) {
    }
  }
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<std::pair<uint32_t, uint64_t>> Histogram::NonZeroBuckets() const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(static_cast<uint32_t>(i), c);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {}

TraceBuffer::TraceBuffer(const TraceBuffer& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = other.events_;
  capacity_ = other.capacity_;
  dropped_ = other.dropped_;
  next_id_ = other.next_id_;
}

TraceBuffer& TraceBuffer::operator=(const TraceBuffer& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  events_ = other.events_;
  capacity_ = other.capacity_;
  dropped_ = other.dropped_;
  next_id_ = other.next_id_;
  return *this;
}

TraceBuffer::TraceBuffer(TraceBuffer&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = std::move(other.events_);
  capacity_ = other.capacity_;
  dropped_ = other.dropped_;
  next_id_ = other.next_id_;
  other.events_.clear();
  other.dropped_ = 0;
  other.next_id_ = 0;
}

TraceBuffer& TraceBuffer::operator=(TraceBuffer&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  events_ = std::move(other.events_);
  capacity_ = other.capacity_;
  dropped_ = other.dropped_;
  next_id_ = other.next_id_;
  other.events_.clear();
  other.dropped_ = 0;
  other.next_id_ = 0;
  return *this;
}

bool TraceBuffer::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(event));
  return true;
}

uint32_t TraceBuffer::NextId() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_++;
}

double TraceBuffer::NowSeconds() const { return epoch_.ElapsedSeconds(); }

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceBuffer::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  next_id_ = 0;
  epoch_.Reset();
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

namespace {

thread_local std::vector<uint32_t> t_span_stack;

}  // namespace

Span::Span(TraceBuffer* buffer, std::string name)
    : buffer_(buffer), name_(std::move(name)) {
  if (buffer_ == nullptr) return;
  start_ = buffer_->NowSeconds();
  id_ = buffer_->NextId();
  parent_ = t_span_stack.empty() ? TraceEvent::kNoParent : t_span_stack.back();
  depth_ = static_cast<uint32_t>(t_span_stack.size());
  t_span_stack.push_back(id_);
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  t_span_stack.pop_back();
  TraceEvent event;
  event.name = std::move(name_);
  event.start = start_;
  event.end = buffer_->NowSeconds();
  event.id = id_;
  event.parent = parent_;
  event.depth = depth_;
  buffer_->Append(std::move(event));
}

uint32_t Span::CurrentDepth() {
  return static_cast<uint32_t>(t_span_stack.size());
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

std::atomic<uint64_t> g_next_registry_id{1};

thread_local MetricsRegistry* t_current_registry = nullptr;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry& MetricsRegistry::Current() {
  return t_current_registry != nullptr ? *t_current_registry : Global();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(t_current_registry) {
  t_current_registry = registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  t_current_registry = previous_;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreateLocked(
    std::string_view name, MetricKind kind, const MetricOptions& options) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.wall_time = options.wall_time;
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(options.histogram);
        break;
    }
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  SGP_CHECK(it->second.kind == kind);
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const MetricOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name, MetricKind::kCounter, options)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const MetricOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name, MetricKind::kGauge, options)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const MetricOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreateLocked(name, MetricKind::kHistogram, options)
      ->histogram.get();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  if (&other == this) return;
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, theirs] : other.metrics_) {
    MetricOptions options;
    options.wall_time = theirs.wall_time;
    if (theirs.kind == MetricKind::kHistogram) {
      options.histogram = theirs.histogram->options();
    }
    Entry* mine = FindOrCreateLocked(name, theirs.kind, options);
    switch (theirs.kind) {
      case MetricKind::kCounter:
        mine->counter->Increment(theirs.counter->value());
        break;
      case MetricKind::kGauge:
        mine->gauge->Add(theirs.gauge->value());
        break;
      case MetricKind::kHistogram:
        mine->histogram->MergeFrom(*theirs.histogram);
        break;
    }
  }
  // Trace events keep their producer-side ids; consumers treat id/parent
  // as meaningful only within one producing registry.
  for (TraceEvent& event : other.traces_.Snapshot()) {
    traces_.Append(std::move(event));
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
  traces_.Clear();
}

std::vector<MetricSample> MetricsRegistry::Snapshot(
    const ExportOptions& options) const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    if (options.filter == MetricFilter::kDeterministicOnly && entry.wall_time) {
      continue;
    }
    if (options.filter == MetricFilter::kWallTimeOnly && !entry.wall_time) {
      continue;
    }
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    sample.wall_time = entry.wall_time;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge_value = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        sample.count = h.count();
        sample.sum = h.sum();
        sample.min = h.min();
        sample.max = h.max();
        sample.mean = h.mean();
        sample.p50 = h.Quantile(0.50);
        sample.p90 = h.Quantile(0.90);
        sample.p99 = h.Quantile(0.99);
        sample.p999 = h.Quantile(0.999);
        sample.h_min_bound = h.options().min_bound;
        sample.h_max_bound = h.options().max_bound;
        sample.h_buckets_per_decade = h.options().buckets_per_decade;
        sample.buckets = h.NonZeroBuckets();
        break;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

// Shortest decimal form that round-trips the double exactly, so exports
// are byte-stable across runs of the same binary.
std::string FormatJsonDouble(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void AppendSample(const MetricSample& s, std::string* out) {
  *out += "{\"name\":";
  AppendJsonEscaped(s.name, out);
  *out += ",\"kind\":\"";
  *out += KindName(s.kind);
  *out += "\",\"wall_time\":";
  *out += s.wall_time ? "true" : "false";
  char buf[64];
  switch (s.kind) {
    case MetricKind::kCounter:
      std::snprintf(buf, sizeof(buf), ",\"value\":%llu",
                    static_cast<unsigned long long>(s.counter_value));
      *out += buf;
      break;
    case MetricKind::kGauge:
      *out += ",\"value\":";
      *out += FormatJsonDouble(s.gauge_value);
      break;
    case MetricKind::kHistogram:
      std::snprintf(buf, sizeof(buf), ",\"count\":%llu",
                    static_cast<unsigned long long>(s.count));
      *out += buf;
      *out += ",\"sum\":" + FormatJsonDouble(s.sum);
      *out += ",\"min\":" + FormatJsonDouble(s.min);
      *out += ",\"max\":" + FormatJsonDouble(s.max);
      *out += ",\"mean\":" + FormatJsonDouble(s.mean);
      *out += ",\"p50\":" + FormatJsonDouble(s.p50);
      *out += ",\"p90\":" + FormatJsonDouble(s.p90);
      *out += ",\"p99\":" + FormatJsonDouble(s.p99);
      *out += ",\"p999\":" + FormatJsonDouble(s.p999);
      *out += ",\"min_bound\":" + FormatJsonDouble(s.h_min_bound);
      *out += ",\"max_bound\":" + FormatJsonDouble(s.h_max_bound);
      std::snprintf(buf, sizeof(buf), ",\"buckets_per_decade\":%u",
                    s.h_buckets_per_decade);
      *out += buf;
      *out += ",\"buckets\":[";
      for (size_t i = 0; i < s.buckets.size(); ++i) {
        if (i > 0) out->push_back(',');
        std::snprintf(buf, sizeof(buf), "[%u,%llu]", s.buckets[i].first,
                      static_cast<unsigned long long>(s.buckets[i].second));
        *out += buf;
      }
      out->push_back(']');
      break;
  }
  out->push_back('}');
}

}  // namespace

std::string SerializeMetricsArrayJson(
    const std::vector<MetricSample>& metrics) {
  std::string out = "[";
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) out += ",\n ";
    AppendSample(metrics[i], &out);
  }
  out += "]";
  return out;
}

std::string SerializeTracesJson(const std::vector<TraceEvent>& events) {
  std::string out = "[";
  char buf[96];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",\n ";
    out += "{\"name\":";
    AppendJsonEscaped(e.name, &out);
    out += ",\"start\":" + FormatJsonDouble(e.start);
    out += ",\"end\":" + FormatJsonDouble(e.end);
    std::snprintf(buf, sizeof(buf),
                  ",\"id\":%u,\"parent\":%u,\"depth\":%u,\"args\":[", e.id,
                  e.parent, e.depth);
    out += buf;
    for (size_t a = 0; a < e.args.size(); ++a) {
      if (a > 0) out.push_back(',');
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(e.args[a]));
      out += buf;
    }
    out += "]}";
  }
  out += "]";
  return out;
}

std::string MetricsRegistry::ExportJson(const ExportOptions& options) const {
  std::string out = "{\"schema\":\"sgp.metrics.v1\",\"metrics\":";
  out += SerializeMetricsArrayJson(Snapshot(options));
  if (options.include_traces) {
    out += ",\"traces\":";
    out += SerializeTracesJson(traces_.Snapshot());
    // Appends rejected at capacity: without this a capped long-run trace
    // silently looks complete.
    out += ",\"dropped_traces\":" + std::to_string(traces_.dropped());
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::ExportCsv(const ExportOptions& options) const {
  std::string out =
      "name,kind,wall_time,value,count,sum,min,max,mean,p50,p90,p99,p999\n";
  for (const MetricSample& s : Snapshot(options)) {
    out += s.name;
    out += ',';
    out += KindName(s.kind);
    out += ',';
    out += s.wall_time ? '1' : '0';
    out += ',';
    if (s.kind == MetricKind::kCounter) {
      out += std::to_string(s.counter_value);
    } else if (s.kind == MetricKind::kGauge) {
      out += FormatJsonDouble(s.gauge_value);
    } else {
      out += '0';
    }
    out += ',' + std::to_string(s.count);
    out += ',' + FormatJsonDouble(s.sum);
    out += ',' + FormatJsonDouble(s.min);
    out += ',' + FormatJsonDouble(s.max);
    out += ',' + FormatJsonDouble(s.mean);
    out += ',' + FormatJsonDouble(s.p50);
    out += ',' + FormatJsonDouble(s.p90);
    out += ',' + FormatJsonDouble(s.p99);
    out += ',' + FormatJsonDouble(s.p999);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// minijson
// ---------------------------------------------------------------------------

namespace minijson {

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        char e = text[pos++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            // Pass the escape through verbatim; the exporters only emit
            // \u00XX control escapes and tests compare parsed numbers.
            out->append("\\u");
            out->append(text.substr(pos, 4));
            pos += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == 'n') {
      out->type = Value::Type::kNull;
      return Literal("null");
    }
    if (c == 't') {
      out->type = Value::Type::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->type = Value::Type::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == '"') {
      out->type = Value::Type::kString;
      return ParseString(&out->string);
    }
    if (c == '[') {
      ++pos;
      out->type = Value::Type::kArray;
      SkipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Value element;
        if (!ParseValue(&element)) return false;
        out->array.push_back(std::move(element));
        SkipWs();
        if (pos >= text.size()) return false;
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == ']') {
          ++pos;
          return true;
        }
        return false;
      }
    }
    if (c == '{') {
      ++pos;
      out->type = Value::Type::kObject;
      SkipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos >= text.size() || text[pos] != ':') return false;
        ++pos;
        Value value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos >= text.size()) return false;
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == '}') {
          ++pos;
          return true;
        }
        return false;
      }
    }
    // Number.
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return false;
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    out->type = Value::Type::kNumber;
    out->number = std::strtod(num.c_str(), &end);
    return end != nullptr && *end == '\0';
  }
};

}  // namespace

const Value* Value::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Parse(std::string_view text, Value* out) {
  Parser parser{text};
  Value value;
  if (!parser.ParseValue(&value)) return false;
  parser.SkipWs();
  if (parser.pos != text.size()) return false;
  *out = std::move(value);
  return true;
}

}  // namespace minijson

// ---------------------------------------------------------------------------
// ParseMetricsJson
// ---------------------------------------------------------------------------

namespace {

double NumberOr(const minijson::Value* v, double fallback) {
  return v != nullptr && v->type == minijson::Value::Type::kNumber ? v->number
                                                                   : fallback;
}

// Finds the first "metrics" array anywhere in the document (top level or
// one level down, covering both the registry export and BENCH_*.json).
const minijson::Value* FindMetricsArray(const minijson::Value& root) {
  if (root.type == minijson::Value::Type::kArray) return &root;
  const minijson::Value* direct = root.Find("metrics");
  if (direct != nullptr && direct->type == minijson::Value::Type::kArray) {
    return direct;
  }
  for (const auto& [key, value] : root.object) {
    if (value.type == minijson::Value::Type::kObject) {
      const minijson::Value* nested = value.Find("metrics");
      if (nested != nullptr &&
          nested->type == minijson::Value::Type::kArray) {
        return nested;
      }
    }
  }
  return nullptr;
}

}  // namespace

bool ParseMetricsJson(std::string_view text, std::vector<MetricSample>* out) {
  minijson::Value root;
  if (!minijson::Parse(text, &root)) return false;
  const minijson::Value* metrics = FindMetricsArray(root);
  if (metrics == nullptr) return false;
  std::vector<MetricSample> result;
  result.reserve(metrics->array.size());
  for (const minijson::Value& m : metrics->array) {
    if (m.type != minijson::Value::Type::kObject) return false;
    MetricSample sample;
    const minijson::Value* name = m.Find("name");
    const minijson::Value* kind = m.Find("kind");
    if (name == nullptr || name->type != minijson::Value::Type::kString ||
        kind == nullptr || kind->type != minijson::Value::Type::kString) {
      return false;
    }
    sample.name = name->string;
    const minijson::Value* wall = m.Find("wall_time");
    sample.wall_time = wall != nullptr &&
                       wall->type == minijson::Value::Type::kBool &&
                       wall->boolean;
    if (kind->string == "counter") {
      sample.kind = MetricKind::kCounter;
      sample.counter_value =
          static_cast<uint64_t>(NumberOr(m.Find("value"), 0));
    } else if (kind->string == "gauge") {
      sample.kind = MetricKind::kGauge;
      sample.gauge_value = NumberOr(m.Find("value"), 0);
    } else if (kind->string == "histogram") {
      sample.kind = MetricKind::kHistogram;
      sample.count = static_cast<uint64_t>(NumberOr(m.Find("count"), 0));
      sample.sum = NumberOr(m.Find("sum"), 0);
      sample.min = NumberOr(m.Find("min"), 0);
      sample.max = NumberOr(m.Find("max"), 0);
      sample.mean = NumberOr(m.Find("mean"), 0);
      sample.p50 = NumberOr(m.Find("p50"), 0);
      sample.p90 = NumberOr(m.Find("p90"), 0);
      sample.p99 = NumberOr(m.Find("p99"), 0);
      sample.p999 = NumberOr(m.Find("p999"), 0);
      sample.h_min_bound = NumberOr(m.Find("min_bound"), 0);
      sample.h_max_bound = NumberOr(m.Find("max_bound"), 0);
      sample.h_buckets_per_decade =
          static_cast<uint32_t>(NumberOr(m.Find("buckets_per_decade"), 0));
      const minijson::Value* buckets = m.Find("buckets");
      if (buckets != nullptr &&
          buckets->type == minijson::Value::Type::kArray) {
        for (const minijson::Value& pair : buckets->array) {
          if (pair.type != minijson::Value::Type::kArray ||
              pair.array.size() != 2) {
            return false;
          }
          sample.buckets.emplace_back(
              static_cast<uint32_t>(pair.array[0].number),
              static_cast<uint64_t>(pair.array[1].number));
        }
      }
    } else {
      return false;
    }
    result.push_back(std::move(sample));
  }
  *out = std::move(result);
  return true;
}

}  // namespace sgp
