#ifndef SGP_COMMON_TELEMETRY_H_
#define SGP_COMMON_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace sgp {

/// Unified metrics & tracing layer. The paper's contribution is
/// *measurement* — communication volume, replication factor, latency
/// quantiles, load imbalance — so the library instruments itself: every
/// subsystem publishes counters, gauges and histograms into a
/// MetricsRegistry, and the benchmark harnesses export machine-readable
/// snapshots (BENCH_*.json) next to their human tables.
///
/// Naming convention: `subsystem.metric.unit`, e.g.
/// `engine.network.bytes`, `graphdb.query_latency.one_hop.sim_seconds`.
/// The unit suffix distinguishes simulated clocks (`sim_seconds`,
/// deterministic given identical seeds) from wall clocks (`wall_seconds`,
/// never deterministic). Wall-clock metrics must additionally be
/// registered with MetricOptions::wall_time so deterministic exports can
/// exclude them (see docs/OBSERVABILITY.md).

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonic event counter. Increments are relaxed atomics — safe from any
/// thread, never a lock on a hot path. Negative deltas are ignored and
/// additions saturate at the maximum instead of wrapping, so a counter
/// read is always a valid event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    uint64_t next;
    do {
      next = cur > std::numeric_limits<uint64_t>::max() - delta
                 ? std::numeric_limits<uint64_t>::max()  // saturate
                 : cur + delta;
    } while (!value_.compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
  }

  /// Signed convenience entry point; negative deltas are dropped (a
  /// counter is monotonic by contract).
  void Add(int64_t delta) {
    if (delta > 0) Increment(static_cast<uint64_t>(delta));
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written / accumulated double value (e.g. barrier-wait seconds,
/// replication factor). Set and Add are atomic (CAS loop — portable, no
/// lock).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced bucket layout of a Histogram. The default covers 1 ns to
/// ~17 min (1e-9 .. 1e3 seconds) at 32 buckets per decade, i.e. a worst
/// case relative quantile error of 10^(1/32) − 1 ≈ 7.5% (half that with
/// the geometric-midpoint interpolation the quantile query uses).
struct HistogramOptions {
  double min_bound = 1e-9;
  double max_bound = 1e3;
  uint32_t buckets_per_decade = 32;
};

/// Fixed-bucket histogram with log-spaced boundaries. Recording is a
/// binary search plus relaxed atomic increments — thread-safe and
/// lock-free. Because the bucket layout is fixed at construction, merging
/// two histograms (MergeFrom) is exact: the merged quantiles are
/// bit-identical to a histogram that recorded the concatenated samples.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  /// Records one sample. NaN is ignored; values at or below min_bound
  /// land in the underflow bucket, values above max_bound in the overflow
  /// bucket — count/sum/min/max stay exact either way.
  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;

  /// Quantile estimate (q in [0,1]) by geometric interpolation inside the
  /// containing bucket, clamped to the exact observed [min, max].
  double Quantile(double q) const;

  /// Adds `other`'s samples into this histogram. Both must share the same
  /// bucket layout (checked).
  void MergeFrom(const Histogram& other);

  void Reset();

  const HistogramOptions& options() const { return options_; }

  /// Upper bound of bucket `i` (the last bucket's bound is +inf).
  double BucketUpperBound(size_t i) const;
  size_t num_buckets() const { return counts_.size(); }
  uint64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// (bucket index, count) for every non-empty bucket, ascending index.
  std::vector<std::pair<uint32_t, uint64_t>> NonZeroBuckets() const;

 private:
  HistogramOptions options_;
  std::vector<double> upper_bounds_;  // ascending; size = buckets - 1
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One completed span or event. `start`/`end` are seconds on a
/// producer-defined clock: wall seconds since the buffer epoch for Span,
/// simulated seconds for the discrete-event simulators. `args` carries
/// four producer-defined payload slots (the query simulator stores
/// binding / coordinator / reads / rounds).
struct TraceEvent {
  static constexpr uint32_t kNoParent = 0xffffffffu;

  std::string name;
  double start = 0;
  double end = 0;
  uint32_t id = 0;
  uint32_t parent = kNoParent;
  uint32_t depth = 0;
  std::array<uint64_t, 4> args{};
};

/// Bounded in-memory trace sink. Appends beyond the capacity are counted
/// in dropped() instead of growing the buffer, so tracing can stay on in
/// long runs with a hard memory cap.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1u << 16);
  TraceBuffer(const TraceBuffer& other);
  TraceBuffer& operator=(const TraceBuffer& other);
  TraceBuffer(TraceBuffer&& other) noexcept;
  TraceBuffer& operator=(TraceBuffer&& other) noexcept;

  /// Appends one event (assigning no id — callers that need ids draw them
  /// from NextId() first). Returns false and counts a drop when full.
  bool Append(TraceEvent event);

  /// Draws a fresh event id (monotonic per buffer).
  uint32_t NextId();

  /// Wall seconds since construction or the last Clear() — the epoch Span
  /// timestamps are relative to.
  double NowSeconds() const;

  size_t size() const;
  bool empty() const { return size() == 0; }
  size_t capacity() const;
  void set_capacity(size_t capacity);  // excess existing events are kept
  uint64_t dropped() const;
  void Clear();

  /// Copy of the buffered events, append order.
  std::vector<TraceEvent> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t capacity_;
  uint64_t dropped_ = 0;
  uint32_t next_id_ = 0;
  Timer epoch_;
};

/// RAII wall-clock span recorded into a TraceBuffer on destruction.
/// Nesting is tracked per thread: a span constructed while another span
/// is alive on the same thread records it as its parent. A null buffer
/// makes the span inert (zero-cost tracing opt-out).
class Span {
 public:
  Span(TraceBuffer* buffer, std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  uint32_t id() const { return id_; }

  /// Current nesting depth of the calling thread (0 = no open span).
  static uint32_t CurrentDepth();

 private:
  TraceBuffer* buffer_;
  std::string name_;
  double start_ = 0;
  uint32_t id_ = 0;
  uint32_t parent_ = TraceEvent::kNoParent;
  uint32_t depth_ = 0;
};

/// RAII wall-clock stopwatch recording its elapsed seconds into a
/// Histogram on destruction. Built on common/timer.h (one clock
/// implementation in the codebase). A null histogram makes it inert.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(timer_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed so far (for mid-scope checkpoints).
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  Histogram* histogram_;
  Timer timer_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricOptions {
  /// Marks a metric as wall-clock derived: excluded by deterministic
  /// exports (identical seeds then produce byte-identical snapshots).
  bool wall_time = false;

  /// Bucket layout for GetHistogram (ignored by counters/gauges, and by
  /// lookups of an already-registered histogram).
  HistogramOptions histogram;

  /// Options for a wall-clock metric (every ScopedTimer / Span-fed metric
  /// must use this so deterministic exports can exclude it).
  static MetricOptions WallClock() {
    MetricOptions options;
    options.wall_time = true;
    return options;
  }
};

enum class MetricFilter {
  kAll,
  kDeterministicOnly,  // excludes wall_time metrics
  kWallTimeOnly,
};

struct ExportOptions {
  MetricFilter filter = MetricFilter::kAll;
  bool include_traces = false;
};

/// One exported metric value — the unit of the JSON/CSV schema and of the
/// round-trip parser.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool wall_time = false;

  uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0;      // kGauge

  // kHistogram
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
  double h_min_bound = 0;
  double h_max_bound = 0;
  uint32_t h_buckets_per_decade = 0;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;  // non-empty only

  bool operator==(const MetricSample&) const = default;
};

/// Thread-safe registry of named metrics plus one trace buffer.
/// Registration (Get*) takes a lock and is meant for setup / cold paths;
/// the returned pointers are stable for the registry's lifetime and are
/// what hot paths use. Exports iterate metrics in name order, so a
/// snapshot of deterministic metrics is byte-identical across runs with
/// identical seeds.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry the library's built-in instrumentation
  /// publishes into.
  static MetricsRegistry& Global();

  /// The calling thread's active registry: the innermost
  /// ScopedMetricsRegistry on this thread, or Global() when none is
  /// installed. All built-in instrumentation publishes here, which is how
  /// the experiment grid isolates per-cell telemetry on worker threads.
  static MetricsRegistry& Current();

  /// Process-unique id (never 0). Lets callers cache metric pointers per
  /// registry and detect when the current registry changed (see
  /// CurrentRegistryMetrics).
  uint64_t id() const { return id_; }

  /// Folds `other`'s metrics into this registry: counters add, gauges add
  /// (the library's gauges are all accumulators), histograms merge
  /// exactly (same bucket layout required), and trace events are
  /// appended. Metrics missing here are registered with `other`'s kind,
  /// wall-time flag and bucket layout; a name registered under a
  /// different kind aborts. Merging the same registries in the same order
  /// is deterministic, so a serial run and a parallel run joined in
  /// canonical order export identical deterministic snapshots.
  void MergeFrom(const MetricsRegistry& other);

  /// Returns the metric registered under `name`, creating it on first
  /// use. Registering the same name under a different kind aborts.
  Counter* GetCounter(std::string_view name, const MetricOptions& options = {});
  Gauge* GetGauge(std::string_view name, const MetricOptions& options = {});
  Histogram* GetHistogram(std::string_view name,
                          const MetricOptions& options = {});

  TraceBuffer& traces() { return traces_; }
  const TraceBuffer& traces() const { return traces_; }

  /// Zeroes every registered metric and clears the trace buffer;
  /// registrations (and previously returned pointers) stay valid.
  void Reset();

  /// Name-ordered snapshot of the registered metrics.
  std::vector<MetricSample> Snapshot(
      const ExportOptions& options = {}) const;

  /// JSON document: {"schema":"sgp.metrics.v1","metrics":[...]} plus a
  /// "traces" array and a "dropped_traces" count (appends the buffer
  /// rejected at capacity) when options.include_traces. Deterministic:
  /// metrics are name-ordered and doubles print as shortest
  /// round-trippable form.
  std::string ExportJson(const ExportOptions& options = {}) const;

  /// CSV with a fixed header; one row per metric.
  std::string ExportCsv(const ExportOptions& options = {}) const;

 private:
  struct Entry {
    MetricKind kind;
    bool wall_time = false;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Lock-free lookup-or-create shared by the public Get* entry points and
  // MergeFrom (which already holds mu_).
  Entry* FindOrCreateLocked(std::string_view name, MetricKind kind,
                            const MetricOptions& options);

  const uint64_t id_;
  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
  TraceBuffer traces_;
};

/// RAII override of MetricsRegistry::Current() for the constructing
/// thread. Scopes nest; destruction restores the previous registry. The
/// experiment grid installs one per cell task so each cell's telemetry
/// lands in its own registry and can be merged deterministically at join.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();

  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Thread-local cache of a subsystem's metric-pointer struct, bound to
/// the calling thread's current registry and refreshed whenever that
/// registry changes. `Metrics` must be default-constructible,
/// copy-assignable, and constructible from `MetricsRegistry&` (the
/// registering constructor). The id check is two thread-local reads on
/// the hot path; registration only happens when a new registry is seen.
template <typename Metrics>
Metrics& CurrentRegistryMetrics() {
  thread_local Metrics metrics;
  thread_local uint64_t bound_id = 0;  // registry ids are never 0
  MetricsRegistry& registry = MetricsRegistry::Current();
  if (bound_id != registry.id()) {
    metrics = Metrics(registry);
    bound_id = registry.id();
  }
  return metrics;
}

/// Shortest decimal form that round-trips the double exactly — the one
/// double formatter every deterministic JSON export in the codebase uses
/// (byte-stable across runs of the same binary). NaN prints as null,
/// infinities as ±1e999.
std::string FormatJsonDouble(double v);

/// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Serializes a snapshot to the "metrics" JSON array (no enclosing
/// document) — what bench_util.h embeds into BENCH_*.json files.
std::string SerializeMetricsArrayJson(const std::vector<MetricSample>& metrics);

/// Serializes trace events to a JSON array.
std::string SerializeTracesJson(const std::vector<TraceEvent>& events);

/// Parses the "metrics" array out of any JSON document produced by
/// ExportJson / SerializeMetricsArrayJson / the BENCH_*.json writer
/// (unknown sibling keys are skipped). Returns false on malformed input.
bool ParseMetricsJson(std::string_view text, std::vector<MetricSample>* out);

// ---------------------------------------------------------------------------
// Minimal JSON value parser (validation + round-trip tooling)
// ---------------------------------------------------------------------------

namespace minijson {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member named `key`, or nullptr.
  const Value* Find(std::string_view key) const;
};

/// Strict parser for the JSON subset the exporters emit (no comments, no
/// trailing commas; \uXXXX escapes are passed through verbatim). Returns
/// false without touching `out` on malformed input or trailing garbage.
bool Parse(std::string_view text, Value* out);

}  // namespace minijson

}  // namespace sgp

#endif  // SGP_COMMON_TELEMETRY_H_
