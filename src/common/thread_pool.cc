#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace sgp {

ThreadPool::ThreadPool(const Options& options)
    : max_pending_(options.max_pending) {
  uint32_t n = options.num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    SGP_CHECK(!shutting_down_);
    if (max_pending_ > 0) {
      not_full_.wait(lock, [this] {
        return queue_.size() < max_pending_ || shutting_down_;
      });
      SGP_CHECK(!shutting_down_);
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock,
                      [this] { return shutting_down_ || !queue_.empty(); });
      // Drain: even when shutting down, keep taking tasks until the queue
      // is empty so every submitted future becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
  }
}

}  // namespace sgp
