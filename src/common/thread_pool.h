#ifndef SGP_COMMON_THREAD_POOL_H_
#define SGP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sgp {

/// Fixed-size work-queue thread pool. Tasks submitted through Submit()
/// run on one of `num_threads` workers and report their result — or the
/// exception they threw — through the returned std::future. The queue can
/// be bounded (`max_pending`), in which case Submit blocks the producer
/// until a slot frees up, giving natural backpressure when tasks are
/// produced faster than they run.
///
/// Shutdown is clean and drains: the destructor stops accepting new work,
/// lets the workers finish every task still in the queue, and joins them.
/// Every future obtained from Submit is therefore ready once the
/// destructor returns.
class ThreadPool {
 public:
  struct Options {
    /// Worker count; 0 means one worker per hardware thread.
    uint32_t num_threads = 0;

    /// Maximum queued (not yet running) tasks; 0 means unbounded. When
    /// the bound is reached, Submit blocks until a worker takes a task.
    size_t max_pending = 0;
  };

  explicit ThreadPool(uint32_t num_threads)
      : ThreadPool(Options{num_threads, 0}) {}
  explicit ThreadPool(const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns the future of its result. The future also
  /// carries any exception `fn` throws. Submitting to a pool whose
  /// destructor has started aborts.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Tasks currently queued (excludes tasks already running).
  size_t pending() const;

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t max_pending_ = 0;
  bool shutting_down_ = false;
};

}  // namespace sgp

#endif  // SGP_COMMON_THREAD_POOL_H_
