#ifndef SGP_COMMON_TIMER_H_
#define SGP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sgp {

/// Monotonic stopwatch used to time partitioning runs (the paper's
/// "partitioning time" metric, Section 4.1) and as the single clock
/// implementation behind the telemetry layer's ScopedTimer / Span.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed monotonic nanoseconds since construction or the last
  /// Reset(). The primitive the floating-point accessors derive from.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgp

#endif  // SGP_COMMON_TIMER_H_
