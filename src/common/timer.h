#ifndef SGP_COMMON_TIMER_H_
#define SGP_COMMON_TIMER_H_

#include <chrono>

namespace sgp {

/// Simple wall-clock stopwatch used to time partitioning runs (the paper's
/// "partitioning time" metric, Section 4.1).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgp

#endif  // SGP_COMMON_TIMER_H_
