#ifndef SGP_COMMON_TYPES_H_
#define SGP_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace sgp {

/// Identifier of a vertex. Vertices are dense integers in [0, num_vertices).
using VertexId = uint32_t;

/// Identifier of an edge. Edges are dense integers in [0, num_edges) in the
/// order they were added to the graph.
using EdgeId = uint64_t;

/// Identifier of a partition (worker machine). Partitions are dense integers
/// in [0, k).
using PartitionId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel for "not yet assigned to a partition".
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

/// A directed edge (source, target). Undirected graphs store each edge once
/// in a canonical direction; adjacency is materialized in both directions.
struct Edge {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace sgp

#endif  // SGP_COMMON_TYPES_H_
