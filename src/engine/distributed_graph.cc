#include "engine/distributed_graph.h"

#include <algorithm>

#include "common/check.h"

namespace sgp {

DistributedGraph::DistributedGraph(const Graph& graph,
                                   const Partitioning& partitioning)
    : graph_(&graph), k_(partitioning.k) {
  SGP_CHECK(partitioning.vertex_to_partition.size() == graph.num_vertices());
  SGP_CHECK(partitioning.edge_to_partition.size() == graph.num_edges());
  const VertexId n = graph.num_vertices();
  master_ = partitioning.vertex_to_partition;
  edges_per_partition_.assign(k_, 0);

  // Accumulate per-vertex (partition → in/out edge counts) sparsely.
  std::vector<std::vector<Replica>> acc(n);
  auto bump = [&](VertexId v, PartitionId p, bool incoming) {
    auto& vec = acc[v];
    auto it = std::find_if(vec.begin(), vec.end(), [p](const Replica& r) {
      return r.partition == p;
    });
    if (it == vec.end()) {
      vec.push_back({p, 0, 0});
      it = vec.end() - 1;
    }
    if (incoming) {
      ++it->in_edges;
    } else {
      ++it->out_edges;
    }
  };
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edges()[e];
    const PartitionId p = partitioning.edge_to_partition[e];
    ++edges_per_partition_[p];
    bump(edge.src, p, /*incoming=*/false);
    bump(edge.dst, p, /*incoming=*/true);
    if (!graph.directed()) {
      // Undirected: the edge is both an in- and out-edge of each endpoint.
      bump(edge.src, p, /*incoming=*/true);
      bump(edge.dst, p, /*incoming=*/false);
    }
  }

  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    // Ensure the master is present even if it holds no incident edge.
    auto& vec = acc[v];
    auto it = std::find_if(vec.begin(), vec.end(), [&](const Replica& r) {
      return r.partition == master_[v];
    });
    if (it == vec.end()) {
      vec.push_back({master_[v], 0, 0});
    } else {
      // Master first, for cheap Master-vs-mirror iteration.
      std::iter_swap(vec.begin(), it);
    }
    if (vec.front().partition != master_[v]) {
      auto mit = std::find_if(vec.begin(), vec.end(), [&](const Replica& r) {
        return r.partition == master_[v];
      });
      std::iter_swap(vec.begin(), mit);
    }
    offsets_[v + 1] = offsets_[v] + vec.size();
  }
  replicas_.reserve(offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    replicas_.insert(replicas_.end(), acc[v].begin(), acc[v].end());
  }
  replication_factor_ =
      n == 0 ? 0
             : static_cast<double>(replicas_.size()) / static_cast<double>(n);
}

}  // namespace sgp
