#include "engine/distributed_graph.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace sgp {

namespace {

// Half-edge record: the partition an incident edge lives on plus which
// directions it counts for at this endpoint, packed so the fill pass
// streams one uint32 per endpoint. For undirected graphs every incident
// edge is both an in- and an out-edge of each endpoint, so one record
// carries both increments.
constexpr uint32_t kIn = 1;
constexpr uint32_t kOut = 2;

constexpr uint32_t PackRecord(PartitionId p, uint32_t flags) {
  return (p << 2) | flags;
}

}  // namespace

DistributedGraph::DistributedGraph(const Graph& graph,
                                   const Partitioning& partitioning)
    : graph_(&graph), k_(partitioning.k) {
  SGP_CHECK(partitioning.vertex_to_partition.size() == graph.num_vertices());
  SGP_CHECK(partitioning.edge_to_partition.size() == graph.num_edges());
  SGP_CHECK(k_ < (1u << 30));  // records pack the partition into 30 bits
  const VertexId n = graph.num_vertices();
  const EdgeId m = graph.num_edges();
  master_ = partitioning.vertex_to_partition;
  edges_per_partition_.assign(k_, 0);

  // Pass 1: group the half-edge records by endpoint vertex
  // (count → prefix-sum → fill), replacing the per-vertex heap vectors and
  // linear partition scans of the old accumulator.
  std::vector<uint64_t> rec_offsets(static_cast<size_t>(n) + 1, 0);
  for (const Edge& edge : graph.edges()) {
    ++rec_offsets[edge.src + 1];
    ++rec_offsets[edge.dst + 1];
  }
  for (VertexId v = 0; v < n; ++v) rec_offsets[v + 1] += rec_offsets[v];
  std::vector<uint32_t> records(rec_offsets[n]);
  {
    std::vector<uint64_t> cursor(rec_offsets.begin(), rec_offsets.end() - 1);
    const uint32_t src_flags = graph.directed() ? kOut : (kIn | kOut);
    const uint32_t dst_flags = graph.directed() ? kIn : (kIn | kOut);
    for (EdgeId e = 0; e < m; ++e) {
      const Edge& edge = graph.edges()[e];
      const PartitionId p = partitioning.edge_to_partition[e];
      ++edges_per_partition_[p];
      records[cursor[edge.src]++] = PackRecord(p, src_flags);
      records[cursor[edge.dst]++] = PackRecord(p, dst_flags);
    }
  }

  // Pass 2 (count): distinct partitions per vertex, plus one slot for a
  // master that holds no incident edge. Distinctness is tracked with an
  // epoch-stamped per-partition scratch instead of per-vertex sets.
  std::vector<uint64_t> slot_epoch(k_, 0);
  uint64_t epoch = 0;
  offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++epoch;
    uint64_t distinct = 0;
    for (uint64_t i = rec_offsets[v]; i < rec_offsets[v + 1]; ++i) {
      const PartitionId p = records[i] >> 2;
      if (slot_epoch[p] != epoch) {
        slot_epoch[p] = epoch;
        ++distinct;
      }
    }
    if (slot_epoch[master_[v]] != epoch) ++distinct;
    offsets_[v + 1] = offsets_[v] + distinct;
  }

  // Pass 3 (fill): aggregate each vertex's records into its replica range,
  // then move the master to the front. A master without incident edges is
  // materialized as an empty replica so Replicas(v) is never empty — one
  // swap covers both cases, replacing the old double find_if/iter_swap.
  replicas_.resize(offsets_[n]);
  std::vector<uint64_t> slot_index(k_, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++epoch;
    Replica* out = replicas_.data() + offsets_[v];
    uint64_t filled = 0;
    for (uint64_t i = rec_offsets[v]; i < rec_offsets[v + 1]; ++i) {
      const uint32_t rec = records[i];
      const PartitionId p = rec >> 2;
      if (slot_epoch[p] != epoch) {
        slot_epoch[p] = epoch;
        slot_index[p] = filled;
        out[filled++] = {p, 0, 0};
      }
      Replica& r = out[slot_index[p]];
      if (rec & kIn) ++r.in_edges;
      if (rec & kOut) ++r.out_edges;
    }
    const PartitionId master = master_[v];
    uint64_t master_slot;
    if (slot_epoch[master] == epoch) {
      master_slot = slot_index[master];
    } else {
      master_slot = filled;
      out[filled++] = {master, 0, 0};
    }
    SGP_DCHECK(filled == offsets_[v + 1] - offsets_[v]);
    std::swap(out[0], out[master_slot]);
  }

  replication_factor_ =
      n == 0 ? 0
             : static_cast<double>(replicas_.size()) / static_cast<double>(n);
}

}  // namespace sgp
