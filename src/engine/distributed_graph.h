#ifndef SGP_ENGINE_DISTRIBUTED_GRAPH_H_
#define SGP_ENGINE_DISTRIBUTED_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Cluster-resident view of a partitioned graph, as a GAS engine like
/// PowerLyra materializes it: every partition holds the edges assigned to
/// it, and every vertex has a master copy plus mirror copies on each
/// partition holding at least one of its incident edges (Appendix B,
/// Figure 10). All communication accounting of the analytics engine is a
/// function of this structure.
class DistributedGraph {
 public:
  /// One copy of a vertex on one partition, with the number of local
  /// incident edges by direction. A copy with in_edges > 0 participates in
  /// gather; one with out_edges > 0 needs the vertex value for scatter.
  struct Replica {
    PartitionId partition = kInvalidPartition;
    uint32_t in_edges = 0;   // local edges (·, v)
    uint32_t out_edges = 0;  // local edges (v, ·)
  };

  DistributedGraph(const Graph& graph, const Partitioning& partitioning);

  const Graph& graph() const { return *graph_; }
  PartitionId k() const { return k_; }

  /// Partition of the vertex's master copy.
  PartitionId Master(VertexId v) const { return master_[v]; }

  /// All copies of `v`, one entry per partition where the vertex is
  /// present. The master copy is always the first entry (pinned by
  /// DistributedGraphTest.MasterIsAlwaysFrontReplica); mirrors follow in
  /// first-touch order of the edge scan.
  std::span<const Replica> Replicas(VertexId v) const {
    return {replicas_.data() + offsets_[v],
            replicas_.data() + offsets_[v + 1]};
  }

  /// Total number of vertex copies across all partitions (== n times the
  /// replication factor). The engine's replica cost tables reserve off it.
  uint64_t num_replicas() const { return replicas_.size(); }

  /// Edges assigned to each partition.
  const std::vector<uint64_t>& edges_per_partition() const {
    return edges_per_partition_;
  }

  /// Average number of copies per vertex.
  double replication_factor() const { return replication_factor_; }

 private:
  const Graph* graph_;
  PartitionId k_;
  std::vector<PartitionId> master_;
  std::vector<uint64_t> offsets_;  // size n+1, into replicas_
  std::vector<Replica> replicas_;
  std::vector<uint64_t> edges_per_partition_;
  double replication_factor_ = 0;
};

}  // namespace sgp

#endif  // SGP_ENGINE_DISTRIBUTED_GRAPH_H_
