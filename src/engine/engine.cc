#include "engine/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"
#include "engine/kernel.h"
#include "engine/programs.h"

namespace sgp {

using engine_detail::DirectedEdgeCount;
using engine_detail::EngineMetrics;

AnalyticsEngine::AnalyticsEngine(const Graph& graph,
                                 const Partitioning& partitioning,
                                 EngineCostModel cost_model)
    : graph_(&graph), dgraph_(graph, partitioning), cost_(cost_model) {}

EngineStats AnalyticsEngine::Run(const VertexProgram& program,
                                 const EngineFaultConfig& faults) const {
  // Tag dispatch onto the devirtualized kernels. The dynamic_cast guards
  // against a mislabeled kind(): only an exact program type takes the
  // specialized path, everything else falls back to the virtual one. The
  // template arguments restate each program's (gather, scatter, all-active)
  // overrides, which are fixed because the classes are final.
  switch (program.kind()) {
    case ProgramKind::kPageRank:
      if (auto* p = dynamic_cast<const PageRankProgram*>(&program)) {
        EngineMetrics::Get().kernel_specialized->Increment();
        return engine_detail::RunKernel<PageRankProgram, EdgeDirection::kIn,
                                        EdgeDirection::kOut,
                                        /*kAllActive=*/true>(
            *graph_, dgraph_, cost_, *p, faults);
      }
      break;
    case ProgramKind::kWcc:
      if (auto* p = dynamic_cast<const WccProgram*>(&program)) {
        EngineMetrics::Get().kernel_specialized->Increment();
        return engine_detail::RunKernel<WccProgram, EdgeDirection::kBoth,
                                        EdgeDirection::kBoth,
                                        /*kAllActive=*/false>(
            *graph_, dgraph_, cost_, *p, faults);
      }
      break;
    case ProgramKind::kSssp:
      if (auto* p = dynamic_cast<const SsspProgram*>(&program)) {
        EngineMetrics::Get().kernel_specialized->Increment();
        return engine_detail::RunKernel<SsspProgram, EdgeDirection::kIn,
                                        EdgeDirection::kOut,
                                        /*kAllActive=*/false>(
            *graph_, dgraph_, cost_, *p, faults);
      }
      break;
    case ProgramKind::kGeneric:
      break;
  }
  EngineMetrics::Get().kernel_generic->Increment();
  return RunGeneric(program, faults);
}

EngineStats AnalyticsEngine::RunGeneric(const VertexProgram& program,
                                        const EngineFaultConfig& faults) const {
  const Graph& g = *graph_;
  const VertexId n = g.num_vertices();
  const PartitionId k = dgraph_.k();
  const EdgeDirection gather_dir = program.gather_direction();
  const EdgeDirection scatter_dir = program.scatter_direction();
  const bool all_active = program.all_active();

  const std::vector<double> speeds =
      engine_detail::ResolveWorkerSpeeds(cost_, k);

  EngineStats stats;
  stats.compute_seconds_per_worker.assign(k, 0.0);
  stats.bytes_per_worker.assign(k, 0);
  stats.values.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    stats.values[v] = program.InitialValue(v, g);
  }

  // Gather set for the current iteration.
  std::vector<char> in_gather_set(n, 0);
  std::vector<VertexId> gather_list;
  if (all_active) {
    gather_list.resize(n);
    for (VertexId v = 0; v < n; ++v) gather_list[v] = v;
  } else {
    for (VertexId v : program.InitialFrontier(g)) {
      if (!in_gather_set[v]) {
        in_gather_set[v] = 1;
        gather_list.push_back(v);
      }
    }
  }

  std::vector<double> iter_compute(k);
  std::vector<uint64_t> iter_bytes(k);
  std::vector<double> new_values;
  std::vector<VertexId> changed;

  // Checkpoint / rollback cost model. A coordinated checkpoint writes
  // every master vertex value to stable storage; the superstep barrier
  // makes the slowest worker the critical path. A crash rolls back to the
  // last durable superstep and replays the tail deterministically, so
  // recovery charges time without perturbing values.
  const bool with_faults = !faults.empty();
  double checkpoint_cost = 0;
  if (with_faults) {
    checkpoint_cost = engine_detail::CheckpointCostOf(dgraph_, faults, speeds);
  }
  std::vector<double> step_costs;
  uint32_t last_checkpoint = 0;  // first superstep a recovery must replay
  double barrier_wait = 0;       // idle worker-seconds at barriers

  auto gather_neighbors = [&](VertexId v, auto&& body) {
    switch (gather_dir) {
      case EdgeDirection::kIn:
        for (VertexId u : g.InNeighbors(v)) body(u);
        break;
      case EdgeDirection::kOut:
        for (VertexId u : g.OutNeighbors(v)) body(u);
        break;
      case EdgeDirection::kBoth:
        if (g.directed()) {
          for (VertexId u : g.InNeighbors(v)) body(u);
          for (VertexId u : g.OutNeighbors(v)) body(u);
        } else {
          for (VertexId u : g.Neighbors(v)) body(u);
        }
        break;
    }
  };

  for (uint32_t iter = 0; iter < program.max_iterations(); ++iter) {
    if (gather_list.empty()) break;
    std::fill(iter_compute.begin(), iter_compute.end(), 0.0);
    std::fill(iter_bytes.begin(), iter_bytes.end(), 0);
    changed.clear();
    const uint64_t messages_before =
        stats.gather_messages + stats.sync_messages;
    stats.active_per_iteration.push_back(gather_list.size());

    // --- Gather + Apply ---
    new_values.assign(gather_list.size(), 0.0);
    for (size_t idx = 0; idx < gather_list.size(); ++idx) {
      const VertexId v = gather_list[idx];
      double acc = program.GatherNeutral();
      uint64_t contributions = 0;
      gather_neighbors(v, [&](VertexId u) {
        acc = program.Combine(
            acc, program.GatherContribution(u, v, stats.values[u], g));
        ++contributions;
      });
      const PartitionId master = dgraph_.Master(v);
      // Mirrors with gather edges compute partial aggregates locally and
      // send one message to the master (Appendix B). Without sender-side
      // aggregation, every cut gather edge is its own message (Figure
      // 10(a)).
      for (const auto& r : dgraph_.Replicas(v)) {
        const uint32_t local =
            DirectedEdgeCount(r, gather_dir, g.directed());
        if (local == 0) continue;
        iter_compute[r.partition] +=
            static_cast<double>(local) * cost_.seconds_per_edge_op /
            speeds[r.partition];
        if (r.partition != master) {
          const uint64_t messages =
              cost_.sender_side_aggregation ? 1 : local;
          stats.gather_messages += messages;
          iter_bytes[r.partition] +=
              messages * cost_.bytes_per_message;  // send
          iter_bytes[master] += messages * cost_.bytes_per_message;
        }
      }
      iter_compute[master] +=
          cost_.seconds_per_vertex_op / speeds[master];  // apply
      new_values[idx] =
          program.Apply(v, stats.values[v], acc, contributions, g);
    }

    // --- Commit + Scatter synchronization ---
    for (size_t idx = 0; idx < gather_list.size(); ++idx) {
      const VertexId v = gather_list[idx];
      // Initially-activated vertices scatter in their first superstep even
      // if Apply left their value unchanged (the SSSP source must announce
      // its distance 0 to its neighbors).
      const bool did_change =
          program.Changed(stats.values[v], new_values[idx]) || iter == 0;
      stats.values[v] = new_values[idx];
      if (!did_change && !all_active) continue;
      changed.push_back(v);
      const PartitionId master = dgraph_.Master(v);
      for (const auto& r : dgraph_.Replicas(v)) {
        const uint32_t local =
            DirectedEdgeCount(r, scatter_dir, g.directed());
        if (local == 0) continue;
        // Scatter work happens wherever the vertex's scatter edges live.
        iter_compute[r.partition] +=
            static_cast<double>(local) * cost_.seconds_per_edge_op /
            speeds[r.partition];
        if (r.partition != master) {
          // The mirror needs the updated vertex value before scattering.
          ++stats.sync_messages;
          iter_bytes[master] += cost_.bytes_per_message;       // send
          iter_bytes[r.partition] += cost_.bytes_per_message;  // receive
        }
      }
    }

    // --- Superstep bookkeeping ---
    double max_compute = 0;
    double sum_compute = 0;
    uint64_t max_bytes = 0;
    for (PartitionId p = 0; p < k; ++p) {
      stats.compute_seconds_per_worker[p] += iter_compute[p];
      stats.bytes_per_worker[p] += iter_bytes[p];
      stats.total_network_bytes += iter_bytes[p];
      sum_compute += iter_compute[p];
      max_compute = std::max(max_compute, iter_compute[p]);
      max_bytes = std::max(max_bytes, iter_bytes[p]);
    }
    // Idle worker-seconds at this superstep's barrier: everyone waits for
    // the slowest worker (the load-imbalance cost Figure 4 visualizes).
    barrier_wait += max_compute * static_cast<double>(k) - sum_compute;
    const double step_cost =
        max_compute +
        static_cast<double>(max_bytes) / cost_.network_bytes_per_second +
        cost_.superstep_latency_seconds;
    EngineMetrics::Get().superstep_cost->Record(step_cost);
    stats.simulated_seconds += step_cost;
    stats.messages_per_iteration.push_back(
        stats.gather_messages + stats.sync_messages - messages_before);
    ++stats.iterations;

    if (with_faults) {
      step_costs.push_back(step_cost);
      for (const EngineCrash& crash : faults.crashes) {
        if (crash.superstep != iter) continue;
        SGP_CHECK(crash.worker < k);
        // Roll back to the last checkpoint (reload cost = one checkpoint
        // write) and replay supersteps [last_checkpoint, iter].
        double cost = faults.restart_seconds;
        if (last_checkpoint > 0) cost += checkpoint_cost;
        for (uint32_t s = last_checkpoint; s <= iter; ++s) {
          cost += step_costs[s];
        }
        stats.recovery_seconds += cost;
        stats.simulated_seconds += cost;
        stats.replayed_supersteps += iter - last_checkpoint + 1;
        ++stats.crashes_recovered;
      }
      if (faults.checkpoint_interval != 0 &&
          (iter + 1) % faults.checkpoint_interval == 0) {
        stats.checkpoint_seconds += checkpoint_cost;
        stats.simulated_seconds += checkpoint_cost;
        ++stats.checkpoints;
        last_checkpoint = iter + 1;
      }
    }

    // --- Next frontier ---
    if (!all_active) {
      std::fill(in_gather_set.begin(), in_gather_set.end(), 0);
      gather_list.clear();
      for (VertexId v : changed) {
        auto activate = [&](VertexId w) {
          if (!in_gather_set[w]) {
            in_gather_set[w] = 1;
            gather_list.push_back(w);
          }
        };
        switch (scatter_dir) {
          case EdgeDirection::kIn:
            for (VertexId w : g.InNeighbors(v)) activate(w);
            break;
          case EdgeDirection::kOut:
            for (VertexId w : g.OutNeighbors(v)) activate(w);
            break;
          case EdgeDirection::kBoth:
            if (g.directed()) {
              for (VertexId w : g.InNeighbors(v)) activate(w);
              for (VertexId w : g.OutNeighbors(v)) activate(w);
            } else {
              for (VertexId w : g.Neighbors(v)) activate(w);
            }
            break;
        }
      }
    }
  }

  // Bytes were added to both sender and receiver above, so halve the total
  // to report wire traffic once.
  stats.total_network_bytes /= 2;

  EngineMetrics& metrics = EngineMetrics::Get();
  metrics.runs->Increment();
  metrics.supersteps->Increment(stats.iterations);
  metrics.gather_messages->Increment(stats.gather_messages);
  metrics.sync_messages->Increment(stats.sync_messages);
  metrics.network_bytes->Increment(stats.total_network_bytes);
  metrics.checkpoints->Increment(stats.checkpoints);
  metrics.crashes_recovered->Increment(stats.crashes_recovered);
  metrics.barrier_wait_seconds->Add(barrier_wait);
  metrics.simulated_seconds->Add(stats.simulated_seconds);
  metrics.recovery_seconds->Add(stats.recovery_seconds);
  return stats;
}

}  // namespace sgp
