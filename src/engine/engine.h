#ifndef SGP_ENGINE_ENGINE_H_
#define SGP_ENGINE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "engine/distributed_graph.h"
#include "engine/vertex_program.h"
#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Cost model translating simulated work into time. The defaults are
/// calibrated so that, at the benchmark graph scale (2^12–2^16 vertices)
/// and the paper's worker counts (8–128), the compute : network : barrier
/// ratios match those of the paper's EC2 cluster at its (10^4× larger)
/// scale — per-superstep barrier latency must not drown the per-worker
/// terms, or every partitioning would look identical.
struct EngineCostModel {
  double seconds_per_edge_op = 1e-7;
  double seconds_per_vertex_op = 2e-7;
  double network_bytes_per_second = 1e8;
  double superstep_latency_seconds = 1e-4;
  uint32_t bytes_per_message = 16;  // 8B value + 8B vertex id/header

  /// Relative speed of each worker for heterogeneous clusters (Appendix A:
  /// LeBeane et al. [29]); empty = all workers equal. A speed of 2 halves
  /// that worker's compute time. Pair with
  /// PartitionConfig::capacity_weights to place proportionally more load
  /// on faster machines.
  std::vector<double> worker_speeds;

  /// Sender-side message aggregation (Section B / [32]): when true (the
  /// default, matching PowerLyra), each mirror sends one combined partial
  /// aggregate per vertex per iteration; when false, every cut gather
  /// edge sends its own message, which is how Bourse et al. [10] compare
  /// cut models without aggregation.
  bool sender_side_aggregation = true;
};

/// One injected fail-restart crash: `worker` dies while executing
/// superstep `superstep` (0-based). Crashes scheduled past convergence
/// never fire.
struct EngineCrash {
  PartitionId worker = 0;
  uint32_t superstep = 0;
};

/// Fault model of the analytics engine: coordinated superstep checkpoints
/// plus fail-restart crashes. The synchronous GAS protocol makes replay
/// deterministic, so recovery is a pure cost — vertex values are identical
/// to the failure-free run, and EngineStats reports the overhead.
struct EngineFaultConfig {
  /// Write a coordinated checkpoint after every `checkpoint_interval`
  /// completed supersteps (0 disables checkpointing; recovery then
  /// replays from superstep 0).
  uint32_t checkpoint_interval = 0;

  /// Cost of writing (or reading back) one master vertex value to / from
  /// stable storage, paid by the slowest worker per checkpoint.
  double checkpoint_seconds_per_vertex = 5e-8;

  /// Failure-detection plus process-restart overhead per crash.
  double restart_seconds = 1e-3;

  /// Crash schedule (deterministic: same schedule, same overhead).
  std::vector<EngineCrash> crashes;

  bool empty() const {
    return checkpoint_interval == 0 && crashes.empty();
  }
};

/// Everything the paper measures about one analytics run (Section 5.1.4).
struct EngineStats {
  uint32_t iterations = 0;

  /// mirror→master partial-aggregate messages (gather synchronization).
  uint64_t gather_messages = 0;

  /// master→mirror value-update messages (scatter synchronization). Zero
  /// for edge-cut placements on uni-directional workloads (Appendix B).
  uint64_t sync_messages = 0;

  /// Total network traffic in bytes.
  uint64_t total_network_bytes = 0;

  /// Per-worker accumulated computation seconds ("distribution of
  /// computation time", Figure 4).
  std::vector<double> compute_seconds_per_worker;

  /// Per-worker bytes sent + received.
  std::vector<uint64_t> bytes_per_worker;

  /// Cost-model execution time: sum over supersteps of
  /// max-compute + max-network + barrier latency (Figure 3).
  double simulated_seconds = 0;

  /// Per-superstep dynamics (Section 5.1.3): vertices gathering and
  /// messages exchanged in each iteration. PageRank is uniform and
  /// stable; WCC starts all-active and shrinks; SSSP grows in BFS order
  /// and then shrinks — the reason it breaks the uniform-workload
  /// assumption of the SGP objectives.
  std::vector<uint64_t> active_per_iteration;
  std::vector<uint64_t> messages_per_iteration;

  /// Final vertex values; identical to a single-machine run regardless of
  /// partitioning (validated by tests).
  std::vector<double> values;

  /// Fault-tolerance accounting (all zero without an EngineFaultConfig).
  /// Checkpoint and recovery time are included in simulated_seconds, so
  /// the per-partitioner recovery overhead is directly comparable.
  uint32_t checkpoints = 0;
  uint32_t crashes_recovered = 0;
  uint32_t replayed_supersteps = 0;
  double checkpoint_seconds = 0;
  double recovery_seconds = 0;
};

/// Simulated synchronous GAS analytics engine over k workers. The vertex
/// values are computed exactly (the synchronous model makes results
/// independent of placement); what the simulation adds is the faithful
/// per-worker communication and computation accounting dictated by the
/// master/mirror protocol of Appendix B:
///   - every gathering vertex receives one partial-aggregate message from
///     each mirror that hosts gather-direction edges;
///   - every vertex whose value changed sends one update message to each
///     mirror that hosts scatter-direction edges.
///
/// Run() routes built-in programs (by ProgramKind tag) onto
/// compile-time-specialized superstep kernels with precomputed replica
/// cost tables (src/engine/kernel.h, docs/ENGINE.md); unknown programs
/// take the generic virtual-dispatch path. Both paths produce
/// byte-identical EngineStats — which path ran is observable only through
/// the engine.kernel.{specialized,generic} counters and wall time.
class AnalyticsEngine {
 public:
  AnalyticsEngine(const Graph& graph, const Partitioning& partitioning,
                  EngineCostModel cost_model = {});

  /// Runs `program` to convergence (or its iteration cap). With a
  /// non-empty `faults`, the run takes coordinated checkpoints and, on
  /// each scheduled crash, rolls back to the last checkpoint and replays —
  /// the vertex values stay identical to the failure-free run while the
  /// stats report the recovery overhead.
  EngineStats Run(const VertexProgram& program,
                  const EngineFaultConfig& faults = {}) const;

  const DistributedGraph& distributed_graph() const { return dgraph_; }

 private:
  /// Generic fallback: virtual dispatch per gather edge, direction
  /// resolution and speed division per replica per superstep. The oracle
  /// the specialized kernels are tested against.
  EngineStats RunGeneric(const VertexProgram& program,
                         const EngineFaultConfig& faults) const;

  const Graph* graph_;
  DistributedGraph dgraph_;
  EngineCostModel cost_;
};

}  // namespace sgp

#endif  // SGP_ENGINE_ENGINE_H_
