#ifndef SGP_ENGINE_KERNEL_H_
#define SGP_ENGINE_KERNEL_H_

// Internal header of the analytics engine: compile-time-specialized GAS
// superstep kernels plus the replica cost tables they run on. Included only
// by engine.cc — nothing here is part of the public engine API.
//
// The contract (pinned by tests/engine_kernel_test.cc) is that
// RunKernel<Program, ...> produces byte-identical EngineStats to the
// generic virtual-dispatch path for the same program. Every optimization
// below is therefore restricted to transformations that cannot change a
// single bit of the result:
//   - devirtualization: Program is the concrete final class, so
//     Combine/GatherContribution/Apply inline — same arithmetic, no call.
//   - replica cost tables: `local * seconds_per_edge_op / speed` is
//     evaluated once per replica instead of once per superstep. The
//     expression (and hence the rounded double) is unchanged; only the
//     number of evaluations drops.
//   - all-active fast path: for all-active programs the per-superstep
//     accounting (per-partition compute seconds, bytes, message counts) is
//     superstep-invariant, so it is computed once — with the exact
//     addition order of the generic path — and the per-partition
//     aggregates are added once per superstep, exactly as the generic
//     path adds its freshly recomputed (bitwise equal) iteration arrays.
//   - source-only gather hoist: programs marked kSourceOnlyGather compute
//     contributions from the source vertex alone, so the all-active kernel
//     evaluates each source's contribution once per superstep instead of
//     once per edge. Same operands, same operation, fewer evaluations.
//   - epoch-stamped frontier: membership in the next gather set is tracked
//     by an epoch stamp instead of an O(n) std::fill per superstep;
//     activation order (and thus floating-point accumulation order) is
//     unchanged.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"
#include "engine/distributed_graph.h"
#include "engine/engine.h"
#include "engine/vertex_program.h"
#include "graph/graph.h"

namespace sgp::engine_detail {

// Superstep-level telemetry of the GAS engine. Everything here is derived
// from the simulated cost model, so the values are deterministic for
// identical inputs and appear in the deterministic JSON exports. Metrics
// publish into the calling thread's current registry (grid cells install
// a scoped per-cell registry; everyone else hits the global one).
struct EngineMetrics {
  Counter* runs = nullptr;
  Counter* supersteps = nullptr;
  Counter* gather_messages = nullptr;
  Counter* sync_messages = nullptr;
  Counter* network_bytes = nullptr;
  Counter* checkpoints = nullptr;
  Counter* crashes_recovered = nullptr;
  Counter* kernel_specialized = nullptr;
  Counter* kernel_generic = nullptr;
  Gauge* barrier_wait_seconds = nullptr;
  Gauge* simulated_seconds = nullptr;
  Gauge* recovery_seconds = nullptr;
  Histogram* superstep_cost = nullptr;

  EngineMetrics() = default;
  explicit EngineMetrics(MetricsRegistry& reg) {
    runs = reg.GetCounter("engine.runs");
    supersteps = reg.GetCounter("engine.supersteps");
    gather_messages = reg.GetCounter("engine.gather.messages");
    sync_messages = reg.GetCounter("engine.sync.messages");
    network_bytes = reg.GetCounter("engine.network.bytes");
    checkpoints = reg.GetCounter("engine.checkpoints");
    crashes_recovered = reg.GetCounter("engine.crashes.recovered");
    kernel_specialized = reg.GetCounter("engine.kernel.specialized");
    kernel_generic = reg.GetCounter("engine.kernel.generic");
    barrier_wait_seconds = reg.GetGauge("engine.barrier_wait.sim_seconds");
    simulated_seconds = reg.GetGauge("engine.simulated.sim_seconds");
    recovery_seconds = reg.GetGauge("engine.recovery.sim_seconds");
    superstep_cost = reg.GetHistogram("engine.superstep_cost.sim_seconds");
  }

  static EngineMetrics& Get() {
    return CurrentRegistryMetrics<EngineMetrics>();
  }
};

// Local gather-direction edge count of one replica. For undirected graphs
// each incident edge was recorded in both directions, so in_edges already
// equals the incident count and any direction resolves to it.
inline uint32_t DirectedEdgeCount(const DistributedGraph::Replica& r,
                                  EdgeDirection dir, bool graph_directed) {
  if (!graph_directed) return r.in_edges;
  switch (dir) {
    case EdgeDirection::kIn:
      return r.in_edges;
    case EdgeDirection::kOut:
      return r.out_edges;
    case EdgeDirection::kBoth:
      return r.in_edges + r.out_edges;
  }
  return 0;
}

// Per-worker relative speeds, defaulted to 1.0 and validated.
inline std::vector<double> ResolveWorkerSpeeds(const EngineCostModel& cost,
                                               PartitionId k) {
  std::vector<double> speeds = cost.worker_speeds;
  if (speeds.empty()) {
    speeds.assign(k, 1.0);
  }
  SGP_CHECK(speeds.size() == k);
  for (double s : speeds) SGP_CHECK(s > 0);
  return speeds;
}

// Cost of one coordinated checkpoint: the slowest worker writing its master
// vertex values is the critical path.
inline double CheckpointCostOf(const DistributedGraph& dgraph,
                               const EngineFaultConfig& faults,
                               const std::vector<double>& speeds) {
  SGP_CHECK(faults.checkpoint_seconds_per_vertex >= 0);
  SGP_CHECK(faults.restart_seconds >= 0);
  const VertexId n = dgraph.graph().num_vertices();
  const PartitionId k = dgraph.k();
  std::vector<uint64_t> masters_per_worker(k, 0);
  for (VertexId v = 0; v < n; ++v) ++masters_per_worker[dgraph.Master(v)];
  double checkpoint_cost = 0;
  for (PartitionId p = 0; p < k; ++p) {
    checkpoint_cost = std::max(
        checkpoint_cost, static_cast<double>(masters_per_worker[p]) *
                             faults.checkpoint_seconds_per_vertex /
                             speeds[p]);
  }
  return checkpoint_cost;
}

/// Once-per-Run flat cost tables over the distributed graph's replicas,
/// resolved for one (gather, scatter) direction pair and one speed vector.
/// Replicas with zero edges in a direction are dropped from that table —
/// the generic path skips them too, so per-partition floating-point
/// accumulation order is unchanged. Entry order within a vertex follows
/// replica order (master first), and each entry of one vertex targets a
/// distinct partition, so per-partition accumulation order across vertices
/// is fully determined by vertex visit order.
struct ReplicaCostTables {
  struct GatherEntry {
    PartitionId partition = 0;
    uint64_t messages = 0;       // mirror→master messages per superstep
                                 // (0 for the master's own replica)
    uint64_t message_bytes = 0;  // messages * bytes_per_message
    double seconds = 0;          // local_edges * seconds_per_edge_op / speed
  };
  struct ScatterEntry {
    PartitionId partition = 0;
    bool mirror = false;  // needs the updated value before scattering
    double seconds = 0;
  };

  std::vector<uint64_t> gather_offsets;   // size n+1, into gather
  std::vector<GatherEntry> gather;
  std::vector<uint64_t> scatter_offsets;  // size n+1, into scatter
  std::vector<ScatterEntry> scatter;
  std::vector<double> apply_seconds;      // per partition: vertex_op / speed
};

inline ReplicaCostTables BuildReplicaCostTables(
    const DistributedGraph& dgraph, const EngineCostModel& cost,
    const std::vector<double>& speeds, EdgeDirection gather_dir,
    EdgeDirection scatter_dir) {
  const Graph& g = dgraph.graph();
  const VertexId n = g.num_vertices();
  const PartitionId k = dgraph.k();
  const bool directed = g.directed();

  ReplicaCostTables t;
  t.apply_seconds.resize(k);
  for (PartitionId p = 0; p < k; ++p) {
    t.apply_seconds[p] = cost.seconds_per_vertex_op / speeds[p];
  }
  t.gather_offsets.assign(static_cast<size_t>(n) + 1, 0);
  t.scatter_offsets.assign(static_cast<size_t>(n) + 1, 0);
  t.gather.reserve(dgraph.num_replicas());
  t.scatter.reserve(dgraph.num_replicas());

  for (VertexId v = 0; v < n; ++v) {
    const PartitionId master = dgraph.Master(v);
    for (const DistributedGraph::Replica& r : dgraph.Replicas(v)) {
      const uint32_t gather_local = DirectedEdgeCount(r, gather_dir, directed);
      if (gather_local > 0) {
        ReplicaCostTables::GatherEntry e;
        e.partition = r.partition;
        e.seconds = static_cast<double>(gather_local) *
                    cost.seconds_per_edge_op / speeds[r.partition];
        if (r.partition != master) {
          e.messages = cost.sender_side_aggregation ? 1 : gather_local;
          e.message_bytes = e.messages * cost.bytes_per_message;
        }
        t.gather.push_back(e);
      }
      const uint32_t scatter_local =
          DirectedEdgeCount(r, scatter_dir, directed);
      if (scatter_local > 0) {
        t.scatter.push_back({r.partition, r.partition != master,
                             static_cast<double>(scatter_local) *
                                 cost.seconds_per_edge_op /
                                 speeds[r.partition]});
      }
    }
    t.gather_offsets[v + 1] = t.gather.size();
    t.scatter_offsets[v + 1] = t.scatter.size();
  }
  return t;
}

// Compile-time direction-resolved neighbor iteration; the kBoth in+out
// visit order for directed graphs matches the generic path.
template <EdgeDirection kDir, typename Body>
inline void ForEachNeighbor(const Graph& g, VertexId v, Body&& body) {
  if constexpr (kDir == EdgeDirection::kIn) {
    for (VertexId u : g.InNeighbors(v)) body(u);
  } else if constexpr (kDir == EdgeDirection::kOut) {
    for (VertexId u : g.OutNeighbors(v)) body(u);
  } else {
    if (g.directed()) {
      for (VertexId u : g.InNeighbors(v)) body(u);
      for (VertexId u : g.OutNeighbors(v)) body(u);
    } else {
      for (VertexId u : g.Neighbors(v)) body(u);
    }
  }
}

// Detects the kSourceOnlyGather marker (see PageRankProgram): true when the
// program's GatherContribution is a pure function of the source vertex, so
// the all-active kernel may evaluate it once per source per superstep.
template <typename Program>
concept SourceOnlyGather = requires {
  { Program::kSourceOnlyGather } -> std::convertible_to<bool>;
} && Program::kSourceOnlyGather;

/// Specialized superstep kernel: `Program` is a concrete final program
/// class (virtual calls devirtualize and inline), the directions and
/// all-active flag are compile-time constants matching the program's
/// overrides, and all cost accounting runs off precomputed tables. The
/// structure deliberately mirrors AnalyticsEngine::RunGeneric statement by
/// statement; see the header comment for why each deviation is bit-exact.
template <typename Program, EdgeDirection kGatherDir,
          EdgeDirection kScatterDir, bool kAllActive>
EngineStats RunKernel(const Graph& g, const DistributedGraph& dgraph,
                      const EngineCostModel& cost, const Program& program,
                      const EngineFaultConfig& faults) {
  const VertexId n = g.num_vertices();
  const PartitionId k = dgraph.k();
  const std::vector<double> speeds = ResolveWorkerSpeeds(cost, k);

  EngineStats stats;
  stats.compute_seconds_per_worker.assign(k, 0.0);
  stats.bytes_per_worker.assign(k, 0);
  stats.values.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    stats.values[v] = program.InitialValue(v, g);
  }

  const ReplicaCostTables tables =
      BuildReplicaCostTables(dgraph, cost, speeds, kGatherDir, kScatterDir);

  // Gather set for the current iteration. All-active programs process every
  // vertex every superstep, so the explicit list (and its per-superstep
  // rebuild) exists only for frontier programs, where an epoch stamp
  // replaces the generic path's O(n) membership reset.
  std::vector<VertexId> gather_list;
  std::vector<uint64_t> frontier_epoch;
  [[maybe_unused]] uint64_t epoch = 1;
  if constexpr (!kAllActive) {
    frontier_epoch.assign(n, 0);
    for (VertexId v : program.InitialFrontier(g)) {
      if (frontier_epoch[v] != epoch) {
        frontier_epoch[v] = epoch;
        gather_list.push_back(v);
      }
    }
  }

  std::vector<double> iter_compute(k);
  std::vector<uint64_t> iter_bytes(k);
  std::vector<double> new_values;
  std::vector<VertexId> changed;

  // Checkpoint / rollback cost model (identical to the generic path).
  const bool with_faults = !faults.empty();
  double checkpoint_cost = 0;
  if (with_faults) {
    checkpoint_cost = CheckpointCostOf(dgraph, faults, speeds);
  }
  std::vector<double> step_costs;
  uint32_t last_checkpoint = 0;  // first superstep a recovery must replay
  double barrier_wait = 0;       // idle worker-seconds at barriers

  // All-active fast path: the cost accounting of every superstep is the
  // same, so run the accounting loops once — in the generic path's exact
  // order: per vertex gather replicas then apply, then a second pass of
  // scatter replicas — and replay the per-partition aggregates each
  // superstep. stats arrays then receive the same bitwise additions the
  // generic path performs with its recomputed per-iteration arrays.
  std::vector<double> agg_compute;
  std::vector<uint64_t> agg_bytes;
  uint64_t agg_gather_messages = 0;
  uint64_t agg_sync_messages = 0;
  uint64_t agg_step_bytes = 0;   // Σ_p agg_bytes[p]
  double agg_step_cost = 0;      // max compute + network + barrier latency
  double agg_step_barrier = 0;   // idle worker-seconds at the barrier
  if constexpr (kAllActive) {
    agg_compute.assign(k, 0.0);
    agg_bytes.assign(k, 0);
    for (VertexId v = 0; v < n; ++v) {
      const PartitionId master = dgraph.Master(v);
      for (uint64_t i = tables.gather_offsets[v];
           i < tables.gather_offsets[v + 1]; ++i) {
        const ReplicaCostTables::GatherEntry& e = tables.gather[i];
        agg_compute[e.partition] += e.seconds;
        if (e.messages != 0) {
          agg_gather_messages += e.messages;
          agg_bytes[e.partition] += e.message_bytes;  // send
          agg_bytes[master] += e.message_bytes;       // receive
        }
      }
      agg_compute[master] += tables.apply_seconds[master];
    }
    for (VertexId v = 0; v < n; ++v) {
      const PartitionId master = dgraph.Master(v);
      for (uint64_t i = tables.scatter_offsets[v];
           i < tables.scatter_offsets[v + 1]; ++i) {
        const ReplicaCostTables::ScatterEntry& e = tables.scatter[i];
        agg_compute[e.partition] += e.seconds;
        if (e.mirror) {
          ++agg_sync_messages;
          agg_bytes[master] += cost.bytes_per_message;       // send
          agg_bytes[e.partition] += cost.bytes_per_message;  // receive
        }
      }
    }
    double max_compute = 0;
    double sum_compute = 0;
    uint64_t max_bytes = 0;
    for (PartitionId p = 0; p < k; ++p) {
      sum_compute += agg_compute[p];
      max_compute = std::max(max_compute, agg_compute[p]);
      max_bytes = std::max(max_bytes, agg_bytes[p]);
      agg_step_bytes += agg_bytes[p];
    }
    agg_step_barrier = max_compute * static_cast<double>(k) - sum_compute;
    agg_step_cost =
        max_compute +
        static_cast<double>(max_bytes) / cost.network_bytes_per_second +
        cost.superstep_latency_seconds;
  }

  // Source-only gather hoist (all-active only): contributions depend on the
  // source alone and values are frozen during a superstep's gather, so each
  // source's contribution is computed once instead of once per edge.
  // Sources that are never gathered from may hold garbage (e.g. inf for a
  // zero-out-degree PageRank source) — those slots are never read, exactly
  // as the generic path never evaluates them.
  std::vector<double> hoisted_contrib;
  if constexpr (kAllActive && SourceOnlyGather<Program>) {
    hoisted_contrib.resize(n);
  }

  const uint32_t max_iterations = program.max_iterations();
  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    if constexpr (kAllActive) {
      if (n == 0) break;
    } else {
      if (gather_list.empty()) break;
    }
    const uint64_t messages_before =
        stats.gather_messages + stats.sync_messages;
    double step_cost = 0;

    if constexpr (kAllActive) {
      stats.active_per_iteration.push_back(n);

      // --- Gather + Apply (values only; accounting is precomputed) ---
      new_values.assign(n, 0.0);
      if constexpr (SourceOnlyGather<Program>) {
        for (VertexId u = 0; u < n; ++u) {
          hoisted_contrib[u] =
              program.GatherContribution(u, u, stats.values[u], g);
        }
        for (VertexId v = 0; v < n; ++v) {
          double acc = program.GatherNeutral();
          uint64_t contributions = 0;
          ForEachNeighbor<kGatherDir>(g, v, [&](VertexId u) {
            acc = program.Combine(acc, hoisted_contrib[u]);
            ++contributions;
          });
          new_values[v] =
              program.Apply(v, stats.values[v], acc, contributions, g);
        }
      } else {
        for (VertexId v = 0; v < n; ++v) {
          double acc = program.GatherNeutral();
          uint64_t contributions = 0;
          ForEachNeighbor<kGatherDir>(g, v, [&](VertexId u) {
            acc = program.Combine(
                acc, program.GatherContribution(u, v, stats.values[u], g));
            ++contributions;
          });
          new_values[v] =
              program.Apply(v, stats.values[v], acc, contributions, g);
        }
      }

      // --- Commit (every vertex scatters; accounting is precomputed) ---
      for (VertexId v = 0; v < n; ++v) {
        stats.values[v] = new_values[v];
      }

      // --- Superstep bookkeeping from the precomputed aggregates ---
      stats.gather_messages += agg_gather_messages;
      stats.sync_messages += agg_sync_messages;
      for (PartitionId p = 0; p < k; ++p) {
        stats.compute_seconds_per_worker[p] += agg_compute[p];
        stats.bytes_per_worker[p] += agg_bytes[p];
      }
      stats.total_network_bytes += agg_step_bytes;
      barrier_wait += agg_step_barrier;
      step_cost = agg_step_cost;
      EngineMetrics::Get().superstep_cost->Record(step_cost);
      stats.simulated_seconds += step_cost;
      stats.messages_per_iteration.push_back(
          stats.gather_messages + stats.sync_messages - messages_before);
      ++stats.iterations;
    } else {
      std::fill(iter_compute.begin(), iter_compute.end(), 0.0);
      std::fill(iter_bytes.begin(), iter_bytes.end(), 0);
      changed.clear();
      stats.active_per_iteration.push_back(gather_list.size());

      // --- Gather + Apply ---
      new_values.assign(gather_list.size(), 0.0);
      for (size_t idx = 0; idx < gather_list.size(); ++idx) {
        const VertexId v = gather_list[idx];
        double acc = program.GatherNeutral();
        uint64_t contributions = 0;
        ForEachNeighbor<kGatherDir>(g, v, [&](VertexId u) {
          acc = program.Combine(
              acc, program.GatherContribution(u, v, stats.values[u], g));
          ++contributions;
        });
        const PartitionId master = dgraph.Master(v);
        for (uint64_t i = tables.gather_offsets[v];
             i < tables.gather_offsets[v + 1]; ++i) {
          const ReplicaCostTables::GatherEntry& e = tables.gather[i];
          iter_compute[e.partition] += e.seconds;
          if (e.messages != 0) {
            stats.gather_messages += e.messages;
            iter_bytes[e.partition] += e.message_bytes;  // send
            iter_bytes[master] += e.message_bytes;       // receive
          }
        }
        iter_compute[master] += tables.apply_seconds[master];  // apply
        new_values[idx] =
            program.Apply(v, stats.values[v], acc, contributions, g);
      }

      // --- Commit + Scatter synchronization ---
      for (size_t idx = 0; idx < gather_list.size(); ++idx) {
        const VertexId v = gather_list[idx];
        // Initially-activated vertices scatter in their first superstep
        // even if Apply left their value unchanged (the SSSP source must
        // announce its distance 0 to its neighbors).
        const bool did_change =
            program.Changed(stats.values[v], new_values[idx]) || iter == 0;
        stats.values[v] = new_values[idx];
        if (!did_change) continue;
        changed.push_back(v);
        const PartitionId master = dgraph.Master(v);
        for (uint64_t i = tables.scatter_offsets[v];
             i < tables.scatter_offsets[v + 1]; ++i) {
          const ReplicaCostTables::ScatterEntry& e = tables.scatter[i];
          iter_compute[e.partition] += e.seconds;
          if (e.mirror) {
            // The mirror needs the updated vertex value before scattering.
            ++stats.sync_messages;
            iter_bytes[master] += cost.bytes_per_message;       // send
            iter_bytes[e.partition] += cost.bytes_per_message;  // receive
          }
        }
      }

      // --- Superstep bookkeeping ---
      double max_compute = 0;
      double sum_compute = 0;
      uint64_t max_bytes = 0;
      for (PartitionId p = 0; p < k; ++p) {
        stats.compute_seconds_per_worker[p] += iter_compute[p];
        stats.bytes_per_worker[p] += iter_bytes[p];
        stats.total_network_bytes += iter_bytes[p];
        sum_compute += iter_compute[p];
        max_compute = std::max(max_compute, iter_compute[p]);
        max_bytes = std::max(max_bytes, iter_bytes[p]);
      }
      // Idle worker-seconds at this superstep's barrier: everyone waits for
      // the slowest worker (the load-imbalance cost Figure 4 visualizes).
      barrier_wait += max_compute * static_cast<double>(k) - sum_compute;
      step_cost =
          max_compute +
          static_cast<double>(max_bytes) / cost.network_bytes_per_second +
          cost.superstep_latency_seconds;
      EngineMetrics::Get().superstep_cost->Record(step_cost);
      stats.simulated_seconds += step_cost;
      stats.messages_per_iteration.push_back(
          stats.gather_messages + stats.sync_messages - messages_before);
      ++stats.iterations;
    }

    if (with_faults) {
      step_costs.push_back(step_cost);
      for (const EngineCrash& crash : faults.crashes) {
        if (crash.superstep != iter) continue;
        SGP_CHECK(crash.worker < k);
        // Roll back to the last checkpoint (reload cost = one checkpoint
        // write) and replay supersteps [last_checkpoint, iter].
        double recovery = faults.restart_seconds;
        if (last_checkpoint > 0) recovery += checkpoint_cost;
        for (uint32_t s = last_checkpoint; s <= iter; ++s) {
          recovery += step_costs[s];
        }
        stats.recovery_seconds += recovery;
        stats.simulated_seconds += recovery;
        stats.replayed_supersteps += iter - last_checkpoint + 1;
        ++stats.crashes_recovered;
      }
      if (faults.checkpoint_interval != 0 &&
          (iter + 1) % faults.checkpoint_interval == 0) {
        stats.checkpoint_seconds += checkpoint_cost;
        stats.simulated_seconds += checkpoint_cost;
        ++stats.checkpoints;
        last_checkpoint = iter + 1;
      }
    }

    // --- Next frontier ---
    if constexpr (!kAllActive) {
      ++epoch;
      gather_list.clear();
      for (VertexId v : changed) {
        ForEachNeighbor<kScatterDir>(g, v, [&](VertexId w) {
          if (frontier_epoch[w] != epoch) {
            frontier_epoch[w] = epoch;
            gather_list.push_back(w);
          }
        });
      }
    }
  }

  // Bytes were added to both sender and receiver above, so halve the total
  // to report wire traffic once.
  stats.total_network_bytes /= 2;

  EngineMetrics& metrics = EngineMetrics::Get();
  metrics.runs->Increment();
  metrics.supersteps->Increment(stats.iterations);
  metrics.gather_messages->Increment(stats.gather_messages);
  metrics.sync_messages->Increment(stats.sync_messages);
  metrics.network_bytes->Increment(stats.total_network_bytes);
  metrics.checkpoints->Increment(stats.checkpoints);
  metrics.crashes_recovered->Increment(stats.crashes_recovered);
  metrics.barrier_wait_seconds->Add(barrier_wait);
  metrics.simulated_seconds->Add(stats.simulated_seconds);
  metrics.recovery_seconds->Add(stats.recovery_seconds);
  return stats;
}

}  // namespace sgp::engine_detail

#endif  // SGP_ENGINE_KERNEL_H_
