#ifndef SGP_ENGINE_PROGRAMS_H_
#define SGP_ENGINE_PROGRAMS_H_

#include <limits>

#include "engine/vertex_program.h"

namespace sgp {

/// PageRank (Section 5.1.3): all-active, fixed iteration count, sum
/// combiner over in-edges; the canonical uni-directional heavy
/// communication workload.
class PageRankProgram final : public VertexProgram {
 public:
  /// GatherContribution depends only on the source vertex (value_u and
  /// OutDegree(u), never on v), so the all-active kernel may hoist the
  /// per-source contribution out of the per-edge loop — computing it once
  /// per source per superstep is bit-identical to recomputing it per edge.
  static constexpr bool kSourceOnlyGather = true;

  explicit PageRankProgram(uint32_t iterations = 20, double damping = 0.85)
      : iterations_(iterations), damping_(damping) {}

  std::string_view name() const override { return "PageRank"; }
  double InitialValue(VertexId, const Graph&) const override { return 1.0; }
  double GatherNeutral() const override { return 0.0; }
  double GatherContribution(VertexId u, VertexId, double value_u,
                            const Graph& graph) const override {
    return value_u / static_cast<double>(graph.OutDegree(u));
  }
  double Combine(double a, double b) const override { return a + b; }
  double Apply(VertexId, double, double gathered, uint64_t,
               const Graph&) const override {
    return (1.0 - damping_) + damping_ * gathered;
  }
  EdgeDirection gather_direction() const override {
    return EdgeDirection::kIn;
  }
  EdgeDirection scatter_direction() const override {
    return EdgeDirection::kOut;
  }
  bool all_active() const override { return true; }
  uint32_t max_iterations() const override { return iterations_; }
  ProgramKind kind() const override { return ProgramKind::kPageRank; }

 private:
  uint32_t iterations_;
  double damping_;
};

/// Weakly Connected Components via label propagation (Section 5.1.3):
/// starts all-active, shrinking frontier, min combiner over both edge
/// directions — the variable-communication workload.
class WccProgram final : public VertexProgram {
 public:
  std::string_view name() const override { return "WCC"; }
  double InitialValue(VertexId v, const Graph&) const override {
    return static_cast<double>(v);
  }
  double GatherNeutral() const override {
    return std::numeric_limits<double>::infinity();
  }
  double GatherContribution(VertexId, VertexId, double value_u,
                            const Graph&) const override {
    return value_u;
  }
  double Combine(double a, double b) const override {
    return a < b ? a : b;
  }
  double Apply(VertexId, double old_value, double gathered, uint64_t,
               const Graph&) const override {
    return gathered < old_value ? gathered : old_value;
  }
  EdgeDirection gather_direction() const override {
    return EdgeDirection::kBoth;
  }
  EdgeDirection scatter_direction() const override {
    return EdgeDirection::kBoth;
  }
  bool all_active() const override { return false; }
  uint32_t max_iterations() const override { return 10000; }
  std::vector<VertexId> InitialFrontier(const Graph& graph) const override {
    std::vector<VertexId> all(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) all[v] = v;
    return all;
  }
  ProgramKind kind() const override { return ProgramKind::kWcc; }
};

/// Single-Source Shortest Path, unit edge weights (Section 5.1.3):
/// frontier starts at one vertex, grows in BFS order and then shrinks —
/// the adversarial workload for the uniform-load assumption of SGP
/// objectives.
class SsspProgram final : public VertexProgram {
 public:
  explicit SsspProgram(VertexId source) : source_(source) {}

  std::string_view name() const override { return "SSSP"; }
  double InitialValue(VertexId v, const Graph&) const override {
    return v == source_ ? 0.0 : std::numeric_limits<double>::infinity();
  }
  double GatherNeutral() const override {
    return std::numeric_limits<double>::infinity();
  }
  double GatherContribution(VertexId, VertexId, double value_u,
                            const Graph&) const override {
    return value_u + 1.0;
  }
  double Combine(double a, double b) const override {
    return a < b ? a : b;
  }
  double Apply(VertexId, double old_value, double gathered, uint64_t,
               const Graph&) const override {
    return gathered < old_value ? gathered : old_value;
  }
  EdgeDirection gather_direction() const override {
    // Relaxation flows along out-edges, i.e. v gathers over in-edges for
    // directed graphs and over all edges for undirected ones.
    return EdgeDirection::kIn;
  }
  EdgeDirection scatter_direction() const override {
    return EdgeDirection::kOut;
  }
  bool all_active() const override { return false; }
  uint32_t max_iterations() const override { return 100000; }
  std::vector<VertexId> InitialFrontier(const Graph&) const override {
    return {source_};
  }
  ProgramKind kind() const override { return ProgramKind::kSssp; }

  VertexId source() const { return source_; }

 private:
  VertexId source_;
};

}  // namespace sgp

#endif  // SGP_ENGINE_PROGRAMS_H_
