#include "engine/reference.h"

#include <limits>

#include "common/check.h"

namespace sgp {

std::vector<double> ReferencePageRank(const Graph& graph,
                                      uint32_t iterations, double damping) {
  const VertexId n = graph.num_vertices();
  std::vector<double> values(n, 1.0);
  std::vector<double> next(n);
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0;
      for (VertexId u : graph.InNeighbors(v)) {
        sum += values[u] / static_cast<double>(graph.OutDegree(u));
      }
      next[v] = (1.0 - damping) + damping * sum;
    }
    values.swap(next);
  }
  return values;
}

std::vector<double> ReferenceWcc(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<double> label(n, -1.0);
  // FIFO queue as a vector with a read cursor: every vertex enters at
  // most once, so the backing array never exceeds n and never reallocates.
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId root = 0; root < n; ++root) {
    if (label[root] >= 0) continue;
    // `root` is the smallest unvisited id, hence the component minimum.
    label[root] = static_cast<double>(root);
    queue.clear();
    queue.push_back(root);
    for (size_t head = 0; head < queue.size(); ++head) {
      VertexId u = queue[head];
      for (VertexId v : graph.Neighbors(u)) {
        if (label[v] < 0) {
          label[v] = static_cast<double>(root);
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

std::vector<double> ReferenceSssp(const Graph& graph, VertexId source) {
  SGP_CHECK(source < graph.num_vertices());
  const VertexId n = graph.num_vertices();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  dist[source] = 0;
  std::vector<VertexId> queue{source};
  queue.reserve(n);
  for (size_t head = 0; head < queue.size(); ++head) {
    VertexId u = queue[head];
    for (VertexId v : graph.OutNeighbors(u)) {
      if (dist[v] == std::numeric_limits<double>::infinity()) {
        dist[v] = dist[u] + 1.0;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace sgp
