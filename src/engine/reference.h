#ifndef SGP_ENGINE_REFERENCE_H_
#define SGP_ENGINE_REFERENCE_H_

#include <vector>

#include "graph/graph.h"

namespace sgp {

/// Single-machine reference implementations of the three workloads, used
/// by tests to validate the invariant that engine results are independent
/// of partitioning. The traversals run BFS over a cursor-indexed vector
/// frontier (each vertex enqueues at most once), so every reference is
/// O(n + m) with no per-step allocation.

/// Synchronous (Jacobi) PageRank; matches the engine's update rule
/// value = (1 − d) + d · Σ value(u)/outdeg(u) exactly.
std::vector<double> ReferencePageRank(const Graph& graph,
                                      uint32_t iterations = 20,
                                      double damping = 0.85);

/// Weakly connected component label of each vertex: the minimum vertex id
/// reachable when ignoring edge direction.
std::vector<double> ReferenceWcc(const Graph& graph);

/// Unweighted shortest-path distance from `source` along out-edges;
/// +infinity for unreachable vertices.
std::vector<double> ReferenceSssp(const Graph& graph, VertexId source);

}  // namespace sgp

#endif  // SGP_ENGINE_REFERENCE_H_
