#ifndef SGP_ENGINE_VERTEX_PROGRAM_H_
#define SGP_ENGINE_VERTEX_PROGRAM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace sgp {

/// Which incident edges a phase traverses.
enum class EdgeDirection {
  kIn,    // edges (u, v) when processing v
  kOut,   // edges (v, w) when processing v
  kBoth,  // undirected semantics
};

/// Dispatch tag of a vertex program. The engine pattern-matches on this to
/// route built-in programs onto compile-time-specialized superstep kernels
/// (virtual calls removed from the per-edge hot path); kGeneric — the
/// default for user-defined programs — selects the virtual fallback path.
/// The two paths produce byte-identical EngineStats (pinned by
/// tests/engine_kernel_test.cc), so the tag is purely a speed hint.
enum class ProgramKind {
  kGeneric,
  kPageRank,
  kWcc,
  kSssp,
};

/// Synchronous Gather-Apply-Scatter vertex program (the PowerGraph /
/// PowerLyra computation model, Section 2). Vertex state is a double; the
/// gather aggregate must be commutative and associative so mirrors can
/// compute partial aggregates (sender-side aggregation, Appendix B).
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Workload name as used in the paper ("PageRank", "WCC", "SSSP").
  virtual std::string_view name() const = 0;

  /// Initial vertex value.
  virtual double InitialValue(VertexId v, const Graph& graph) const = 0;

  /// Identity element of Combine().
  virtual double GatherNeutral() const = 0;

  /// Contribution of neighbor `u` (with current value `value_u`) to the
  /// gather of `v` along one edge.
  virtual double GatherContribution(VertexId u, VertexId v, double value_u,
                                    const Graph& graph) const = 0;

  /// Commutative-associative combiner (sum for PageRank, min for WCC/SSSP).
  virtual double Combine(double a, double b) const = 0;

  /// New value of `v` from its old value and the combined gather result.
  /// `num_contributions` is the number of gathered edges (0 if none).
  virtual double Apply(VertexId v, double old_value, double gathered,
                       uint64_t num_contributions,
                       const Graph& graph) const = 0;

  /// Edges traversed by the gather phase.
  virtual EdgeDirection gather_direction() const = 0;

  /// Edges traversed by the scatter phase (activation of neighbors).
  virtual EdgeDirection scatter_direction() const = 0;

  /// True for fixed-iteration, all-active algorithms (PageRank): every
  /// vertex gathers and synchronizes its value every iteration.
  virtual bool all_active() const = 0;

  /// Iteration cap (PageRank runs exactly this many; data-driven programs
  /// stop earlier when no value changes).
  virtual uint32_t max_iterations() const = 0;

  /// Vertices active in the first iteration (ignored when all_active()).
  virtual std::vector<VertexId> InitialFrontier(const Graph&) const {
    return {};
  }

  /// Whether a value change is significant enough to activate neighbors.
  virtual bool Changed(double old_value, double new_value) const {
    return old_value != new_value;
  }

  /// Kernel-dispatch tag (see ProgramKind). Built-in programs override
  /// this; the engine falls back to the virtual path for kGeneric and for
  /// any tag whose dynamic type does not match.
  virtual ProgramKind kind() const { return ProgramKind::kGeneric; }
};

/// Forwarding view of a program that reports ProgramKind::kGeneric, pinning
/// the engine to the virtual fallback kernel. Used by the equivalence tests
/// and bench_engine_speed to compare the specialized kernels against the
/// generic path on the same program instance.
class GenericProgramView final : public VertexProgram {
 public:
  explicit GenericProgramView(const VertexProgram& inner) : inner_(&inner) {}

  std::string_view name() const override { return inner_->name(); }
  double InitialValue(VertexId v, const Graph& g) const override {
    return inner_->InitialValue(v, g);
  }
  double GatherNeutral() const override { return inner_->GatherNeutral(); }
  double GatherContribution(VertexId u, VertexId v, double value_u,
                            const Graph& g) const override {
    return inner_->GatherContribution(u, v, value_u, g);
  }
  double Combine(double a, double b) const override {
    return inner_->Combine(a, b);
  }
  double Apply(VertexId v, double old_value, double gathered,
               uint64_t num_contributions, const Graph& g) const override {
    return inner_->Apply(v, old_value, gathered, num_contributions, g);
  }
  EdgeDirection gather_direction() const override {
    return inner_->gather_direction();
  }
  EdgeDirection scatter_direction() const override {
    return inner_->scatter_direction();
  }
  bool all_active() const override { return inner_->all_active(); }
  uint32_t max_iterations() const override { return inner_->max_iterations(); }
  std::vector<VertexId> InitialFrontier(const Graph& g) const override {
    return inner_->InitialFrontier(g);
  }
  bool Changed(double old_value, double new_value) const override {
    return inner_->Changed(old_value, new_value);
  }

 private:
  const VertexProgram* inner_;
};

}  // namespace sgp

#endif  // SGP_ENGINE_VERTEX_PROGRAM_H_
