#include "experiments/cache.h"

#include "common/telemetry.h"
#include "graph/datasets.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

namespace sgp {

namespace {

// Hit accounting goes to the requesting thread's current registry, so a
// grid cell's hits are isolated with the rest of its telemetry and merge
// into the parent registry at join.
void CountHit(bool was_hit) {
  if (was_hit) {
    MetricsRegistry::Current().GetCounter("grid.cache_hits")->Increment();
  }
}

}  // namespace

GridCaches& GridCaches::Global() {
  static GridCaches* caches = new GridCaches();
  return *caches;
}

const Graph& GridCaches::GetGraph(const std::string& dataset,
                                  uint32_t scale) {
  bool hit = false;
  const Graph& graph = graphs_.Get(
      std::make_pair(dataset, scale),
      [&] { return MakeDataset(dataset, scale); }, &hit);
  CountHit(hit);
  return graph;
}

const CachedPartitioning& GridCaches::GetPartitioning(
    const Graph& graph, const PartitioningKey& key) {
  bool hit = false;
  const CachedPartitioning& cached = partitionings_.Get(
      key,
      [&] {
        PartitionConfig config;
        config.k = key.k;
        config.seed = key.seed;
        CachedPartitioning result;
        result.partitioning =
            CreatePartitioner(key.algorithm)->Run(graph, config);
        ValidatePartitioning(graph, result.partitioning);
        result.metrics = ComputeMetrics(graph, result.partitioning);
        return result;
      },
      &hit);
  CountHit(hit);
  return cached;
}

const Workload& GridCaches::GetWorkload(const Graph& graph,
                                        const WorkloadKey& key) {
  bool hit = false;
  const Workload& workload = workloads_.Get(
      key,
      [&] {
        WorkloadConfig config;
        config.kind = key.kind;
        config.skew = key.skew;
        config.seed = key.seed;
        return Workload(graph, config);
      },
      &hit);
  CountHit(hit);
  return workload;
}

void GridCaches::Clear() {
  graphs_.Clear();
  partitionings_.Clear();
  workloads_.Clear();
}

}  // namespace sgp
