#ifndef SGP_EXPERIMENTS_CACHE_H_
#define SGP_EXPERIMENTS_CACHE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "graph/graph.h"
#include "graphdb/workload.h"
#include "partition/metrics.h"
#include "partition/partitioning.h"

namespace sgp {

/// Memoized, thread-safe caches for the experiment grid's shared build
/// products: dataset graphs, partitionings (with their structural
/// metrics) and query workloads. These are the upstream nodes of the grid
/// runner's cell-task DAG — many cells need the same graph or the same
/// partitioning, and the caches guarantee each key is computed exactly
/// once no matter how many worker threads request it concurrently.
///
/// Concurrency model (requester-computes): the first thread to request a
/// key computes the value on its own thread; every other requester blocks
/// on a shared future until the value is ready. Because the computation
/// always runs on a thread that is already executing (never on a task
/// still sitting in a queue), a fixed-size thread pool cannot deadlock on
/// cache dependencies. Values have stable addresses for the cache's
/// lifetime, so returned references stay valid across later insertions.
///
/// Every satisfied request for an already-present (or in-flight) key
/// increments `grid.cache_hits` in the requesting thread's current
/// metrics registry; the total is deterministic (requests minus distinct
/// keys), regardless of which thread happened to compute each value.

/// Keyed, memoized single-computation cache (see file comment). Key must
/// be strict-weak-orderable; Value is computed by the builder passed to
/// Get and stored behind a stable unique_ptr.
template <typename Key, typename Value>
class MemoCache {
 public:
  /// Returns the value for `key`, invoking `build` (exactly once per key
  /// across all threads) to create it when absent. `was_hit`, when given,
  /// reports whether the key was already present or in flight.
  template <typename Builder>
  const Value& Get(const Key& key, Builder&& build, bool* was_hit = nullptr);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Drops every entry. Callers must ensure no Get is in flight and no
  /// returned reference is still in use.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  struct Entry {
    std::promise<const Value*> promise;
    std::shared_future<const Value*> future;
    std::unique_ptr<Value> value;
  };

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

/// A partitioning plus the structural metrics every cell derives from it.
/// Cached together because ComputeMetrics is pure and shared by all
/// workloads of a cell.
struct CachedPartitioning {
  Partitioning partitioning;
  PartitionMetrics metrics;
};

/// Key of one partitioner run inside a grid: the grid always partitions
/// with a default PartitionConfig apart from k and seed, so these five
/// fields pin the result exactly.
struct PartitioningKey {
  std::string dataset;
  uint32_t scale = 0;
  std::string algorithm;
  PartitionId k = 0;
  uint64_t seed = 0;

  bool operator<(const PartitioningKey& o) const {
    return std::tie(dataset, scale, algorithm, k, seed) <
           std::tie(o.dataset, o.scale, o.algorithm, o.k, o.seed);
  }
};

/// Key of one workload build: binding generation depends on the graph,
/// the query kind, the Zipf skew and the workload seed.
struct WorkloadKey {
  std::string dataset;
  uint32_t scale = 0;
  QueryKind kind = QueryKind::kOneHop;
  double skew = 0;
  uint64_t seed = 0;

  bool operator<(const WorkloadKey& o) const {
    return std::tie(dataset, scale, kind, skew, seed) <
           std::tie(o.dataset, o.scale, o.kind, o.skew, o.seed);
  }
};

/// The grid's three caches, shared process-wide so repeated grid calls —
/// and the offline and online grids of one study — reuse each other's
/// graphs and partitionings.
class GridCaches {
 public:
  /// Process-wide instance used by GridRunner.
  static GridCaches& Global();

  /// Graph for (dataset, scale), built via MakeDataset on first request.
  const Graph& GetGraph(const std::string& dataset, uint32_t scale);

  /// Validated partitioning plus metrics for `key`; `graph` must be the
  /// cached graph of (key.dataset, key.scale).
  const CachedPartitioning& GetPartitioning(const Graph& graph,
                                            const PartitioningKey& key);

  /// Workload for `key`; `graph` must match (key.dataset, key.scale).
  const Workload& GetWorkload(const Graph& graph, const WorkloadKey& key);

  /// Entry counts, exposed for tests.
  size_t num_graphs() const { return graphs_.size(); }
  size_t num_partitionings() const { return partitionings_.size(); }
  size_t num_workloads() const { return workloads_.size(); }

  /// Drops everything (tests / memory reclamation on a quiesced grid).
  void Clear();

 private:
  MemoCache<std::pair<std::string, uint32_t>, Graph> graphs_;
  MemoCache<PartitioningKey, CachedPartitioning> partitionings_;
  MemoCache<WorkloadKey, Workload> workloads_;
};

// ---------------------------------------------------------------------------
// Template implementation
// ---------------------------------------------------------------------------

template <typename Key, typename Value>
template <typename Builder>
const Value& MemoCache<Key, Value>::Get(const Key& key, Builder&& build,
                                        bool* was_hit) {
  std::unique_lock<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& entry = it->second;
  if (was_hit != nullptr) *was_hit = !inserted;
  if (!inserted) {
    std::shared_future<const Value*> future = entry.future;
    lock.unlock();
    return *future.get();  // rethrows if the computing thread failed
  }
  entry.future = entry.promise.get_future().share();
  lock.unlock();
  try {
    auto value = std::make_unique<Value>(build());
    const Value* ptr = value.get();
    {
      std::lock_guard<std::mutex> relock(mu_);
      entry.value = std::move(value);  // std::map: entry address is stable
    }
    entry.promise.set_value(ptr);
    return *ptr;
  } catch (...) {
    entry.promise.set_exception(std::current_exception());
    throw;
  }
}

}  // namespace sgp

#endif  // SGP_EXPERIMENTS_CACHE_H_
