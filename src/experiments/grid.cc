#include "experiments/grid.h"

#include <map>
#include <ostream>

#include "common/check.h"
#include "common/statistics.h"
#include "engine/programs.h"
#include "graph/datasets.h"
#include "graphdb/workload.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

namespace sgp {

namespace {

// Graph cache keyed by (dataset, scale); grids revisit datasets often.
const Graph& CachedGraph(const std::string& dataset, uint32_t scale) {
  static auto* cache = new std::map<std::pair<std::string, uint32_t>, Graph>();
  auto key = std::make_pair(dataset, scale);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, MakeDataset(dataset, scale)).first;
  }
  return it->second;
}

EngineStats RunWorkload(const AnalyticsEngine& engine,
                        const std::string& workload, const Graph& graph,
                        uint32_t pagerank_iterations) {
  if (workload == "pagerank") {
    return engine.Run(PageRankProgram(pagerank_iterations));
  }
  if (workload == "wcc") {
    return engine.Run(WccProgram());
  }
  SGP_CHECK(workload == "sssp");
  VertexId source = 0;
  while (source < graph.num_vertices() && graph.Degree(source) == 0) {
    ++source;
  }
  return engine.Run(SsspProgram(source));
}

std::string CsvEscape(const std::string& value) { return value; }

}  // namespace

std::vector<OfflineRunRecord> RunOfflineGrid(const OfflineGridSpec& spec) {
  std::vector<OfflineRunRecord> records;
  std::vector<std::string> algorithms =
      spec.algorithms.empty() ? PartitionerNames() : spec.algorithms;
  for (const std::string& dataset : spec.datasets) {
    const Graph& graph = CachedGraph(dataset, spec.scale);
    for (const std::string& algorithm : algorithms) {
      auto partitioner = CreatePartitioner(algorithm);
      for (PartitionId k : spec.cluster_sizes) {
        // One record per workload, averaged across seeds.
        const uint32_t seeds = std::max(1u, spec.num_seeds);
        std::map<std::string, std::vector<double>> times;
        std::vector<double> rfs;
        std::map<std::string, OfflineRunRecord> cell;
        for (uint32_t s = 0; s < seeds; ++s) {
          PartitionConfig config;
          config.k = k;
          config.seed = spec.seed + s;
          Partitioning partitioning = partitioner->Run(graph, config);
          ValidatePartitioning(graph, partitioning);
          PartitionMetrics metrics = ComputeMetrics(graph, partitioning);
          rfs.push_back(metrics.replication_factor);
          AnalyticsEngine engine(graph, partitioning, spec.cost_model);
          for (const std::string& workload : spec.workloads) {
            EngineStats stats = RunWorkload(engine, workload, graph,
                                            spec.pagerank_iterations);
            times[workload].push_back(stats.simulated_seconds);
            OfflineRunRecord& r = cell[workload];
            const double w = 1.0 / seeds;
            if (s == 0) {
              r.dataset = dataset;
              r.algorithm = algorithm;
              r.workload = workload;
              r.k = k;
              r.iterations = stats.iterations;
            }
            r.replication_factor += metrics.replication_factor * w;
            r.edge_cut_ratio += metrics.edge_cut_ratio * w;
            r.vertex_imbalance += metrics.vertex_imbalance * w;
            r.edge_imbalance += metrics.edge_imbalance * w;
            r.network_bytes += static_cast<uint64_t>(
                static_cast<double>(stats.total_network_bytes) * w);
            r.compute_imbalance +=
                Summarize(stats.compute_seconds_per_worker)
                    .ImbalanceFactor() *
                w;
            r.simulated_seconds += stats.simulated_seconds * w;
            r.partitioning_seconds +=
                partitioning.partitioning_seconds * w;
            r.partitioner_state_bytes += static_cast<uint64_t>(
                static_cast<double>(partitioning.state_bytes) * w);
          }
        }
        for (const std::string& workload : spec.workloads) {
          OfflineRunRecord r = cell[workload];
          if (seeds > 1) {
            r.simulated_seconds_stddev = Summarize(times[workload]).stddev;
            r.replication_factor_stddev = Summarize(rfs).stddev;
          }
          records.push_back(std::move(r));
        }
      }
    }
  }
  return records;
}

void WriteOfflineCsv(const std::vector<OfflineRunRecord>& records,
                     std::ostream& out) {
  out << "dataset,algorithm,workload,k,replication_factor,edge_cut_ratio,"
         "vertex_imbalance,edge_imbalance,iterations,network_bytes,"
         "compute_imbalance,simulated_seconds,partitioning_seconds,"
         "partitioner_state_bytes,simulated_seconds_stddev,"
         "replication_factor_stddev\n";
  for (const OfflineRunRecord& r : records) {
    out << CsvEscape(r.dataset) << ',' << CsvEscape(r.algorithm) << ','
        << CsvEscape(r.workload) << ',' << r.k << ','
        << r.replication_factor << ',' << r.edge_cut_ratio << ','
        << r.vertex_imbalance << ',' << r.edge_imbalance << ','
        << r.iterations << ',' << r.network_bytes << ','
        << r.compute_imbalance << ',' << r.simulated_seconds << ','
        << r.partitioning_seconds << ',' << r.partitioner_state_bytes
        << ',' << r.simulated_seconds_stddev << ','
        << r.replication_factor_stddev << '\n';
  }
}

std::vector<OnlineRunRecord> RunOnlineGrid(const OnlineGridSpec& spec) {
  std::vector<OnlineRunRecord> records;
  for (const std::string& dataset : spec.datasets) {
    const Graph& graph = CachedGraph(dataset, spec.scale);
    for (QueryKind kind : spec.workloads) {
      WorkloadConfig wcfg;
      wcfg.kind = kind;
      wcfg.skew = spec.workload_skew;
      wcfg.seed = spec.seed;
      Workload workload(graph, wcfg);
      for (const std::string& algorithm : spec.algorithms) {
        auto partitioner = CreatePartitioner(algorithm);
        for (PartitionId k : spec.cluster_sizes) {
          PartitionConfig config;
          config.k = k;
          config.seed = spec.seed;
          Partitioning partitioning = partitioner->Run(graph, config);
          PartitionMetrics metrics = ComputeMetrics(graph, partitioning);
          GraphDatabase db(graph, partitioning, spec.cost_model);
          for (uint32_t cpw : spec.clients_per_worker) {
            SimConfig sim;
            sim.clients = cpw * k;
            sim.num_queries = spec.queries_per_run;
            sim.seed = spec.seed;
            SimResult result = SimulateClosedLoop(db, workload, sim);
            OnlineRunRecord r;
            r.dataset = dataset;
            r.algorithm = algorithm;
            r.workload = std::string(QueryKindName(kind));
            r.k = k;
            r.clients = sim.clients;
            r.edge_cut_ratio = metrics.edge_cut_ratio;
            r.throughput_qps = result.throughput_qps;
            r.mean_latency_seconds = result.latency.mean;
            r.p99_latency_seconds = result.latency.p99;
            r.read_rsd = Summarize(result.reads_per_worker).RelativeStdDev();
            r.network_bytes = result.total_network_bytes;
            records.push_back(std::move(r));
          }
        }
      }
    }
  }
  return records;
}

void WriteOnlineCsv(const std::vector<OnlineRunRecord>& records,
                    std::ostream& out) {
  out << "dataset,algorithm,workload,k,clients,edge_cut_ratio,"
         "throughput_qps,mean_latency_seconds,p99_latency_seconds,"
         "read_rsd,network_bytes\n";
  for (const OnlineRunRecord& r : records) {
    out << CsvEscape(r.dataset) << ',' << CsvEscape(r.algorithm) << ','
        << CsvEscape(r.workload) << ',' << r.k << ',' << r.clients << ','
        << r.edge_cut_ratio << ',' << r.throughput_qps << ','
        << r.mean_latency_seconds << ',' << r.p99_latency_seconds << ','
        << r.read_rsd << ',' << r.network_bytes << '\n';
  }
}

}  // namespace sgp
