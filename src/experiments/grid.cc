#include "experiments/grid.h"

#include <algorithm>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <ostream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/statistics.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "engine/programs.h"
#include "experiments/cache.h"
#include "graphdb/workload.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

namespace sgp {

namespace {

EngineStats RunEngineWorkload(const AnalyticsEngine& engine,
                              const std::string& workload, const Graph& graph,
                              uint32_t pagerank_iterations) {
  if (workload == "pagerank") {
    return engine.Run(PageRankProgram(pagerank_iterations));
  }
  if (workload == "wcc") {
    return engine.Run(WccProgram());
  }
  SGP_CHECK(workload == "sssp");
  VertexId source = 0;
  while (source < graph.num_vertices() && graph.Degree(source) == 0) {
    ++source;
  }
  return engine.Run(SsspProgram(source));
}

// One offline cell: a (dataset, algorithm, k) triple. Seeds and workloads
// run sequentially inside the cell — their accumulation order is part of
// the records' bit pattern — while distinct cells are independent.
std::vector<OfflineRunRecord> RunOfflineCell(const OfflineGridSpec& spec,
                                             const std::string& dataset,
                                             const std::string& algorithm,
                                             PartitionId k) {
  GridCaches& caches = GridCaches::Global();
  const Graph& graph = caches.GetGraph(dataset, spec.scale);
  const uint32_t seeds = std::max(1u, spec.num_seeds);
  std::map<std::string, std::vector<double>> times;
  std::vector<double> rfs;
  std::map<std::string, OfflineRunRecord> cell;
  for (uint32_t s = 0; s < seeds; ++s) {
    const CachedPartitioning& cached = caches.GetPartitioning(
        graph,
        PartitioningKey{dataset, spec.scale, algorithm, k, spec.seed + s});
    const Partitioning& partitioning = cached.partitioning;
    const PartitionMetrics& metrics = cached.metrics;
    rfs.push_back(metrics.replication_factor);
    AnalyticsEngine engine(graph, partitioning, spec.cost_model);
    for (const std::string& workload : spec.workloads) {
      EngineStats stats = RunEngineWorkload(engine, workload, graph,
                                            spec.pagerank_iterations);
      times[workload].push_back(stats.simulated_seconds);
      OfflineRunRecord& r = cell[workload];
      const double w = 1.0 / seeds;
      if (s == 0) {
        r.dataset = dataset;
        r.algorithm = algorithm;
        r.workload = workload;
        r.k = k;
        r.iterations = stats.iterations;
      }
      r.replication_factor += metrics.replication_factor * w;
      r.edge_cut_ratio += metrics.edge_cut_ratio * w;
      r.vertex_imbalance += metrics.vertex_imbalance * w;
      r.edge_imbalance += metrics.edge_imbalance * w;
      r.network_bytes += static_cast<uint64_t>(
          static_cast<double>(stats.total_network_bytes) * w);
      r.compute_imbalance +=
          Summarize(stats.compute_seconds_per_worker).ImbalanceFactor() * w;
      r.simulated_seconds += stats.simulated_seconds * w;
      r.partitioning_seconds += partitioning.partitioning_seconds * w;
      r.partitioner_state_bytes += static_cast<uint64_t>(
          static_cast<double>(partitioning.state_bytes) * w);
    }
  }
  std::vector<OfflineRunRecord> records;
  records.reserve(spec.workloads.size());
  for (const std::string& workload : spec.workloads) {
    OfflineRunRecord r = cell[workload];
    if (seeds > 1) {
      r.simulated_seconds_stddev = Summarize(times[workload]).stddev;
      r.replication_factor_stddev = Summarize(rfs).stddev;
    }
    records.push_back(std::move(r));
  }
  return records;
}

// One online cell: a (dataset, workload kind, algorithm, k) tuple; the
// load levels share its database instance and run sequentially.
std::vector<OnlineRunRecord> RunOnlineCell(const OnlineGridSpec& spec,
                                           const std::string& dataset,
                                           QueryKind kind,
                                           const std::string& algorithm,
                                           PartitionId k) {
  GridCaches& caches = GridCaches::Global();
  const Graph& graph = caches.GetGraph(dataset, spec.scale);
  const Workload& workload = caches.GetWorkload(
      graph, WorkloadKey{dataset, spec.scale, kind, spec.workload_skew,
                         spec.workload_seed.value_or(spec.seed)});
  const CachedPartitioning& cached = caches.GetPartitioning(
      graph, PartitioningKey{dataset, spec.scale, algorithm, k, spec.seed});
  GraphDatabase db(graph, cached.partitioning, spec.cost_model);
  const bool absolute = !spec.total_clients.empty();
  const std::vector<uint32_t>& loads =
      absolute ? spec.total_clients : spec.clients_per_worker;
  std::vector<OnlineRunRecord> records;
  records.reserve(loads.size());
  for (uint32_t load : loads) {
    SimConfig sim;
    sim.clients = absolute ? load : load * k;
    sim.num_queries = spec.queries_per_run;
    sim.seed = spec.sim_seed.value_or(spec.seed);
    SimResult result = SimulateClosedLoop(db, workload, sim);
    OnlineRunRecord r;
    r.dataset = dataset;
    r.algorithm = algorithm;
    r.workload = std::string(QueryKindName(kind));
    r.k = k;
    r.clients = sim.clients;
    r.edge_cut_ratio = cached.metrics.edge_cut_ratio;
    r.throughput_qps = result.throughput_qps;
    r.mean_latency_seconds = result.latency.mean;
    r.p99_latency_seconds = result.latency.p99;
    r.read_rsd = Summarize(result.reads_per_worker).RelativeStdDev();
    r.network_bytes = result.total_network_bytes;
    records.push_back(std::move(r));
  }
  return records;
}

// Runs every cell task, serially or on a thread pool, with an isolated
// metrics registry per cell. Results and telemetry join in canonical
// (submission) order: each cell registry is merged into the caller's
// registry and `grid.cells_done` ticks once per cell, so merged totals
// and record order do not depend on the thread count or on which worker
// ran which cell.
template <typename Record>
std::vector<Record> RunCells(
    uint32_t threads,
    std::vector<std::function<std::vector<Record>()>> cells) {
  MetricsRegistry& parent = MetricsRegistry::Current();
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  registries.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    registries.push_back(std::make_unique<MetricsRegistry>());
  }
  std::vector<std::vector<Record>> results(cells.size());
  if (threads <= 1 || cells.size() <= 1) {
    for (size_t i = 0; i < cells.size(); ++i) {
      ScopedMetricsRegistry scoped(registries[i].get());
      results[i] = cells[i]();
    }
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<std::vector<Record>>> futures;
    futures.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      futures.push_back(pool.Submit([&cells, &registries, i] {
        ScopedMetricsRegistry scoped(registries[i].get());
        return cells[i]();
      }));
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      results[i] = futures[i].get();
    }
  }
  Counter* cells_done = parent.GetCounter("grid.cells_done");
  std::vector<Record> flat;
  for (size_t i = 0; i < cells.size(); ++i) {
    parent.MergeFrom(*registries[i]);
    cells_done->Increment();
    for (Record& record : results[i]) {
      flat.push_back(std::move(record));
    }
  }
  return flat;
}

}  // namespace

GridRunner::GridRunner(const GridOptions& options)
    : threads_(options.threads != 0
                   ? options.threads
                   : std::max(1u, std::thread::hardware_concurrency())) {}

std::vector<OfflineRunRecord> GridRunner::Run(const OfflineGridSpec& spec) {
  const std::vector<std::string> algorithms =
      spec.algorithms.empty() ? PartitionerNames() : spec.algorithms;
  std::vector<std::function<std::vector<OfflineRunRecord>()>> cells;
  for (const std::string& dataset : spec.datasets) {
    for (const std::string& algorithm : algorithms) {
      for (PartitionId k : spec.cluster_sizes) {
        cells.push_back([&spec, dataset, algorithm, k] {
          return RunOfflineCell(spec, dataset, algorithm, k);
        });
      }
    }
  }
  return RunCells(threads_, std::move(cells));
}

std::vector<OnlineRunRecord> GridRunner::Run(const OnlineGridSpec& spec) {
  std::vector<std::function<std::vector<OnlineRunRecord>()>> cells;
  for (const std::string& dataset : spec.datasets) {
    for (QueryKind kind : spec.workloads) {
      for (const std::string& algorithm : spec.algorithms) {
        for (PartitionId k : spec.cluster_sizes) {
          cells.push_back([&spec, dataset, kind, algorithm, k] {
            return RunOnlineCell(spec, dataset, kind, algorithm, k);
          });
        }
      }
    }
  }
  return RunCells(threads_, std::move(cells));
}

std::vector<OfflineRunRecord> RunOfflineGrid(const OfflineGridSpec& spec,
                                             const GridOptions& options) {
  return GridRunner(options).Run(spec);
}

std::vector<OnlineRunRecord> RunOnlineGrid(const OnlineGridSpec& spec,
                                           const GridOptions& options) {
  return GridRunner(options).Run(spec);
}

const CsvSchema<OfflineRunRecord>& OfflineCsvSchema() {
  static const auto* schema = new CsvSchema<OfflineRunRecord>({
      CsvCol("dataset", &OfflineRunRecord::dataset),
      CsvCol("algorithm", &OfflineRunRecord::algorithm),
      CsvCol("workload", &OfflineRunRecord::workload),
      CsvCol("k", &OfflineRunRecord::k),
      CsvCol("replication_factor", &OfflineRunRecord::replication_factor),
      CsvCol("edge_cut_ratio", &OfflineRunRecord::edge_cut_ratio),
      CsvCol("vertex_imbalance", &OfflineRunRecord::vertex_imbalance),
      CsvCol("edge_imbalance", &OfflineRunRecord::edge_imbalance),
      CsvCol("iterations", &OfflineRunRecord::iterations),
      CsvCol("network_bytes", &OfflineRunRecord::network_bytes),
      CsvCol("compute_imbalance", &OfflineRunRecord::compute_imbalance),
      CsvCol("simulated_seconds", &OfflineRunRecord::simulated_seconds),
      CsvCol("partitioning_seconds", &OfflineRunRecord::partitioning_seconds),
      CsvCol("partitioner_state_bytes",
             &OfflineRunRecord::partitioner_state_bytes),
      CsvCol("simulated_seconds_stddev",
             &OfflineRunRecord::simulated_seconds_stddev),
      CsvCol("replication_factor_stddev",
             &OfflineRunRecord::replication_factor_stddev),
  });
  return *schema;
}

const CsvSchema<OnlineRunRecord>& OnlineCsvSchema() {
  static const auto* schema = new CsvSchema<OnlineRunRecord>({
      CsvCol("dataset", &OnlineRunRecord::dataset),
      CsvCol("algorithm", &OnlineRunRecord::algorithm),
      CsvCol("workload", &OnlineRunRecord::workload),
      CsvCol("k", &OnlineRunRecord::k),
      CsvCol("clients", &OnlineRunRecord::clients),
      CsvCol("edge_cut_ratio", &OnlineRunRecord::edge_cut_ratio),
      CsvCol("throughput_qps", &OnlineRunRecord::throughput_qps),
      CsvCol("mean_latency_seconds", &OnlineRunRecord::mean_latency_seconds),
      CsvCol("p99_latency_seconds", &OnlineRunRecord::p99_latency_seconds),
      CsvCol("read_rsd", &OnlineRunRecord::read_rsd),
      CsvCol("network_bytes", &OnlineRunRecord::network_bytes),
  });
  return *schema;
}

void WriteOfflineCsv(const std::vector<OfflineRunRecord>& records,
                     std::ostream& out) {
  OfflineCsvSchema().Write(out, records);
}

void WriteOnlineCsv(const std::vector<OnlineRunRecord>& records,
                    std::ostream& out) {
  OnlineCsvSchema().Write(out, records);
}

}  // namespace sgp
