#ifndef SGP_EXPERIMENTS_GRID_H_
#define SGP_EXPERIMENTS_GRID_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "engine/engine.h"
#include "graphdb/event_sim.h"
#include "partition/partitioning.h"

namespace sgp {

/// Programmatic experiment grids: the paper's Table 2 parameter space as
/// a library. The bench binaries print individual tables; these runners
/// return structured records (and CSV) so downstream analysis — plotting,
/// regression tracking, new studies — does not have to scrape stdout.
///
/// Execution model (docs/EXPERIMENTS.md): a grid is decomposed into
/// independent cell tasks — one per (dataset, algorithm, k) offline, one
/// per (dataset, workload, algorithm, k) online — that pull their graph,
/// partitioning and workload dependencies from process-wide memoized
/// caches. Cells run on a shared thread pool when GridOptions::threads
/// > 1; results and per-cell telemetry are joined in canonical
/// (specification) order, so record order, CSV bytes and merged metric
/// totals are independent of the thread count.

/// One offline-analytics configuration's results (Sections 5.1.4/6.2).
struct OfflineRunRecord {
  std::string dataset;
  std::string algorithm;
  std::string workload;  // "pagerank" | "wcc" | "sssp"
  PartitionId k = 0;

  // Structural metrics.
  double replication_factor = 0;
  double edge_cut_ratio = 0;
  double vertex_imbalance = 0;
  double edge_imbalance = 0;

  // Runtime metrics.
  uint32_t iterations = 0;
  uint64_t network_bytes = 0;
  double compute_imbalance = 0;  // max/mean per-worker compute seconds

  // Performance metrics.
  double simulated_seconds = 0;
  double partitioning_seconds = 0;
  uint64_t partitioner_state_bytes = 0;

  // Across-seed variability (0 when num_seeds == 1).
  double simulated_seconds_stddev = 0;
  double replication_factor_stddev = 0;
};

/// Offline grid specification; defaults reproduce the Table 2 offline row.
struct OfflineGridSpec {
  std::vector<std::string> datasets{"twitter", "usaroad", "ldbc"};
  std::vector<std::string> algorithms;  // empty = PartitionerNames()
  std::vector<PartitionId> cluster_sizes{8, 16, 32, 64, 128};
  std::vector<std::string> workloads{"pagerank", "wcc", "sssp"};
  uint32_t scale = 13;
  uint32_t pagerank_iterations = 20;
  uint64_t seed = 42;

  /// Number of seeds per cell (seed, seed+1, …). With more than one, each
  /// record reports the mean across seeds and fills the *_stddev fields —
  /// the variance a careful experimental study reports alongside means.
  uint32_t num_seeds = 1;

  EngineCostModel cost_model;
};

/// One online-queries configuration's results (Sections 5.2.4/6.3).
struct OnlineRunRecord {
  std::string dataset;
  std::string algorithm;
  std::string workload;  // "1-hop" | "2-hop"
  PartitionId k = 0;
  uint32_t clients = 0;

  double edge_cut_ratio = 0;
  double throughput_qps = 0;
  double mean_latency_seconds = 0;
  double p99_latency_seconds = 0;
  double read_rsd = 0;  // per-worker read imbalance
  uint64_t network_bytes = 0;
};

/// Online grid specification; defaults reproduce the Table 2 online row.
struct OnlineGridSpec {
  std::vector<std::string> datasets{"ldbc"};
  std::vector<std::string> algorithms{"ECR", "LDG", "FNL", "MTS"};
  std::vector<PartitionId> cluster_sizes{4, 8, 16, 32};
  std::vector<QueryKind> workloads{QueryKind::kOneHop, QueryKind::kTwoHop};
  std::vector<uint32_t> clients_per_worker{12, 24};  // medium, high load

  /// Absolute client counts. When non-empty this replaces
  /// clients_per_worker: each entry is used as-is for every k, which is
  /// what a scale-out study needs — fixed total load while the cluster
  /// grows (Figure 12).
  std::vector<uint32_t> total_clients;

  uint32_t scale = 13;
  uint64_t queries_per_run = 15000;
  double workload_skew = 0.8;
  uint64_t seed = 42;

  /// Seed overrides for workload generation and the closed-loop
  /// simulator. Unset means `seed` is used for both (the grid's
  /// historical behavior); the bench figures pin these to the defaults
  /// their hand-rolled loops used before moving onto the grid.
  std::optional<uint64_t> workload_seed;
  std::optional<uint64_t> sim_seed;

  DbCostModel cost_model;
};

/// Grid execution knobs, shared by the offline and online runners.
struct GridOptions {
  /// Worker threads for cell execution. 1 (default) runs every cell
  /// serially in the calling thread; 0 means one worker per hardware
  /// thread. Any value yields identical records — parallelism only
  /// changes wall-clock time.
  uint32_t threads = 1;
};

/// Unified runner for both grid flavors. Cells execute on a shared
/// thread pool (see GridOptions::threads); every run increments
/// `grid.cells_done` per completed cell and `grid.cache_hits` per
/// memoized dependency reuse in the caller's current metrics registry.
class GridRunner {
 public:
  explicit GridRunner(const GridOptions& options = {});

  /// Runs every (dataset × algorithm × k × workload) combination.
  /// Graphs and partitionings are cached process-wide, so the cost is
  /// one partitioning per (dataset, algorithm, k, seed) plus one engine
  /// run per cell — across repeated Run calls.
  std::vector<OfflineRunRecord> Run(const OfflineGridSpec& spec);

  /// Runs every (dataset × algorithm × k × workload × load) combination.
  std::vector<OnlineRunRecord> Run(const OnlineGridSpec& spec);

  /// Resolved worker-thread count (never 0).
  uint32_t threads() const { return threads_; }

 private:
  uint32_t threads_;
};

/// Convenience wrappers around GridRunner.
std::vector<OfflineRunRecord> RunOfflineGrid(const OfflineGridSpec& spec,
                                             const GridOptions& options = {});
std::vector<OnlineRunRecord> RunOnlineGrid(const OnlineGridSpec& spec,
                                           const GridOptions& options = {});

/// Column schemas — the single source of truth for the grids' CSV
/// layout, shared by the writers below and the bench binaries.
const CsvSchema<OfflineRunRecord>& OfflineCsvSchema();
const CsvSchema<OnlineRunRecord>& OnlineCsvSchema();

/// CSV with a header row; columns in OfflineRunRecord order.
void WriteOfflineCsv(const std::vector<OfflineRunRecord>& records,
                     std::ostream& out);

/// CSV with a header row; columns in OnlineRunRecord order.
void WriteOnlineCsv(const std::vector<OnlineRunRecord>& records,
                    std::ostream& out);

}  // namespace sgp

#endif  // SGP_EXPERIMENTS_GRID_H_
