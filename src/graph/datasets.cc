#include "graph/datasets.h"

#include <cmath>

#include "common/check.h"
#include "graph/generators.h"

namespace sgp {

Graph MakeDataset(std::string_view name, uint32_t scale) {
  SGP_CHECK(scale >= 6 && scale <= 24);
  if (name == "twitter") {
    RmatParams p;
    p.scale = scale;
    p.edge_factor = 16;
    return Rmat(p, /*seed=*/0x7717);
  }
  if (name == "uk2007") {
    RmatParams p;
    p.scale = scale;
    p.edge_factor = 18;
    p.a = 0.65;
    p.b = 0.15;
    p.c = 0.15;
    return Rmat(p, /*seed=*/0x0702);
  }
  if (name == "usaroad") {
    uint32_t side = static_cast<uint32_t>(
        std::lround(std::pow(2.0, static_cast<double>(scale) / 2.0)));
    return RoadNetwork(side, side, /*target_avg_degree=*/2.5,
                       /*seed=*/0x20ad);
  }
  if (name == "ldbc") {
    SocialNetworkParams p;
    p.num_vertices = static_cast<VertexId>(1u) << scale;
    p.avg_degree = 24;
    return SocialNetwork(p, /*seed=*/0x1dbc);
  }
  SGP_CHECK(false && "unknown dataset name");
  return {};
}

std::vector<std::string> DatasetNames() {
  return {"twitter", "uk2007", "usaroad", "ldbc"};
}

}  // namespace sgp
