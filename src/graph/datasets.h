#ifndef SGP_GRAPH_DATASETS_H_
#define SGP_GRAPH_DATASETS_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace sgp {

/// Named synthetic analogues of the paper's datasets (Table 3). `scale` is
/// log2 of the vertex count; the default (15, i.e. 32K vertices) keeps every
/// benchmark in the seconds range while preserving the structural contrasts
/// the paper's findings depend on:
///   - "twitter"  : directed, heavy-tailed degrees (R-MAT, graph500 params)
///   - "uk2007"   : directed, strongly skewed power-law web graph (R-MAT
///                  with a = 0.65)
///   - "usaroad"  : undirected, low-degree, grid-like, long diameter
///   - "ldbc"     : undirected, community-structured social network
Graph MakeDataset(std::string_view name, uint32_t scale = 15);

/// Names accepted by MakeDataset, in the paper's order.
std::vector<std::string> DatasetNames();

}  // namespace sgp

#endif  // SGP_GRAPH_DATASETS_H_
