#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace sgp {

namespace {

uint64_t EncodePair(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

uint64_t EncodeUndirected(VertexId a, VertexId b) {
  return a < b ? EncodePair(a, b) : EncodePair(b, a);
}

}  // namespace

Graph ErdosRenyi(VertexId num_vertices, EdgeId num_edges, uint64_t seed) {
  SGP_CHECK(num_vertices >= 2);
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  SGP_CHECK(num_edges <= max_edges);
  Rng rng(seed);
  GraphBuilder builder(num_vertices, /*directed=*/false);
  std::unordered_set<uint64_t> used;
  used.reserve(num_edges * 2);
  while (used.size() < num_edges) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(num_vertices));
    VertexId v = static_cast<VertexId>(rng.UniformInt(num_vertices));
    if (u == v) continue;
    if (used.insert(EncodeUndirected(u, v)).second) builder.AddEdge(u, v);
  }
  return std::move(builder).Finalize();
}

Graph BarabasiAlbert(VertexId num_vertices, uint32_t edges_per_vertex,
                     uint64_t seed) {
  SGP_CHECK(edges_per_vertex >= 1);
  SGP_CHECK(num_vertices > edges_per_vertex);
  Rng rng(seed);
  GraphBuilder builder(num_vertices, /*directed=*/false);
  // `endpoints` holds every edge endpoint seen so far; sampling uniformly
  // from it is sampling proportional to degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<size_t>(num_vertices) * edges_per_vertex * 2);

  // Seed clique over the first m+1 vertices.
  const VertexId m0 = edges_per_vertex + 1;
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<VertexId> targets;
  for (VertexId u = m0; u < num_vertices; ++u) {
    targets.clear();
    while (targets.size() < edges_per_vertex) {
      VertexId t = endpoints[rng.UniformInt(endpoints.size())];
      if (t != u &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (VertexId t : targets) {
      builder.AddEdge(u, t);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return std::move(builder).Finalize();
}

Graph Rmat(const RmatParams& params, uint64_t seed) {
  SGP_CHECK(params.a + params.b + params.c < 1.0);
  const VertexId n = static_cast<VertexId>(1u) << params.scale;
  const uint64_t m = static_cast<uint64_t>(params.edge_factor) * n;
  Rng rng(seed);

  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (params.scramble_ids) rng.Shuffle(perm);

  GraphBuilder builder(n, params.directed);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (uint64_t i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (uint32_t bit = 0; bit < params.scale; ++bit) {
      double r = rng.UniformReal();
      src <<= 1;
      dst <<= 1;
      if (r < params.a) {
        // top-left quadrant: neither bit set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src == dst) continue;
    builder.AddEdge(perm[src], perm[dst]);
  }
  return std::move(builder).Finalize();
}

Graph RoadNetwork(uint32_t rows, uint32_t cols, double target_avg_degree,
                  uint64_t seed) {
  SGP_CHECK(rows >= 2 && cols >= 2);
  const VertexId n = rows * cols;
  Rng rng(seed);
  GraphBuilder builder(n, /*directed=*/false);
  std::unordered_set<uint64_t> chosen;

  auto id = [cols](uint32_t r, uint32_t c) -> VertexId {
    return r * cols + c;
  };

  // Random spanning tree over the lattice via randomized iterative DFS:
  // guarantees connectivity of the result.
  std::vector<bool> visited(n, false);
  std::vector<VertexId> stack;
  stack.push_back(0);
  visited[0] = true;
  size_t num_edges = 0;
  while (!stack.empty()) {
    VertexId u = stack.back();
    uint32_t r = u / cols;
    uint32_t c = u % cols;
    VertexId candidates[4];
    size_t count = 0;
    if (r > 0 && !visited[id(r - 1, c)]) candidates[count++] = id(r - 1, c);
    if (r + 1 < rows && !visited[id(r + 1, c)])
      candidates[count++] = id(r + 1, c);
    if (c > 0 && !visited[id(r, c - 1)]) candidates[count++] = id(r, c - 1);
    if (c + 1 < cols && !visited[id(r, c + 1)])
      candidates[count++] = id(r, c + 1);
    if (count == 0) {
      stack.pop_back();
      continue;
    }
    VertexId v = candidates[rng.UniformInt(count)];
    visited[v] = true;
    builder.AddEdge(u, v);
    chosen.insert(EncodeUndirected(u, v));
    ++num_edges;
    stack.push_back(v);
  }

  // Add extra lattice edges uniformly at random until the target density.
  const uint64_t target_edges = std::min<uint64_t>(
      static_cast<uint64_t>(target_avg_degree * n / 2.0),
      static_cast<uint64_t>(rows) * (cols - 1) +
          static_cast<uint64_t>(cols) * (rows - 1));
  while (num_edges < target_edges) {
    uint32_t r = static_cast<uint32_t>(rng.UniformInt(rows));
    uint32_t c = static_cast<uint32_t>(rng.UniformInt(cols));
    bool horizontal = rng.Bernoulli(0.5);
    if (horizontal && c + 1 >= cols) continue;
    if (!horizontal && r + 1 >= rows) continue;
    VertexId u = id(r, c);
    VertexId v = horizontal ? id(r, c + 1) : id(r + 1, c);
    if (chosen.insert(EncodeUndirected(u, v)).second) {
      builder.AddEdge(u, v);
      ++num_edges;
    }
  }
  return std::move(builder).Finalize();
}

Graph WattsStrogatz(VertexId num_vertices, uint32_t neighbors_each_side,
                    double rewire_probability, uint64_t seed) {
  SGP_CHECK(num_vertices > 2 * neighbors_each_side);
  SGP_CHECK(rewire_probability >= 0.0 && rewire_probability <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(num_vertices, /*directed=*/false);
  std::unordered_set<uint64_t> used;
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (uint32_t j = 1; j <= neighbors_each_side; ++j) {
      VertexId v = (u + j) % num_vertices;
      if (rng.Bernoulli(rewire_probability)) {
        // Rewire to a uniform random non-duplicate endpoint.
        for (int attempt = 0; attempt < 16; ++attempt) {
          VertexId w = static_cast<VertexId>(rng.UniformInt(num_vertices));
          if (w == u) continue;
          if (!used.count(EncodeUndirected(u, w))) {
            v = w;
            break;
          }
        }
      }
      if (used.insert(EncodeUndirected(u, v)).second) builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Finalize();
}

Graph SocialNetwork(const SocialNetworkParams& params, uint64_t seed) {
  const VertexId n = params.num_vertices;
  SGP_CHECK(n >= 2);
  Rng rng(seed);

  // Assign vertices to communities with a skewed size distribution.
  const uint32_t num_communities =
      std::max<uint32_t>(1, n / params.avg_community_size);
  ZipfSampler community_pick(num_communities, 0.8);
  std::vector<uint32_t> community_of(n);
  std::vector<std::vector<VertexId>> members(num_communities);
  for (VertexId u = 0; u < n; ++u) {
    uint32_t c = static_cast<uint32_t>(community_pick.Sample(rng));
    community_of[u] = c;
    members[c].push_back(u);
  }

  // Draw heavy-tailed target degrees, then rescale to the requested mean.
  // Each emitted edge contributes degree to both endpoints, so the stub
  // count per vertex targets avg_degree / 2.
  ZipfSampler degree_pick(params.max_degree, params.degree_skew);
  std::vector<double> raw(n);
  double sum = 0;
  for (VertexId u = 0; u < n; ++u) {
    raw[u] = 1.0 + static_cast<double>(degree_pick.Sample(rng));
    sum += raw[u];
  }
  const double scale = (params.avg_degree / 2.0) * n / sum;

  GraphBuilder builder(n, /*directed=*/false);
  std::unordered_set<uint64_t> used;
  for (VertexId u = 0; u < n; ++u) {
    double want = raw[u] * scale;
    uint32_t stubs = static_cast<uint32_t>(want);
    if (rng.UniformReal() < want - stubs) ++stubs;
    stubs = std::min(stubs, params.max_degree);
    const auto& own = members[community_of[u]];
    for (uint32_t s = 0; s < stubs; ++s) {
      // Dense communities make duplicate picks likely; retry a few times
      // so collisions do not silently erode the target degree.
      for (int attempt = 0; attempt < 8; ++attempt) {
        VertexId v;
        if (own.size() > 1 &&
            rng.Bernoulli(params.intra_community_fraction)) {
          v = own[rng.UniformInt(own.size())];
        } else {
          v = static_cast<VertexId>(rng.UniformInt(n));
        }
        if (v == u) continue;
        if (used.insert(EncodeUndirected(u, v)).second) {
          builder.AddEdge(u, v);
          break;
        }
      }
    }
  }
  return std::move(builder).Finalize();
}

}  // namespace sgp
