#ifndef SGP_GRAPH_GENERATORS_H_
#define SGP_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace sgp {

/// Synthetic graph generators. Each generator is deterministic for a given
/// seed; they stand in for the paper's datasets (Twitter, UK2007-05,
/// USA-Road, LDBC-SNB), which are multi-billion-edge downloads. See
/// DESIGN.md §2 for why structure-matched synthetic graphs preserve the
/// paper's findings.

/// G(n, m) Erdős–Rényi graph: `num_edges` distinct undirected edges chosen
/// uniformly at random.
Graph ErdosRenyi(VertexId num_vertices, EdgeId num_edges, uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices with probability proportional to
/// their current degree. Produces an undirected heavy-tailed graph.
Graph BarabasiAlbert(VertexId num_vertices, uint32_t edges_per_vertex,
                     uint64_t seed);

/// Parameters of the recursive-matrix (R-MAT) generator.
struct RmatParams {
  uint32_t scale = 16;        // 2^scale vertices
  uint32_t edge_factor = 16;  // edges = edge_factor * 2^scale
  double a = 0.57;            // graph500 defaults
  double b = 0.19;
  double c = 0.19;
  bool directed = true;
  bool scramble_ids = true;  // permute ids to break degree/id correlation
};

/// R-MAT power-law generator (Chakrabarti et al.); with graph500 defaults it
/// matches the skewed in-degree distribution of web/social graphs.
Graph Rmat(const RmatParams& params, uint64_t seed);

/// Road-network-like graph: a rows×cols 2-D lattice thinned to the target
/// average degree while staying connected (a random spanning tree of the
/// lattice is always kept). Undirected, low degree (≤ 4), long diameter.
Graph RoadNetwork(uint32_t rows, uint32_t cols, double target_avg_degree,
                  uint64_t seed);

/// Parameters of the social-network generator (LDBC-SNB friendship-graph
/// analogue): community-structured with a heavy-tailed but bounded degree
/// distribution.
struct SocialNetworkParams {
  VertexId num_vertices = 1 << 15;
  double avg_degree = 20;
  double intra_community_fraction = 0.9;  // edges staying inside a community
  uint32_t avg_community_size = 64;
  double degree_skew = 2.0;  // Zipf exponent of the target-degree draw
  uint32_t max_degree = 512;
};

/// Community-structured social graph. Undirected.
Graph SocialNetwork(const SocialNetworkParams& params, uint64_t seed);

/// Watts–Strogatz small-world graph: a ring lattice where every vertex
/// connects to its `neighbors_each_side` nearest neighbors per side, with
/// each edge rewired to a uniform random endpoint with probability
/// `rewire_probability`. Undirected; covers the high-locality /
/// low-diameter regime between the road network and the random graphs.
Graph WattsStrogatz(VertexId num_vertices, uint32_t neighbors_each_side,
                    double rewire_probability, uint64_t seed);

}  // namespace sgp

#endif  // SGP_GRAPH_GENERATORS_H_
