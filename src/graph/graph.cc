#include "graph/graph.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace sgp {

std::span<const VertexId> Graph::OutNeighbors(VertexId u) const {
  SGP_DCHECK(u < num_vertices_);
  return directed_ ? out_.Row(u) : und_.Row(u);
}

std::span<const VertexId> Graph::InNeighbors(VertexId u) const {
  SGP_DCHECK(u < num_vertices_);
  return directed_ ? in_.Row(u) : und_.Row(u);
}

std::span<const VertexId> Graph::Neighbors(VertexId u) const {
  SGP_DCHECK(u < num_vertices_);
  return und_.Row(u);
}

GraphBuilder::GraphBuilder(VertexId num_vertices, bool directed)
    : num_vertices_(num_vertices), directed_(directed) {}

void GraphBuilder::AddEdge(VertexId src, VertexId dst) {
  SGP_CHECK(src < num_vertices_ && dst < num_vertices_);
  if (src == dst) return;  // self-loops carry no partitioning signal
  edges_.push_back({src, dst});
}

namespace {

// Builds a CSR from (source, target) pairs produced by `emit`, which calls
// its callback once per directed arc.
template <typename EmitFn>
Graph::Csr BuildCsr(VertexId n, size_t arc_count_hint, EmitFn&& emit) {
  Graph::Csr csr;
  csr.offsets.assign(static_cast<size_t>(n) + 1, 0);
  emit([&](VertexId src, VertexId) { ++csr.offsets[src + 1]; });
  for (size_t i = 1; i <= n; ++i) csr.offsets[i] += csr.offsets[i - 1];
  csr.targets.resize(csr.offsets[n]);
  std::vector<uint64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  emit([&](VertexId src, VertexId dst) { csr.targets[cursor[src]++] = dst; });
  (void)arc_count_hint;
  return csr;
}

// Sorts each CSR row and removes duplicate targets within a row.
void SortAndDedupeRows(VertexId n, Graph::Csr& csr) {
  std::vector<VertexId> compact;
  compact.reserve(csr.targets.size());
  std::vector<uint64_t> new_offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    auto begin = csr.targets.begin() + static_cast<int64_t>(csr.offsets[u]);
    auto end = csr.targets.begin() + static_cast<int64_t>(csr.offsets[u + 1]);
    std::sort(begin, end);
    auto last = std::unique(begin, end);
    compact.insert(compact.end(), begin, last);
    new_offsets[u + 1] = compact.size();
  }
  csr.offsets = std::move(new_offsets);
  csr.targets = std::move(compact);
}

}  // namespace

Graph GraphBuilder::Finalize() && {
  // De-duplicate while preserving first-occurrence order. For undirected
  // graphs an edge is identified by its unordered endpoint pair.
  auto canonical = [this](const Edge& e) -> Edge {
    if (directed_ || e.src <= e.dst) return e;
    return {e.dst, e.src};
  };
  std::vector<uint32_t> order(edges_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    Edge ea = canonical(edges_[a]);
    Edge eb = canonical(edges_[b]);
    if (ea.src != eb.src) return ea.src < eb.src;
    if (ea.dst != eb.dst) return ea.dst < eb.dst;
    return a < b;
  });
  std::vector<bool> keep(edges_.size(), true);
  for (size_t i = 1; i < order.size(); ++i) {
    if (canonical(edges_[order[i]]) == canonical(edges_[order[i - 1]])) {
      keep[order[i]] = false;
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices_;
  g.directed_ = directed_;
  g.edges_.reserve(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (keep[i]) g.edges_.push_back(edges_[i]);
  }
  edges_.clear();

  const VertexId n = num_vertices_;
  // Undirected adjacency: both directions of every edge, then de-duplicated.
  g.und_ = BuildCsr(n, g.edges_.size() * 2, [&](auto&& cb) {
    for (const Edge& e : g.edges_) {
      cb(e.src, e.dst);
      cb(e.dst, e.src);
    }
  });
  SortAndDedupeRows(n, g.und_);

  if (directed_) {
    g.out_ = BuildCsr(n, g.edges_.size(), [&](auto&& cb) {
      for (const Edge& e : g.edges_) cb(e.src, e.dst);
    });
    g.in_ = BuildCsr(n, g.edges_.size(), [&](auto&& cb) {
      for (const Edge& e : g.edges_) cb(e.dst, e.src);
    });
  }
  return g;
}

GraphStats ComputeStats(const Graph& graph) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  s.directed = graph.directed();
  uint64_t total = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    uint32_t d = graph.Degree(u);
    total += d;
    s.max_degree = std::max(s.max_degree, d);
  }
  s.avg_degree = graph.num_vertices() == 0
                     ? 0
                     : static_cast<double>(total) /
                           static_cast<double>(graph.num_vertices());
  return s;
}

}  // namespace sgp
