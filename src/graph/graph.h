#ifndef SGP_GRAPH_GRAPH_H_
#define SGP_GRAPH_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace sgp {

/// Immutable in-memory graph in compressed sparse row form.
///
/// A Graph stores a canonical edge list (each input edge exactly once, in
/// insertion order — this is the "natural" stream order) plus materialized
/// adjacency:
///   - OutNeighbors / InNeighbors follow edge direction (for directed
///     graphs; for undirected graphs both equal Neighbors),
///   - Neighbors is the undirected, de-duplicated neighborhood N(u) used by
///     the streaming partitioners (LDG, FENNEL, Ginger all place a vertex by
///     |P ∩ N(u)| regardless of direction).
///
/// Vertices are dense ids in [0, num_vertices()); edges are dense ids in
/// [0, num_edges()) indexing into edges().
class Graph {
 public:
  Graph() = default;

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }
  bool directed() const { return directed_; }

  /// Canonical edge list in insertion order.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Targets of edges leaving `u` (== Neighbors(u) for undirected graphs).
  std::span<const VertexId> OutNeighbors(VertexId u) const;

  /// Sources of edges entering `u` (== Neighbors(u) for undirected graphs).
  std::span<const VertexId> InNeighbors(VertexId u) const;

  /// Undirected, de-duplicated neighborhood N(u).
  std::span<const VertexId> Neighbors(VertexId u) const;

  uint32_t OutDegree(VertexId u) const {
    return static_cast<uint32_t>(OutNeighbors(u).size());
  }
  uint32_t InDegree(VertexId u) const {
    return static_cast<uint32_t>(InNeighbors(u).size());
  }
  /// Undirected degree |N(u)|.
  uint32_t Degree(VertexId u) const {
    return static_cast<uint32_t>(Neighbors(u).size());
  }

  // Implementation details only below here.

  /// Compressed sparse row block; exposed only so that the builder's
  /// internal helpers can construct it.
  struct Csr {
    std::vector<uint64_t> offsets;  // size num_vertices + 1
    std::vector<VertexId> targets;

    std::span<const VertexId> Row(VertexId u) const {
      return {targets.data() + offsets[u],
              targets.data() + offsets[u + 1]};
    }
  };

 private:
  friend class GraphBuilder;

  VertexId num_vertices_ = 0;
  bool directed_ = false;
  std::vector<Edge> edges_;
  Csr und_;  // undirected de-duplicated adjacency
  Csr out_;  // only populated for directed graphs
  Csr in_;   // only populated for directed graphs
};

/// Accumulates edges and produces an immutable Graph.
///
/// Self-loops are dropped and exact duplicate edges (same direction for
/// directed graphs; either direction for undirected graphs) are removed,
/// keeping the first occurrence so that the natural stream order is
/// preserved.
class GraphBuilder {
 public:
  GraphBuilder(VertexId num_vertices, bool directed);

  /// Adds one edge. Both endpoints must be < num_vertices.
  void AddEdge(VertexId src, VertexId dst);

  /// Number of edges added so far (before de-duplication).
  size_t PendingEdges() const { return edges_.size(); }

  /// Builds the graph. The builder is consumed.
  Graph Finalize() &&;

 private:
  VertexId num_vertices_;
  bool directed_;
  std::vector<Edge> edges_;
};

/// Basic structural statistics (the paper's Table 3 columns).
struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0;   // undirected average degree
  uint32_t max_degree = 0; // undirected maximum degree
  bool directed = false;
};

/// Computes Table 3 style statistics for `graph`.
GraphStats ComputeStats(const Graph& graph);

}  // namespace sgp

#endif  // SGP_GRAPH_GRAPH_H_
