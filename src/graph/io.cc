#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace sgp {

Graph ReadEdgeList(std::istream& in, bool directed, VertexId num_vertices) {
  std::vector<Edge> edges;
  VertexId max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!(ls >> src >> dst)) continue;
    SGP_CHECK(src <= kInvalidVertex - 1 && dst <= kInvalidVertex - 1);
    edges.push_back(
        {static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_id = std::max({max_id, static_cast<VertexId>(src),
                       static_cast<VertexId>(dst)});
  }
  VertexId n = num_vertices != 0 ? num_vertices
               : edges.empty()   ? 0
                                 : max_id + 1;
  GraphBuilder builder(n, directed);
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst);
  return std::move(builder).Finalize();
}

Graph ReadEdgeListFile(const std::string& path, bool directed,
                       VertexId num_vertices) {
  std::ifstream in(path);
  SGP_CHECK(in.good() && "cannot open edge list file");
  return ReadEdgeList(in, directed, num_vertices);
}

void WriteEdgeList(const Graph& graph, std::ostream& out) {
  for (const Edge& e : graph.edges()) out << e.src << ' ' << e.dst << '\n';
}

void WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  SGP_CHECK(out.good() && "cannot open output file");
  WriteEdgeList(graph, out);
}

}  // namespace sgp
