#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/check.h"

namespace sgp {

EdgeLineStatus ParseEdgeListLine(const std::string& line,
                                 uint64_t line_number, VertexId id_limit,
                                 Edge* edge, std::string* error) {
  if (line.empty() || line[0] == '#' || line[0] == '%') {
    return EdgeLineStatus::kIgnored;
  }
  std::istringstream ls(line);
  uint64_t src = 0;
  uint64_t dst = 0;
  if (!(ls >> src >> dst)) {
    // Truncated or garbage line: recoverable, the caller skips it but
    // keeps a count so a clean read can be told from a degraded one.
    return EdgeLineStatus::kSkipped;
  }
  const uint64_t limit = id_limit;
  if (src >= limit || dst >= limit) {
    std::ostringstream msg;
    msg << "line " << line_number << ": vertex id " << std::max(src, dst)
        << " out of range (limit " << limit << ")";
    *error = msg.str();
    return EdgeLineStatus::kError;
  }
  edge->src = static_cast<VertexId>(src);
  edge->dst = static_cast<VertexId>(dst);
  return EdgeLineStatus::kEdge;
}

EdgeListReadResult TryReadEdgeList(std::istream& in, bool directed,
                                   VertexId num_vertices) {
  EdgeListReadResult result;
  std::vector<Edge> edges;
  VertexId max_id = 0;
  std::string line;
  uint64_t line_number = 0;
  const VertexId limit = num_vertices != 0 ? num_vertices : kInvalidVertex;
  while (std::getline(in, line)) {
    ++line_number;
    Edge edge;
    switch (ParseEdgeListLine(line, line_number, limit, &edge,
                              &result.error)) {
      case EdgeLineStatus::kIgnored:
        continue;
      case EdgeLineStatus::kSkipped:
        ++result.skipped_lines;
        continue;
      case EdgeLineStatus::kError:
        return result;
      case EdgeLineStatus::kEdge:
        break;
    }
    edges.push_back(edge);
    max_id = std::max({max_id, edge.src, edge.dst});
  }
  VertexId n = num_vertices != 0 ? num_vertices
               : edges.empty()   ? 0
                                 : max_id + 1;
  GraphBuilder builder(n, directed);
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst);
  result.graph = std::move(builder).Finalize();
  result.ok = true;
  return result;
}

EdgeListReadResult TryReadEdgeListFile(const std::string& path, bool directed,
                                       VertexId num_vertices) {
  std::ifstream in(path);
  if (!in.good()) {
    EdgeListReadResult result;
    result.error = "cannot open edge list file: " + path;
    return result;
  }
  return TryReadEdgeList(in, directed, num_vertices);
}

Graph ReadEdgeList(std::istream& in, bool directed, VertexId num_vertices) {
  EdgeListReadResult result = TryReadEdgeList(in, directed, num_vertices);
  if (!result.ok) throw std::runtime_error(result.error);
  return std::move(result.graph);
}

Graph ReadEdgeListFile(const std::string& path, bool directed,
                       VertexId num_vertices) {
  EdgeListReadResult result =
      TryReadEdgeListFile(path, directed, num_vertices);
  if (!result.ok) throw std::runtime_error(result.error);
  return std::move(result.graph);
}

void WriteEdgeList(const Graph& graph, std::ostream& out) {
  for (const Edge& e : graph.edges()) out << e.src << ' ' << e.dst << '\n';
}

void WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  SGP_CHECK(out.good() && "cannot open output file");
  WriteEdgeList(graph, out);
}

}  // namespace sgp
