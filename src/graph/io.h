#ifndef SGP_GRAPH_IO_H_
#define SGP_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace sgp {

/// Outcome of a fault-tolerant edge-list read. Malformed lines (no two
/// integers parse) are skipped and counted; out-of-range vertex ids and
/// unopenable files are hard errors with a line-level diagnostic in
/// `error`. `graph` is meaningful only when `ok`.
struct EdgeListReadResult {
  bool ok = false;
  std::string error;
  uint64_t skipped_lines = 0;
  Graph graph;
};

/// Classification of one edge-list line by the shared line parser.
enum class EdgeLineStatus {
  kEdge,     // an edge was parsed into *edge
  kIgnored,  // blank line or '#'/'%' comment
  kSkipped,  // malformed (recoverable): callers count it and move on
  kError,    // out-of-range vertex id: *error carries the diagnostic
};

/// Parses one line of a whitespace-separated edge list ("src dst", extra
/// columns ignored). `id_limit` is the exclusive vertex-id bound
/// (kInvalidVertex when the caller grows the id space from the data).
/// This is the single line-level parser behind both the materializing
/// TryReadEdgeList readers and the bounded-memory EdgeListFileSource.
EdgeLineStatus ParseEdgeListLine(const std::string& line,
                                 uint64_t line_number, VertexId id_limit,
                                 Edge* edge, std::string* error);

/// Reads a whitespace-separated edge list ("src dst" per line; lines
/// starting with '#' or '%' are comments, extra columns are ignored). The
/// vertex count is max id + 1 unless `num_vertices` is nonzero, in which
/// case ids >= num_vertices are rejected. Never aborts.
EdgeListReadResult TryReadEdgeList(std::istream& in, bool directed,
                                   VertexId num_vertices = 0);

/// Reads an edge list from a file. An unopenable file yields ok = false.
EdgeListReadResult TryReadEdgeListFile(const std::string& path, bool directed,
                                       VertexId num_vertices = 0);

/// Reads a whitespace-separated edge list; throws std::runtime_error with
/// the TryReadEdgeList diagnostic on invalid input.
Graph ReadEdgeList(std::istream& in, bool directed,
                   VertexId num_vertices = 0);

/// Reads an edge list from a file. Throws std::runtime_error if the file
/// cannot be opened or contains out-of-range vertex ids.
Graph ReadEdgeListFile(const std::string& path, bool directed,
                       VertexId num_vertices = 0);

/// Writes the canonical edge list, one "src dst" pair per line.
void WriteEdgeList(const Graph& graph, std::ostream& out);

/// Writes the canonical edge list to a file.
void WriteEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace sgp

#endif  // SGP_GRAPH_IO_H_
