#ifndef SGP_GRAPH_IO_H_
#define SGP_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace sgp {

/// Reads a whitespace-separated edge list ("src dst" per line; lines
/// starting with '#' or '%' are comments). The vertex count is
/// max id + 1 unless `num_vertices` is nonzero.
Graph ReadEdgeList(std::istream& in, bool directed,
                   VertexId num_vertices = 0);

/// Reads an edge list from a file. Aborts if the file cannot be opened.
Graph ReadEdgeListFile(const std::string& path, bool directed,
                       VertexId num_vertices = 0);

/// Writes the canonical edge list, one "src dst" pair per line.
void WriteEdgeList(const Graph& graph, std::ostream& out);

/// Writes the canonical edge list to a file.
void WriteEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace sgp

#endif  // SGP_GRAPH_IO_H_
