#include "graphdb/event_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/random.h"

namespace sgp {

namespace {

enum class EventType : uint8_t { kIssue, kTaskArrival, kAdvance };

struct Event {
  double time = 0;
  uint64_t seq = 0;  // tie-breaker for deterministic ordering
  EventType type = EventType::kIssue;
  uint32_t client = 0;
  uint32_t round = 0;
  uint32_t task = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// Per-client in-flight query bookkeeping.
struct InFlight {
  const QueryPlan* plan = nullptr;
  uint32_t binding = 0;
  uint32_t round = 0;
  uint32_t remaining_tasks = 0;
  double round_end = 0;    // completion time of the slowest task so far
  double start_time = 0;   // when the client issued the query
};

}  // namespace

SimResult SimulateClosedLoop(const GraphDatabase& db, const Workload& workload,
                             const SimConfig& config) {
  SGP_CHECK(config.clients > 0);
  SGP_CHECK(config.num_queries > 0);
  const DbCostModel& cost = db.cost_model();
  const double latency_hop = cost.network_latency_seconds;

  // Plans are deterministic per binding; build them once.
  std::vector<QueryPlan> plans;
  plans.reserve(workload.bindings().size());
  for (const Query& q : workload.bindings()) plans.push_back(db.Plan(q));

  Rng rng(config.seed);
  // Lognormal service-time multiplier with mean 1 and the configured
  // coefficient of variation.
  const double cv = cost.service_time_cv;
  const double lognorm_sigma =
      cv > 0 ? std::sqrt(std::log(1.0 + cv * cv)) : 0.0;
  const double lognorm_mu = -0.5 * lognorm_sigma * lognorm_sigma;
  auto service_noise = [&]() {
    if (cv <= 0) return 1.0;
    // Box-Muller.
    double u1 = std::max(rng.UniformReal(), 1e-12);
    double u2 = rng.UniformReal();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return std::exp(lognorm_mu + lognorm_sigma * z);
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  uint64_t next_seq = 0;
  auto push = [&](Event e) {
    e.seq = next_seq++;
    events.push(e);
  };

  std::vector<InFlight> inflight(config.clients);
  std::vector<double> worker_available(db.k(), 0.0);
  SimResult result;
  result.reads_per_worker.assign(db.k(), 0.0);

  const uint64_t warmup =
      static_cast<uint64_t>(config.warmup_fraction *
                            static_cast<double>(config.num_queries));
  uint64_t completed_total = 0;
  double window_start = 0;
  double last_completion = 0;
  std::vector<double> latencies;
  latencies.reserve(config.num_queries - warmup);

  // Schedules the arrival events of one round; remote tasks pay the
  // request hop.
  auto schedule_round = [&](uint32_t client, double base_time) {
    InFlight& q = inflight[client];
    const auto& tasks = q.plan->rounds[q.round];
    q.remaining_tasks = static_cast<uint32_t>(tasks.size());
    q.round_end = base_time;
    for (uint32_t t = 0; t < tasks.size(); ++t) {
      double arrival = base_time +
                       (tasks[t].worker == q.plan->coordinator
                            ? 0.0
                            : latency_hop);
      push({arrival, 0, EventType::kTaskArrival, client, q.round, t});
    }
  };

  auto issue_query = [&](uint32_t client, double now) {
    uint32_t binding = workload.SampleBindingIndex(rng);
    InFlight& q = inflight[client];
    q.plan = &plans[binding];
    q.binding = binding;
    q.round = 0;
    q.start_time = now;
    result.total_network_bytes += q.plan->network_bytes;
    result.total_remote_messages += q.plan->remote_messages;
    // Client → router → coordinator hop.
    schedule_round(client, now + latency_hop);
  };

  for (uint32_t c = 0; c < config.clients; ++c) {
    push({0.0, 0, EventType::kIssue, c, 0, 0});
  }

  while (!events.empty() && completed_total < config.num_queries) {
    Event e = events.top();
    events.pop();
    switch (e.type) {
      case EventType::kIssue:
        issue_query(e.client, e.time);
        break;
      case EventType::kTaskArrival: {
        InFlight& q = inflight[e.client];
        const QueryPlan::Task& task = q.plan->rounds[e.round][e.task];
        const PartitionId w = task.worker;
        // FIFO single-server worker queue. Remote sub-requests pay RPC
        // handling overhead on top of the storage reads.
        double service =
            (static_cast<double>(task.reads) * cost.seconds_per_read +
             (w == q.plan->coordinator ? 0.0
                                       : cost.seconds_per_remote_task)) *
            service_noise();
        double start = std::max(worker_available[w], e.time);
        double done = start + service;
        worker_available[w] = done;
        result.reads_per_worker[w] += static_cast<double>(task.reads);
        // Response hop back to the coordinator for remote tasks.
        double task_end =
            done + (w == q.plan->coordinator ? 0.0 : latency_hop);
        q.round_end = std::max(q.round_end, task_end);
        if (--q.remaining_tasks == 0) {
          push({q.round_end, 0, EventType::kAdvance, e.client, e.round, 0});
        }
        break;
      }
      case EventType::kAdvance: {
        InFlight& q = inflight[e.client];
        ++q.round;
        if (q.round < q.plan->rounds.size()) {
          schedule_round(e.client, e.time);
          break;
        }
        // Query complete: response hop to the client.
        double completion = e.time + latency_hop;
        ++completed_total;
        last_completion = completion;
        if (completed_total == warmup) window_start = completion;
        if (completed_total > warmup) {
          latencies.push_back(completion - q.start_time);
          if (config.collect_traces &&
              result.traces.size() < config.max_traces) {
            QueryTraceRecord trace;
            trace.binding = q.binding;
            trace.issue_time = q.start_time;
            trace.completion_time = completion;
            trace.coordinator = q.plan->coordinator;
            trace.reads = q.plan->total_reads;
            trace.rounds = static_cast<uint32_t>(q.plan->rounds.size());
            result.traces.push_back(trace);
          }
        }
        push({completion, 0, EventType::kIssue, e.client, 0, 0});
        break;
      }
    }
  }

  result.completed = latencies.size();
  result.window_seconds = std::max(1e-12, last_completion - window_start);
  result.throughput_qps =
      static_cast<double>(result.completed) / result.window_seconds;
  result.latency = Summarize(std::move(latencies));
  return result;
}

}  // namespace sgp
