#include "graphdb/event_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/random.h"

namespace sgp {

namespace {

enum class EventType : uint8_t {
  kIssue,
  kTaskArrival,
  kAdvance,
  kDeadline,
  kForward,        // redirected reads of moved vertices (live reshard)
  kReshardStep,    // advance the ReshardController
  kMonitorSample,  // periodic live-monitoring tick (SimConfig::monitor)
};

struct Event {
  double time = 0;
  uint64_t seq = 0;  // tie-breaker for deterministic ordering
  EventType type = EventType::kIssue;
  uint32_t client = 0;
  uint32_t round = 0;
  uint32_t task = 0;
  uint32_t gen = 0;      // query generation; stale events are dropped
  uint32_t attempt = 0;  // failed tries of this sub-request so far
  // kForward only: destination worker and redirected read count.
  PartitionId worker = 0;
  uint64_t reads = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// Per-client in-flight query bookkeeping.
struct InFlight {
  const QueryPlan* plan = nullptr;
  uint32_t binding = 0;
  uint32_t round = 0;
  uint32_t remaining_tasks = 0;
  double round_end = 0;    // completion time of the slowest task so far
  double start_time = 0;   // when the client issued the query
  double deadline = std::numeric_limits<double>::infinity();
  uint32_t gen = 0;        // bumped whenever the query finishes
  bool forwarded = false;  // some read was redirected by the live reshard
};

enum class Outcome : uint8_t { kSuccess, kFailed, kTimedOut };

// Per-query-kind latency histograms (simulated clock — deterministic)
// plus fault / retry counters of the online simulator. Published into the
// calling thread's current registry (see ScopedMetricsRegistry).
struct SimMetrics {
  Histogram* latency_by_kind[3] = {nullptr, nullptr, nullptr};
  Counter* sims = nullptr;
  Counter* queries_completed = nullptr;
  Counter* retries = nullptr;
  Counter* failed = nullptr;
  Counter* timed_out = nullptr;
  Counter* lost_messages = nullptr;
  Counter* degraded_reads = nullptr;
  Counter* network_bytes = nullptr;
  Counter* remote_messages = nullptr;
  Counter* forwarded_reads = nullptr;
  Counter* forwarded_queries = nullptr;
  Counter* monitor_samples = nullptr;
  Counter* monitor_alerts = nullptr;
  Counter* monitor_dumps = nullptr;

  SimMetrics() = default;
  explicit SimMetrics(MetricsRegistry& reg) {
    latency_by_kind[static_cast<int>(QueryKind::kOneHop)] =
        reg.GetHistogram("graphdb.query_latency.one_hop.sim_seconds");
    latency_by_kind[static_cast<int>(QueryKind::kTwoHop)] =
        reg.GetHistogram("graphdb.query_latency.two_hop.sim_seconds");
    latency_by_kind[static_cast<int>(QueryKind::kShortestPath)] =
        reg.GetHistogram("graphdb.query_latency.shortest_path.sim_seconds");
    sims = reg.GetCounter("graphdb.sim.runs");
    queries_completed = reg.GetCounter("graphdb.sim.queries.completed");
    retries = reg.GetCounter("graphdb.sim.retries");
    failed = reg.GetCounter("graphdb.sim.queries.failed");
    timed_out = reg.GetCounter("graphdb.sim.queries.timed_out");
    lost_messages = reg.GetCounter("graphdb.sim.messages.lost");
    degraded_reads = reg.GetCounter("graphdb.sim.reads.degraded");
    network_bytes = reg.GetCounter("graphdb.sim.network.bytes");
    remote_messages = reg.GetCounter("graphdb.sim.messages.remote");
    forwarded_reads = reg.GetCounter("reshard.reads.forwarded");
    forwarded_queries = reg.GetCounter("reshard.queries.forwarded");
    monitor_samples = reg.GetCounter("monitor.samples");
    monitor_alerts = reg.GetCounter("monitor.alerts");
    monitor_dumps = reg.GetCounter("monitor.dumps");
  }

  static SimMetrics& Get() { return CurrentRegistryMetrics<SimMetrics>(); }
};

}  // namespace

std::vector<QueryTraceRecord> SimResult::Traces() const {
  std::vector<QueryTraceRecord> out;
  std::vector<TraceEvent> events = query_traces.Snapshot();
  out.reserve(events.size());
  for (const TraceEvent& e : events) {
    QueryTraceRecord record;
    record.binding = static_cast<uint32_t>(e.args[0]);
    record.issue_time = e.start;
    record.completion_time = e.end;
    record.coordinator = static_cast<PartitionId>(e.args[1]);
    record.reads = e.args[2];
    record.rounds = static_cast<uint32_t>(e.args[3]);
    out.push_back(record);
  }
  return out;
}

SimResult SimulateClosedLoop(const GraphDatabase& db, const Workload& workload,
                             const SimConfig& config) {
  SimResult result;
  result.reads_per_worker.assign(db.k(), 0.0);
  result.query_traces.set_capacity(config.collect_traces ? config.max_traces
                                                         : 0);
  // Degenerate configurations produce a well-defined empty result instead
  // of hanging, dividing by zero, or aborting.
  if (config.clients == 0 || config.num_queries == 0 ||
      config.warmup_fraction >= 1.0 || config.warmup_fraction < 0.0) {
    return result;
  }
  SimMetrics& metrics = SimMetrics::Get();
  metrics.sims->Increment();
  const DbCostModel& cost = db.cost_model();
  const double latency_hop = cost.network_latency_seconds;
  const FaultPlan& faults = config.faults;
  const RetryPolicy& retry = config.retry;
  const bool has_faults = !faults.empty();
  const bool has_outages = !faults.outages.empty();
  const bool has_reshard = config.reshard.active();
  if (has_faults) {
    faults.Validate(db.k());
    retry.Validate();
  }

  // Live reshard: the move plan is computed eagerly, then replayed by
  // kReshardStep events on the simulated clock. `cur_owner` is the live
  // ownership view the forwarding path re-resolves reads against; query
  // plans stay stale on purpose (the router learns lazily — a miss is a
  // redirect, never an error).
  std::unique_ptr<ReshardController> reshard_ctl;
  std::vector<PartitionId> cur_owner;
  PartitionId k_total = db.k();
  double reshard_end = std::numeric_limits<double>::infinity();
  if (has_reshard) {
    SGP_CHECK(config.reshard.start_time >= 0);
    const VertexId n = db.graph().num_vertices();
    cur_owner.resize(n);
    for (VertexId v = 0; v < n; ++v) cur_owner[v] = db.Owner(v);
    reshard_ctl = std::make_unique<ReshardController>(
        db.graph(), cur_owner, db.k(), config.reshard.op,
        config.reshard.config);
    k_total = reshard_ctl->k_after();
    result.reads_per_worker.assign(k_total, 0.0);
  }
  // Request + response hop loss folded into one draw per remote attempt.
  const double loss_round_trip =
      has_faults ? 1.0 - (1.0 - faults.message_loss_probability) *
                             (1.0 - faults.message_loss_probability)
                 : 0.0;

  // Plans are deterministic per binding and per live-worker set. Fault
  // epochs — maximal intervals with a constant down mask — are known
  // upfront, so one plan table is prebuilt per distinct mask; queries
  // issued during an outage fail over to replicas via their epoch's table.
  std::vector<std::vector<QueryPlan>> plan_tables;
  auto build_table = [&](const std::vector<char>& mask) {
    std::vector<QueryPlan> plans;
    plans.reserve(workload.bindings().size());
    for (const Query& q : workload.bindings()) {
      plans.push_back(db.Plan(q, mask, /*record_vertices=*/has_reshard));
    }
    return plans;
  };
  plan_tables.push_back(build_table({}));  // healthy table, index 0
  std::vector<double> epoch_starts{0.0};
  std::vector<uint32_t> epoch_table{0};
  if (has_outages) {
    std::map<std::vector<char>, uint32_t> mask_index;
    mask_index[{}] = 0;
    std::vector<double> transitions = faults.OutageTransitionTimes();
    for (double t : transitions) {
      std::vector<char> mask = faults.DownMask(db.k(), t);
      auto [it, inserted] =
          mask_index.emplace(mask, static_cast<uint32_t>(plan_tables.size()));
      if (inserted) plan_tables.push_back(build_table(mask));
      if (t <= 0.0) {
        epoch_table[0] = it->second;
      } else {
        epoch_starts.push_back(t);
        epoch_table.push_back(it->second);
      }
    }
  }
  auto plan_for = [&](double t, uint32_t binding) -> const QueryPlan* {
    size_t epoch = 0;
    if (has_outages) {
      epoch = static_cast<size_t>(
                  std::upper_bound(epoch_starts.begin(), epoch_starts.end(), t) -
                  epoch_starts.begin()) -
              1;
    }
    return &plan_tables[epoch_table[epoch]][binding];
  };

  // Live monitoring: registry samples, SLO evaluation and flight-recorder
  // dumps all ride the simulated clock (kMonitorSample events), so every
  // observation is deterministic per seed. The sampled registry is the
  // calling thread's current one — the same registry SimMetrics publishes
  // into, which is how a scoped per-run registry isolates the series.
  const MonitorSpec& monitor = config.monitor;
  const bool has_monitor = monitor.enabled && monitor.sample_interval > 0;
  MetricsRegistry& registry = MetricsRegistry::Current();
  TimeSeriesStoreOptions store_options;
  store_options.capacity_per_series = monitor.series_capacity;
  TimeSeriesStore store(store_options);
  SloTracker slo_tracker(monitor.slos);
  FlightRecorder recorder(monitor.recorder);
  if (has_monitor) recorder.ArmBaseline(registry);

  Rng rng(config.seed);
  // Lognormal service-time multiplier with mean 1 and the configured
  // coefficient of variation.
  const double cv = cost.service_time_cv;
  const double lognorm_sigma =
      cv > 0 ? std::sqrt(std::log(1.0 + cv * cv)) : 0.0;
  const double lognorm_mu = -0.5 * lognorm_sigma * lognorm_sigma;
  auto service_noise = [&]() {
    if (cv <= 0) return 1.0;
    // Box-Muller.
    double u1 = std::max(rng.UniformReal(), 1e-12);
    double u2 = rng.UniformReal();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return std::exp(lognorm_mu + lognorm_sigma * z);
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  uint64_t next_seq = 0;
  auto push = [&](Event e) {
    e.seq = next_seq++;
    events.push(e);
  };

  std::vector<InFlight> inflight(config.clients);
  std::vector<double> worker_available(k_total, 0.0);

  const uint64_t warmup =
      static_cast<uint64_t>(config.warmup_fraction *
                            static_cast<double>(config.num_queries));
  uint64_t completed_total = 0;  // finished queries, any outcome
  double window_start = 0;
  double last_completion = 0;
  std::vector<double> latencies;
  latencies.reserve(config.num_queries - warmup);
  std::vector<double> latencies_outage;
  std::vector<double> latencies_steady;
  std::vector<double> latencies_reshard;

  // Schedules the arrival events of one round; remote tasks pay the
  // request hop.
  auto schedule_round = [&](uint32_t client, double base_time) {
    InFlight& q = inflight[client];
    const auto& tasks = q.plan->rounds[q.round];
    q.remaining_tasks = static_cast<uint32_t>(tasks.size());
    q.round_end = base_time;
    for (uint32_t t = 0; t < tasks.size(); ++t) {
      double arrival = base_time +
                       (tasks[t].worker == q.plan->coordinator
                            ? 0.0
                            : latency_hop);
      push({arrival, 0, EventType::kTaskArrival, client, q.round, t, q.gen,
            0});
    }
  };

  // A query finished (successfully or not) at time `t`: account it,
  // invalidate its outstanding events, and have the closed-loop client
  // issue the next one.
  auto finish_query = [&](uint32_t client, double t, Outcome outcome) {
    InFlight& q = inflight[client];
    ++completed_total;
    last_completion = t;
    if (completed_total == warmup) window_start = t;
    if (q.forwarded) ++result.reshard.forwarded_queries;
    // Queries whose lifetime overlapped the reshard transition (from its
    // start until its last batch settled).
    const bool through_reshard = has_reshard &&
                                 t >= config.reshard.start_time &&
                                 q.start_time < reshard_end;
    if (completed_total > warmup) {
      switch (outcome) {
        case Outcome::kSuccess: {
          const double latency = t - q.start_time;
          latencies.push_back(latency);
          metrics
              .latency_by_kind[static_cast<int>(
                  workload.bindings()[q.binding].kind)]
              ->Record(latency);
          if (has_outages) {
            if (faults.AnyOutageOverlaps(q.start_time, t)) {
              latencies_outage.push_back(latency);
            } else {
              latencies_steady.push_back(latency);
            }
          }
          if (through_reshard) {
            ++result.reshard.succeeded_during;
            latencies_reshard.push_back(latency);
          }
          if (config.collect_traces) {
            TraceEvent trace;
            trace.name = "query";
            trace.start = q.start_time;
            trace.end = t;
            trace.id = result.query_traces.NextId();
            trace.args = {q.binding, q.plan->coordinator,
                          q.plan->total_reads,
                          static_cast<uint64_t>(q.plan->rounds.size())};
            result.query_traces.Append(std::move(trace));
          }
          break;
        }
        case Outcome::kFailed:
          ++result.availability.failed;
          if (through_reshard) ++result.reshard.failed_during;
          break;
        case Outcome::kTimedOut:
          ++result.availability.timed_out;
          if (through_reshard) ++result.reshard.timed_out_during;
          break;
      }
      if (has_monitor) {
        slo_tracker.RecordQuery(t, outcome == Outcome::kSuccess,
                                t - q.start_time);
        if (outcome != Outcome::kSuccess && monitor.dump_on_query_failure) {
          recorder.Dump(outcome == Outcome::kFailed ? "query_failed"
                                                    : "query_timed_out",
                        t, store, registry);
        }
      }
    }
    ++q.gen;  // drop stale task / deadline events of this query
    push({t, 0, EventType::kIssue, client, 0, 0, 0, 0});
  };

  auto issue_query = [&](uint32_t client, double now) {
    uint32_t binding = workload.SampleBindingIndex(rng);
    InFlight& q = inflight[client];
    ++q.gen;
    q.plan = plan_for(now, binding);
    q.binding = binding;
    q.round = 0;
    q.start_time = now;
    q.forwarded = false;
    q.deadline = has_faults ? now + retry.query_timeout_seconds
                            : std::numeric_limits<double>::infinity();
    if (has_faults && std::isfinite(q.deadline)) {
      push({q.deadline, 0, EventType::kDeadline, client, 0, 0, q.gen, 0});
    }
    if (!q.plan->reachable) {
      // Every live replica of some required vertex is gone: the router
      // cannot place the query. The client observes its timeout (or an
      // immediate routing error when no deadline is configured).
      if (!std::isfinite(q.deadline)) {
        finish_query(client, now + 2 * latency_hop, Outcome::kFailed);
      }
      return;
    }
    result.total_network_bytes += q.plan->network_bytes;
    result.total_remote_messages += q.plan->remote_messages;
    // Client → router → coordinator hop.
    schedule_round(client, now + latency_hop);
  };

  for (uint32_t c = 0; c < config.clients; ++c) {
    push({0.0, 0, EventType::kIssue, c, 0, 0, 0, 0});
  }
  if (has_reshard) {
    push({config.reshard.start_time, 0, EventType::kReshardStep});
  }
  if (has_monitor) {
    push({monitor.sample_interval, 0, EventType::kMonitorSample});
  }

  while (!events.empty() && completed_total < config.num_queries) {
    Event e = events.top();
    events.pop();
    switch (e.type) {
      case EventType::kIssue:
        issue_query(e.client, e.time);
        break;
      case EventType::kTaskArrival: {
        InFlight& q = inflight[e.client];
        if (e.gen != q.gen) break;  // query already finished
        const QueryPlan::Task& task = q.plan->rounds[e.round][e.task];
        const PartitionId w = task.worker;
        const bool remote = w != q.plan->coordinator;
        // A sub-request attempt fails when its round trip loses a message
        // or the worker is inside an outage window at arrival time.
        bool lost = remote && loss_round_trip > 0 &&
                    rng.Bernoulli(loss_round_trip);
        if (lost) ++result.availability.lost_messages;
        if (lost || (has_outages && faults.IsDown(w, e.time))) {
          const uint32_t failures = e.attempt + 1;
          if (failures >= retry.max_attempts) {
            finish_query(e.client, e.time, Outcome::kFailed);
            break;
          }
          const double retry_time =
              e.time + retry.BackoffSeconds(failures, rng);
          if (retry_time < q.deadline) {
            ++result.availability.retries;
            push({retry_time, 0, EventType::kTaskArrival, e.client, e.round,
                  e.task, e.gen, failures});
          }
          // Otherwise the deadline event fails the query at q.deadline.
          break;
        }
        // Live reshard: reads whose master record already moved off this
        // worker miss locally and are redirected to the current owner
        // (one forward hop per distinct destination). Replica reads
        // (w != master) still hit their physical copy — migration moves
        // the master record only.
        uint64_t local_reads = task.reads;
        std::vector<std::pair<PartitionId, uint64_t>> redirects;
        if (has_reshard) {
          local_reads = 0;
          for (VertexId v : task.vertices) {
            const PartitionId live = cur_owner[v];
            if (w == db.Owner(v) && live != w) {
              auto it = std::find_if(
                  redirects.begin(), redirects.end(),
                  [live](const auto& pr) { return pr.first == live; });
              if (it == redirects.end()) {
                redirects.emplace_back(live, 1);
              } else {
                ++it->second;
              }
            } else {
              ++local_reads;
            }
          }
          if (!redirects.empty()) {
            q.forwarded = true;
            q.remaining_tasks += static_cast<uint32_t>(redirects.size());
          }
        }
        // FIFO single-server worker queue. Remote sub-requests pay RPC
        // handling overhead on top of the storage reads; stragglers
        // stretch the whole service time.
        double service =
            (static_cast<double>(local_reads) * cost.seconds_per_read +
             (remote ? cost.seconds_per_remote_task : 0.0)) *
            service_noise();
        if (has_faults) service *= faults.Slowdown(w, e.time);
        double start = std::max(worker_available[w], e.time);
        double done = start + service;
        worker_available[w] = done;
        result.reads_per_worker[w] += static_cast<double>(local_reads);
        result.availability.degraded_reads += task.degraded_reads;
        // The worker discovers the tombstones while serving, so the
        // forwards leave when it finishes; each costs a network hop and a
        // request/response message pair.
        for (const auto& [dest, cnt] : redirects) {
          result.total_remote_messages += 2;
          result.total_network_bytes +=
              cost.bytes_per_request + cnt * cost.bytes_per_vertex_record;
          result.reshard.forwarded_reads += cnt;
          push({done + latency_hop, 0, EventType::kForward, e.client,
                e.round, 0, e.gen, 0, dest, cnt});
        }
        // Response hop back to the coordinator for remote tasks.
        double task_end = done + (remote ? latency_hop : 0.0);
        q.round_end = std::max(q.round_end, task_end);
        if (--q.remaining_tasks == 0) {
          push({q.round_end, 0, EventType::kAdvance, e.client, e.round, 0,
                e.gen, 0});
        }
        break;
      }
      case EventType::kForward: {
        // Redirected reads arriving at the vertex's current owner. Same
        // failure surface as a remote sub-request: message loss and
        // outages trigger client retries under the same policy.
        InFlight& q = inflight[e.client];
        if (e.gen != q.gen) break;
        const PartitionId w = e.worker;
        bool lost = loss_round_trip > 0 && rng.Bernoulli(loss_round_trip);
        if (lost) ++result.availability.lost_messages;
        if (lost || (has_outages && faults.IsDown(w, e.time))) {
          const uint32_t failures = e.attempt + 1;
          if (failures >= retry.max_attempts) {
            finish_query(e.client, e.time, Outcome::kFailed);
            break;
          }
          const double retry_time =
              e.time + retry.BackoffSeconds(failures, rng);
          if (retry_time < q.deadline) {
            ++result.availability.retries;
            Event r = e;
            r.time = retry_time;
            r.attempt = failures;
            push(r);
          }
          break;
        }
        double service =
            (static_cast<double>(e.reads) * cost.seconds_per_read +
             cost.seconds_per_remote_task) *
            service_noise();
        if (has_faults) service *= faults.Slowdown(w, e.time);
        double start = std::max(worker_available[w], e.time);
        double done = start + service;
        worker_available[w] = done;
        result.reads_per_worker[w] += static_cast<double>(e.reads);
        const double task_end = done + latency_hop;  // response hop back
        q.round_end = std::max(q.round_end, task_end);
        if (--q.remaining_tasks == 0) {
          push({q.round_end, 0, EventType::kAdvance, e.client, e.round, 0,
                e.gen, 0});
        }
        break;
      }
      case EventType::kReshardStep: {
        ReshardStepResult step = reshard_ctl->Step(e.time, faults);
        for (const VertexMove& m : step.applied) cur_owner[m.v] = m.to;
        if (step.bytes > 0) {
          // Migration traffic is cluster-internal traffic too.
          result.total_network_bytes += step.bytes;
          result.total_remote_messages += 2;
        }
        if (step.done || !std::isfinite(step.next_time)) {
          reshard_end = e.time;
        } else {
          push({step.next_time, 0, EventType::kReshardStep});
        }
        break;
      }
      case EventType::kMonitorSample: {
        store.Sample(registry, e.time);
        std::string detail;
        if (has_reshard && e.time >= config.reshard.start_time &&
            !std::isfinite(reshard_end)) {
          detail =
              std::string("reshard=") + ReshardPhaseName(reshard_ctl->phase());
        }
        for (const Alert& a : slo_tracker.Evaluate(e.time, detail)) {
          recorder.Dump("alert:" + a.slo, e.time, store, registry);
        }
        push({e.time + monitor.sample_interval, 0, EventType::kMonitorSample});
        break;
      }
      case EventType::kAdvance: {
        InFlight& q = inflight[e.client];
        if (e.gen != q.gen) break;
        ++q.round;
        if (q.round < q.plan->rounds.size()) {
          schedule_round(e.client, e.time);
          break;
        }
        // Query complete: response hop to the client.
        double completion = e.time + latency_hop;
        if (completion > q.deadline) break;  // deadline event fires first
        finish_query(e.client, completion, Outcome::kSuccess);
        break;
      }
      case EventType::kDeadline: {
        InFlight& q = inflight[e.client];
        if (e.gen != q.gen) break;  // query already finished
        finish_query(e.client, e.time, Outcome::kTimedOut);
        break;
      }
    }
  }

  result.completed = latencies.size();
  result.window_seconds = std::max(1e-12, last_completion - window_start);
  result.throughput_qps =
      static_cast<double>(result.completed) / result.window_seconds;
  AvailabilityStats& avail = result.availability;
  avail.succeeded = result.completed;
  const uint64_t finished = avail.succeeded + avail.failed + avail.timed_out;
  avail.availability =
      finished == 0 ? 1.0
                    : static_cast<double>(avail.succeeded) /
                          static_cast<double>(finished);
  avail.latency_during_outage = Summarize(std::move(latencies_outage));
  avail.latency_steady = Summarize(std::move(latencies_steady));
  result.latency = Summarize(std::move(latencies));
  if (has_reshard) {
    ReshardSimStats& rs = result.reshard;
    rs.ran = true;
    rs.phase = reshard_ctl->phase();
    rs.start_time = config.reshard.start_time;
    rs.end_time = std::isfinite(reshard_end) ? reshard_end : 0.0;
    rs.planned_moves = reshard_ctl->planned_moves().size();
    const ReshardStats& cs = reshard_ctl->stats();
    rs.moved_vertices = cs.moved_vertices;
    rs.migration_bytes = cs.migration_bytes;
    rs.batches_committed = cs.batches_committed;
    rs.batch_retries = cs.batch_retries;
    rs.batches_rolled_back = cs.batches_rolled_back;
    rs.moves_replanned = cs.moves_replanned;
    rs.moves_cancelled = cs.moves_cancelled;
    const uint64_t during =
        rs.succeeded_during + rs.failed_during + rs.timed_out_during;
    rs.availability_during =
        during == 0 ? 1.0
                    : static_cast<double>(rs.succeeded_during) /
                          static_cast<double>(during);
    rs.latency_during = Summarize(std::move(latencies_reshard));
    metrics.forwarded_reads->Increment(rs.forwarded_reads);
    metrics.forwarded_queries->Increment(rs.forwarded_queries);
  }

  if (has_monitor) {
    result.alerts = slo_tracker.alerts();
    result.time_series = ExportTimeSeriesJson(store);
    result.blackbox = recorder.dumps();
    result.monitor_series = store;
    // Flushed after the last sample, so the monitor never observes its
    // own counters mid-run.
    metrics.monitor_samples->Increment(store.num_samples());
    metrics.monitor_alerts->Increment(result.alerts.size());
    metrics.monitor_dumps->Increment(result.blackbox.size());
  }

  metrics.queries_completed->Increment(result.completed);
  metrics.retries->Increment(avail.retries);
  metrics.failed->Increment(avail.failed);
  metrics.timed_out->Increment(avail.timed_out);
  metrics.lost_messages->Increment(avail.lost_messages);
  metrics.degraded_reads->Increment(avail.degraded_reads);
  metrics.network_bytes->Increment(result.total_network_bytes);
  metrics.remote_messages->Increment(result.total_remote_messages);
  return result;
}

}  // namespace sgp
