#ifndef SGP_GRAPHDB_EVENT_SIM_H_
#define SGP_GRAPHDB_EVENT_SIM_H_

#include <cstdint>
#include <vector>

#include <string>

#include "common/faults.h"
#include "common/monitor.h"
#include "common/statistics.h"
#include "common/telemetry.h"
#include "graphdb/graphdb.h"
#include "graphdb/workload.h"
#include "partition/dynamic/reshard.h"

namespace sgp {

/// A live reshard running concurrently with the simulated workload: the
/// controller starts at `start_time` on the simulated clock and migrates
/// batches while clients keep issuing queries. Reads of a vertex whose
/// master already moved are redirected (miss → forward to the new owner,
/// never an error); SimResult::reshard reports availability, tail latency
/// and wire volume measured through the transition.
struct LiveReshardSpec {
  ReshardOp op;  // kind == kNone leaves the simulation unchanged
  double start_time = 0;
  ReshardConfig config;

  bool active() const { return op.kind != ReshardOpKind::kNone; }
};

/// Live monitoring inside the simulation. When enabled, a kMonitorSample
/// event fires every `sample_interval` simulated seconds: the current
/// registry is sampled into a TimeSeriesStore, every SLO is evaluated,
/// and each fired alert (annotated with the active reshard phase when a
/// live reshard is in flight) triggers a flight-recorder dump. Because
/// sampling rides the simulated clock — never a wall clock — the sampled
/// series, the alert stream, and every dump are byte-identical given
/// identical seeds (and a fresh / scoped MetricsRegistry per run, the
/// experiment-grid pattern).
struct MonitorSpec {
  bool enabled = false;

  /// Simulated seconds between registry samples.
  double sample_interval = 0.05;

  /// Ring capacity of every sampled series.
  size_t series_capacity = 4096;

  /// Objectives evaluated at every sample tick. Measured-window query
  /// outcomes feed the tracker (warmup completions are excluded, like
  /// every other SimResult statistic).
  std::vector<SloConfig> slos;

  FlightRecorderConfig recorder;

  /// Also dump on every failed / timed-out query (subject to the
  /// recorder's max_dumps budget), not just on alerts.
  bool dump_on_query_failure = false;
};

/// Closed-loop load-generation configuration (Section 5.2.4): `clients`
/// concurrent clients each issue the next query as soon as the previous
/// one completes. The paper's medium load is 12 clients per worker, high
/// load is 24.
struct SimConfig {
  uint32_t clients = 64;

  /// Total completed queries to simulate.
  uint64_t num_queries = 20000;

  /// Fraction of initial completions excluded from measurement (cache /
  /// queue warm-up, as in Section 5.2.3).
  double warmup_fraction = 0.1;

  uint64_t seed = 123;

  /// Collect a per-query trace (for debugging and latency-breakdown
  /// analysis). Off by default — traces cost memory.
  bool collect_traces = false;

  /// Cap on collected trace records when collect_traces is set.
  uint32_t max_traces = 1u << 20;

  /// Injected faults (worker outages, stragglers, message loss). An empty
  /// plan reproduces the healthy-cluster simulation bit-for-bit; with a
  /// non-empty plan, failure and recovery events interleave with query
  /// events and SimResult::availability is populated.
  FaultPlan faults;

  /// How clients react to failed sub-requests when `faults` is non-empty:
  /// capped exponential backoff retries plus a per-query deadline.
  RetryPolicy retry;

  /// Optional live reshard executed during the run (inactive by default —
  /// an inactive spec reproduces the plain simulation bit-for-bit).
  LiveReshardSpec reshard;

  /// Optional live monitoring (disabled by default — a disabled spec
  /// reproduces the plain simulation bit-for-bit).
  MonitorSpec monitor;
};

/// One completed query, when tracing is enabled. This is the decoded view
/// of a telemetry TraceEvent (name "query"; args = binding, coordinator,
/// reads, rounds; start/end = issue/completion on the simulated clock)
/// kept for analysis convenience — the raw events live in
/// SimResult::query_traces.
struct QueryTraceRecord {
  uint32_t binding = 0;          // index into Workload::bindings()
  double issue_time = 0;         // seconds, simulated clock
  double completion_time = 0;
  PartitionId coordinator = 0;
  uint64_t reads = 0;            // total vertex reads of the plan
  uint32_t rounds = 0;           // fork-join rounds of the plan
};

/// Availability metrics of a faulty run — what the paper's healthy-cluster
/// evaluation cannot see. Counters cover the measurement window unless
/// noted; all zeros / defaults when SimConfig::faults is empty.
struct AvailabilityStats {
  /// Queries finished in the measurement window, by outcome. `succeeded`
  /// equals SimResult::completed.
  uint64_t succeeded = 0;
  uint64_t failed = 0;     // retry attempts exhausted, or start data lost
  uint64_t timed_out = 0;  // client deadline expired

  /// Sub-request retry attempts (whole run, warmup included).
  uint64_t retries = 0;

  /// Vertex reads served by a non-master replica after failover (whole
  /// run). Nonzero only for vertex-cut / hybrid placements — replication
  /// is what lets those placements keep serving through an outage.
  uint64_t degraded_reads = 0;

  /// One-way hops dropped by the message-loss process (whole run).
  uint64_t lost_messages = 0;

  /// succeeded / (succeeded + failed + timed_out); 1.0 for an empty window.
  double availability = 1.0;

  /// Latency of successful queries whose lifetime overlapped an outage
  /// window, vs. those fully in steady state (p99 during the outage vs.
  /// p99 in steady state).
  DistributionSummary latency_during_outage;
  DistributionSummary latency_steady;
};

/// What the simulator measured about a live reshard that ran concurrently
/// with the workload (SimConfig::reshard). All fields are deterministic
/// per seed. "During" counters cover queries in the measurement window
/// whose lifetime overlapped [start_time, end of the reshard].
struct ReshardSimStats {
  bool ran = false;
  ReshardPhase phase = ReshardPhase::kPlanned;
  double start_time = 0;
  double end_time = 0;  // 0 when the run ended before the reshard did

  uint64_t planned_moves = 0;
  uint64_t moved_vertices = 0;
  uint64_t migration_bytes = 0;  // MigrationCostModel wire volume
  uint64_t batches_committed = 0;
  uint64_t batch_retries = 0;
  uint64_t batches_rolled_back = 0;
  uint64_t moves_replanned = 0;
  uint64_t moves_cancelled = 0;

  /// Reads redirected because their vertex had already moved, and the
  /// queries (whole run) that needed at least one such redirect.
  uint64_t forwarded_reads = 0;
  uint64_t forwarded_queries = 0;

  /// Availability through the transition: outcomes of measured queries
  /// overlapping the reshard, and their latency distribution.
  uint64_t succeeded_during = 0;
  uint64_t failed_during = 0;
  uint64_t timed_out_during = 0;
  double availability_during = 1.0;
  DistributionSummary latency_during;
};

/// Everything the paper measures about one online-workload run.
struct SimResult {
  /// Measurement-window duration in simulated seconds.
  double window_seconds = 0;

  /// Queries completed inside the measurement window.
  uint64_t completed = 0;

  /// Aggregate cluster throughput (Figure 6).
  double throughput_qps = 0;

  /// Latency distribution in seconds (Table 5 reports mean and p99).
  DistributionSummary latency;

  /// Vertex reads served by each worker (Figures 7 and 15).
  std::vector<double> reads_per_worker;

  /// Cluster-internal traffic of the whole run (Figure 5).
  uint64_t total_network_bytes = 0;
  uint64_t total_remote_messages = 0;

  /// Bounded per-query trace buffer (telemetry API): one "query" event
  /// per measured query, oldest first, capped at SimConfig::max_traces.
  /// Empty unless SimConfig::collect_traces.
  TraceBuffer query_traces{0};

  /// Availability metrics under the injected FaultPlan (defaults when the
  /// plan is empty).
  AvailabilityStats availability;

  /// Live-reshard metrics (defaults when SimConfig::reshard is inactive).
  /// When a reshard ran, reads_per_worker covers the post-reshape id
  /// space (one extra slot after a split).
  ReshardSimStats reshard;

  /// Live-monitoring output (all empty unless SimConfig::monitor.enabled).
  /// `alerts` is every burn-rate alert in fire order; `time_series` is the
  /// full sgp.timeseries.v1 export of the sampled store; `blackbox` holds
  /// the sgp.blackbox.v1 flight-recorder dumps in trigger order.
  std::vector<Alert> alerts;
  std::string time_series;
  std::vector<std::string> blackbox;

  /// The sampled store itself — what RecommendFromTimeSeries consumes
  /// (`time_series` above is its serialized form).
  TimeSeriesStore monitor_series;

  /// Compatibility accessor: the trace buffer decoded into the classic
  /// per-query records.
  std::vector<QueryTraceRecord> Traces() const;
};

/// Discrete-event simulation of the JanusGraph cluster: FIFO single-server
/// workers with per-read service time, fixed one-way network latency per
/// hop, closed-loop clients drawing Zipf-popular bindings. Queueing at hot
/// workers — not modeled by any structural partitioning metric — is what
/// produces the tail-latency inflation of Table 5.
///
/// With a non-empty SimConfig::faults, failure and recovery events
/// interleave with query events: requests arriving at a dead worker fail
/// over to a live data replica (vertex-cut / hybrid placements), are
/// retried under SimConfig::retry, or time out at the client deadline;
/// stragglers stretch service times; lossy hops drop sub-requests. Given
/// identical inputs and seeds the result is bit-identical.
SimResult SimulateClosedLoop(const GraphDatabase& db, const Workload& workload,
                             const SimConfig& config);

}  // namespace sgp

#endif  // SGP_GRAPHDB_EVENT_SIM_H_
