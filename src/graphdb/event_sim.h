#ifndef SGP_GRAPHDB_EVENT_SIM_H_
#define SGP_GRAPHDB_EVENT_SIM_H_

#include <cstdint>
#include <vector>

#include "common/statistics.h"
#include "graphdb/graphdb.h"
#include "graphdb/workload.h"

namespace sgp {

/// Closed-loop load-generation configuration (Section 5.2.4): `clients`
/// concurrent clients each issue the next query as soon as the previous
/// one completes. The paper's medium load is 12 clients per worker, high
/// load is 24.
struct SimConfig {
  uint32_t clients = 64;

  /// Total completed queries to simulate.
  uint64_t num_queries = 20000;

  /// Fraction of initial completions excluded from measurement (cache /
  /// queue warm-up, as in Section 5.2.3).
  double warmup_fraction = 0.1;

  uint64_t seed = 123;

  /// Collect a per-query trace (for debugging and latency-breakdown
  /// analysis). Off by default — traces cost memory.
  bool collect_traces = false;

  /// Cap on collected trace records when collect_traces is set.
  uint32_t max_traces = 1u << 20;
};

/// One completed query, when tracing is enabled.
struct QueryTraceRecord {
  uint32_t binding = 0;          // index into Workload::bindings()
  double issue_time = 0;         // seconds, simulated clock
  double completion_time = 0;
  PartitionId coordinator = 0;
  uint64_t reads = 0;            // total vertex reads of the plan
  uint32_t rounds = 0;           // fork-join rounds of the plan
};

/// Everything the paper measures about one online-workload run.
struct SimResult {
  /// Measurement-window duration in simulated seconds.
  double window_seconds = 0;

  /// Queries completed inside the measurement window.
  uint64_t completed = 0;

  /// Aggregate cluster throughput (Figure 6).
  double throughput_qps = 0;

  /// Latency distribution in seconds (Table 5 reports mean and p99).
  DistributionSummary latency;

  /// Vertex reads served by each worker (Figures 7 and 15).
  std::vector<double> reads_per_worker;

  /// Cluster-internal traffic of the whole run (Figure 5).
  uint64_t total_network_bytes = 0;
  uint64_t total_remote_messages = 0;

  /// Per-query records inside the measurement window, oldest first
  /// (empty unless SimConfig::collect_traces).
  std::vector<QueryTraceRecord> traces;
};

/// Discrete-event simulation of the JanusGraph cluster: FIFO single-server
/// workers with per-read service time, fixed one-way network latency per
/// hop, closed-loop clients drawing Zipf-popular bindings. Queueing at hot
/// workers — not modeled by any structural partitioning metric — is what
/// produces the tail-latency inflation of Table 5.
SimResult SimulateClosedLoop(const GraphDatabase& db, const Workload& workload,
                             const SimConfig& config);

}  // namespace sgp

#endif  // SGP_GRAPHDB_EVENT_SIM_H_
