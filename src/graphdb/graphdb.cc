#include "graphdb/graphdb.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.h"
#include "common/hashing.h"

namespace sgp {

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kOneHop:
      return "1-hop";
    case QueryKind::kTwoHop:
      return "2-hop";
    case QueryKind::kShortestPath:
      return "shortest-path";
  }
  return "unknown";
}

GraphDatabase::GraphDatabase(const Graph& graph,
                             const Partitioning& partitioning,
                             DbCostModel cost_model, RouterMode router)
    : graph_(&graph), k_(partitioning.k), cost_(cost_model),
      router_(router) {
  SGP_CHECK(partitioning.vertex_to_partition.size() == graph.num_vertices());
  owner_ = partitioning.vertex_to_partition;
  const VertexId n = graph.num_vertices();

  // Materialize each worker's local adjacency store.
  stores_.resize(k_);
  local_slot_.resize(n);
  std::vector<uint32_t> slots(k_, 0);
  for (VertexId u = 0; u < n; ++u) local_slot_[u] = slots[owner_[u]]++;
  for (PartitionId w = 0; w < k_; ++w) {
    stores_[w].offsets.assign(static_cast<size_t>(slots[w]) + 1, 0);
  }
  for (VertexId u = 0; u < n; ++u) {
    stores_[owner_[u]].offsets[local_slot_[u] + 1] =
        graph.Neighbors(u).size();
  }
  for (PartitionId w = 0; w < k_; ++w) {
    auto& offsets = stores_[w].offsets;
    for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
    stores_[w].adjacency.resize(offsets.back());
  }
  for (VertexId u = 0; u < n; ++u) {
    auto nb = graph.Neighbors(u);
    auto& store = stores_[owner_[u]];
    std::copy(nb.begin(), nb.end(),
              store.adjacency.begin() +
                  static_cast<int64_t>(store.offsets[local_slot_[u]]));
  }

  // Vertex-cut / hybrid placements physically replicate vertex data on
  // every partition holding incident edges; those copies are what queries
  // fail over to when a worker dies. Edge-cut keeps a single copy.
  if (partitioning.model != CutModel::kEdgeCut &&
      partitioning.edge_to_partition.size() == graph.num_edges()) {
    data_replicas_ = ComputeReplicaSets(graph, partitioning);
  }
}

std::span<const PartitionId> GraphDatabase::DataReplicas(VertexId u) const {
  if (!replicated()) return {&owner_[u], 1};
  return data_replicas_.Of(u);
}

PartitionId GraphDatabase::EffectiveOwner(
    VertexId u, const std::vector<char>& down) const {
  const PartitionId owner = owner_[u];
  if (down.empty() || !down[owner]) return owner;
  for (PartitionId p : DataReplicas(u)) {
    if (!down[p]) return p;
  }
  return kInvalidPartition;
}

PartitionId GraphDatabase::Coordinator(VertexId u) const {
  if (router_ == RouterMode::kPartitionAware) return owner_[u];
  return static_cast<PartitionId>(HashU64(u ^ 0x9e3779b9u) % k_);
}

PartitionId GraphDatabase::Coordinator(VertexId u,
                                       const std::vector<char>& down) const {
  if (router_ == RouterMode::kPartitionAware) return EffectiveOwner(u, down);
  const PartitionId w =
      static_cast<PartitionId>(HashU64(u ^ 0x9e3779b9u) % k_);
  if (down.empty()) return w;
  for (PartitionId i = 0; i < k_; ++i) {
    const PartitionId c = (w + i) % k_;
    if (!down[c]) return c;
  }
  return kInvalidPartition;
}

std::span<const VertexId> GraphDatabase::ReadAdjacency(VertexId u) const {
  SGP_DCHECK(u < graph_->num_vertices());
  const WorkerStore& store = stores_[owner_[u]];
  const uint32_t slot = local_slot_[u];
  return {store.adjacency.data() + store.offsets[slot],
          store.adjacency.data() + store.offsets[slot + 1]};
}

void GraphDatabase::AddFetchRound(std::vector<QueryPlan::Task> round,
                                  QueryPlan* plan) const {
  if (round.empty()) return;
  for (const QueryPlan::Task& task : round) {
    plan->total_reads += task.reads;
    if (task.worker != plan->coordinator) {
      plan->remote_messages += 2;  // request + response
      plan->network_bytes +=
          cost_.bytes_per_request +
          task.reads * cost_.bytes_per_vertex_record;
    }
  }
  plan->rounds.push_back(std::move(round));
}

bool GraphDatabase::GroupByEffectiveOwner(
    std::span<const VertexId> vertices, const std::vector<char>& down,
    bool record_vertices, std::vector<QueryPlan::Task>* out) const {
  std::vector<uint64_t> reads(k_, 0);
  std::vector<uint64_t> degraded(k_, 0);
  std::vector<std::vector<VertexId>> members;
  if (record_vertices) members.resize(k_);
  for (VertexId v : vertices) {
    const PartitionId w = EffectiveOwner(v, down);
    if (w == kInvalidPartition) return false;
    ++reads[w];
    if (w != owner_[v]) ++degraded[w];
    if (record_vertices) members[w].push_back(v);
  }
  out->clear();
  for (PartitionId w = 0; w < k_; ++w) {
    if (reads[w] == 0) continue;
    QueryPlan::Task task;
    task.worker = w;
    task.reads = reads[w];
    task.degraded_reads = degraded[w];
    if (record_vertices) task.vertices = std::move(members[w]);
    out->push_back(std::move(task));
  }
  return true;
}

QueryPlan GraphDatabase::PlanOneHop(VertexId start,
                                    const std::vector<char>& down,
                                    bool record_vertices) const {
  QueryPlan plan;
  plan.coordinator = Coordinator(start, down);
  const VertexId start_list[] = {start};
  std::vector<QueryPlan::Task> round;
  // Round 0: read the start vertex's adjacency list at its effective
  // owner — local under the partition-aware router, one remote round
  // otherwise.
  if (plan.coordinator == kInvalidPartition ||
      !GroupByEffectiveOwner(start_list, down, record_vertices, &round)) {
    plan.reachable = false;
    return plan;
  }
  AddFetchRound(std::move(round), &plan);
  // Round 1: fetch the neighbor vertex records from their owners.
  auto neighbors = ReadAdjacency(start);
  if (!GroupByEffectiveOwner(neighbors, down, record_vertices, &round)) {
    plan.reachable = false;
    return plan;
  }
  AddFetchRound(std::move(round), &plan);
  plan.result_size = neighbors.size();
  return plan;
}

QueryPlan GraphDatabase::PlanTwoHop(VertexId start,
                                    const std::vector<char>& down,
                                    bool record_vertices) const {
  QueryPlan plan;
  plan.coordinator = Coordinator(start, down);
  const VertexId start_list[] = {start};
  std::vector<QueryPlan::Task> round;
  if (plan.coordinator == kInvalidPartition ||
      !GroupByEffectiveOwner(start_list, down, record_vertices, &round)) {
    plan.reachable = false;
    return plan;
  }
  AddFetchRound(std::move(round), &plan);
  auto neighbors = ReadAdjacency(start);
  // Round 1: read each neighbor's record and adjacency at its owner.
  if (!GroupByEffectiveOwner(neighbors, down, record_vertices, &round)) {
    plan.reachable = false;
    return plan;
  }
  AddFetchRound(std::move(round), &plan);
  // Round 2: fetch the distinct 2-hop vertex records.
  std::unordered_set<VertexId> frontier;
  for (VertexId v : neighbors) {
    for (VertexId w : ReadAdjacency(v)) {
      if (w != start) frontier.insert(w);
    }
  }
  std::vector<VertexId> two_hop(frontier.begin(), frontier.end());
  if (!GroupByEffectiveOwner(two_hop, down, record_vertices, &round)) {
    plan.reachable = false;
    return plan;
  }
  AddFetchRound(std::move(round), &plan);
  plan.result_size = two_hop.size();
  return plan;
}

QueryPlan GraphDatabase::PlanShortestPath(
    VertexId start, VertexId target, const std::vector<char>& down,
    bool record_vertices) const {
  QueryPlan plan;
  plan.coordinator = Coordinator(start, down);
  if (plan.coordinator == kInvalidPartition) {
    plan.reachable = false;
    return plan;
  }
  std::vector<char> visited(graph_->num_vertices(), 0);
  std::vector<VertexId> frontier{start};
  std::vector<QueryPlan::Task> round;
  visited[start] = 1;
  uint64_t depth = 0;
  bool found = start == target;
  while (!frontier.empty() && !found) {
    // One round per BFS level: read the adjacency of every frontier
    // vertex at its owner.
    if (!GroupByEffectiveOwner(frontier, down, record_vertices, &round)) {
      plan.reachable = false;
      return plan;
    }
    AddFetchRound(std::move(round), &plan);
    ++depth;
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (VertexId w : ReadAdjacency(v)) {
        if (visited[w]) continue;
        visited[w] = 1;
        if (w == target) found = true;
        next.push_back(w);
      }
    }
    frontier = std::move(next);
  }
  plan.result_size = found ? depth : 0;
  return plan;
}

QueryPlan GraphDatabase::Plan(const Query& query) const {
  return Plan(query, {});
}

QueryPlan GraphDatabase::Plan(const Query& query,
                              const std::vector<char>& down) const {
  return Plan(query, down, /*record_vertices=*/false);
}

QueryPlan GraphDatabase::Plan(const Query& query,
                              const std::vector<char>& down,
                              bool record_vertices) const {
  SGP_CHECK(query.start < graph_->num_vertices());
  SGP_CHECK(down.empty() || down.size() == k_);
  switch (query.kind) {
    case QueryKind::kOneHop:
      return PlanOneHop(query.start, down, record_vertices);
    case QueryKind::kTwoHop:
      return PlanTwoHop(query.start, down, record_vertices);
    case QueryKind::kShortestPath:
      return PlanShortestPath(query.start, query.target, down,
                              record_vertices);
  }
  return {};
}

void GraphDatabase::AccumulateAccessCounts(
    const Query& query, std::vector<uint64_t>& counts) const {
  SGP_CHECK(counts.size() == graph_->num_vertices());
  ++counts[query.start];
  auto neighbors = ReadAdjacency(query.start);
  for (VertexId v : neighbors) ++counts[v];
  if (query.kind == QueryKind::kTwoHop) {
    std::unordered_set<VertexId> frontier;
    for (VertexId v : neighbors) {
      for (VertexId w : ReadAdjacency(v)) {
        if (w != query.start) frontier.insert(w);
      }
    }
    for (VertexId w : frontier) ++counts[w];
  }
  // Shortest-path access patterns depend on the target; the workload-aware
  // experiment (Figure 8) uses neighborhood queries only, as in the paper.
}

}  // namespace sgp
