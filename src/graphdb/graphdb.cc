#include "graphdb/graphdb.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.h"
#include "common/hashing.h"

namespace sgp {

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kOneHop:
      return "1-hop";
    case QueryKind::kTwoHop:
      return "2-hop";
    case QueryKind::kShortestPath:
      return "shortest-path";
  }
  return "unknown";
}

GraphDatabase::GraphDatabase(const Graph& graph,
                             const Partitioning& partitioning,
                             DbCostModel cost_model, RouterMode router)
    : graph_(&graph), k_(partitioning.k), cost_(cost_model),
      router_(router) {
  SGP_CHECK(partitioning.vertex_to_partition.size() == graph.num_vertices());
  owner_ = partitioning.vertex_to_partition;
  const VertexId n = graph.num_vertices();

  // Materialize each worker's local adjacency store.
  stores_.resize(k_);
  local_slot_.resize(n);
  std::vector<uint32_t> slots(k_, 0);
  for (VertexId u = 0; u < n; ++u) local_slot_[u] = slots[owner_[u]]++;
  for (PartitionId w = 0; w < k_; ++w) {
    stores_[w].offsets.assign(static_cast<size_t>(slots[w]) + 1, 0);
  }
  for (VertexId u = 0; u < n; ++u) {
    stores_[owner_[u]].offsets[local_slot_[u] + 1] =
        graph.Neighbors(u).size();
  }
  for (PartitionId w = 0; w < k_; ++w) {
    auto& offsets = stores_[w].offsets;
    for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
    stores_[w].adjacency.resize(offsets.back());
  }
  for (VertexId u = 0; u < n; ++u) {
    auto nb = graph.Neighbors(u);
    auto& store = stores_[owner_[u]];
    std::copy(nb.begin(), nb.end(),
              store.adjacency.begin() +
                  static_cast<int64_t>(store.offsets[local_slot_[u]]));
  }
}

PartitionId GraphDatabase::Coordinator(VertexId u) const {
  if (router_ == RouterMode::kPartitionAware) return owner_[u];
  return static_cast<PartitionId>(HashU64(u ^ 0x9e3779b9u) % k_);
}

std::span<const VertexId> GraphDatabase::ReadAdjacency(VertexId u) const {
  SGP_DCHECK(u < graph_->num_vertices());
  const WorkerStore& store = stores_[owner_[u]];
  const uint32_t slot = local_slot_[u];
  return {store.adjacency.data() + store.offsets[slot],
          store.adjacency.data() + store.offsets[slot + 1]};
}

void GraphDatabase::AddFetchRound(
    std::vector<std::pair<PartitionId, uint64_t>> per_worker,
    QueryPlan* plan) const {
  if (per_worker.empty()) return;
  std::vector<QueryPlan::Task> round;
  round.reserve(per_worker.size());
  for (const auto& [worker, reads] : per_worker) {
    round.push_back({worker, reads});
    plan->total_reads += reads;
    if (worker != plan->coordinator) {
      plan->remote_messages += 2;  // request + response
      plan->network_bytes +=
          cost_.bytes_per_request +
          reads * cost_.bytes_per_vertex_record;
    }
  }
  plan->rounds.push_back(std::move(round));
}

namespace {

// Groups a list of vertices by owner into (worker, count) pairs.
std::vector<std::pair<PartitionId, uint64_t>> GroupByOwner(
    const std::vector<PartitionId>& owner, PartitionId k,
    std::span<const VertexId> vertices) {
  std::vector<uint64_t> counts(k, 0);
  for (VertexId v : vertices) ++counts[owner[v]];
  std::vector<std::pair<PartitionId, uint64_t>> grouped;
  for (PartitionId w = 0; w < k; ++w) {
    if (counts[w] > 0) grouped.emplace_back(w, counts[w]);
  }
  return grouped;
}

}  // namespace

QueryPlan GraphDatabase::PlanOneHop(VertexId start) const {
  QueryPlan plan;
  plan.coordinator = Coordinator(start);
  // Round 0: read the start vertex's adjacency list at its owner — local
  // under the partition-aware router, one remote round otherwise.
  AddFetchRound({{owner_[start], 1}}, &plan);
  // Round 1: fetch the neighbor vertex records from their owners.
  auto neighbors = ReadAdjacency(start);
  AddFetchRound(GroupByOwner(owner_, k_, neighbors), &plan);
  plan.result_size = neighbors.size();
  return plan;
}

QueryPlan GraphDatabase::PlanTwoHop(VertexId start) const {
  QueryPlan plan;
  plan.coordinator = Coordinator(start);
  AddFetchRound({{owner_[start], 1}}, &plan);
  auto neighbors = ReadAdjacency(start);
  // Round 1: read each neighbor's record and adjacency at its owner.
  AddFetchRound(GroupByOwner(owner_, k_, neighbors), &plan);
  // Round 2: fetch the distinct 2-hop vertex records.
  std::unordered_set<VertexId> frontier;
  for (VertexId v : neighbors) {
    for (VertexId w : ReadAdjacency(v)) {
      if (w != start) frontier.insert(w);
    }
  }
  std::vector<VertexId> two_hop(frontier.begin(), frontier.end());
  AddFetchRound(GroupByOwner(owner_, k_, two_hop), &plan);
  plan.result_size = two_hop.size();
  return plan;
}

QueryPlan GraphDatabase::PlanShortestPath(VertexId start,
                                          VertexId target) const {
  QueryPlan plan;
  plan.coordinator = Coordinator(start);
  std::vector<char> visited(graph_->num_vertices(), 0);
  std::vector<VertexId> frontier{start};
  visited[start] = 1;
  uint64_t depth = 0;
  bool found = start == target;
  while (!frontier.empty() && !found) {
    // One round per BFS level: read the adjacency of every frontier
    // vertex at its owner.
    AddFetchRound(GroupByOwner(owner_, k_, frontier), &plan);
    ++depth;
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (VertexId w : ReadAdjacency(v)) {
        if (visited[w]) continue;
        visited[w] = 1;
        if (w == target) found = true;
        next.push_back(w);
      }
    }
    frontier = std::move(next);
  }
  plan.result_size = found ? depth : 0;
  return plan;
}

QueryPlan GraphDatabase::Plan(const Query& query) const {
  SGP_CHECK(query.start < graph_->num_vertices());
  switch (query.kind) {
    case QueryKind::kOneHop:
      return PlanOneHop(query.start);
    case QueryKind::kTwoHop:
      return PlanTwoHop(query.start);
    case QueryKind::kShortestPath:
      return PlanShortestPath(query.start, query.target);
  }
  return {};
}

void GraphDatabase::AccumulateAccessCounts(
    const Query& query, std::vector<uint64_t>& counts) const {
  SGP_CHECK(counts.size() == graph_->num_vertices());
  ++counts[query.start];
  auto neighbors = ReadAdjacency(query.start);
  for (VertexId v : neighbors) ++counts[v];
  if (query.kind == QueryKind::kTwoHop) {
    std::unordered_set<VertexId> frontier;
    for (VertexId v : neighbors) {
      for (VertexId w : ReadAdjacency(v)) {
        if (w != query.start) frontier.insert(w);
      }
    }
    for (VertexId w : frontier) ++counts[w];
  }
  // Shortest-path access patterns depend on the target; the workload-aware
  // experiment (Figure 8) uses neighborhood queries only, as in the paper.
}

}  // namespace sgp
