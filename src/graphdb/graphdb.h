#ifndef SGP_GRAPHDB_GRAPHDB_H_
#define SGP_GRAPHDB_GRAPHDB_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Cost model of the simulated scale-out graph database (the JanusGraph +
/// Cassandra stack of Section 5.2, Appendix C). Defaults approximate an
/// in-memory Cassandra read path and a datacenter network hop.
struct DbCostModel {
  /// Service time of reading one vertex record / adjacency list at the
  /// storage layer.
  double seconds_per_read = 20e-6;

  /// One-way network latency between any two machines (and from the client
  /// to the cluster).
  double network_latency_seconds = 150e-6;

  /// Worker-side CPU overhead of serving one remote sub-request (RPC
  /// dispatch, deserialization, response marshalling). This is what makes
  /// a lower edge-cut ratio buy throughput and not just latency: every
  /// extra partition touched by a query costs the cluster real work.
  double seconds_per_remote_task = 120e-6;

  /// Coefficient of variation of per-task service time (lognormal with
  /// mean 1). Storage reads are not deterministic in practice; the
  /// variability is what makes high fan-out queries wait for stragglers.
  /// 0 disables the noise.
  double service_time_cv = 0.7;

  /// Request-message overhead in bytes.
  uint32_t bytes_per_request = 64;

  /// Size of one vertex record on the wire.
  uint32_t bytes_per_vertex_record = 128;
};

/// Query-routing policy of the cluster front end (Appendix C).
enum class RouterMode {
  /// Queries are forwarded to the worker owning the start vertex, so the
  /// first adjacency read is local — what the paper implemented in
  /// JanusGraph ("partitioning-aware query router").
  kPartitionAware,
  /// Oblivious front end: a deterministic pseudo-random worker
  /// coordinates, paying an extra remote round for the start vertex.
  kRandom,
};

/// Online query kinds (Section 5.2.3).
enum class QueryKind {
  kOneHop,        // retrieve all adjacent vertices of a start vertex
  kTwoHop,        // retrieve the 2-hop neighborhood
  kShortestPath,  // single-pair shortest path (BFS)
};

/// Human-readable name of `kind`.
std::string_view QueryKindName(QueryKind kind);

/// One query instance.
struct Query {
  QueryKind kind = QueryKind::kOneHop;
  VertexId start = 0;
  VertexId target = 0;  // only for kShortestPath
};

/// Execution plan of one query against the partitioned store: a sequence
/// of fork-join rounds, each a set of per-worker read batches. The
/// discrete-event simulator replays plans against FIFO worker queues; the
/// static fields (reads, messages, bytes) drive the communication figures.
struct QueryPlan {
  PartitionId coordinator = 0;

  /// False when some required vertex has no live replica under the down
  /// mask the plan was built with — the query cannot be served until a
  /// worker recovers. Always true on a healthy cluster.
  bool reachable = true;

  struct Task {
    PartitionId worker = 0;
    uint64_t reads = 0;

    /// Reads served by a worker other than the vertex's master owner
    /// (replica failover under a down mask); 0 on a healthy cluster.
    uint64_t degraded_reads = 0;

    /// The vertices this task reads, in grouping order — populated only
    /// when the plan was built with record_vertices (the live resharder
    /// redirects reads of moved vertices, so it needs per-vertex targets).
    std::vector<VertexId> vertices;
  };
  /// Rounds execute sequentially; tasks within a round run in parallel on
  /// their workers. Tasks on a worker other than the coordinator cost a
  /// request/response network round trip.
  std::vector<std::vector<Task>> rounds;

  uint64_t total_reads = 0;
  uint64_t remote_messages = 0;  // requests + responses
  uint64_t network_bytes = 0;

  /// Query answer size (e.g. number of neighbors, or path length), used by
  /// correctness tests: must not depend on the partitioning.
  uint64_t result_size = 0;
};

/// Simulated scale-out graph database: an edge-cut partitioned
/// adjacency-list store (each worker holds the adjacency of its master
/// vertices) plus a partitioning-aware query router, mirroring the
/// JanusGraph deployment of Appendix C.
class GraphDatabase {
 public:
  GraphDatabase(const Graph& graph, const Partitioning& partitioning,
                DbCostModel cost_model = {},
                RouterMode router = RouterMode::kPartitionAware);

  const Graph& graph() const { return *graph_; }
  PartitionId k() const { return k_; }
  const DbCostModel& cost_model() const { return cost_; }

  /// Worker storing (the adjacency of) vertex `u`.
  PartitionId Owner(VertexId u) const { return owner_[u]; }

  /// Workers holding a physical copy of `u`'s data: only the owner for
  /// edge-cut placements (the adjacency store is not replicated), every
  /// replica of A(u) for vertex-cut / hybrid placements — replication is
  /// exactly what those cut models buy as a fault-tolerance asset.
  std::span<const PartitionId> DataReplicas(VertexId u) const;

  /// The partitioning physically replicates vertex data (vertex-cut or
  /// hybrid cut model).
  bool replicated() const { return !data_replicas_.offsets.empty(); }

  /// Worker serving `u` under the per-worker `down` mask (size k, or
  /// empty = all up): the owner when alive, else the lowest-id live data
  /// replica, else kInvalidPartition (data unavailable).
  PartitionId EffectiveOwner(VertexId u, const std::vector<char>& down) const;

  /// Worker that coordinates a query starting at `u` under the configured
  /// router mode.
  PartitionId Coordinator(VertexId u) const;

  /// Coordinator under a down mask: the effective owner for the
  /// partition-aware router; the first live worker in hash-probe order for
  /// the random router. kInvalidPartition if nothing can coordinate.
  PartitionId Coordinator(VertexId u, const std::vector<char>& down) const;

  /// Adjacency of `u` read from its owner's local store (not from the
  /// input graph) — exercised by tests to validate the store itself.
  std::span<const VertexId> ReadAdjacency(VertexId u) const;

  /// Builds the execution plan of `query`.
  QueryPlan Plan(const Query& query) const;

  /// Builds the plan of `query` with the workers flagged in `down` (size
  /// k; empty = healthy) excluded from routing: every read goes to its
  /// effective owner, reads re-routed to replicas are marked degraded, and
  /// the plan is flagged unreachable when some required vertex has no live
  /// copy. With an empty mask this is identical to Plan(query).
  QueryPlan Plan(const Query& query, const std::vector<char>& down) const;

  /// Plan variant that additionally records, per task, which vertices it
  /// reads (QueryPlan::Task::vertices) so a consumer can re-resolve reads
  /// against ownership that changed after planning — the event
  /// simulator's live-resharding mode. With record_vertices == false this
  /// is identical to Plan(query, down).
  QueryPlan Plan(const Query& query, const std::vector<char>& down,
                 bool record_vertices) const;

  /// Per-vertex read counts of `query` (start, neighbors, …), used to
  /// build the workload-aware weighted graph of Figure 8. Accumulates
  /// into `counts` (size num_vertices).
  void AccumulateAccessCounts(const Query& query,
                              std::vector<uint64_t>& counts) const;

 private:
  // Per-worker adjacency store (vertex -> local copy of its neighbors).
  struct WorkerStore {
    std::vector<uint64_t> offsets;  // indexed by local vertex slot
    std::vector<VertexId> adjacency;
  };

  QueryPlan PlanOneHop(VertexId start, const std::vector<char>& down,
                       bool record_vertices) const;
  QueryPlan PlanTwoHop(VertexId start, const std::vector<char>& down,
                       bool record_vertices) const;
  QueryPlan PlanShortestPath(VertexId start, VertexId target,
                             const std::vector<char>& down,
                             bool record_vertices) const;

  // Groups one read per vertex by effective owner under `down`. Returns
  // false when some vertex has no live replica.
  bool GroupByEffectiveOwner(std::span<const VertexId> vertices,
                             const std::vector<char>& down,
                             bool record_vertices,
                             std::vector<QueryPlan::Task>* out) const;

  // Appends a fetch round and charges messages/bytes for the remote tasks.
  void AddFetchRound(std::vector<QueryPlan::Task> round,
                     QueryPlan* plan) const;

  const Graph* graph_;
  PartitionId k_;
  DbCostModel cost_;
  RouterMode router_ = RouterMode::kPartitionAware;
  std::vector<PartitionId> owner_;
  std::vector<uint32_t> local_slot_;  // vertex -> slot in its worker store
  std::vector<WorkerStore> stores_;
  // Sorted replica sets A(u) for vertex-cut / hybrid placements; empty
  // offsets for edge-cut (no physical replication).
  ReplicaSets data_replicas_;
};

}  // namespace sgp

#endif  // SGP_GRAPHDB_GRAPHDB_H_
