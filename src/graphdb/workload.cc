#include "graphdb/workload.h"

#include <cmath>

#include "common/check.h"

namespace sgp {

Workload::Workload(const Graph& graph, const WorkloadConfig& config)
    : config_(config), zipf_(config.num_bindings, config.skew) {
  SGP_CHECK(config.num_bindings > 0);
  SGP_CHECK(graph.num_vertices() > 0);
  Rng rng(config.seed);
  bindings_.reserve(config.num_bindings);
  const VertexId n = graph.num_vertices();
  double mix_total = 0;
  for (const WorkloadMixEntry& entry : config.mix) {
    SGP_CHECK(entry.weight > 0);
    mix_total += entry.weight;
  }
  auto draw_kind = [&]() {
    if (config_.mix.empty()) return config_.kind;
    double pick = rng.UniformReal() * mix_total;
    for (const WorkloadMixEntry& entry : config_.mix) {
      pick -= entry.weight;
      if (pick <= 0) return entry.kind;
    }
    return config_.mix.back().kind;
  };
  while (bindings_.size() < config.num_bindings) {
    VertexId start = static_cast<VertexId>(rng.UniformInt(n));
    // Queries against isolated vertices answer trivially; the paper's
    // bindings come from real traversals, so require a non-empty
    // neighborhood (give up after a bounded number of retries for
    // pathological graphs).
    for (int attempt = 0; attempt < 64 && graph.Degree(start) == 0;
         ++attempt) {
      start = static_cast<VertexId>(rng.UniformInt(n));
    }
    Query q;
    q.kind = draw_kind();
    q.start = start;
    if (q.kind == QueryKind::kShortestPath) {
      q.target = static_cast<VertexId>(rng.UniformInt(n));
    }
    bindings_.push_back(q);
  }
}

uint32_t Workload::SampleBindingIndex(Rng& rng) const {
  return static_cast<uint32_t>(zipf_.Sample(rng));
}

std::vector<double> Workload::ExpectedFrequencies(
    uint64_t total_queries) const {
  const uint32_t b = config_.num_bindings;
  std::vector<double> pmf(b);
  double norm = 0;
  for (uint32_t i = 0; i < b; ++i) {
    pmf[i] = std::pow(static_cast<double>(i) + 1.0, -config_.skew);
    norm += pmf[i];
  }
  for (uint32_t i = 0; i < b; ++i) {
    pmf[i] = pmf[i] / norm * static_cast<double>(total_queries);
  }
  return pmf;
}

std::vector<uint64_t> Workload::AccessWeights(const GraphDatabase& db,
                                              uint64_t total_queries) const {
  std::vector<double> freq = ExpectedFrequencies(total_queries);
  std::vector<uint64_t> per_query(db.graph().num_vertices());
  std::vector<double> weights(db.graph().num_vertices(), 0.0);
  for (uint32_t i = 0; i < bindings_.size(); ++i) {
    std::fill(per_query.begin(), per_query.end(), 0);
    db.AccumulateAccessCounts(bindings_[i], per_query);
    for (VertexId v = 0; v < per_query.size(); ++v) {
      if (per_query[v] > 0) {
        weights[v] += freq[i] * static_cast<double>(per_query[v]);
      }
    }
  }
  std::vector<uint64_t> out(weights.size());
  for (size_t v = 0; v < weights.size(); ++v) {
    out[v] = static_cast<uint64_t>(std::llround(weights[v]));
  }
  return out;
}

}  // namespace sgp
