#ifndef SGP_GRAPHDB_WORKLOAD_H_
#define SGP_GRAPHDB_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "graphdb/graphdb.h"

namespace sgp {

/// One component of a mixed workload.
struct WorkloadMixEntry {
  QueryKind kind = QueryKind::kOneHop;
  double weight = 1.0;
};

/// Online-workload configuration (Section 5.2.3): a fixed set of query
/// bindings (the paper generates 1000 per query type), drawn by clients
/// with a Zipf-skewed popularity — real request streams are skewed, which
/// is what creates the hotspots of Section 6.3.3.
struct WorkloadConfig {
  /// Query kind of every binding when `mix` is empty.
  QueryKind kind = QueryKind::kOneHop;

  /// Optional LinkBench-style kind mix (e.g. 70% 1-hop / 30% 2-hop —
  /// LinkBench is >50% one-hop, Section 5.2.3); when non-empty, each
  /// binding draws its kind with probability proportional to weight.
  std::vector<WorkloadMixEntry> mix;

  uint32_t num_bindings = 1000;

  /// Zipf exponent of binding popularity; 0 = uniform (no workload skew).
  double skew = 0.8;

  uint64_t seed = 7;
};

/// A reusable set of query bindings plus the popularity distribution over
/// them.
class Workload {
 public:
  Workload(const Graph& graph, const WorkloadConfig& config);

  const WorkloadConfig& config() const { return config_; }
  const std::vector<Query>& bindings() const { return bindings_; }

  /// Index of the next binding to execute, Zipf-distributed. Bindings are
  /// ordered hottest-first.
  uint32_t SampleBindingIndex(Rng& rng) const;

  /// Expected number of executions of each binding over `total_queries`
  /// draws (deterministic, from the Zipf pmf).
  std::vector<double> ExpectedFrequencies(uint64_t total_queries) const;

  /// Expected per-vertex access counts of this workload over
  /// `total_queries` draws — the weighted graph input of the
  /// workload-aware partitioning experiment (Figure 8).
  std::vector<uint64_t> AccessWeights(const GraphDatabase& db,
                                      uint64_t total_queries) const;

 private:
  WorkloadConfig config_;
  std::vector<Query> bindings_;
  mutable ZipfSampler zipf_;
};

}  // namespace sgp

#endif  // SGP_GRAPHDB_WORKLOAD_H_
