#include "graphdb/workload_aware.h"

#include "partition/offline/multilevel.h"

namespace sgp {

Partitioning WorkloadAwarePartition(const Graph& graph,
                                    const GraphDatabase& db,
                                    const Workload& workload, PartitionId k,
                                    uint64_t total_queries, uint64_t seed) {
  MultilevelOptions options;
  options.k = k;
  options.seed = seed;
  options.vertex_weights = workload.AccessWeights(db, total_queries);
  return MultilevelPartition(graph, options);
}

}  // namespace sgp
