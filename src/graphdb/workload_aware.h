#ifndef SGP_GRAPHDB_WORKLOAD_AWARE_H_
#define SGP_GRAPHDB_WORKLOAD_AWARE_H_

#include "graphdb/graphdb.h"
#include "graphdb/workload.h"
#include "partition/partitioning.h"

namespace sgp {

/// Workload-aware re-partitioning (Section 6.3.3): records the expected
/// per-vertex access counts of `workload` (observed through `db`, the
/// currently deployed partitioning), uses them as vertex weights of the
/// offline multilevel partitioner, and returns a partitioning whose
/// *access load* — not vertex count — is balanced across workers. This is
/// the paper's "MTS-W" configuration of Figure 8.
Partitioning WorkloadAwarePartition(const Graph& graph,
                                    const GraphDatabase& db,
                                    const Workload& workload, PartitionId k,
                                    uint64_t total_queries, uint64_t seed);

}  // namespace sgp

#endif  // SGP_GRAPHDB_WORKLOAD_AWARE_H_
