#include "partition/dynamic/dynamic_partitioner.h"

#include <algorithm>

#include "common/check.h"
#include "common/hashing.h"

namespace sgp {

namespace {

// The shared state core is configured from PartitionConfig; project the
// dynamic options onto one (homogeneous cluster, loads only).
PartitionConfig StateConfig(const DynamicOptions& options) {
  PartitionConfig config;
  config.k = options.k;
  config.balance_slack = options.balance_slack;
  config.seed = options.seed;
  return config;
}

}  // namespace

DynamicPartitioner::DynamicPartitioner(const DynamicOptions& options)
    : options_(options), state_(StateConfig(options)),
      disabled_(options.k, 0), alive_k_(options.k) {
  SGP_CHECK(options.k > 0);
  SGP_CHECK(options.balance_slack >= 1.0);
  SGP_CHECK(options.migration_gain >= 1.0);
}

void DynamicPartitioner::Bootstrap(const Graph& graph,
                                   const Partitioning& partitioning) {
  SGP_CHECK(partitioning.k == options_.k);
  SGP_CHECK(partitioning.vertex_to_partition.size() == graph.num_vertices());
  EnsureVertex(graph.num_vertices() == 0 ? 0 : graph.num_vertices() - 1);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    assignment_[v] = partitioning.vertex_to_partition[v];
    state_.AddLoad(assignment_[v]);
    ++placed_vertices_;
  }
  for (const Edge& e : graph.edges()) {
    adjacency_[e.src].push_back(e.dst);
    adjacency_[e.dst].push_back(e.src);
    NoteNeighbor(e.src, assignment_[e.dst]);
    NoteNeighbor(e.dst, assignment_[e.src]);
  }
}

void DynamicPartitioner::EnsureVertex(VertexId v) {
  if (v < assignment_.size()) return;
  assignment_.resize(static_cast<size_t>(v) + 1, kInvalidPartition);
  neighbor_counts_.resize(static_cast<size_t>(v) + 1);
  adjacency_.resize(static_cast<size_t>(v) + 1);
}

double DynamicPartitioner::Capacity(PartitionId) const {
  return std::max(1.0, options_.balance_slack *
                           static_cast<double>(placed_vertices_) /
                           static_cast<double>(alive_k_));
}

PartitionId DynamicPartitioner::LeastLoadedAlive() const {
  PartitionId best = kInvalidPartition;
  for (PartitionId p = 0; p < options_.k; ++p) {
    if (disabled_[p]) continue;
    if (best == kInvalidPartition || state_.load(p) < state_.load(best)) {
      best = p;
    }
  }
  SGP_CHECK(best != kInvalidPartition);
  return best;
}

void DynamicPartitioner::NoteNeighbor(VertexId v, PartitionId p) {
  auto& vec = neighbor_counts_[v];
  auto it = std::find_if(vec.begin(), vec.end(),
                         [p](const auto& pr) { return pr.first == p; });
  if (it == vec.end()) {
    vec.emplace_back(p, 1u);
  } else {
    ++it->second;
  }
}

void DynamicPartitioner::ForgetNeighbor(VertexId v, PartitionId p) {
  auto& vec = neighbor_counts_[v];
  auto it = std::find_if(vec.begin(), vec.end(),
                         [p](const auto& pr) { return pr.first == p; });
  if (it == vec.end()) return;
  if (--it->second == 0) {
    *it = vec.back();
    vec.pop_back();
  }
}

PartitionId DynamicPartitioner::PlaceNew(VertexId v) {
  // LDG-style: most already-present neighbors, discounted by fill level;
  // a vertex with no placed neighbors is hashed.
  PartitionId best = kInvalidPartition;
  double best_score = 0;
  for (const auto& [p, count] : neighbor_counts_[v]) {
    if (disabled_[p]) continue;
    double size = static_cast<double>(state_.load(p));
    double cap = Capacity(p);
    if (size + 1.0 > cap) continue;
    double score = static_cast<double>(count) * (1.0 - size / cap);
    if (best == kInvalidPartition || score > best_score) {
      best_score = score;
      best = p;
    }
  }
  if (best == kInvalidPartition) {
    best = static_cast<PartitionId>(
        HashU64Seeded(v, options_.seed) % options_.k);
    // Respect capacity (and dead partitions) even for hashed placements.
    if (disabled_[best] ||
        static_cast<double>(state_.load(best)) + 1.0 > Capacity(best)) {
      best = LeastLoadedAlive();
    }
  }
  assignment_[v] = best;
  state_.AddLoad(best);
  ++placed_vertices_;
  return best;
}

uint64_t DynamicPartitioner::MoveVertex(VertexId v, PartitionId to) {
  const PartitionId from = assignment_[v];
  state_.RemoveLoad(from);
  state_.AddLoad(to);
  assignment_[v] = to;
  for (VertexId w : adjacency_[v]) {
    ForgetNeighbor(w, from);
    NoteNeighbor(w, to);
  }
  const uint64_t bytes =
      options_.migration_cost.bytes_per_vertex_record +
      adjacency_[v].size() *
          static_cast<uint64_t>(options_.migration_cost.bytes_per_adjacency_entry);
  ++total_migrations_;
  total_migration_bytes_ += bytes;
  return bytes;
}

bool DynamicPartitioner::MaybeMigrate(VertexId v) {
  const PartitionId cur = assignment_[v];
  uint32_t cur_count = 0;
  PartitionId best = cur;
  uint32_t best_count = 0;
  for (const auto& [p, count] : neighbor_counts_[v]) {
    if (p == cur) cur_count = count;
    if (disabled_[p]) continue;
    if (count > best_count) {
      best_count = count;
      best = p;
    }
  }
  if (best == cur) return false;
  if (static_cast<double>(best_count) <
      options_.migration_gain * static_cast<double>(cur_count) + 1.0) {
    return false;
  }
  if (static_cast<double>(state_.load(best)) + 1.0 > Capacity(best)) {
    return false;
  }

  MoveVertex(v, best);
  return true;
}

uint32_t DynamicPartitioner::AddEdge(VertexId u, VertexId v) {
  SGP_CHECK(u != v);
  EnsureVertex(std::max(u, v));
  bool noted_u = false;
  bool noted_v = false;
  if (assignment_[u] == kInvalidPartition &&
      assignment_[v] == kInvalidPartition) {
    PlaceNew(u);  // no signal yet: hashed placement
  }
  if (assignment_[u] == kInvalidPartition) {
    // Seed the synopsis with the placed endpoint before deciding.
    NoteNeighbor(u, assignment_[v]);
    noted_u = true;
    PlaceNew(u);
  } else if (assignment_[v] == kInvalidPartition) {
    NoteNeighbor(v, assignment_[u]);
    noted_v = true;
    PlaceNew(v);
  }
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  if (!noted_u) NoteNeighbor(u, assignment_[v]);
  if (!noted_v) NoteNeighbor(v, assignment_[u]);
  uint32_t migrations = 0;
  migrations += MaybeMigrate(u) ? 1 : 0;
  migrations += MaybeMigrate(v) ? 1 : 0;
  return migrations;
}

const char* ReshapeStatusName(ReshapeStatus status) {
  switch (status) {
    case ReshapeStatus::kOk:
      return "ok";
    case ReshapeStatus::kInvalidPartition:
      return "invalid-partition";
    case ReshapeStatus::kAlreadyDisabled:
      return "already-disabled";
    case ReshapeStatus::kLastAlive:
      return "last-alive";
  }
  return "unknown";
}

DrainReport DynamicPartitioner::DrainPartition(PartitionId dead) {
  DrainReport report;
  if (dead >= options_.k) {
    report.status = ReshapeStatus::kInvalidPartition;
    return report;
  }
  if (disabled_[dead]) {
    report.status = ReshapeStatus::kAlreadyDisabled;
    return report;
  }
  if (alive_k_ <= 1) {
    report.status = ReshapeStatus::kLastAlive;
    return report;
  }
  disabled_[dead] = 1;
  --alive_k_;
  for (VertexId v = 0; v < assignment_.size(); ++v) {
    if (assignment_[v] != dead) continue;
    // Same placement rule as PlaceNew, restricted to survivors: most
    // neighbors, discounted by fill, least-loaded when nothing fits.
    PartitionId best = kInvalidPartition;
    double best_score = 0;
    for (const auto& [p, count] : neighbor_counts_[v]) {
      if (disabled_[p]) continue;
      double size = static_cast<double>(state_.load(p));
      double cap = Capacity(p);
      if (size + 1.0 > cap) continue;
      double score = static_cast<double>(count) * (1.0 - size / cap);
      if (best == kInvalidPartition || score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best == kInvalidPartition) best = LeastLoadedAlive();
    report.migration_bytes += MoveVertex(v, best);
    ++report.moved_vertices;
  }
  SGP_CHECK(state_.load(dead) == 0);
  return report;
}

PartitionId DynamicPartitioner::AddPartition() {
  const PartitionId fresh = state_.AddPartition();
  SGP_CHECK(fresh == options_.k);
  ++options_.k;
  disabled_.push_back(0);
  ++alive_k_;
  return fresh;
}

SplitReport DynamicPartitioner::SplitPartition(PartitionId p) {
  SplitReport report;
  if (p >= options_.k) {
    report.status = ReshapeStatus::kInvalidPartition;
    return report;
  }
  if (disabled_[p]) {
    report.status = ReshapeStatus::kAlreadyDisabled;
    return report;
  }
  std::vector<VertexId> members;
  for (VertexId v = 0; v < assignment_.size(); ++v) {
    if (assignment_[v] == p) members.push_back(v);
  }
  const PartitionId fresh = AddPartition();
  report.new_partition = fresh;
  const uint64_t target = members.size() / 2;
  if (target == 0) return report;  // nothing to halve; fresh slot stays empty

  // Locality-preserving halving: grow BFS regions inside p's induced
  // subgraph, seeded at the best-connected resident, until half of p has
  // moved. Disconnected leftovers seed new regions in id order, so the
  // result is deterministic regardless of insertion history.
  std::vector<char> moved_flag(assignment_.size(), 0);
  std::vector<VertexId> queue;
  queue.reserve(target);
  size_t head = 0;
  VertexId seed = members.front();
  size_t seed_degree = adjacency_[seed].size();
  for (VertexId v : members) {
    if (adjacency_[v].size() > seed_degree) {
      seed = v;
      seed_degree = adjacency_[v].size();
    }
  }
  size_t next_member = 0;  // fallback scan cursor for disconnected parts
  queue.push_back(seed);
  moved_flag[seed] = 1;
  while (report.moved_vertices < target) {
    if (head == queue.size()) {
      while (next_member < members.size() &&
             (moved_flag[members[next_member]] != 0)) {
        ++next_member;
      }
      if (next_member == members.size()) break;
      moved_flag[members[next_member]] = 1;
      queue.push_back(members[next_member]);
    }
    const VertexId v = queue[head++];
    report.migration_bytes += MoveVertex(v, fresh);
    ++report.moved_vertices;
    for (VertexId w : adjacency_[v]) {
      if (w >= moved_flag.size() || moved_flag[w] || assignment_[w] != p) {
        continue;
      }
      moved_flag[w] = 1;
      queue.push_back(w);
    }
  }
  return report;
}

uint64_t DynamicPartitioner::SynopsisBytes() const {
  uint64_t synopsis_entries = 0;
  for (const auto& counts : neighbor_counts_) {
    synopsis_entries += counts.size();
  }
  uint64_t adjacency_entries = 0;
  for (const auto& adj : adjacency_) adjacency_entries += adj.size();
  return state_.SynopsisBytes() +
         assignment_.size() * sizeof(PartitionId) +
         synopsis_entries * (sizeof(PartitionId) + sizeof(uint32_t)) +
         adjacency_entries * sizeof(VertexId);
}

PartitionId DynamicPartitioner::PartitionOf(VertexId v) const {
  if (v >= assignment_.size()) return kInvalidPartition;
  return assignment_[v];
}

Partitioning DynamicPartitioner::Snapshot(const Graph& graph) const {
  SGP_CHECK(graph.num_vertices() >= assignment_.size());
  Partitioning p;
  p.model = CutModel::kEdgeCut;
  p.k = options_.k;
  p.vertex_to_partition.assign(graph.num_vertices(), kInvalidPartition);
  for (VertexId v = 0; v < assignment_.size(); ++v) {
    p.vertex_to_partition[v] = assignment_[v];
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (p.vertex_to_partition[v] == kInvalidPartition) {
      p.vertex_to_partition[v] = static_cast<PartitionId>(
          HashU64Seeded(v, options_.seed) % options_.k);
    }
  }
  p.state_bytes = SynopsisBytes();
  DeriveEdgePlacement(graph, &p);
  return p;
}

FailoverRepair RepairAfterWorkerLoss(const Graph& graph,
                                     const Partitioning& p, PartitionId dead,
                                     const DynamicOptions& options,
                                     const MigrationCostModel& cost) {
  SGP_CHECK(p.k > 1);
  SGP_CHECK(dead < p.k);
  SGP_CHECK(p.vertex_to_partition.size() == graph.num_vertices());
  SGP_CHECK(p.edge_to_partition.size() == graph.num_edges());
  const ReplicaSets old_replicas = ComputeReplicaSets(graph, p);

  FailoverRepair repair;
  if (p.model == CutModel::kEdgeCut) {
    // No surviving copies of the dead worker's vertices: re-place them via
    // the dynamic partitioner's neighbor-majority migration.
    DynamicOptions opts = options;
    opts.k = p.k;
    opts.migration_cost = cost;
    DynamicPartitioner dp(opts);
    dp.Bootstrap(graph, p);
    const DrainReport drain = dp.DrainPartition(dead);
    SGP_CHECK(drain.ok());
    repair.partitioning = dp.Snapshot(graph);
    repair.partitioning.model = p.model;
    repair.migration_bytes = drain.migration_bytes;
  } else {
    // Vertex-cut / hybrid: every orphaned master usually has surviving
    // replicas — promote the one holding the most still-live incident
    // edges; its edges on the dead worker follow the source's new master.
    Partitioning q = p;
    std::vector<uint32_t> orphan_index(graph.num_vertices(), UINT32_MAX);
    std::vector<VertexId> orphans;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (p.vertex_to_partition[v] == dead) {
        orphan_index[v] = static_cast<uint32_t>(orphans.size());
        orphans.push_back(v);
      }
    }
    // Live incident-edge counts per candidate partition, orphans only.
    std::vector<std::vector<std::pair<PartitionId, uint32_t>>> live_counts(
        orphans.size());
    auto bump = [&](VertexId v, PartitionId part) {
      if (orphan_index[v] == UINT32_MAX) return;
      auto& vec = live_counts[orphan_index[v]];
      auto it = std::find_if(vec.begin(), vec.end(),
                             [part](const auto& pr) {
                               return pr.first == part;
                             });
      if (it == vec.end()) {
        vec.emplace_back(part, 1u);
      } else {
        ++it->second;
      }
    };
    const auto& edges = graph.edges();
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const PartitionId pe = p.edge_to_partition[e];
      if (pe == dead) continue;
      bump(edges[e].src, pe);
      bump(edges[e].dst, pe);
    }
    // Running master loads so replica-less orphans spread evenly.
    std::vector<uint64_t> master_loads(p.k, 0);
    for (PartitionId part : p.vertex_to_partition) ++master_loads[part];
    auto least_loaded_alive = [&]() {
      PartitionId best = kInvalidPartition;
      for (PartitionId part = 0; part < p.k; ++part) {
        if (part == dead) continue;
        if (best == kInvalidPartition ||
            master_loads[part] < master_loads[best]) {
          best = part;
        }
      }
      SGP_CHECK(best != kInvalidPartition);
      return best;
    };
    for (uint32_t i = 0; i < orphans.size(); ++i) {
      const VertexId v = orphans[i];
      PartitionId best = kInvalidPartition;
      uint32_t best_count = 0;
      // Of(v) is sorted, so ties resolve toward the lower partition id.
      for (PartitionId cand : old_replicas.Of(v)) {
        if (cand == dead) continue;
        uint32_t count = 0;
        for (const auto& [part, c] : live_counts[i]) {
          if (part == cand) count = c;
        }
        if (best == kInvalidPartition || count > best_count) {
          best = cand;
          best_count = count;
        }
      }
      if (best == kInvalidPartition) best = least_loaded_alive();
      --master_loads[dead];
      ++master_loads[best];
      q.vertex_to_partition[v] = best;
    }
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (q.edge_to_partition[e] == dead) {
        q.edge_to_partition[e] = q.vertex_to_partition[edges[e].src];
      }
    }
    repair.partitioning = std::move(q);
  }

  // Migration volume: diff the repaired placement against the original.
  const Partitioning& q = repair.partitioning;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (q.vertex_to_partition[v] == p.vertex_to_partition[v]) continue;
    ++repair.moved_masters;
    bool had_replica = false;
    for (PartitionId part : old_replicas.Of(v)) {
      if (part == q.vertex_to_partition[v]) had_replica = true;
    }
    if (!had_replica) ++repair.copied_vertices;
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (q.edge_to_partition[e] != p.edge_to_partition[e]) {
      ++repair.moved_edges;
    }
  }
  if (p.model == CutModel::kEdgeCut) {
    // Unified MigrationCostModel definition, already accumulated move by
    // move inside DrainPartition: every moved master ships its record plus
    // its adjacency. No surviving copies exist on edge-cut, so copied ==
    // moved.
    repair.copied_vertices = repair.moved_masters;
  } else {
    repair.migration_bytes =
        repair.copied_vertices * cost.bytes_per_vertex_record +
        repair.moved_edges * cost.bytes_per_adjacency_entry;
  }
  return repair;
}

}  // namespace sgp
