#include "partition/dynamic/dynamic_partitioner.h"

#include <algorithm>

#include "common/check.h"
#include "common/hashing.h"

namespace sgp {

DynamicPartitioner::DynamicPartitioner(const DynamicOptions& options)
    : options_(options), sizes_(options.k, 0) {
  SGP_CHECK(options.k > 0);
  SGP_CHECK(options.balance_slack >= 1.0);
  SGP_CHECK(options.migration_gain >= 1.0);
}

void DynamicPartitioner::Bootstrap(const Graph& graph,
                                   const Partitioning& partitioning) {
  SGP_CHECK(partitioning.k == options_.k);
  SGP_CHECK(partitioning.vertex_to_partition.size() == graph.num_vertices());
  EnsureVertex(graph.num_vertices() == 0 ? 0 : graph.num_vertices() - 1);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    assignment_[v] = partitioning.vertex_to_partition[v];
    ++sizes_[assignment_[v]];
    ++placed_vertices_;
  }
  for (const Edge& e : graph.edges()) {
    adjacency_[e.src].push_back(e.dst);
    adjacency_[e.dst].push_back(e.src);
    NoteNeighbor(e.src, assignment_[e.dst]);
    NoteNeighbor(e.dst, assignment_[e.src]);
  }
}

void DynamicPartitioner::EnsureVertex(VertexId v) {
  if (v < assignment_.size()) return;
  assignment_.resize(static_cast<size_t>(v) + 1, kInvalidPartition);
  neighbor_counts_.resize(static_cast<size_t>(v) + 1);
  adjacency_.resize(static_cast<size_t>(v) + 1);
}

double DynamicPartitioner::Capacity(PartitionId) const {
  return std::max(1.0, options_.balance_slack *
                           static_cast<double>(placed_vertices_) /
                           static_cast<double>(options_.k));
}

void DynamicPartitioner::NoteNeighbor(VertexId v, PartitionId p) {
  auto& vec = neighbor_counts_[v];
  auto it = std::find_if(vec.begin(), vec.end(),
                         [p](const auto& pr) { return pr.first == p; });
  if (it == vec.end()) {
    vec.emplace_back(p, 1u);
  } else {
    ++it->second;
  }
}

void DynamicPartitioner::ForgetNeighbor(VertexId v, PartitionId p) {
  auto& vec = neighbor_counts_[v];
  auto it = std::find_if(vec.begin(), vec.end(),
                         [p](const auto& pr) { return pr.first == p; });
  if (it == vec.end()) return;
  if (--it->second == 0) {
    *it = vec.back();
    vec.pop_back();
  }
}

PartitionId DynamicPartitioner::PlaceNew(VertexId v) {
  // LDG-style: most already-present neighbors, discounted by fill level;
  // a vertex with no placed neighbors is hashed.
  PartitionId best = kInvalidPartition;
  double best_score = 0;
  for (const auto& [p, count] : neighbor_counts_[v]) {
    double size = static_cast<double>(sizes_[p]);
    double cap = Capacity(p);
    if (size + 1.0 > cap) continue;
    double score = static_cast<double>(count) * (1.0 - size / cap);
    if (best == kInvalidPartition || score > best_score) {
      best_score = score;
      best = p;
    }
  }
  if (best == kInvalidPartition) {
    best = static_cast<PartitionId>(
        HashU64Seeded(v, options_.seed) % options_.k);
    // Respect capacity even for hashed placements.
    if (static_cast<double>(sizes_[best]) + 1.0 > Capacity(best)) {
      best = static_cast<PartitionId>(
          std::min_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
    }
  }
  assignment_[v] = best;
  ++sizes_[best];
  ++placed_vertices_;
  return best;
}

bool DynamicPartitioner::MaybeMigrate(VertexId v) {
  const PartitionId cur = assignment_[v];
  uint32_t cur_count = 0;
  PartitionId best = cur;
  uint32_t best_count = 0;
  for (const auto& [p, count] : neighbor_counts_[v]) {
    if (p == cur) cur_count = count;
    if (count > best_count) {
      best_count = count;
      best = p;
    }
  }
  if (best == cur) return false;
  if (static_cast<double>(best_count) <
      options_.migration_gain * static_cast<double>(cur_count) + 1.0) {
    return false;
  }
  if (static_cast<double>(sizes_[best]) + 1.0 > Capacity(best)) return false;

  // Move v and fix every neighbor's synopsis.
  --sizes_[cur];
  ++sizes_[best];
  assignment_[v] = best;
  for (VertexId w : adjacency_[v]) {
    ForgetNeighbor(w, cur);
    NoteNeighbor(w, best);
  }
  ++total_migrations_;
  return true;
}

uint32_t DynamicPartitioner::AddEdge(VertexId u, VertexId v) {
  SGP_CHECK(u != v);
  EnsureVertex(std::max(u, v));
  bool noted_u = false;
  bool noted_v = false;
  if (assignment_[u] == kInvalidPartition &&
      assignment_[v] == kInvalidPartition) {
    PlaceNew(u);  // no signal yet: hashed placement
  }
  if (assignment_[u] == kInvalidPartition) {
    // Seed the synopsis with the placed endpoint before deciding.
    NoteNeighbor(u, assignment_[v]);
    noted_u = true;
    PlaceNew(u);
  } else if (assignment_[v] == kInvalidPartition) {
    NoteNeighbor(v, assignment_[u]);
    noted_v = true;
    PlaceNew(v);
  }
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  if (!noted_u) NoteNeighbor(u, assignment_[v]);
  if (!noted_v) NoteNeighbor(v, assignment_[u]);
  uint32_t migrations = 0;
  migrations += MaybeMigrate(u) ? 1 : 0;
  migrations += MaybeMigrate(v) ? 1 : 0;
  return migrations;
}

PartitionId DynamicPartitioner::PartitionOf(VertexId v) const {
  if (v >= assignment_.size()) return kInvalidPartition;
  return assignment_[v];
}

Partitioning DynamicPartitioner::Snapshot(const Graph& graph) const {
  SGP_CHECK(graph.num_vertices() >= assignment_.size());
  Partitioning p;
  p.model = CutModel::kEdgeCut;
  p.k = options_.k;
  p.vertex_to_partition.assign(graph.num_vertices(), kInvalidPartition);
  for (VertexId v = 0; v < assignment_.size(); ++v) {
    p.vertex_to_partition[v] = assignment_[v];
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (p.vertex_to_partition[v] == kInvalidPartition) {
      p.vertex_to_partition[v] = static_cast<PartitionId>(
          HashU64Seeded(v, options_.seed) % options_.k);
    }
  }
  DeriveEdgePlacement(graph, &p);
  return p;
}

}  // namespace sgp
