#ifndef SGP_PARTITION_DYNAMIC_DYNAMIC_PARTITIONER_H_
#define SGP_PARTITION_DYNAMIC_DYNAMIC_PARTITIONER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"
#include "partition/state.h"

namespace sgp {

/// Options of the dynamic partitioner.
struct DynamicOptions {
  PartitionId k = 4;

  /// Balance slack β over the *current* vertex count.
  double balance_slack = 1.1;

  /// A placed vertex migrates only when its neighbor-majority partition
  /// scores at least this factor better than its current one (Leopard's
  /// migration criterion; higher = fewer migrations).
  double migration_gain = 1.5;

  /// Hash seed for first-contact placements.
  uint64_t seed = 42;
};

/// Incremental edge-cut partitioning for evolving graphs — the
/// re-partitioning family of Section 2 (Hermes [33], Leopard [23]):
/// instead of re-running a partitioner when the graph changes, each
/// arriving edge updates a per-vertex neighbor-location synopsis, new
/// vertices are placed greedily next to their first neighbors, and a
/// vertex is migrated when enough of its neighborhood has accumulated
/// elsewhere. Bounded state (O(active vertices · replicas)), bounded
/// per-edge work, explicit migration accounting.
class DynamicPartitioner {
 public:
  explicit DynamicPartitioner(const DynamicOptions& options);

  /// Seeds the state from an existing partitioning of `graph` (the
  /// "initial partitioning" Hermes refines). Edges of `graph` populate
  /// the neighbor synopsis; subsequent AddEdge calls evolve it.
  void Bootstrap(const Graph& graph, const Partitioning& partitioning);

  /// Feeds one new undirected edge; grows the vertex space as needed.
  /// Returns the number of migrations it triggered (0, 1 or 2).
  uint32_t AddEdge(VertexId u, VertexId v);

  /// Recovery strategy for a permanent worker failure: marks `dead` as
  /// lost, migrates every vertex it held to its neighbor-majority
  /// surviving partition (least-loaded fallback), and excludes it from
  /// all future placements. Returns the number of vertices moved. At
  /// least one partition must stay alive.
  uint64_t DrainPartition(PartitionId dead);

  /// Partition `p` has been drained by DrainPartition.
  bool IsDisabled(PartitionId p) const { return disabled_[p] != 0; }

  /// Current partition of `v` (kInvalidPartition if never seen).
  PartitionId PartitionOf(VertexId v) const;

  /// Vertices currently tracked (max id seen + 1).
  VertexId num_vertices() const {
    return static_cast<VertexId>(assignment_.size());
  }

  /// Current per-partition vertex counts.
  const std::vector<uint64_t>& partition_sizes() const {
    return state_.loads();
  }

  /// Bytes of working state (loads, assignment, neighbor synopsis,
  /// retained adjacency) — the Snapshot's state_bytes.
  uint64_t SynopsisBytes() const;

  /// Total migrations since construction/bootstrap.
  uint64_t total_migrations() const { return total_migrations_; }

  /// Materializes a Partitioning of `graph` from the current assignment
  /// (graph must contain all fed vertices).
  Partitioning Snapshot(const Graph& graph) const;

 private:
  void EnsureVertex(VertexId v);
  void NoteNeighbor(VertexId v, PartitionId p);
  void ForgetNeighbor(VertexId v, PartitionId p);
  PartitionId PlaceNew(VertexId v);
  bool MaybeMigrate(VertexId v);
  double Capacity(PartitionId p) const;
  PartitionId LeastLoadedAlive() const;

  DynamicOptions options_;
  std::vector<PartitionId> assignment_;
  PartitionState state_;         // per-partition vertex loads
  std::vector<char> disabled_;   // permanently failed partitions
  PartitionId alive_k_;          // partitions still accepting vertices
  // Neighbor-partition counts per vertex (tiny sorted-by-insertion vecs).
  std::vector<std::vector<std::pair<PartitionId, uint32_t>>> neighbor_counts_;
  // Adjacency retained so migrations can update neighbors' synopses.
  std::vector<std::vector<VertexId>> adjacency_;
  uint64_t placed_vertices_ = 0;
  uint64_t total_migrations_ = 0;
};

/// Wire-volume model of post-failure data migration.
struct MigrationCostModel {
  uint32_t bytes_per_vertex_record = 128;
  uint32_t bytes_per_adjacency_entry = 8;
};

/// Outcome of repairing a placement after a permanent worker failure. The
/// repaired partitioning assigns nothing — neither masters nor edges — to
/// the dead worker.
struct FailoverRepair {
  Partitioning partitioning;

  /// Vertices whose master partition changed.
  uint64_t moved_masters = 0;

  /// Edges whose assigned partition changed (their adjacency entries must
  /// be rebuilt at the new location).
  uint64_t moved_edges = 0;

  /// Vertices whose record had to be copied to a partition that held no
  /// replica before the failure. For vertex-cut placements most masters
  /// are promoted from surviving replicas instead — the replication
  /// factor buying cheap recovery.
  uint64_t copied_vertices = 0;

  /// Total migration traffic implied by the two counters above.
  uint64_t migration_bytes = 0;
};

/// Repairs `p` after worker `dead` permanently fails. Edge-cut placements
/// are drained through a DynamicPartitioner (neighbor-majority migration
/// under the balance slack); vertex-cut / hybrid placements promote each
/// orphaned master to its surviving replica with the most local edges and
/// move the dead worker's edges with their source master. Deterministic;
/// migration volume is diffed against the pre-failure placement.
FailoverRepair RepairAfterWorkerLoss(const Graph& graph,
                                     const Partitioning& p, PartitionId dead,
                                     const DynamicOptions& options,
                                     const MigrationCostModel& cost = {});

}  // namespace sgp

#endif  // SGP_PARTITION_DYNAMIC_DYNAMIC_PARTITIONER_H_
