#ifndef SGP_PARTITION_DYNAMIC_DYNAMIC_PARTITIONER_H_
#define SGP_PARTITION_DYNAMIC_DYNAMIC_PARTITIONER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"
#include "partition/state.h"

namespace sgp {

/// Wire-volume model of data migration. One definition shared by every
/// migration path (incremental migrations, DrainPartition, split/merge,
/// RepairAfterWorkerLoss, the live resharder): a migrated vertex ships
/// its record plus one entry per adjacency slot rebuilt at the new
/// location.
struct MigrationCostModel {
  uint32_t bytes_per_vertex_record = 128;
  uint32_t bytes_per_adjacency_entry = 8;
};

/// Options of the dynamic partitioner.
struct DynamicOptions {
  PartitionId k = 4;

  /// Balance slack β over the *current* vertex count.
  double balance_slack = 1.1;

  /// A placed vertex migrates only when its neighbor-majority partition
  /// scores at least this factor better than its current one (Leopard's
  /// migration criterion; higher = fewer migrations).
  double migration_gain = 1.5;

  /// Hash seed for first-contact placements.
  uint64_t seed = 42;

  /// Wire cost of every migration this partitioner performs.
  MigrationCostModel migration_cost;
};

/// Why a drain / split / merge request was rejected (kOk = it ran).
enum class ReshapeStatus : uint8_t {
  kOk,
  kInvalidPartition,   // id out of range
  kAlreadyDisabled,    // partition was drained / merged away before
  kLastAlive,          // draining would leave no partition standing
};

/// Human-readable name of `status`.
const char* ReshapeStatusName(ReshapeStatus status);

/// Outcome of DrainPartition / MergePartition. Rejections are recoverable:
/// the partitioner state is untouched and the caller can retry with a
/// valid id (no asserts on bad input — a resharding controller must
/// survive racing against worker deaths).
struct DrainReport {
  ReshapeStatus status = ReshapeStatus::kOk;
  uint64_t moved_vertices = 0;
  uint64_t migration_bytes = 0;  // MigrationCostModel applied to the moves

  bool ok() const { return status == ReshapeStatus::kOk; }
};

/// Outcome of SplitPartition.
struct SplitReport {
  ReshapeStatus status = ReshapeStatus::kOk;
  PartitionId new_partition = kInvalidPartition;
  uint64_t moved_vertices = 0;
  uint64_t migration_bytes = 0;

  bool ok() const { return status == ReshapeStatus::kOk; }
};

/// Incremental edge-cut partitioning for evolving graphs — the
/// re-partitioning family of Section 2 (Hermes [33], Leopard [23]):
/// instead of re-running a partitioner when the graph changes, each
/// arriving edge updates a per-vertex neighbor-location synopsis, new
/// vertices are placed greedily next to their first neighbors, and a
/// vertex is migrated when enough of its neighborhood has accumulated
/// elsewhere. Bounded state (O(active vertices · replicas)), bounded
/// per-edge work, explicit migration accounting.
class DynamicPartitioner {
 public:
  explicit DynamicPartitioner(const DynamicOptions& options);

  /// Seeds the state from an existing partitioning of `graph` (the
  /// "initial partitioning" Hermes refines). Edges of `graph` populate
  /// the neighbor synopsis; subsequent AddEdge calls evolve it.
  void Bootstrap(const Graph& graph, const Partitioning& partitioning);

  /// Feeds one new undirected edge; grows the vertex space as needed.
  /// Returns the number of migrations it triggered (0, 1 or 2).
  uint32_t AddEdge(VertexId u, VertexId v);

  /// Recovery strategy for a permanent worker failure: marks `dead` as
  /// lost, migrates every vertex it held to its neighbor-majority
  /// surviving partition (least-loaded fallback), and excludes it from
  /// all future placements. Bad input (out-of-range id, already-disabled
  /// partition, last alive partition) is reported in the DrainReport
  /// status instead of aborting, with the state untouched.
  DrainReport DrainPartition(PartitionId dead);

  /// Elastic scale-in: voluntarily retires partition `p` by draining its
  /// vertices into their neighbor-majority siblings — identical mechanics
  /// to DrainPartition, but the slot is given up on purpose (the
  /// split-merge-partitioner's merge operation) rather than lost.
  DrainReport MergePartition(PartitionId p) { return DrainPartition(p); }

  /// Elastic scale-out: appends a fresh empty partition (id = old k) and
  /// moves a locality-preserving half of `p`'s vertices into it, growing
  /// BFS regions inside p's induced subgraph so split halves stay
  /// connected where the graph allows. k() grows by one on success;
  /// rejections leave the partitioner untouched.
  SplitReport SplitPartition(PartitionId p);

  /// Appends one empty partition to the placement space and returns its
  /// id (the low-level half of SplitPartition, exposed for controllers
  /// that plan their own move sets).
  PartitionId AddPartition();

  /// Partition `p` has been drained / merged away (out-of-range ids
  /// report disabled — they are never usable).
  bool IsDisabled(PartitionId p) const {
    return p >= disabled_.size() || disabled_[p] != 0;
  }

  /// Partitions currently accepting placements.
  PartitionId alive_k() const { return alive_k_; }

  /// Current number of partition slots (grows with SplitPartition).
  PartitionId k() const { return options_.k; }

  /// Current partition of `v` (kInvalidPartition if never seen).
  PartitionId PartitionOf(VertexId v) const;

  /// Vertices currently tracked (max id seen + 1).
  VertexId num_vertices() const {
    return static_cast<VertexId>(assignment_.size());
  }

  /// Current per-partition vertex counts.
  const std::vector<uint64_t>& partition_sizes() const {
    return state_.loads();
  }

  /// Bytes of working state (loads, assignment, neighbor synopsis,
  /// retained adjacency) — the Snapshot's state_bytes.
  uint64_t SynopsisBytes() const;

  /// Total migrations since construction/bootstrap.
  uint64_t total_migrations() const { return total_migrations_; }

  /// Total wire volume of those migrations under the configured
  /// MigrationCostModel — the same definition DrainPartition, split/merge
  /// and RepairAfterWorkerLoss report.
  uint64_t total_migration_bytes() const { return total_migration_bytes_; }

  /// Materializes a Partitioning of `graph` from the current assignment
  /// (graph must contain all fed vertices).
  Partitioning Snapshot(const Graph& graph) const;

 private:
  void EnsureVertex(VertexId v);
  void NoteNeighbor(VertexId v, PartitionId p);
  void ForgetNeighbor(VertexId v, PartitionId p);
  PartitionId PlaceNew(VertexId v);
  bool MaybeMigrate(VertexId v);
  double Capacity(PartitionId p) const;
  PartitionId LeastLoadedAlive() const;
  /// Reassigns `v` to `to`, fixing loads and every neighbor's synopsis,
  /// and returns the migration's wire bytes (also accumulated).
  uint64_t MoveVertex(VertexId v, PartitionId to);

  DynamicOptions options_;
  std::vector<PartitionId> assignment_;
  PartitionState state_;         // per-partition vertex loads
  std::vector<char> disabled_;   // permanently failed partitions
  PartitionId alive_k_;          // partitions still accepting vertices
  // Neighbor-partition counts per vertex (tiny sorted-by-insertion vecs).
  std::vector<std::vector<std::pair<PartitionId, uint32_t>>> neighbor_counts_;
  // Adjacency retained so migrations can update neighbors' synopses.
  std::vector<std::vector<VertexId>> adjacency_;
  uint64_t placed_vertices_ = 0;
  uint64_t total_migrations_ = 0;
  uint64_t total_migration_bytes_ = 0;
};

/// Outcome of repairing a placement after a permanent worker failure. The
/// repaired partitioning assigns nothing — neither masters nor edges — to
/// the dead worker.
struct FailoverRepair {
  Partitioning partitioning;

  /// Vertices whose master partition changed.
  uint64_t moved_masters = 0;

  /// Edges whose assigned partition changed (their adjacency entries must
  /// be rebuilt at the new location).
  uint64_t moved_edges = 0;

  /// Vertices whose record had to be copied to a partition that held no
  /// replica before the failure. For vertex-cut placements most masters
  /// are promoted from surviving replicas instead — the replication
  /// factor buying cheap recovery.
  uint64_t copied_vertices = 0;

  /// Total migration traffic implied by the two counters above.
  uint64_t migration_bytes = 0;
};

/// Repairs `p` after worker `dead` permanently fails. Edge-cut placements
/// are drained through a DynamicPartitioner (neighbor-majority migration
/// under the balance slack); vertex-cut / hybrid placements promote each
/// orphaned master to its surviving replica with the most local edges and
/// move the dead worker's edges with their source master. Deterministic;
/// migration volume is diffed against the pre-failure placement.
FailoverRepair RepairAfterWorkerLoss(const Graph& graph,
                                     const Partitioning& p, PartitionId dead,
                                     const DynamicOptions& options,
                                     const MigrationCostModel& cost = {});

}  // namespace sgp

#endif  // SGP_PARTITION_DYNAMIC_DYNAMIC_PARTITIONER_H_
