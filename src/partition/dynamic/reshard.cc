#include "partition/dynamic/reshard.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"

namespace sgp {

namespace {

// reshard.* namespace (docs/OBSERVABILITY.md): per-operation lifecycle,
// batch outcomes, plan surgery, and wire volume. Registered once per
// registry via the thread-local caching pattern.
struct ReshardMetrics {
  Counter* ops_started = nullptr;
  Counter* ops_committed = nullptr;
  Counter* ops_rolled_back = nullptr;
  Counter* batches_committed = nullptr;
  Counter* batches_retried = nullptr;
  Counter* batches_rolled_back = nullptr;
  Counter* moves_replanned = nullptr;
  Counter* moves_cancelled = nullptr;
  Counter* vertices_moved = nullptr;
  Counter* bytes_moved = nullptr;

  ReshardMetrics() = default;
  explicit ReshardMetrics(MetricsRegistry& reg) {
    ops_started = reg.GetCounter("reshard.ops.started");
    ops_committed = reg.GetCounter("reshard.ops.committed");
    ops_rolled_back = reg.GetCounter("reshard.ops.rolled_back");
    batches_committed = reg.GetCounter("reshard.batches.committed");
    batches_retried = reg.GetCounter("reshard.batches.retried");
    batches_rolled_back = reg.GetCounter("reshard.batches.rolled_back");
    moves_replanned = reg.GetCounter("reshard.moves.replanned");
    moves_cancelled = reg.GetCounter("reshard.moves.cancelled");
    vertices_moved = reg.GetCounter("reshard.vertices.moved");
    bytes_moved = reg.GetCounter("reshard.bytes.moved");
  }

  static ReshardMetrics& Get() {
    return CurrentRegistryMetrics<ReshardMetrics>();
  }
};

}  // namespace

const char* ReshardPhaseName(ReshardPhase phase) {
  switch (phase) {
    case ReshardPhase::kPlanned:
      return "planned";
    case ReshardPhase::kRunning:
      return "running";
    case ReshardPhase::kPaused:
      return "paused";
    case ReshardPhase::kRollingBack:
      return "rolling-back";
    case ReshardPhase::kCommitted:
      return "committed";
    case ReshardPhase::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

ReshardController::ReshardController(const Graph& graph,
                                     std::vector<PartitionId> owners,
                                     PartitionId k, const ReshardOp& op,
                                     const ReshardConfig& config)
    : graph_(graph),
      config_(config),
      owners_(std::move(owners)),
      rng_(config.seed ^ 0x4e5a4dULL) {
  SGP_CHECK(op.kind != ReshardOpKind::kNone);
  SGP_CHECK(op.target < k);
  SGP_CHECK(owners_.size() == graph.num_vertices());
  SGP_CHECK(config_.batch_vertices > 0);
  SGP_CHECK(config_.bytes_per_second > 0);
  SGP_CHECK(config_.batch_overhead_seconds >= 0);
  config_.retry.Validate();

  // The placement half of the reshape: the dynamic partitioner decides
  // where every vertex ends up, this controller only decides when (and
  // whether) each move ships.
  DynamicOptions dopts;
  dopts.k = k;
  dopts.migration_cost = config_.cost;
  DynamicPartitioner dp(dopts);
  Partitioning before;
  before.model = CutModel::kEdgeCut;
  before.k = k;
  before.vertex_to_partition = owners_;
  dp.Bootstrap(graph, before);
  if (op.kind == ReshardOpKind::kSplit) {
    const SplitReport report = dp.SplitPartition(op.target);
    SGP_CHECK(report.ok());
  } else {
    const DrainReport report = dp.MergePartition(op.target);
    SGP_CHECK(report.ok());
  }
  k_after_ = dp.k();

  partition_sizes_.assign(k_after_, 0);
  for (PartitionId p : owners_) ++partition_sizes_[p];
  for (VertexId v = 0; v < owners_.size(); ++v) {
    const PartitionId to = dp.PartitionOf(v);
    if (to == owners_[v]) continue;
    VertexMove m;
    m.v = v;
    m.from = owners_[v];
    m.to = to;
    m.bytes = config_.cost.bytes_per_vertex_record +
              graph.Neighbors(v).size() *
                  static_cast<uint64_t>(config_.cost.bytes_per_adjacency_entry);
    moves_.push_back(m);
  }
  ReshardMetrics::Get().ops_started->Increment();
}

bool ReshardController::BatchBlocked(const Batch& b, const FaultPlan& faults,
                                     double now) const {
  for (uint64_t i = b.begin; i < b.end; ++i) {
    const VertexMove& m = moves_[i];
    if (m.from == m.to) continue;  // cancelled
    if (faults.IsDown(m.from, now) || faults.IsDown(m.to, now)) return true;
  }
  return false;
}

double ReshardController::BatchSeconds(const Batch& b) const {
  uint64_t bytes = 0;
  for (uint64_t i = b.begin; i < b.end; ++i) {
    if (moves_[i].from != moves_[i].to) bytes += moves_[i].bytes;
  }
  return config_.batch_overhead_seconds +
         static_cast<double>(bytes) / config_.bytes_per_second;
}

void ReshardController::ReplanBatch(const Batch& /*b*/,
                                    const FaultPlan& faults, double now) {
  ReshardMetrics& metrics = ReshardMetrics::Get();
  std::vector<uint32_t> counts(k_after_, 0);
  for (uint64_t i = committed_; i < moves_.size(); ++i) {
    VertexMove& m = moves_[i];
    if (m.from == m.to) continue;
    if (faults.PermanentlyDown(m.from, now)) {
      // The source copy is gone for good; shipping it is the fault
      // layer's repair problem (RepairAfterWorkerLoss), not this
      // reshape's. Cancel in place so indices stay stable.
      m.to = m.from;
      ++stats_.moves_cancelled;
      metrics.moves_cancelled->Increment();
      continue;
    }
    if (!faults.IsDown(m.to, now)) continue;
    // Destination is down: retarget to the neighbor-majority partition
    // among those alive right now, never back into the partition being
    // vacated; least-loaded fallback. Deterministic (ties to lower id).
    std::fill(counts.begin(), counts.end(), 0);
    for (VertexId w : graph_.Neighbors(m.v)) ++counts[owners_[w]];
    PartitionId best = kInvalidPartition;
    uint32_t best_count = 0;
    for (PartitionId p = 0; p < k_after_; ++p) {
      if (p == m.from || faults.IsDown(p, now)) continue;
      if (counts[p] > best_count) {
        best_count = counts[p];
        best = p;
      }
    }
    if (best == kInvalidPartition) {
      for (PartitionId p = 0; p < k_after_; ++p) {
        if (p == m.from || faults.IsDown(p, now)) continue;
        if (best == kInvalidPartition ||
            partition_sizes_[p] < partition_sizes_[best]) {
          best = p;
        }
      }
    }
    if (best == kInvalidPartition) continue;  // everything down; retry later
    m.to = best;
    ++stats_.moves_replanned;
    metrics.moves_replanned->Increment();
  }
}

ReshardStepResult ReshardController::BeginRollback(double now) {
  ReshardStepResult result;
  phase_ = ReshardPhase::kRollingBack;
  inflight_end_ = committed_;
  attempts_ = 0;
  if (committed_ == 0) {
    phase_ = ReshardPhase::kRolledBack;
    result.done = true;
    ReshardMetrics::Get().ops_rolled_back->Increment();
    return result;
  }
  const uint64_t n =
      std::min<uint64_t>(config_.batch_vertices, committed_);
  result.next_time = now + BatchSeconds({committed_ - n, committed_});
  return result;
}

ReshardStepResult ReshardController::Step(double now,
                                          const FaultPlan& faults) {
  ReshardMetrics& metrics = ReshardMetrics::Get();
  ReshardStepResult result;
  if (done()) {
    result.done = true;
    return result;
  }
  if (phase_ == ReshardPhase::kPaused) return result;

  if (phase_ == ReshardPhase::kRollingBack) {
    // Unwind one committed batch, most recent first. Rollback ignores
    // faults — it ships toward partitions that held the data moments ago
    // (a deliberate simplification; see docs/SIMULATORS.md).
    const uint64_t n =
        std::min<uint64_t>(config_.batch_vertices, committed_);
    for (uint64_t i = 0; i < n; ++i) {
      VertexMove m = moves_[committed_ - 1 - i];
      if (m.from == m.to) continue;  // cancelled move: nothing shipped
      std::swap(m.from, m.to);
      owners_[m.v] = m.to;
      --partition_sizes_[m.from];
      ++partition_sizes_[m.to];
      result.applied.push_back(m);
      result.bytes += m.bytes;
      ++stats_.moved_vertices;
      stats_.migration_bytes += m.bytes;
    }
    committed_ -= n;
    ++stats_.batches_rolled_back;
    metrics.batches_rolled_back->Increment();
    metrics.vertices_moved->Increment(result.applied.size());
    metrics.bytes_moved->Increment(result.bytes);
    if (committed_ == 0) {
      phase_ = ReshardPhase::kRolledBack;
      result.done = true;
      metrics.ops_rolled_back->Increment();
    } else {
      const uint64_t next =
          std::min<uint64_t>(config_.batch_vertices, committed_);
      result.next_time = now + BatchSeconds({committed_ - next, committed_});
    }
    return result;
  }

  if (inflight_end_ > committed_) {
    const Batch b{committed_, inflight_end_};
    if (BatchBlocked(b, faults, now)) {
      // A source or destination died while the batch was on the wire:
      // the attempt is void. Back off and retry; after max_attempts,
      // re-plan around the loss (or abort the whole operation).
      ++attempts_;
      ++stats_.batch_retries;
      metrics.batches_retried->Increment();
      if (attempts_ >= config_.retry.max_attempts) {
        if (config_.rollback_on_worker_loss) {
          return BeginRollback(now);
        }
        ReplanBatch(b, faults, now);
        attempts_ = 0;
        // Saturated pacing for the replanned attempt: the cluster just
        // proved itself unhealthy.
        result.next_time =
            now + config_.retry.BackoffSeconds(config_.retry.max_attempts,
                                               rng_) +
            BatchSeconds(b);
      } else {
        result.next_time =
            now + config_.retry.BackoffSeconds(attempts_, rng_) +
            BatchSeconds(b);
      }
      return result;
    }
    for (uint64_t i = b.begin; i < b.end; ++i) {
      const VertexMove& m = moves_[i];
      if (m.from == m.to) continue;  // cancelled
      owners_[m.v] = m.to;
      --partition_sizes_[m.from];
      ++partition_sizes_[m.to];
      result.applied.push_back(m);
      result.bytes += m.bytes;
      ++stats_.moved_vertices;
      stats_.migration_bytes += m.bytes;
    }
    committed_ = inflight_end_;
    attempts_ = 0;
    ++stats_.batches_committed;
    metrics.batches_committed->Increment();
    metrics.vertices_moved->Increment(result.applied.size());
    metrics.bytes_moved->Increment(result.bytes);
  }

  if (committed_ == moves_.size()) {
    phase_ = ReshardPhase::kCommitted;
    result.done = true;
    metrics.ops_committed->Increment();
    return result;
  }
  if (pause_requested_) {
    pause_requested_ = false;
    phase_ = ReshardPhase::kPaused;
    return result;
  }
  phase_ = ReshardPhase::kRunning;
  inflight_end_ =
      std::min<uint64_t>(committed_ + config_.batch_vertices, moves_.size());
  result.next_time = now + BatchSeconds({committed_, inflight_end_});
  return result;
}

double ReshardController::Resume(double now) {
  SGP_CHECK(phase_ == ReshardPhase::kPaused);
  phase_ = ReshardPhase::kRunning;
  return now;
}

ReshardStepResult ReshardController::Abort(double now) {
  if (done()) {
    ReshardStepResult result;
    result.done = true;
    return result;
  }
  return BeginRollback(now);
}

}  // namespace sgp
