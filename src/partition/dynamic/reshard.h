#ifndef SGP_PARTITION_DYNAMIC_RESHARD_H_
#define SGP_PARTITION_DYNAMIC_RESHARD_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/faults.h"
#include "common/random.h"
#include "common/types.h"
#include "graph/graph.h"
#include "partition/dynamic/dynamic_partitioner.h"

namespace sgp {

/// Which elastic reshape the controller executes.
enum class ReshardOpKind : uint8_t {
  kNone,
  kSplit,  // SplitPartition(target) → {target, k}
  kMerge,  // MergePartition(target): drain into neighbor-majority siblings
};

struct ReshardOp {
  ReshardOpKind kind = ReshardOpKind::kNone;
  PartitionId target = 0;
};

/// Execution knobs of the live resharder. The transfer-time model is the
/// simulator's: each batch costs a fixed per-batch overhead plus its wire
/// bytes over the migration bandwidth, on the same simulated clock the
/// event simulator runs on.
struct ReshardConfig {
  /// Vertices migrated per batch (the commit unit; also the rollback and
  /// pause granularity).
  uint32_t batch_vertices = 64;

  /// Migration bandwidth in bytes of MigrationCostModel wire volume per
  /// simulated second.
  double bytes_per_second = 256e6;

  /// Fixed coordination cost per batch attempt, seconds.
  double batch_overhead_seconds = 500e-6;

  /// Per-batch retry pacing when a batch cannot commit because a source or
  /// destination worker is down. After max_attempts the controller
  /// re-plans around the loss (or rolls back, below).
  RetryPolicy retry;

  /// Wire-volume definition shared with DynamicPartitioner / SimResult.
  MigrationCostModel cost;

  /// Abort-and-rollback instead of re-planning when a batch exhausts its
  /// retries (the conservative production posture).
  bool rollback_on_worker_loss = false;

  /// Seed of the retry-jitter stream.
  uint64_t seed = 17;
};

/// One vertex migration. `bytes` is the MigrationCostModel wire volume;
/// rollback moves come back with from/to swapped so consumers always apply
/// `owner[v] = to`.
struct VertexMove {
  VertexId v = 0;
  PartitionId from = 0;
  PartitionId to = 0;
  uint64_t bytes = 0;
};

enum class ReshardPhase : uint8_t {
  kPlanned,      // ctor done, no batch issued yet
  kRunning,      // batches in flight
  kPaused,       // Pause() took effect at a batch boundary
  kRollingBack,  // unwinding committed batches in reverse
  kCommitted,    // every planned move applied
  kRolledBack,   // every committed move undone
};

const char* ReshardPhaseName(ReshardPhase phase);

/// Counters of one reshard operation (mirrored into the reshard.*
/// telemetry namespace; see docs/OBSERVABILITY.md).
struct ReshardStats {
  uint64_t batches_committed = 0;
  uint64_t batch_retries = 0;
  uint64_t batches_rolled_back = 0;
  uint64_t moves_replanned = 0;
  uint64_t moves_cancelled = 0;
  uint64_t moved_vertices = 0;    // rollback moves count too (they ship bytes)
  uint64_t migration_bytes = 0;
};

/// Outcome of one Step/Abort call.
struct ReshardStepResult {
  /// Moves that committed during this step, in plan order. Apply as
  /// `owner[move.v] = move.to`.
  std::vector<VertexMove> applied;

  /// Wire bytes this step put on the network (committed batch or retried
  /// attempt's nothing — retries ship no bytes until they commit).
  uint64_t bytes = 0;

  /// When to call Step next; +infinity when paused or terminal.
  double next_time = std::numeric_limits<double>::infinity();

  /// Operation reached kCommitted or kRolledBack.
  bool done = false;
};

/// Executes one split or merge as a sequence of bounded migration batches
/// on the event simulator's clock — the live half of the elastic
/// resharder. The *plan* (which vertex goes where) comes from
/// DynamicPartitioner::SplitPartition / MergePartition at construction
/// time; the controller owns pacing, retry/backoff under faults,
/// re-planning around worker losses, pause/resume, and rollback.
///
/// Driving protocol: construct, then call Step(t, faults) at t =
/// start_time and again at each returned next_time until done. Every
/// Step first tries to commit the batch whose transfer completes at t
/// (the source and destination of every move must be up at commit time —
/// a mid-transfer death voids the attempt), then launches the next batch.
/// All decisions are deterministic in (plan, config, fault plan).
class ReshardController {
 public:
  /// `owners[v]` is the serving partition of vertex v before the reshape;
  /// `k` the partition count before the reshape. The plan is computed
  /// here, eagerly; Step only replays it.
  ReshardController(const Graph& graph, std::vector<PartitionId> owners,
                    PartitionId k, const ReshardOp& op,
                    const ReshardConfig& config);

  /// Advances the operation at simulated time `now` (see class comment).
  ReshardStepResult Step(double now, const FaultPlan& faults);

  /// Requests a pause; takes effect at the next batch boundary (the
  /// in-flight batch still commits). Step then returns next_time = +inf.
  void Pause() { pause_requested_ = true; }

  /// Resumes a paused operation; returns the time to call Step next.
  double Resume(double now);

  /// Discards the in-flight batch and starts rolling back every committed
  /// batch in reverse order. The result's next_time schedules the first
  /// rollback step.
  ReshardStepResult Abort(double now);

  // ---- observers -------------------------------------------------------

  ReshardPhase phase() const { return phase_; }
  bool done() const {
    return phase_ == ReshardPhase::kCommitted ||
           phase_ == ReshardPhase::kRolledBack;
  }

  /// Partition-id space after the reshape (merge keeps k: the drained slot
  /// stays allocated, just empty).
  PartitionId k_after() const { return k_after_; }

  /// The full move plan, in execution order. Re-planning rewrites the
  /// destinations of not-yet-committed entries in place.
  const std::vector<VertexMove>& planned_moves() const { return moves_; }

  /// Moves committed so far (prefix of planned_moves, minus rollbacks).
  uint64_t committed_moves() const { return committed_; }

  const ReshardStats& stats() const { return stats_; }

 private:
  struct Batch {
    uint64_t begin = 0;  // [begin, end) indexes into moves_
    uint64_t end = 0;
  };

  bool BatchBlocked(const Batch& b, const FaultPlan& faults,
                    double now) const;
  void ReplanBatch(const Batch& b, const FaultPlan& faults, double now);
  ReshardStepResult BeginRollback(double now);
  double BatchSeconds(const Batch& b) const;
  void LaunchNext(double now, ReshardStepResult* result);

  const Graph& graph_;
  ReshardConfig config_;
  PartitionId k_after_;
  std::vector<VertexMove> moves_;
  std::vector<PartitionId> owners_;       // live view, updated per commit
  std::vector<uint64_t> partition_sizes_; // live counts for replan fallback
  ReshardPhase phase_ = ReshardPhase::kPlanned;
  ReshardStats stats_;
  Rng rng_;
  uint64_t committed_ = 0;       // moves_ prefix applied
  uint64_t inflight_end_ = 0;    // != committed_ while a batch is in flight
  uint32_t attempts_ = 0;        // failed commit attempts of that batch
  uint64_t rollback_cursor_ = 0; // moves still to undo when rolling back
  bool pause_requested_ = false;
};

}  // namespace sgp

#endif  // SGP_PARTITION_DYNAMIC_RESHARD_H_
