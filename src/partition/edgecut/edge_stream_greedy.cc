#include "partition/edgecut/edge_stream_greedy.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "partition/score_core.h"
#include "partition/state.h"

namespace sgp {

namespace internal_edgecut {

Partitioning RunEdgeStreamGreedy(EdgeStreamSource& source,
                                 VertexId num_vertices,
                                 const PartitionConfig& config) {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const VertexId n = num_vertices;
  const PartitionId k = config.k;
  PartitionState state(config);
  state.InitCapacities(n, config.balance_slack);
  const std::vector<double>& capacity = state.capacities();
  const std::vector<uint64_t>& sizes = state.loads();
  ScoreCore core(state, config.score_mode);

  std::vector<PartitionId> assignment(n, kInvalidPartition);
  // Synopsis: per vertex, the count of already-seen neighbors per
  // partition (small sorted vectors, like the greedy vertex-cut state).
  std::vector<std::vector<std::pair<PartitionId, uint32_t>>> seen(n);
  std::vector<uint32_t> observed_degree(n, 0);
  std::vector<uint32_t> degree_at_placement(n, 0);

  auto least_loaded = [&]() { return core.PickLeastLoadedWithRoom(); };
  auto place = [&](VertexId v, PartitionId p) {
    if (static_cast<double>(sizes[p]) + 1.0 > capacity[p]) {
      p = least_loaded();
    }
    assignment[v] = p;
    state.AddLoad(p);
    degree_at_placement[v] = observed_degree[v];
  };
  auto note_neighbor = [&](VertexId v, PartitionId p) {
    auto& vec = seen[v];
    auto it = std::find_if(vec.begin(), vec.end(),
                           [p](const auto& pr) { return pr.first == p; });
    if (it == vec.end()) {
      vec.emplace_back(p, 1u);
    } else {
      ++it->second;
    }
  };
  // IOGP-style revisit: when a vertex's observed degree has doubled since
  // placement, move it to its majority partition if that is elsewhere and
  // has room.
  auto maybe_migrate = [&](VertexId v) {
    if (observed_degree[v] < 2 * std::max(1u, degree_at_placement[v])) {
      return;
    }
    const PartitionId cur = assignment[v];
    PartitionId majority = cur;
    uint32_t majority_count = 0;
    uint32_t cur_count = 0;
    for (const auto& [p, count] : seen[v]) {
      if (p == cur) cur_count = count;
      if (count > majority_count) {
        majority_count = count;
        majority = p;
      }
    }
    degree_at_placement[v] = observed_degree[v];
    if (majority == cur || majority_count <= cur_count) return;
    if (static_cast<double>(sizes[majority]) + 1.0 > capacity[majority]) {
      return;
    }
    state.RemoveLoad(cur);
    state.AddLoad(majority);
    assignment[v] = majority;
  };

  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.NoteBatch();
    for (const StreamEdge& edge : chunk) {
      const VertexId u = edge.src;
      const VertexId v = edge.dst;
      ++observed_degree[u];
      ++observed_degree[v];
      const bool u_placed = assignment[u] != kInvalidPartition;
      const bool v_placed = assignment[v] != kInvalidPartition;
      if (u_placed && v_placed) {
        // Nothing to place; record the adjacency and consider migration.
        note_neighbor(u, assignment[v]);
        note_neighbor(v, assignment[u]);
        maybe_migrate(u);
        maybe_migrate(v);
        continue;
      }
      if (u_placed) {
        place(v, assignment[u]);
      } else if (v_placed) {
        place(u, assignment[v]);
      } else {
        PartitionId p = least_loaded();
        place(u, p);
        place(v, assignment[u]);
      }
      note_neighbor(u, assignment[v]);
      note_neighbor(v, assignment[u]);
    }
  }
  // Isolated vertices (no edges) still need masters.
  for (VertexId v = 0; v < n; ++v) {
    if (assignment[v] == kInvalidPartition) {
      assignment[v] = least_loaded();
      state.AddLoad(assignment[v]);
    }
  }

  Partitioning result;
  result.model = CutModel::kEdgeCut;
  result.k = k;
  uint64_t synopsis_entries = 0;
  for (const auto& counts : seen) synopsis_entries += counts.size();
  state.NoteAuxiliaryBytes(
      static_cast<uint64_t>(n) *
          (sizeof(PartitionId) + 2 * sizeof(uint32_t)) +
      synopsis_entries * (sizeof(PartitionId) + sizeof(uint32_t)));
  result.state_bytes = state.SynopsisBytes();
  result.vertex_to_partition = std::move(assignment);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace internal_edgecut

Partitioning EdgeStreamGreedyPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  Timer timer;
  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  Partitioning result = internal_edgecut::RunEdgeStreamGreedy(
      source, graph.num_vertices(), config);
  DeriveEdgePlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
