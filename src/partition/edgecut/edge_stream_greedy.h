#ifndef SGP_PARTITION_EDGECUT_EDGE_STREAM_GREEDY_H_
#define SGP_PARTITION_EDGECUT_EDGE_STREAM_GREEDY_H_

#include "partition/partitioner.h"
#include "stream/source.h"

namespace sgp {

/// Edge-cut partitioning over an *edge* stream (the CST [18] / IOGP [15]
/// family of Section 4.1.2). A vertex is placed when its first edge
/// arrives, with only the partial neighborhood seen so far as signal:
/// each arriving edge (u,v) pulls an unplaced endpoint to the placed
/// endpoint's partition (capacity permitting), and a placed vertex may be
/// migrated once its observed degree doubles and most of its seen
/// neighbors live elsewhere (the IOGP-style revisit).
///
/// The paper's point about this class — it cannot match vertex-stream
/// quality because complete adjacency is never available at decision time
/// — is reproduced by `bench_ablation_input_stream`.
class EdgeStreamGreedyPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "ESG"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

namespace internal_edgecut {

/// Source-level ESG entry point: consumes any edge stream (in-memory
/// replay or the bounded-memory disk source) and returns the vertex
/// placement plus state accounting; the edge placement is left for the
/// caller to derive (it needs the materialized graph). `num_vertices`
/// must cover every id the stream produces.
Partitioning RunEdgeStreamGreedy(EdgeStreamSource& source,
                                 VertexId num_vertices,
                                 const PartitionConfig& config);

}  // namespace internal_edgecut

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_EDGE_STREAM_GREEDY_H_
