#ifndef SGP_PARTITION_EDGECUT_EDGE_STREAM_GREEDY_H_
#define SGP_PARTITION_EDGECUT_EDGE_STREAM_GREEDY_H_

#include "partition/partitioner.h"

namespace sgp {

/// Edge-cut partitioning over an *edge* stream (the CST [18] / IOGP [15]
/// family of Section 4.1.2). A vertex is placed when its first edge
/// arrives, with only the partial neighborhood seen so far as signal:
/// each arriving edge (u,v) pulls an unplaced endpoint to the placed
/// endpoint's partition (capacity permitting), and a placed vertex may be
/// migrated once its observed degree doubles and most of its seen
/// neighbors live elsewhere (the IOGP-style revisit).
///
/// The paper's point about this class — it cannot match vertex-stream
/// quality because complete adjacency is never available at decision time
/// — is reproduced by `bench_ablation_input_stream`.
class EdgeStreamGreedyPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "ESG"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_EDGE_STREAM_GREEDY_H_
