#include "partition/edgecut/fennel.h"

#include "partition/edgecut/greedy_core.h"

namespace sgp {

Partitioning FennelPartitioner::Run(const Graph& graph,
                                    const PartitionConfig& config) const {
  return internal_edgecut::RunStreamingGreedy(
      graph, config, internal_edgecut::Objective::kFennel, /*passes=*/1);
}

}  // namespace sgp
