#ifndef SGP_PARTITION_EDGECUT_FENNEL_H_
#define SGP_PARTITION_EDGECUT_FENNEL_H_

#include "partition/partitioner.h"

namespace sgp {

/// FENNEL (Tsourakakis et al., WSDM'14). Streaming modularity-style
/// objective: neighbors gained minus an additive load penalty
/// α·γ·|P|^{γ−1} (Equation 5). γ and α come from PartitionConfig.
class FennelPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "FNL"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_FENNEL_H_
