#include "partition/edgecut/greedy_core.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp::internal_edgecut {

namespace {

// Phase timings and decision counters of the greedy edge-cut family.
// Decisions are accumulated in plain locals inside Run and flushed once
// here, so the scoring loop carries no atomic traffic (the <2% overhead
// budget of bench_partitioner_speed).
struct GreedyMetrics {
  Counter* vertices_assigned = nullptr;
  Counter* neighbor_scans = nullptr;
  Counter* tie_breaks = nullptr;
  Counter* capacity_fallbacks = nullptr;
  Histogram* stream_build_wall = nullptr;
  Histogram* score_assign_wall = nullptr;

  GreedyMetrics() = default;
  explicit GreedyMetrics(MetricsRegistry& reg) {
    vertices_assigned = reg.GetCounter("partition.greedy.vertices.assigned");
    neighbor_scans = reg.GetCounter("partition.greedy.neighbor.scans");
    tie_breaks = reg.GetCounter("partition.greedy.tie_breaks");
    capacity_fallbacks =
        reg.GetCounter("partition.greedy.capacity_fallbacks");
    stream_build_wall =
        reg.GetHistogram("partition.greedy.stream_build.wall_seconds",
                         MetricOptions::WallClock());
    score_assign_wall =
        reg.GetHistogram("partition.greedy.score_assign.wall_seconds",
                         MetricOptions::WallClock());
  }

  static GreedyMetrics& Get() {
    return CurrentRegistryMetrics<GreedyMetrics>();
  }
};

}  // namespace

Partitioning RunStreamingGreedy(const Graph& graph,
                                const PartitionConfig& config,
                                Objective objective, uint32_t passes) {
  SGP_CHECK(config.k > 0);
  SGP_CHECK(passes >= 1);
  Timer timer;
  const VertexId n = graph.num_vertices();
  const PartitionId k = config.k;
  // Shared synopsis: loads plus the hard capacity C = β·(n/k)·w_i of
  // Equation (1). The const refs keep the scoring expressions below
  // textually identical to the pre-state-layer code.
  PartitionState state(config);
  state.InitCapacities(n, config.balance_slack);
  const std::vector<double>& weights = state.weights();
  const std::vector<double>& capacity = state.capacities();
  const std::vector<uint64_t>& sizes = state.loads();

  // FENNEL α: the paper's optimum α = m·k^{γ−1}/n^{γ}, which reduces to
  // √k·m/n^{3/2} at γ = 1.5.
  const double gamma = config.fennel_gamma;
  double alpha = config.fennel_alpha;
  if (alpha == 0.0 && n > 0) {
    alpha = static_cast<double>(graph.num_edges()) *
            std::pow(static_cast<double>(k), gamma - 1.0) /
            std::pow(static_cast<double>(n), gamma);
  }
  const bool gamma_is_three_halves = gamma == 1.5;

  GreedyMetrics& metrics = GreedyMetrics::Get();
  // Phase 1: ingest setup (the source materializes the arrival order once;
  // every pass replays it chunk by chunk).
  InMemoryVertexSource source = [&] {
    ScopedTimer stream_timer(metrics.stream_build_wall);
    return InMemoryVertexSource(graph, config.order, config.seed,
                                config.ingest_chunk_size);
  }();
  // Phase 2: score + assign. Decision counts live in locals until the
  // post-loop flush.
  ScopedTimer score_assign_timer(metrics.score_assign_wall);
  uint64_t local_assigned = 0;
  uint64_t local_neighbor_scans = 0;
  uint64_t local_tie_breaks = 0;
  uint64_t local_fallbacks = 0;

  std::vector<PartitionId> assignment(n, kInvalidPartition);
  std::vector<uint32_t> neighbor_counts(k, 0);
  std::vector<PartitionId> touched;
  touched.reserve(k);

  for (uint32_t pass = 0; pass < passes; ++pass) {
    // Re-streaming FENNEL anneals α upward across passes ([34]).
    const double pass_alpha =
        alpha * std::pow(config.restream_alpha_growth,
                         static_cast<double>(pass));
    source.Reset();
    ForEachStreamItem(source, [&](VertexId u) {
      // Re-streaming: remove u from its previous partition before
      // re-placing it, so capacities reflect the tentative state.
      if (assignment[u] != kInvalidPartition) {
        state.RemoveLoad(assignment[u]);
        assignment[u] = kInvalidPartition;
      }
      for (VertexId v : graph.Neighbors(u)) {
        ++local_neighbor_scans;
        PartitionId part = assignment[v];
        if (part == kInvalidPartition) continue;
        if (neighbor_counts[part]++ == 0) touched.push_back(part);
      }

      PartitionId best = kInvalidPartition;
      double best_score = -std::numeric_limits<double>::infinity();
      uint64_t best_size = 0;
      for (PartitionId i = 0; i < k; ++i) {
        const double size = static_cast<double>(sizes[i]);
        if (size + 1.0 > capacity[i]) continue;  // hard balance constraint
        double score;
        if (objective == Objective::kLdg) {
          score = static_cast<double>(neighbor_counts[i]) *
                  (1.0 - size / capacity[i]);
        } else {
          // Effective load: raw size scaled by inverse capacity, so a
          // twice-as-big machine looks half as loaded.
          const double eff = size / weights[i];
          const double load = gamma_is_three_halves
                                  ? std::sqrt(eff)
                                  : std::pow(eff, gamma - 1.0);
          score = static_cast<double>(neighbor_counts[i]) -
                  pass_alpha * gamma * load;
        }
        if (score > best_score) {
          best_score = score;
          best = i;
          best_size = sizes[i];
        } else if (score == best_score && sizes[i] < best_size) {
          ++local_tie_breaks;  // equal score resolved by the smaller part
          best = i;
          best_size = sizes[i];
        }
      }
      // All partitions at capacity can only happen transiently in
      // re-streaming passes; fall back to the least-loaded partition.
      if (best == kInvalidPartition) {
        ++local_fallbacks;
        best = 0;
        for (PartitionId i = 1; i < k; ++i) {
          if (static_cast<double>(sizes[i]) / weights[i] <
              static_cast<double>(sizes[best]) / weights[best]) {
            best = i;
          }
        }
      }
      assignment[u] = best;
      state.AddLoad(best);
      ++local_assigned;

      for (PartitionId part : touched) neighbor_counts[part] = 0;
      touched.clear();
    });
  }

  metrics.vertices_assigned->Increment(local_assigned);
  metrics.neighbor_scans->Increment(local_neighbor_scans);
  metrics.tie_breaks->Increment(local_tie_breaks);
  metrics.capacity_fallbacks->Increment(local_fallbacks);

  Partitioning result;
  result.model = CutModel::kEdgeCut;
  result.k = k;
  state.NoteAuxiliaryBytes(
      static_cast<uint64_t>(n) * sizeof(PartitionId) +  // assignment
      static_cast<uint64_t>(k) * sizeof(uint32_t));     // neighbor_counts
  result.state_bytes = state.SynopsisBytes();
  result.vertex_to_partition = std::move(assignment);
  DeriveEdgePlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp::internal_edgecut
