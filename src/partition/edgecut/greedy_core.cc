#include "partition/edgecut/greedy_core.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/edgecut/neighbor_gather.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp::internal_edgecut {

namespace {

// Phase timings and decision counters of the greedy edge-cut family.
// Decisions are accumulated in plain locals inside Run and flushed once
// here, so the scoring loop carries no atomic traffic (the <2% overhead
// budget of bench_partitioner_speed).
struct GreedyMetrics {
  Counter* vertices_assigned = nullptr;
  Counter* neighbor_scans = nullptr;
  Counter* tie_breaks = nullptr;
  Counter* capacity_fallbacks = nullptr;
  Counter* gather_blocks = nullptr;
  Counter* gather_prefetched = nullptr;
  Histogram* stream_build_wall = nullptr;
  Histogram* score_assign_wall = nullptr;

  GreedyMetrics() = default;
  explicit GreedyMetrics(MetricsRegistry& reg) {
    vertices_assigned = reg.GetCounter("partition.greedy.vertices.assigned");
    neighbor_scans = reg.GetCounter("partition.greedy.neighbor.scans");
    tie_breaks = reg.GetCounter("partition.greedy.tie_breaks");
    capacity_fallbacks =
        reg.GetCounter("partition.greedy.capacity_fallbacks");
    gather_blocks = reg.GetCounter("partition.greedy.gather.blocks");
    gather_prefetched = reg.GetCounter("partition.greedy.gather.prefetched");
    stream_build_wall =
        reg.GetHistogram("partition.greedy.stream_build.wall_seconds",
                         MetricOptions::WallClock());
    score_assign_wall =
        reg.GetHistogram("partition.greedy.score_assign.wall_seconds",
                         MetricOptions::WallClock());
  }

  static GreedyMetrics& Get() {
    return CurrentRegistryMetrics<GreedyMetrics>();
  }
};

}  // namespace

Partitioning RunStreamingGreedy(const Graph& graph,
                                const PartitionConfig& config,
                                Objective objective, uint32_t passes) {
  SGP_CHECK(config.k > 0);
  SGP_CHECK(passes >= 1);
  Timer timer;
  const VertexId n = graph.num_vertices();
  const PartitionId k = config.k;
  // Shared synopsis: loads plus the hard capacity C = β·(n/k)·w_i of
  // Equation (1). Scoring and the k-way pick live in the ScoreCore.
  PartitionState state(config);
  state.InitCapacities(n, config.balance_slack);
  ScoreCore core(state, config.score_mode);

  // FENNEL α: the paper's optimum α = m·k^{γ−1}/n^{γ}, which reduces to
  // √k·m/n^{3/2} at γ = 1.5.
  const double gamma = config.fennel_gamma;
  double alpha = config.fennel_alpha;
  if (alpha == 0.0 && n > 0) {
    alpha = static_cast<double>(graph.num_edges()) *
            std::pow(static_cast<double>(k), gamma - 1.0) /
            std::pow(static_cast<double>(n), gamma);
  }
  const bool gamma_is_three_halves = gamma == 1.5;

  GreedyMetrics& metrics = GreedyMetrics::Get();
  // Phase 1: ingest setup (the source materializes the arrival order once;
  // every pass replays it chunk by chunk).
  InMemoryVertexSource source = [&] {
    ScopedTimer stream_timer(metrics.stream_build_wall);
    return InMemoryVertexSource(graph, config.order, config.seed,
                                config.ingest_chunk_size);
  }();
  // Phase 2: score + assign. Decision counts live in locals until the
  // post-loop flush.
  ScopedTimer score_assign_timer(metrics.score_assign_wall);
  uint64_t local_assigned = 0;
  uint64_t local_neighbor_scans = 0;
  uint64_t local_tie_breaks = 0;
  uint64_t local_fallbacks = 0;

  std::vector<PartitionId> assignment(n, kInvalidPartition);
  std::vector<uint32_t> neighbor_counts(k, 0);
  std::vector<PartitionId> touched;
  touched.reserve(k);
  NeighborGather gather;

  score::GreedyObjective score_objective;
  score_objective.ldg = objective == Objective::kLdg;
  score_objective.gamma = gamma;
  score_objective.sqrt_form = gamma_is_three_halves;

  for (uint32_t pass = 0; pass < passes; ++pass) {
    // Re-streaming FENNEL anneals α upward across passes ([34]).
    score_objective.alpha =
        alpha * std::pow(config.restream_alpha_growth,
                         static_cast<double>(pass));
    source.Reset();
    for (auto chunk = source.NextChunk(); !chunk.empty();
         chunk = source.NextChunk()) {
      core.NoteBatch();
      for (VertexId u : chunk) {
        // Re-streaming: remove u from its previous partition before
        // re-placing it, so capacities reflect the tentative state.
        if (assignment[u] != kInvalidPartition) {
          state.RemoveLoad(assignment[u]);
          assignment[u] = kInvalidPartition;
        }
        local_neighbor_scans +=
            gather.Accumulate(graph.Neighbors(u), assignment.data(),
                              neighbor_counts.data(), touched);

        PartitionId best = core.PickGreedyVertex(
            neighbor_counts.data(), score_objective, &local_tie_breaks);
        // All partitions at capacity can only happen transiently in
        // re-streaming passes; fall back to the least-loaded partition.
        if (best == kInvalidPartition) {
          ++local_fallbacks;
          best = core.PickLeastLoadedAll();
        }
        assignment[u] = best;
        state.AddLoad(best);
        ++local_assigned;

        for (PartitionId part : touched) neighbor_counts[part] = 0;
        touched.clear();
      }
    }
    // Per-pass flush: restreaming runs surface scan progress after every
    // pass instead of one burst at the end, so mid-run telemetry
    // snapshots see the pass cadence. Totals are unchanged.
    metrics.neighbor_scans->Increment(local_neighbor_scans);
    local_neighbor_scans = 0;
  }

  metrics.vertices_assigned->Increment(local_assigned);
  metrics.tie_breaks->Increment(local_tie_breaks);
  metrics.capacity_fallbacks->Increment(local_fallbacks);
  metrics.gather_blocks->Increment(gather.blocks);
  metrics.gather_prefetched->Increment(gather.prefetched);

  Partitioning result;
  result.model = CutModel::kEdgeCut;
  result.k = k;
  state.NoteAuxiliaryBytes(
      static_cast<uint64_t>(n) * sizeof(PartitionId) +  // assignment
      static_cast<uint64_t>(k) * sizeof(uint32_t));     // neighbor_counts
  result.state_bytes = state.SynopsisBytes();
  result.vertex_to_partition = std::move(assignment);
  DeriveEdgePlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp::internal_edgecut
