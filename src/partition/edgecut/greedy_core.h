#ifndef SGP_PARTITION_EDGECUT_GREEDY_CORE_H_
#define SGP_PARTITION_EDGECUT_GREEDY_CORE_H_

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp::internal_edgecut {

/// Objective function of the streaming greedy vertex placement.
enum class Objective {
  kLdg,     // Equation (4): |P ∩ N(u)| · (1 − |P|/C)
  kFennel,  // Equation (5): |P ∩ N(u)| − α·γ·|P|^{γ−1}
};

/// Shared driver for LDG, FENNEL and their re-streaming variants [34].
/// Runs `passes` passes over the vertex stream; passes after the first see
/// the previous pass's assignment (the re-streaming model). Both objectives
/// enforce the hard capacity C = β·n/k of Equation (1).
Partitioning RunStreamingGreedy(const Graph& graph,
                                const PartitionConfig& config,
                                Objective objective, uint32_t passes);

}  // namespace sgp::internal_edgecut

#endif  // SGP_PARTITION_EDGECUT_GREEDY_CORE_H_
