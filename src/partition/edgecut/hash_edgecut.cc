#include "partition/edgecut/hash_edgecut.h"

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "partition/state.h"

namespace sgp {

Partitioning HashEdgeCutPartitioner::Run(const Graph& graph,
                                         const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  Partitioning result;
  result.model = CutModel::kEdgeCut;
  result.k = config.k;
  result.vertex_to_partition.resize(graph.num_vertices());
  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    result.vertex_to_partition[u] = hasher.Pick(HashU64Seeded(u, config.seed));
  }
  // O(k) synopsis: capacity weights for the hasher, nothing per vertex.
  result.state_bytes = state.SynopsisBytes();
  DeriveEdgePlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
