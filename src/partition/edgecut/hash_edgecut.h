#ifndef SGP_PARTITION_EDGECUT_HASH_EDGECUT_H_
#define SGP_PARTITION_EDGECUT_HASH_EDGECUT_H_

#include "partition/partitioner.h"

namespace sgp {

/// Hash-based random edge-cut partitioning (ECR): vertex u goes to
/// hash(u) mod k. Perfectly balanced in expectation, embarrassingly
/// parallel, topology-oblivious; its expected edge-cut ratio is 1 − 1/k
/// (Section 4.1.1).
class HashEdgeCutPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "ECR"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_HASH_EDGECUT_H_
