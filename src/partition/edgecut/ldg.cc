#include "partition/edgecut/ldg.h"

#include "partition/edgecut/greedy_core.h"

namespace sgp {

Partitioning LdgPartitioner::Run(const Graph& graph,
                                 const PartitionConfig& config) const {
  return internal_edgecut::RunStreamingGreedy(
      graph, config, internal_edgecut::Objective::kLdg, /*passes=*/1);
}

}  // namespace sgp
