#ifndef SGP_PARTITION_EDGECUT_LDG_H_
#define SGP_PARTITION_EDGECUT_LDG_H_

#include "partition/partitioner.h"

namespace sgp {

/// Linear Deterministic Greedy (Stanton & Kliot, KDD'12). Assigns each
/// streamed vertex to the partition holding most of its neighbors, scaled
/// by a multiplicative penalty that strictly enforces balance
/// (Equation 4).
class LdgPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "LDG"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_LDG_H_
