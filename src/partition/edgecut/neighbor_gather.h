#ifndef SGP_PARTITION_EDGECUT_NEIGHBOR_GATHER_H_
#define SGP_PARTITION_EDGECUT_NEIGHBOR_GATHER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace sgp::internal_edgecut {

/// Cache-conscious neighbor-count accumulation for the edge-cut scoring
/// family (LDG/FENNEL/restreaming, Ginger phase 1).
///
/// The naive per-vertex loop interleaves two very different access
/// patterns: a random-indexed load from the flat assignment array
/// (`assignment[nbr]`, one potential cache miss per neighbor) and a
/// second random-indexed read-modify-write into the k-wide count table.
/// For high-degree vertices the two streams thrash each other out of L1.
///
/// This helper splits the loop into a chunked gather-then-accumulate
/// pipeline: blocks of `kGatherBlock` neighbor assignments are first
/// gathered into a dense local buffer — with `__builtin_prefetch` issued
/// `kGatherPrefetchDist` neighbors ahead so the line for assignment[nbr]
/// is in flight before the demand load — and then a second tight pass
/// bumps the count table from the buffer, which by then is a pure
/// L1-resident sweep. The observable effect (counts, touched order,
/// scan total) is identical to the naive loop; only the memory schedule
/// changes, so partition checksums are unaffected.
struct NeighborGather {
  /// Block length of the gather buffer: 256 × 4-byte assignments = 4 KiB,
  /// comfortably L1-resident next to the count table.
  static constexpr size_t kGatherBlock = 256;
  /// How many neighbors ahead the gather pass prefetches. At ~16 pending
  /// loads the prefetcher covers a DRAM round trip without evicting the
  /// block being gathered.
  static constexpr size_t kGatherPrefetchDist = 16;

  std::array<PartitionId, kGatherBlock> buffer;
  /// Deterministic pipeline accounting, flushed by the caller into
  /// partition.greedy.gather.{blocks,prefetched}.
  uint64_t blocks = 0;
  uint64_t prefetched = 0;

  /// Accumulates the partition histogram of `nbrs` under `assignment`
  /// into `neighbor_counts`, recording each first-touched partition in
  /// `touched`. Returns the number of neighbors scanned.
  uint64_t Accumulate(std::span<const VertexId> nbrs,
                      const PartitionId* assignment,
                      uint32_t* neighbor_counts,
                      std::vector<PartitionId>& touched) {
    const size_t deg = nbrs.size();
    for (size_t base = 0; base < deg; base += kGatherBlock) {
      const size_t len = deg - base < kGatherBlock ? deg - base : kGatherBlock;
      ++blocks;
      for (size_t j = 0; j < len; ++j) {
        const size_t ahead = base + j + kGatherPrefetchDist;
        if (ahead < deg) {
          __builtin_prefetch(&assignment[nbrs[ahead]], 0, 1);
          ++prefetched;
        }
        buffer[j] = assignment[nbrs[base + j]];
      }
      for (size_t j = 0; j < len; ++j) {
        const PartitionId part = buffer[j];
        if (part == kInvalidPartition) continue;
        if (neighbor_counts[part]++ == 0) touched.push_back(part);
      }
    }
    return deg;
  }
};

}  // namespace sgp::internal_edgecut

#endif  // SGP_PARTITION_EDGECUT_NEIGHBOR_GATHER_H_
