#include "partition/edgecut/parallel_streaming.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

namespace {

// Worker-interval scratch of the batched sharded scorers: the combined
// (published + own delta) loads materialized as flat arrays at the start
// of each worker's interval and updated incrementally per placement.
// Only the owning worker mutates state between barriers, so the scratch
// stays exactly equal to CombinedLoad/CombinedEffectiveLoad — same
// integers, same division — for the whole interval.
struct CombinedLoadScratch {
  std::vector<uint64_t> loads;
  std::vector<double> effective;

  void Fill(const ShardedPartitionState& shard, uint32_t w, bool eff) {
    const PartitionId k = shard.global().k();
    loads.resize(k);
    if (eff) effective.resize(k);
    for (PartitionId p = 0; p < k; ++p) {
      loads[p] = shard.CombinedLoad(w, p);
      if (eff) {
        effective[p] = static_cast<double>(loads[p]) /
                       shard.global().weights()[p];
      }
    }
  }

  void AddLoad(const ShardedPartitionState& shard, PartitionId p, bool eff) {
    ++loads[p];
    if (eff) {
      effective[p] = static_cast<double>(loads[p]) /
                     shard.global().weights()[p];
    }
  }
};

// ---------------------------------------------------------------------
// Vertex-stream driver: LDG / FENNEL. Generalizes the original parallel
// LDG loop — the LDG scoring branch is expression-identical to it.
// ---------------------------------------------------------------------
ParallelStreamResult RunParallelVertexStream(
    const Graph& graph, const PartitionConfig& config,
    const ParallelStreamOptions& options, ParallelAlgo algo) {
  Timer timer;
  const VertexId n = graph.num_vertices();
  const PartitionId k = config.k;
  const uint32_t s = options.num_streams;
  ShardedPartitionState shard(config, s);
  shard.global().InitCapacities(n, config.balance_slack);
  const std::vector<double>& weights = shard.global().weights();
  const std::vector<double>& capacity = shard.global().capacities();

  // FENNEL α = m·k^{γ−1}/n^{γ} (√k·m/n^{3/2} at γ = 1.5), as in the
  // sequential greedy core.
  const double gamma = config.fennel_gamma;
  double alpha = config.fennel_alpha;
  if (alpha == 0.0 && n > 0) {
    alpha = static_cast<double>(graph.num_edges()) *
            std::pow(static_cast<double>(k), gamma - 1.0) /
            std::pow(static_cast<double>(n), gamma);
  }
  const bool gamma_is_three_halves = gamma == 1.5;

  // Round-robin split across ingest workers, pulled through the chunked
  // source (chunk boundaries don't change the sequence).
  std::vector<std::vector<VertexId>> substreams(s);
  {
    InMemoryVertexSource source(graph, config.order, config.seed,
                                config.ingest_chunk_size);
    size_t i = 0;
    ForEachStreamItem(source, [&](VertexId u) {
      substreams[i++ % s].push_back(u);
    });
  }

  // Published (synchronized) assignments, plus per-worker unpublished
  // records; loads live in the sharded state.
  std::vector<PartitionId> published(n, kInvalidPartition);
  std::vector<std::vector<std::pair<VertexId, PartitionId>>> deltas(s);
  // Worker-local view lookup: own delta shadows the published state.
  std::vector<PartitionId> scratch_view(n, kInvalidPartition);

  score::GreedyObjective objective;
  objective.ldg = algo == ParallelAlgo::kLdg;
  objective.alpha = alpha;
  objective.gamma = gamma;
  objective.sqrt_form = gamma_is_three_halves;

  ParallelStreamResult result;
  ScoreCoreStats score_stats;
  std::vector<uint32_t> neighbor_counts(k, 0);
  std::vector<double> scores(k, 0.0);
  std::vector<PartitionId> touched;
  std::vector<size_t> cursor(s, 0);
  CombinedLoadScratch comb;
  uint64_t tie_breaks = 0;  // counted by the kernels, not reported here
  const ScoreMode mode = config.score_mode;
  const score::SimdTier tier = mode == ScoreMode::kSimd
                                   ? score::ActiveSimdTier()
                                   : score::SimdTier::kPortable;
  // Pow-form FENNEL has no SIMD twin; those picks fall back to batched.
  const bool simd_greedy =
      mode == ScoreMode::kSimd && (objective.ldg || objective.sqrt_form);

  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (uint32_t w = 0; w < s; ++w) {
      // Build this worker's view: published + own delta.
      for (const auto& [v, p] : deltas[w]) scratch_view[v] = p;
      auto view = [&](VertexId v) {
        return scratch_view[v] != kInvalidPartition ? scratch_view[v]
                                                    : published[v];
      };
      comb.Fill(shard, w, /*eff=*/false);
      ++score_stats.batches;
      const size_t end = std::min(cursor[w] + options.sync_interval,
                                  substreams[w].size());
      for (size_t i = cursor[w]; i < end; ++i) {
        const VertexId u = substreams[w][i];
        for (VertexId v : graph.Neighbors(u)) {
          PartitionId p = view(v);
          if (p == kInvalidPartition) continue;
          if (neighbor_counts[p]++ == 0) touched.push_back(p);
        }
        score_stats.candidates += k;
        PartitionId best;
        if (mode == ScoreMode::kScalar) {
          best = score::GreedyPickScalar(k, neighbor_counts.data(),
                                         comb.loads.data(), weights.data(),
                                         capacity.data(), objective,
                                         &tie_breaks);
        } else if (simd_greedy) {
          ++score_stats.simd_picks;
          best = score::GreedyPickSimd(tier, k, neighbor_counts.data(),
                                       comb.loads.data(), weights.data(),
                                       capacity.data(), objective,
                                       scores.data());
        } else {
          if (mode == ScoreMode::kSimd) ++score_stats.simd_fallbacks;
          best = score::GreedyPickBatched(k, neighbor_counts.data(),
                                          comb.loads.data(), weights.data(),
                                          capacity.data(), objective,
                                          scores.data(), &tie_breaks);
        }
        if (best == kInvalidPartition) best = u % k;  // all full (stale)
        deltas[w].emplace_back(u, best);
        scratch_view[u] = best;
        shard.AddWorkerLoad(w, best);
        comb.AddLoad(shard, best, /*eff=*/false);
        for (PartitionId p : touched) neighbor_counts[p] = 0;
        touched.clear();
      }
      cursor[w] = end;
      work_left |= cursor[w] < substreams[w].size();
      // Reset the scratch view entries this worker shadowed.
      for (const auto& [v, p] : deltas[w]) scratch_view[v] = kInvalidPartition;
    }
    // Barrier: publish all deltas; every record reaches the other workers.
    ++result.sync_rounds;
    for (uint32_t w = 0; w < s; ++w) {
      result.sync_messages += deltas[w].size() * (s - 1);
      for (const auto& [v, p] : deltas[w]) published[v] = p;
      deltas[w].clear();
    }
    shard.Publish();
  }

  (void)tie_breaks;
  FlushScoreCoreStats(score_stats);
  result.partitioning.model = CutModel::kEdgeCut;
  result.partitioning.k = k;
  result.partitioning.vertex_to_partition = std::move(published);
  DeriveEdgePlacement(graph, &result.partitioning);
  shard.global().NoteAuxiliaryBytes(
      static_cast<uint64_t>(n) * 2 * sizeof(PartitionId));  // view arrays
  result.partitioning.state_bytes = shard.SynopsisBytes();
  result.partitioning.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

// ---------------------------------------------------------------------
// Edge-stream driver: HDRF / PGG. The shared synopsis — partial degrees,
// edge loads, replica sets A(u) — goes through the published/delta
// mechanism; with one worker each placement sees exact state and the
// result equals the sequential algorithm's.
// ---------------------------------------------------------------------

// One batched (or SIMD — `simd` routes the sweep through HdrfPickSimd on
// `tier`, same selection) HDRF placement against worker w's combined
// view: the combined loads come from the interval scratch and replica
// membership from the bit rows (published row OR delta row), scored by
// the shared ScoreCore kernel. Bit-identical to PlaceHdrfSharded below.
PartitionId PlaceHdrfShardedBatched(ShardedPartitionState& shard, uint32_t w,
                                    CombinedLoadScratch& comb, VertexId u,
                                    VertexId v, double lambda, bool simd,
                                    score::SimdTier tier, double* scores,
                                    ScoreCoreStats& stats) {
  const PartitionId k = shard.global().k();
  shard.IncrementWorkerDegree(w, u);
  shard.IncrementWorkerDegree(w, v);
  const double du = shard.CombinedDegree(w, u);
  const double dv = shard.CombinedDegree(w, v);
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;

  double max_load, spread;
  score::EffectiveSpread(comb.effective.data(), k, &max_load, &spread);

  const score::MembershipRow row_u{shard.GlobalReplicaRow(u),
                                   shard.DeltaReplicaRow(w, u)};
  const score::MembershipRow row_v{shard.GlobalReplicaRow(v),
                                   shard.DeltaReplicaRow(w, v)};
  uint64_t ties = 0;  // the sharded driver does not report tie counts
  stats.candidates += k;
  PartitionId best;
  if (simd) {
    ++stats.simd_picks;
    best = score::HdrfPickSimd(tier, k, comb.effective.data(),
                               comb.loads.data(), row_u, row_v, theta_u,
                               theta_v, lambda, max_load, spread, scores,
                               &stats.bitset_hits);
  } else {
    best = score::HdrfPickBatched(k, comb.effective.data(), comb.loads.data(),
                                  row_u, row_v, theta_u, theta_v, lambda,
                                  max_load, spread, &ties,
                                  &stats.bitset_hits);
  }

  shard.AddWorkerLoad(w, best);
  comb.AddLoad(shard, best, /*eff=*/true);
  if (!row_u.Test(best)) shard.AddWorkerReplica(w, u, best);
  if (!row_v.Test(best)) shard.AddWorkerReplica(w, v, best);
  return best;
}

// One batched PGG placement against worker w's combined view; the
// replica-set walks of PlacePggSharded become word-wise row operations.
PartitionId PlacePggShardedBatched(ShardedPartitionState& shard, uint32_t w,
                                   CombinedLoadScratch& comb,
                                   const Graph& graph, VertexId u, VertexId v,
                                   std::vector<uint64_t>& inter_words,
                                   ScoreCoreStats& stats) {
  const PartitionId k = shard.global().k();
  const double* weights = shard.global().weights().data();
  const score::MembershipRow row_u{shard.GlobalReplicaRow(u),
                                   shard.DeltaReplicaRow(w, u)};
  const score::MembershipRow row_v{shard.GlobalReplicaRow(v),
                                   shard.DeltaReplicaRow(w, v)};
  auto pick_over = [&](score::MembershipRow row) {
    const uint64_t before = stats.bitset_hits;
    const PartitionId t = score::LeastLoadedOverBits(
        k, comb.loads.data(), weights, row, &stats.bitset_hits);
    stats.candidates += stats.bitset_hits - before;
    return t;
  };

  PartitionId target;
  const bool u_empty = !shard.HasAnyReplica(w, u);
  const bool v_empty = !shard.HasAnyReplica(w, v);
  if (!u_empty && !v_empty) {
    bool any = false;
    score::IntersectRows(k, row_u, row_v, inter_words.data(), &any);
    if (any) {
      target = pick_over({inter_words.data(), nullptr});
    } else {
      const bool u_busier =
          static_cast<int64_t>(graph.Degree(u)) - shard.CombinedDegree(w, u) >=
          static_cast<int64_t>(graph.Degree(v)) - shard.CombinedDegree(w, v);
      target = pick_over(u_busier ? row_u : row_v);
    }
  } else if (!u_empty) {
    target = pick_over(row_u);
  } else if (!v_empty) {
    target = pick_over(row_v);
  } else {
    stats.candidates += k;
    target = score::LeastLoadedAll(k, comb.loads.data(), weights);
  }

  shard.AddWorkerLoad(w, target);
  comb.AddLoad(shard, target, /*eff=*/false);
  // Placed degrees update after the decision, as in the sequential code.
  shard.IncrementWorkerDegree(w, u);
  shard.IncrementWorkerDegree(w, v);
  if (!row_u.Test(target)) shard.AddWorkerReplica(w, u, target);
  if (!row_v.Test(target)) shard.AddWorkerReplica(w, v, target);
  return target;
}

// One HDRF placement against worker w's combined (published + own delta)
// view — the reference (scalar) path. Expressions mirror
// ScoreCore::PlaceHdrfEdgeScalar; effective loads are recomputed from the
// combined integer loads, which yields the same doubles the sequential
// incremental update maintains.
PartitionId PlaceHdrfSharded(ShardedPartitionState& shard, uint32_t w,
                             VertexId u, VertexId v, double lambda) {
  const PartitionId k = shard.global().k();
  shard.IncrementWorkerDegree(w, u);
  shard.IncrementWorkerDegree(w, v);
  const double du = shard.CombinedDegree(w, u);
  const double dv = shard.CombinedDegree(w, v);
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;

  double max_load = 0;
  double min_load = shard.CombinedEffectiveLoad(w, 0);
  for (PartitionId i = 0; i < k; ++i) {
    const double eff = shard.CombinedEffectiveLoad(w, i);
    max_load = std::max(max_load, eff);
    min_load = std::min(min_load, eff);
  }
  const double spread = 1.0 + (max_load - min_load);  // ε = 1

  PartitionId best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (PartitionId i = 0; i < k; ++i) {
    double g = 0;
    if (shard.ReplicaContains(w, u, i)) g += 1.0 + theta_v;
    if (shard.ReplicaContains(w, v, i)) g += 1.0 + theta_u;
    double score =
        g + lambda * (max_load - shard.CombinedEffectiveLoad(w, i)) / spread;
    if (score > best_score) {
      best_score = score;
      best = i;
    } else if (score == best_score &&
               shard.CombinedLoad(w, i) < shard.CombinedLoad(w, best)) {
      best = i;
    }
  }
  shard.AddWorkerLoad(w, best);
  if (!shard.ReplicaContains(w, u, best)) shard.AddWorkerReplica(w, u, best);
  if (!shard.ReplicaContains(w, v, best)) shard.AddWorkerReplica(w, v, best);
  return best;
}

// One PGG placement against worker w's combined view. Mirrors the
// sequential PowerGraphGreedyPartitioner; the least-loaded rule ties
// toward the lower partition id, so it is independent of the order the
// combined replica sets are visited in.
PartitionId PlacePggSharded(ShardedPartitionState& shard, uint32_t w,
                            const Graph& graph, VertexId u, VertexId v,
                            std::vector<PartitionId>& setu,
                            std::vector<PartitionId>& setv,
                            std::vector<PartitionId>& intersection,
                            const std::vector<PartitionId>& all) {
  setu.clear();
  setv.clear();
  shard.ForEachReplica(w, u, [&](PartitionId p) { setu.push_back(p); });
  shard.ForEachReplica(w, v, [&](PartitionId p) { setv.push_back(p); });

  auto least_loaded = [&](const std::vector<PartitionId>& candidates) {
    PartitionId best = candidates.front();
    double best_load = shard.CombinedEffectiveLoad(w, best);
    for (PartitionId p : candidates) {
      const double load = shard.CombinedEffectiveLoad(w, p);
      if (load < best_load || (load == best_load && p < best)) {
        best_load = load;
        best = p;
      }
    }
    return best;
  };

  PartitionId target;
  if (!setu.empty() && !setv.empty()) {
    intersection.clear();
    for (PartitionId p : setu) {
      if (shard.ReplicaContains(w, v, p)) intersection.push_back(p);
    }
    if (!intersection.empty()) {
      target = least_loaded(intersection);
    } else {
      const bool u_busier =
          static_cast<int64_t>(graph.Degree(u)) - shard.CombinedDegree(w, u) >=
          static_cast<int64_t>(graph.Degree(v)) - shard.CombinedDegree(w, v);
      target = least_loaded(u_busier ? setu : setv);
    }
  } else if (!setu.empty()) {
    target = least_loaded(setu);
  } else if (!setv.empty()) {
    target = least_loaded(setv);
  } else {
    target = least_loaded(all);
  }

  shard.AddWorkerLoad(w, target);
  // Placed degrees update after the decision, as in the sequential code.
  shard.IncrementWorkerDegree(w, u);
  shard.IncrementWorkerDegree(w, v);
  if (!shard.ReplicaContains(w, u, target)) {
    shard.AddWorkerReplica(w, u, target);
  }
  if (!shard.ReplicaContains(w, v, target)) {
    shard.AddWorkerReplica(w, v, target);
  }
  return target;
}

ParallelStreamResult RunParallelEdgeStream(
    const Graph& graph, const PartitionConfig& config,
    const ParallelStreamOptions& options, ParallelAlgo algo) {
  Timer timer;
  const VertexId n = graph.num_vertices();
  const PartitionId k = config.k;
  const uint32_t s = options.num_streams;
  ShardedPartitionState shard(config, s);
  shard.InitDegreeTable(n);
  shard.InitReplicas(n);
  if (algo == ParallelAlgo::kHdrf) shard.global().InitEffectiveLoads();

  std::vector<std::vector<StreamEdge>> substreams(s);
  {
    InMemoryEdgeSource source(graph, config.order, config.seed,
                              config.ingest_chunk_size);
    size_t i = 0;
    ForEachStreamItem(source, [&](const StreamEdge& e) {
      substreams[i++ % s].push_back(e);
    });
  }

  ParallelStreamResult result;
  result.partitioning.model = CutModel::kVertexCut;
  result.partitioning.k = k;
  result.partitioning.edge_to_partition.resize(graph.num_edges());

  // kSimd rides the batched machinery: HDRF sweeps dispatch to the SIMD
  // kernel, while PGG keeps the word-at-a-time bit scans (sparse replica
  // sets — a dense k-lane sweep would be slower).
  const bool batched = config.score_mode != ScoreMode::kScalar;
  const bool simd = config.score_mode == ScoreMode::kSimd;
  const score::SimdTier tier =
      simd ? score::ActiveSimdTier() : score::SimdTier::kPortable;
  if (batched) shard.EnableReplicaBitIndex();
  const bool is_hdrf = algo == ParallelAlgo::kHdrf;
  ScoreCoreStats score_stats;
  CombinedLoadScratch comb;
  std::vector<double> scores(k, 0.0);
  std::vector<uint64_t> inter_words((static_cast<uint64_t>(k) + 63) / 64, 0);
  std::vector<PartitionId> all(k);
  for (PartitionId i = 0; i < k; ++i) all[i] = i;
  std::vector<PartitionId> setu, setv, intersection;
  std::vector<size_t> cursor(s, 0);
  std::vector<uint64_t> round_placed(s, 0);

  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (uint32_t w = 0; w < s; ++w) {
      if (batched) comb.Fill(shard, w, /*eff=*/is_hdrf);
      ++score_stats.batches;
      const size_t end = std::min(cursor[w] + options.sync_interval,
                                  substreams[w].size());
      round_placed[w] = end - cursor[w];
      for (size_t i = cursor[w]; i < end; ++i) {
        const StreamEdge& e = substreams[w][i];
        PartitionId target;
        if (batched) {
          target = is_hdrf
                       ? PlaceHdrfShardedBatched(shard, w, comb, e.src, e.dst,
                                                 config.hdrf_lambda, simd,
                                                 tier, scores.data(),
                                                 score_stats)
                       : PlacePggShardedBatched(shard, w, comb, graph, e.src,
                                                e.dst, inter_words,
                                                score_stats);
        } else {
          if (is_hdrf) {
            score_stats.candidates += k;
            target = PlaceHdrfSharded(shard, w, e.src, e.dst,
                                      config.hdrf_lambda);
          } else {
            target = PlacePggSharded(shard, w, graph, e.src, e.dst, setu,
                                     setv, intersection, all);
          }
        }
        result.partitioning.edge_to_partition[e.id] = target;
      }
      cursor[w] = end;
      work_left |= cursor[w] < substreams[w].size();
    }
    // Barrier: each placed-edge record (and the replica/degree updates it
    // implies) reaches the other workers.
    ++result.sync_rounds;
    for (uint32_t w = 0; w < s; ++w) {
      result.sync_messages += round_placed[w] * (s - 1);
      round_placed[w] = 0;
    }
    shard.Publish();
  }

  FlushScoreCoreStats(score_stats);
  DeriveMasterPlacement(graph, &result.partitioning);
  result.partitioning.state_bytes = shard.SynopsisBytes();
  result.partitioning.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

std::string_view ParallelAlgoName(ParallelAlgo algo) {
  switch (algo) {
    case ParallelAlgo::kLdg:
      return "LDG";
    case ParallelAlgo::kFennel:
      return "FNL";
    case ParallelAlgo::kHdrf:
      return "HDRF";
    case ParallelAlgo::kPgg:
      return "PGG";
  }
  return "unknown";
}

ParallelStreamResult RunParallelStreaming(const Graph& graph,
                                          const PartitionConfig& config,
                                          const ParallelStreamOptions& options,
                                          ParallelAlgo algo) {
  SGP_CHECK(config.k > 0);
  SGP_CHECK(options.num_streams >= 1);
  SGP_CHECK(options.sync_interval >= 1);
  switch (algo) {
    case ParallelAlgo::kLdg:
    case ParallelAlgo::kFennel:
      return RunParallelVertexStream(graph, config, options, algo);
    case ParallelAlgo::kHdrf:
    case ParallelAlgo::kPgg:
      return RunParallelEdgeStream(graph, config, options, algo);
  }
  SGP_CHECK(false && "unknown parallel algorithm");
  return {};
}

ParallelStreamResult ParallelStreamingLdg(
    const Graph& graph, const PartitionConfig& config,
    const ParallelStreamOptions& options) {
  return RunParallelStreaming(graph, config, options, ParallelAlgo::kLdg);
}

}  // namespace sgp
