#include "partition/edgecut/parallel_streaming.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "stream/stream.h"

namespace sgp {

ParallelStreamResult ParallelStreamingLdg(
    const Graph& graph, const PartitionConfig& config,
    const ParallelStreamOptions& options) {
  SGP_CHECK(config.k > 0);
  SGP_CHECK(options.num_streams >= 1);
  SGP_CHECK(options.sync_interval >= 1);
  Timer timer;
  const VertexId n = graph.num_vertices();
  const PartitionId k = config.k;
  const uint32_t s = options.num_streams;
  const std::vector<double> weights = NormalizedCapacities(config);
  std::vector<double> capacity(k);
  for (PartitionId i = 0; i < k; ++i) {
    capacity[i] = std::max(
        1.0, config.balance_slack * static_cast<double>(n) /
                 static_cast<double>(k) * weights[i]);
  }

  std::vector<VertexId> stream =
      MakeVertexStream(graph, config.order, config.seed);
  // Round-robin split across ingest workers.
  std::vector<std::vector<VertexId>> substreams(s);
  for (size_t i = 0; i < stream.size(); ++i) {
    substreams[i % s].push_back(stream[i]);
  }

  // Published (synchronized) state, plus per-worker unpublished deltas.
  std::vector<PartitionId> published(n, kInvalidPartition);
  std::vector<uint64_t> published_sizes(k, 0);
  std::vector<std::vector<std::pair<VertexId, PartitionId>>> deltas(s);
  std::vector<std::vector<uint64_t>> delta_sizes(
      s, std::vector<uint64_t>(k, 0));
  // Worker-local view lookup: own delta shadows the published state.
  std::vector<PartitionId> scratch_view(n, kInvalidPartition);

  ParallelStreamResult result;
  std::vector<uint32_t> neighbor_counts(k, 0);
  std::vector<PartitionId> touched;
  std::vector<size_t> cursor(s, 0);

  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (uint32_t w = 0; w < s; ++w) {
      // Build this worker's view: published + own delta.
      for (const auto& [v, p] : deltas[w]) scratch_view[v] = p;
      auto view = [&](VertexId v) {
        return scratch_view[v] != kInvalidPartition ? scratch_view[v]
                                                    : published[v];
      };
      const size_t end = std::min(cursor[w] + options.sync_interval,
                                  substreams[w].size());
      for (size_t i = cursor[w]; i < end; ++i) {
        const VertexId u = substreams[w][i];
        for (VertexId v : graph.Neighbors(u)) {
          PartitionId p = view(v);
          if (p == kInvalidPartition) continue;
          if (neighbor_counts[p]++ == 0) touched.push_back(p);
        }
        PartitionId best = kInvalidPartition;
        double best_score = -std::numeric_limits<double>::infinity();
        double best_size = 0;
        for (PartitionId part = 0; part < k; ++part) {
          const double size = static_cast<double>(
              published_sizes[part] + delta_sizes[w][part]);
          if (size + 1.0 > capacity[part]) continue;
          double score = static_cast<double>(neighbor_counts[part]) *
                         (1.0 - size / capacity[part]);
          // Ties toward the least-loaded partition, as in sequential LDG.
          if (score > best_score ||
              (score == best_score && size < best_size)) {
            best_score = score;
            best = part;
            best_size = size;
          }
        }
        if (best == kInvalidPartition) best = u % k;  // all full (stale)
        deltas[w].emplace_back(u, best);
        scratch_view[u] = best;
        ++delta_sizes[w][best];
        for (PartitionId p : touched) neighbor_counts[p] = 0;
        touched.clear();
      }
      cursor[w] = end;
      work_left |= cursor[w] < substreams[w].size();
      // Reset the scratch view entries this worker shadowed.
      for (const auto& [v, p] : deltas[w]) scratch_view[v] = kInvalidPartition;
    }
    // Barrier: publish all deltas; every record reaches the other workers.
    ++result.sync_rounds;
    for (uint32_t w = 0; w < s; ++w) {
      result.sync_messages += deltas[w].size() * (s - 1);
      for (const auto& [v, p] : deltas[w]) {
        published[v] = p;
        ++published_sizes[p];
      }
      deltas[w].clear();
      std::fill(delta_sizes[w].begin(), delta_sizes[w].end(), 0);
    }
  }

  result.partitioning.model = CutModel::kEdgeCut;
  result.partitioning.k = k;
  result.partitioning.vertex_to_partition = std::move(published);
  DeriveEdgePlacement(graph, &result.partitioning);
  result.partitioning.state_bytes =
      static_cast<uint64_t>(n) * sizeof(PartitionId) +
      static_cast<uint64_t>(s) * k * sizeof(uint64_t);
  result.partitioning.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
