#ifndef SGP_PARTITION_EDGECUT_PARALLEL_STREAMING_H_
#define SGP_PARTITION_EDGECUT_PARALLEL_STREAMING_H_

#include <cstdint>
#include <string_view>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Options of the parallel-ingest simulation.
struct ParallelStreamOptions {
  /// Number of concurrent ingest workers, each consuming its share of the
  /// vertex stream.
  uint32_t num_streams = 4;

  /// Vertices each worker places between global state synchronizations.
  /// 1 = fully synchronous (equivalent to the sequential algorithm up to
  /// interleaving); larger intervals mean staler neighbor/size views and
  /// cheaper coordination.
  uint32_t sync_interval = 64;
};

/// Result of a parallel-ingest run: the partitioning plus the
/// coordination cost that Table 1's "Parallelization" column is about.
struct ParallelStreamResult {
  Partitioning partitioning;

  /// Global synchronization barriers executed.
  uint64_t sync_rounds = 0;

  /// Assignment records exchanged between workers (each delta entry is
  /// broadcast to the other workers). Hash partitioning needs zero —
  /// Section 4.1.1: greedy methods "require each worker to continuously
  /// communicate and synchronize the history of previous assignments".
  uint64_t sync_messages = 0;
};

/// Algorithms the parallel driver can run. LDG and FENNEL consume the
/// vertex stream (edge-cut); HDRF and PGG consume the edge stream
/// (vertex-cut), sharing partial degrees and replica sets A(u) through
/// the same published-state/delta mechanism — the "distributed table"
/// the paper says greedy vertex-cut methods must synchronize.
enum class ParallelAlgo {
  kLdg,
  kFennel,
  kHdrf,
  kPgg,
};

/// Short uppercase name ("LDG", "FNL", "HDRF", "PGG") for bench output.
std::string_view ParallelAlgoName(ParallelAlgo algo);

/// Deterministic simulation of parallel streaming ingest: `num_streams`
/// workers consume the stream round-robin; each worker sees the globally
/// *published* synopsis (as of the last barrier) plus its own unpublished
/// delta, so between barriers it scores against stale neighbor history,
/// stale loads, stale degrees and stale replica sets. Shows how
/// partitioning quality decays as synchronization gets cheaper — the
/// trade-off that makes hash partitioning attractive for parallel
/// loaders. With one stream the result is exactly the sequential
/// algorithm's.
ParallelStreamResult RunParallelStreaming(const Graph& graph,
                                          const PartitionConfig& config,
                                          const ParallelStreamOptions& options,
                                          ParallelAlgo algo);

/// LDG via RunParallelStreaming — kept as the named entry point the
/// ablation benches and tests built against.
ParallelStreamResult ParallelStreamingLdg(
    const Graph& graph, const PartitionConfig& config,
    const ParallelStreamOptions& options);

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_PARALLEL_STREAMING_H_
