#ifndef SGP_PARTITION_EDGECUT_PARALLEL_STREAMING_H_
#define SGP_PARTITION_EDGECUT_PARALLEL_STREAMING_H_

#include <cstdint>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Options of the parallel-ingest simulation.
struct ParallelStreamOptions {
  /// Number of concurrent ingest workers, each consuming its share of the
  /// vertex stream.
  uint32_t num_streams = 4;

  /// Vertices each worker places between global state synchronizations.
  /// 1 = fully synchronous (equivalent to the sequential algorithm up to
  /// interleaving); larger intervals mean staler neighbor/size views and
  /// cheaper coordination.
  uint32_t sync_interval = 64;
};

/// Result of a parallel-ingest run: the partitioning plus the
/// coordination cost that Table 1's "Parallelization" column is about.
struct ParallelStreamResult {
  Partitioning partitioning;

  /// Global synchronization barriers executed.
  uint64_t sync_rounds = 0;

  /// Assignment records exchanged between workers (each delta entry is
  /// broadcast to the other workers). Hash partitioning needs zero —
  /// Section 4.1.1: greedy methods "require each worker to continuously
  /// communicate and synchronize the history of previous assignments".
  uint64_t sync_messages = 0;
};

/// Deterministic simulation of parallel streaming LDG: `num_streams`
/// ingest workers consume the vertex stream round-robin; each worker sees
/// the globally *published* assignments (last barrier) plus its own
/// un-published placements, so between barriers it works with stale
/// neighbor history and stale partition sizes. Shows how partitioning
/// quality decays as synchronization gets cheaper — the trade-off that
/// makes hash partitioning attractive for parallel loaders.
ParallelStreamResult ParallelStreamingLdg(
    const Graph& graph, const PartitionConfig& config,
    const ParallelStreamOptions& options);

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_PARALLEL_STREAMING_H_
