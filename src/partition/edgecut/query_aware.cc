#include "partition/edgecut/query_aware.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/timer.h"
#include "stream/source.h"

namespace sgp {

Partitioning QueryAwareStreamingPartition(
    const Graph& graph, const std::vector<uint64_t>& access_weights,
    const QueryAwareOptions& options) {
  SGP_CHECK(options.k > 0);
  SGP_CHECK(access_weights.size() == graph.num_vertices());
  Timer timer;
  const VertexId n = graph.num_vertices();
  const PartitionId k = options.k;

  // Vertices cost at least 1 so balance stays meaningful for cold regions.
  std::vector<double> cost(n);
  double total_cost = 0;
  for (VertexId v = 0; v < n; ++v) {
    cost[v] = std::max<double>(1.0, static_cast<double>(access_weights[v]));
    total_cost += cost[v];
  }
  const double capacity = std::max(
      1.0, options.balance_slack * total_cost / static_cast<double>(k));

  InMemoryVertexSource source(graph, options.order, options.seed);

  std::vector<PartitionId> assignment(n, kInvalidPartition);
  // Loads here are fractional access weights, not vertex counts, so this
  // partitioner keeps its own load vector instead of a PartitionState.
  std::vector<double> load(k, 0.0);
  std::vector<double> traversal_gain(k, 0.0);
  std::vector<PartitionId> touched;

  ForEachStreamItem(source, [&](VertexId u) {
    for (VertexId v : graph.Neighbors(u)) {
      PartitionId p = assignment[v];
      if (p == kInvalidPartition) continue;
      if (traversal_gain[p] == 0.0) touched.push_back(p);
      // Expected traversals over edge (u,v): a 1-hop query at either
      // endpoint crosses it.
      traversal_gain[p] += cost[u] + cost[v];
    }
    PartitionId best = kInvalidPartition;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < k; ++i) {
      if (load[i] + cost[u] > capacity) continue;
      double score = traversal_gain[i] * (1.0 - load[i] / capacity);
      if (score > best_score ||
          (score == best_score &&
           (best == kInvalidPartition || load[i] < load[best]))) {
        best_score = score;
        best = i;
      }
    }
    if (best == kInvalidPartition) {
      best = static_cast<PartitionId>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    assignment[u] = best;
    load[best] += cost[u];
    for (PartitionId p : touched) traversal_gain[p] = 0.0;
    touched.clear();
  });

  Partitioning result;
  result.model = CutModel::kEdgeCut;
  result.k = k;
  result.state_bytes =
      static_cast<uint64_t>(n) * (sizeof(PartitionId) + sizeof(double)) +
      static_cast<uint64_t>(k) * 2 * sizeof(double);
  result.vertex_to_partition = std::move(assignment);
  DeriveEdgePlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
