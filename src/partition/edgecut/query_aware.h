#ifndef SGP_PARTITION_EDGECUT_QUERY_AWARE_H_
#define SGP_PARTITION_EDGECUT_QUERY_AWARE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Options of the query-aware streaming partitioner.
struct QueryAwareOptions {
  PartitionId k = 4;

  /// Balance slack β over total *access weight* (not vertex count):
  /// heavily queried regions spread even when vertex counts stay even.
  double balance_slack = 1.05;

  uint64_t seed = 42;
  StreamOrder order = StreamOrder::kRandom;
};

/// Query-aware streaming edge-cut partitioning — the TAPER [19] family of
/// Appendix A, in streaming form. Like LDG it places each streamed vertex
/// greedily, but the objective minimizes *expected inter-partition
/// traversals*: each neighbor contributes its traversal frequency
/// (access(u) + access(v), the rate at which a 1-hop query crosses the
/// edge) instead of 1, and the balance constraint caps per-partition
/// access weight instead of vertex count. This is the streaming
/// counterpart of the offline workload-aware repartitioning of Figure 8
/// (WorkloadAwarePartition): one pass, O(n + k) state, no METIS run.
///
/// `access_weights` (size num_vertices) are expected per-vertex read
/// counts, e.g. Workload::AccessWeights().
Partitioning QueryAwareStreamingPartition(
    const Graph& graph, const std::vector<uint64_t>& access_weights,
    const QueryAwareOptions& options);

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_QUERY_AWARE_H_
