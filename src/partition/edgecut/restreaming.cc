#include "partition/edgecut/restreaming.h"

#include "common/check.h"
#include "partition/edgecut/greedy_core.h"

namespace sgp {

Partitioning RestreamingLdgPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  SGP_CHECK(config.restream_passes >= 1);
  return internal_edgecut::RunStreamingGreedy(
      graph, config, internal_edgecut::Objective::kLdg,
      config.restream_passes);
}

Partitioning RestreamingFennelPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  SGP_CHECK(config.restream_passes >= 1);
  return internal_edgecut::RunStreamingGreedy(
      graph, config, internal_edgecut::Objective::kFennel,
      config.restream_passes);
}

}  // namespace sgp
