#ifndef SGP_PARTITION_EDGECUT_RESTREAMING_H_
#define SGP_PARTITION_EDGECUT_RESTREAMING_H_

#include "partition/partitioner.h"

namespace sgp {

/// Re-streaming LDG (Nishimura & Ugander, KDD'13): repeats the LDG pass
/// `config.restream_passes` times; later passes see the previous
/// assignment, converging toward offline-quality cuts on static graphs.
class RestreamingLdgPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "RLDG"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

/// Re-streaming FENNEL (Nishimura & Ugander, KDD'13).
class RestreamingFennelPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "RFNL"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_EDGECUT_RESTREAMING_H_
