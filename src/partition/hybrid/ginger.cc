#include "partition/hybrid/ginger.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/edgecut/neighbor_gather.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

namespace {

// Ginger's phase-1 greedy shares the gather pipeline (and its counters)
// with the edge-cut family.
struct GingerMetrics {
  Counter* gather_blocks = nullptr;
  Counter* gather_prefetched = nullptr;

  GingerMetrics() = default;
  explicit GingerMetrics(MetricsRegistry& reg) {
    gather_blocks = reg.GetCounter("partition.greedy.gather.blocks");
    gather_prefetched = reg.GetCounter("partition.greedy.gather.prefetched");
  }

  static GingerMetrics& Get() {
    return CurrentRegistryMetrics<GingerMetrics>();
  }
};

}  // namespace

Partitioning GingerPartitioner::Run(const Graph& graph,
                                    const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const PartitionId k = config.k;
  const VertexId n = graph.num_vertices();
  const EdgeId m = graph.num_edges();

  // Group in-edge ids by target, so a vertex arrives "with its in-edges".
  std::vector<uint64_t> in_offsets(static_cast<size_t>(n) + 1, 0);
  for (const Edge& e : graph.edges()) ++in_offsets[e.dst + 1];
  for (VertexId u = 0; u < n; ++u) in_offsets[u + 1] += in_offsets[u];
  std::vector<EdgeId> in_edges(m);
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      in_edges[cursor[graph.edges()[e].dst]++] = e;
    }
  }

  Partitioning result;
  result.model = CutModel::kHybrid;
  result.k = k;
  result.vertex_to_partition.assign(n, kInvalidPartition);
  result.edge_to_partition.resize(m);

  // Synopsis: vertex loads (primary) + edge loads (secondary), balanced
  // jointly per Equation (8).
  PartitionState state(config);
  state.InitSecondaryLoads();
  const CapacityAwareHasher hasher(state);
  auto hash_part = [&](VertexId u) {
    return hasher.Pick(HashU64Seeded(u, config.seed));
  };
  const std::vector<double>& cap_weights = state.weights();
  const std::vector<uint64_t>& vertex_load = state.loads();
  const std::vector<uint64_t>& edge_load = state.secondary_loads();

  ScoreCore core(state, config.score_mode);
  uint64_t tie_breaks = 0;
  std::vector<uint32_t> neighbor_counts(k, 0);
  std::vector<double> combined_loads(k, 0.0);
  std::vector<PartitionId> touched;
  internal_edgecut::NeighborGather gather;
  const double vertices_per_edge =
      m == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(m);
  // Equation (8) leaves the scaling of the balance term implicit;
  // PowerLyra's implementation inherits FENNEL's γ = 1.5 power form with
  // α = √k · m / n^{3/2}, which keeps the penalty comparable to the
  // neighbor-count term. We do the same.
  const double gamma = 1.5;
  const double alpha =
      n == 0 ? 0.0
             : static_cast<double>(m) *
                   std::sqrt(static_cast<double>(k)) /
                   std::pow(static_cast<double>(n), 1.5);

  // --- Phase 1: place vertex masters along the stream. Low-degree
  // vertices use the Equation (8) greedy; high-degree vertices are hashed
  // (their gather load is spread by construction).
  auto is_high_degree = [&](VertexId v) {
    const uint32_t in_degree =
        graph.directed() ? graph.InDegree(v) : graph.Degree(v);
    return in_degree > config.hybrid_threshold;
  };
  // Hard capacity on the combined load, like FENNEL's streaming cap: the
  // expected combined load per partition is n/k.
  const double combined_capacity = config.balance_slack *
                                   static_cast<double>(n) /
                                   static_cast<double>(k);
  InMemoryVertexSource source(graph, config.order, config.seed,
                              config.ingest_chunk_size);
  for (auto stream_chunk = source.NextChunk(); !stream_chunk.empty();
       stream_chunk = source.NextChunk()) {
    core.NoteBatch();
    for (VertexId v : stream_chunk) {
      if (is_high_degree(v)) {
        result.vertex_to_partition[v] = hash_part(v);
        state.AddLoad(result.vertex_to_partition[v]);
        continue;
      }
      // Low-degree: Equation (8) over already-placed neighbors.
      gather.Accumulate(graph.Neighbors(v), result.vertex_to_partition.data(),
                        neighbor_counts.data(), touched);
      // Combined load ½(|Pi_v| + (n/m)|Pi_e|) of Equation (8), passed
      // through FENNEL's marginal-cost power form.
      for (PartitionId i = 0; i < k; ++i) {
        combined_loads[i] =
            0.5 *
            (static_cast<double>(vertex_load[i]) +
             vertices_per_edge * static_cast<double>(edge_load[i])) /
            cap_weights[i];
      }
      PartitionId best = core.PickGingerVertex(
          neighbor_counts.data(), combined_loads.data(), combined_capacity,
          alpha, gamma, &tie_breaks);
      if (best == kInvalidPartition) {
        // Every partition at capacity: least combined load wins.
        best = 0;
        for (PartitionId i = 1; i < k; ++i) {
          if (combined_loads[i] < combined_loads[best]) best = i;
        }
      }
      for (PartitionId p : touched) neighbor_counts[p] = 0;
      touched.clear();

      result.vertex_to_partition[v] = best;
      state.AddLoad(best);
      state.AddSecondaryLoad(best, in_offsets[v + 1] - in_offsets[v]);
    }
  }

  // --- Phase 2: place edges. The in-edges of a low-degree vertex follow
  // its master (edge-cut locality); the in-edges of a high-degree vertex
  // are re-assigned to their *source's* master, spreading the hub's
  // gather while preserving the source's locality (Section 4.3).
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = graph.edges()[e];
    result.edge_to_partition[e] =
        is_high_degree(edge.dst) ? result.vertex_to_partition[edge.src]
                                 : result.vertex_to_partition[edge.dst];
  }
  GingerMetrics& metrics = GingerMetrics::Get();
  metrics.gather_blocks->Increment(gather.blocks);
  metrics.gather_prefetched->Increment(gather.prefetched);
  state.NoteAuxiliaryBytes(static_cast<uint64_t>(n) * sizeof(PartitionId) +
                           static_cast<uint64_t>(k) * sizeof(uint32_t));
  result.state_bytes = state.SynopsisBytes();
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
