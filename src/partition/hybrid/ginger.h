#ifndef SGP_PARTITION_HYBRID_GINGER_H_
#define SGP_PARTITION_HYBRID_GINGER_H_

#include "partition/partitioner.h"

namespace sgp {

/// Ginger (Chen et al., EuroSys'15), PowerLyra's heuristic hybrid-cut.
/// Low-degree vertices are placed with a FENNEL-like objective that
/// accounts for both vertex and edge load (Equation 8), and their in-edges
/// follow them; the in-edges of high-degree vertices are re-assigned by
/// hashing the source vertex (Section 4.3).
class GingerPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "HG"; }
  CutModel model() const override { return CutModel::kHybrid; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_HYBRID_GINGER_H_
