#include "partition/hybrid/hybrid_random.h"

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "partition/state.h"

namespace sgp {

Partitioning HybridRandomPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const PartitionId k = config.k;
  Partitioning result;
  result.model = CutModel::kHybrid;
  result.k = k;
  result.vertex_to_partition.resize(graph.num_vertices());
  result.edge_to_partition.resize(graph.num_edges());

  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  auto hash_part = [&](VertexId u) {
    return hasher.Pick(HashU64Seeded(u, config.seed));
  };
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    result.vertex_to_partition[u] = hash_part(u);
  }
  // Low-degree target: keep the edge with the target's master (locality).
  // High-degree target: scatter by source (load spreading). For undirected
  // graphs the stored dst endpoint plays the target role.
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edges()[e];
    const uint32_t target_in_degree = graph.directed()
                                          ? graph.InDegree(edge.dst)
                                          : graph.Degree(edge.dst);
    result.edge_to_partition[e] = target_in_degree <= config.hybrid_threshold
                                      ? hash_part(edge.dst)
                                      : hash_part(edge.src);
  }
  // O(k) synopsis: capacity weights for the hasher only.
  result.state_bytes = state.SynopsisBytes();
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
