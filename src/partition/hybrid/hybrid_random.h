#ifndef SGP_PARTITION_HYBRID_HYBRID_RANDOM_H_
#define SGP_PARTITION_HYBRID_HYBRID_RANDOM_H_

#include "partition/partitioner.h"

namespace sgp {

/// PowerLyra's hybrid random partitioning (HCR, Chen et al., EuroSys'15).
/// Differentiates by degree: the in-edges of a low-degree vertex are
/// grouped on the vertex's hash partition (edge-cut style locality), while
/// the in-edges of a high-degree vertex are scattered by hashing their
/// source (vertex-cut style load spreading). The degree threshold comes
/// from PartitionConfig::hybrid_threshold.
class HybridRandomPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "HCR"; }
  CutModel model() const override { return CutModel::kHybrid; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_HYBRID_HYBRID_RANDOM_H_
