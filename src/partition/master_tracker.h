#ifndef SGP_PARTITION_MASTER_TRACKER_H_
#define SGP_PARTITION_MASTER_TRACKER_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "common/hashing.h"
#include "common/types.h"

namespace sgp {

/// Streaming master derivation: per-vertex sparse (partition, incident
/// edge count) lists, exactly the accounting DeriveMasterPlacement does on
/// a materialized graph. The winner rule (max count, ties toward the lower
/// partition id) is order-independent, so streaming arrival order yields
/// the same masters. Shared by every vertex-cut RunOnSource override
/// (single-pass ingest and the two-phase family alike).
class MasterTracker {
 public:
  void Note(VertexId v, PartitionId part) {
    if (v >= counts_.size()) counts_.resize(static_cast<size_t>(v) + 1);
    auto& vec = counts_[v];
    auto it = std::find_if(vec.begin(), vec.end(),
                           [part](const auto& pr) { return pr.first == part; });
    if (it == vec.end()) {
      vec.emplace_back(part, 1u);
      ++total_entries_;
    } else {
      ++it->second;
    }
  }

  // Masters for [0, n): most incident edges, ties toward the lower
  // partition id; ids with no edges are hashed like DeriveMasterPlacement.
  std::vector<PartitionId> Derive(VertexId n, PartitionId k) const {
    std::vector<PartitionId> masters(n, kInvalidPartition);
    for (VertexId u = 0; u < n; ++u) {
      if (u >= counts_.size() || counts_[u].empty()) {
        masters[u] = static_cast<PartitionId>(HashU64(u) % k);
        continue;
      }
      auto best = counts_[u].front();
      for (const auto& pr : counts_[u]) {
        if (pr.second > best.second ||
            (pr.second == best.second && pr.first < best.first)) {
          best = pr;
        }
      }
      masters[u] = best.first;
    }
    return masters;
  }

  uint64_t SynopsisBytes() const {
    return counts_.capacity() * sizeof(counts_[0]) +
           total_entries_ * (sizeof(PartitionId) + sizeof(uint32_t));
  }

 private:
  std::vector<std::vector<std::pair<PartitionId, uint32_t>>> counts_;
  uint64_t total_entries_ = 0;
};

}  // namespace sgp

#endif  // SGP_PARTITION_MASTER_TRACKER_H_
