#include "partition/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sgp {

PartitionMetrics ComputeMetrics(const Graph& graph, const Partitioning& p) {
  PartitionMetrics m;
  const VertexId n = graph.num_vertices();
  const EdgeId num_edges = graph.num_edges();
  m.vertices_per_partition.assign(p.k, 0);
  m.edges_per_partition.assign(p.k, 0);

  for (VertexId u = 0; u < n; ++u) {
    ++m.vertices_per_partition[p.vertex_to_partition[u]];
  }
  uint64_t cut = 0;
  for (EdgeId e = 0; e < num_edges; ++e) {
    ++m.edges_per_partition[p.edge_to_partition[e]];
    const Edge& edge = graph.edges()[e];
    if (p.vertex_to_partition[edge.src] != p.vertex_to_partition[edge.dst]) {
      ++cut;
    }
  }
  m.edge_cut_ratio = num_edges == 0
                         ? 0
                         : static_cast<double>(cut) /
                               static_cast<double>(num_edges);

  ReplicaSets replicas = ComputeReplicaSets(graph, p);
  m.replication_factor =
      n == 0 ? 0
             : static_cast<double>(replicas.offsets[n]) /
                   static_cast<double>(n);

  auto imbalance = [](const std::vector<uint64_t>& loads) {
    if (loads.empty()) return 0.0;
    uint64_t total = 0;
    uint64_t max = 0;
    for (uint64_t l : loads) {
      total += l;
      max = std::max(max, l);
    }
    if (total == 0) return 0.0;
    double avg = static_cast<double>(total) / static_cast<double>(loads.size());
    return static_cast<double>(max) / avg;
  };
  m.vertex_imbalance = imbalance(m.vertices_per_partition);
  m.edge_imbalance = imbalance(m.edges_per_partition);
  return m;
}

double DegreePsi(const Graph& graph, PartitionId k) {
  SGP_CHECK(k > 0);
  const VertexId n = graph.num_vertices();
  if (n == 0) return 1.0;
  const double q = 1.0 - 1.0 / static_cast<double>(k);
  double sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    sum += std::pow(q, static_cast<double>(graph.Degree(v)));
  }
  return sum / static_cast<double>(n);
}

double ExpectedRandomReplicationFactor(const Graph& graph, PartitionId k) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return 0.0;
  const double q = 1.0 - 1.0 / static_cast<double>(k);
  double sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    const double d = static_cast<double>(graph.Degree(v));
    // d independent uniform placements hit k(1 − q^d) distinct partitions
    // in expectation; the master lives on one of them (it is derived from
    // the replicas), and an isolated vertex still keeps one master copy.
    sum += std::max(1.0, static_cast<double>(k) * (1.0 - std::pow(q, d)));
  }
  return sum / static_cast<double>(n);
}

void ValidatePartitioning(const Graph& graph, const Partitioning& p) {
  SGP_CHECK(p.k > 0);
  SGP_CHECK(p.vertex_to_partition.size() == graph.num_vertices());
  SGP_CHECK(p.edge_to_partition.size() == graph.num_edges());
  for (PartitionId part : p.vertex_to_partition) SGP_CHECK(part < p.k);
  for (PartitionId part : p.edge_to_partition) SGP_CHECK(part < p.k);
}

}  // namespace sgp
