#ifndef SGP_PARTITION_METRICS_H_
#define SGP_PARTITION_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Structural quality metrics of a partitioning (Sections 4.1 and 4.2).
struct PartitionMetrics {
  /// Fraction of edges whose endpoints' masters differ (edge-cut objective,
  /// Equation 3).
  double edge_cut_ratio = 0;

  /// Average number of partitions each vertex spans, |A(u)| averaged over
  /// vertices (vertex-cut objective, Equation 6). Always ≥ 1.
  double replication_factor = 0;

  /// max/avg of master-vertex counts per partition (edge-cut balance).
  double vertex_imbalance = 0;

  /// max/avg of edge counts per partition (vertex-cut balance).
  double edge_imbalance = 0;

  /// Master vertices per partition.
  std::vector<uint64_t> vertices_per_partition;

  /// Edges per partition.
  std::vector<uint64_t> edges_per_partition;
};

/// Computes all structural metrics for `p` on `graph`.
PartitionMetrics ComputeMetrics(const Graph& graph, const Partitioning& p);

/// Validates structural invariants (every vertex/edge assigned, partition
/// ids < k, sizes consistent); aborts on violation. Used by tests and by
/// the bench harnesses before trusting a result.
void ValidatePartitioning(const Graph& graph, const Partitioning& p);

/// ψ(d, k) of Appendix B: the moment generating function of the degree
/// sequence evaluated at log(1 − 1/k), i.e. (1/n)·Σ_v (1 − 1/k)^{d(v)}.
double DegreePsi(const Graph& graph, PartitionId k);

/// Closed-form expected replication factor of *uniform random* vertex-cut
/// placement (VCR), following the Appendix B derivation (Bourse et al.
/// [10]): with q = 1 − 1/k, a vertex of degree d is hit by d independent
/// uniform edge placements, covering k(1 − q^d) distinct partitions in
/// expectation, so E[RF] = k·(1 − ψ(d,k)) up to the ≥1 clamp for isolated
/// vertices (masters are derived from the replicas, adding no partition).
/// Tests verify the measured VCR replication factor converges to this.
double ExpectedRandomReplicationFactor(const Graph& graph, PartitionId k);

}  // namespace sgp

#endif  // SGP_PARTITION_METRICS_H_
