#include "partition/offline/multilevel.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/timer.h"

namespace sgp {

namespace {

// Weighted graph of one level of the multilevel hierarchy.
struct LevelGraph {
  VertexId n = 0;
  uint64_t total_vweight = 0;
  std::vector<uint64_t> offsets;  // size n+1
  std::vector<VertexId> nbr;
  std::vector<uint64_t> ewgt;  // parallel to nbr
  std::vector<uint64_t> vwgt;  // size n
};

LevelGraph BuildBaseLevel(const Graph& graph,
                          const std::vector<uint64_t>& vertex_weights) {
  LevelGraph g;
  g.n = graph.num_vertices();
  g.offsets.assign(static_cast<size_t>(g.n) + 1, 0);
  for (VertexId u = 0; u < g.n; ++u) {
    g.offsets[u + 1] = g.offsets[u] + graph.Neighbors(u).size();
  }
  g.nbr.resize(g.offsets[g.n]);
  g.ewgt.assign(g.offsets[g.n], 1);
  for (VertexId u = 0; u < g.n; ++u) {
    auto nb = graph.Neighbors(u);
    std::copy(nb.begin(), nb.end(), g.nbr.begin() + g.offsets[u]);
  }
  if (vertex_weights.empty()) {
    g.vwgt.assign(g.n, 1);
  } else {
    SGP_CHECK(vertex_weights.size() == g.n);
    g.vwgt = vertex_weights;
    // A zero-weight vertex would let balance constraints place everything
    // anywhere; clamp to 1 so every vertex costs something.
    for (auto& w : g.vwgt) w = std::max<uint64_t>(w, 1);
  }
  g.total_vweight = std::accumulate(g.vwgt.begin(), g.vwgt.end(),
                                    static_cast<uint64_t>(0));
  return g;
}

// Heavy-edge matching: each vertex pairs with its heaviest unmatched
// neighbor. Returns the number of coarse vertices and fills `coarse_of`.
VertexId HeavyEdgeMatch(const LevelGraph& g, Rng& rng,
                        std::vector<VertexId>& coarse_of) {
  std::vector<VertexId> order(g.n);
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);
  std::vector<VertexId> match(g.n, kInvalidVertex);
  for (VertexId u : order) {
    if (match[u] != kInvalidVertex) continue;
    VertexId best = kInvalidVertex;
    uint64_t best_w = 0;
    for (uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      VertexId v = g.nbr[i];
      if (v == u || match[v] != kInvalidVertex) continue;
      if (g.ewgt[i] > best_w) {
        best_w = g.ewgt[i];
        best = v;
      }
    }
    if (best == kInvalidVertex) {
      match[u] = u;  // stays single
    } else {
      match[u] = best;
      match[best] = u;
    }
  }
  coarse_of.assign(g.n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId u = 0; u < g.n; ++u) {
    if (coarse_of[u] != kInvalidVertex) continue;
    coarse_of[u] = next;
    if (match[u] != u) coarse_of[match[u]] = next;
    ++next;
  }
  return next;
}

LevelGraph Contract(const LevelGraph& g, const std::vector<VertexId>& coarse_of,
                    VertexId coarse_n) {
  LevelGraph c;
  c.n = coarse_n;
  c.vwgt.assign(coarse_n, 0);
  for (VertexId u = 0; u < g.n; ++u) c.vwgt[coarse_of[u]] += g.vwgt[u];
  c.total_vweight = g.total_vweight;

  // Aggregate adjacency with a scratch accumulator per coarse vertex.
  std::vector<std::vector<VertexId>> members(coarse_n);
  for (VertexId u = 0; u < g.n; ++u) members[coarse_of[u]].push_back(u);
  std::vector<uint64_t> acc(coarse_n, 0);
  std::vector<VertexId> touched;
  c.offsets.assign(static_cast<size_t>(coarse_n) + 1, 0);
  std::vector<VertexId> nbr;
  std::vector<uint64_t> ewgt;
  for (VertexId cu = 0; cu < coarse_n; ++cu) {
    for (VertexId u : members[cu]) {
      for (uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
        VertexId cv = coarse_of[g.nbr[i]];
        if (cv == cu) continue;  // contracted edge disappears
        if (acc[cv] == 0) touched.push_back(cv);
        acc[cv] += g.ewgt[i];
      }
    }
    for (VertexId cv : touched) {
      nbr.push_back(cv);
      ewgt.push_back(acc[cv]);
      acc[cv] = 0;
    }
    touched.clear();
    c.offsets[cu + 1] = nbr.size();
  }
  c.nbr = std::move(nbr);
  c.ewgt = std::move(ewgt);
  return c;
}

// Cut weight of `part` on `g` (each undirected edge counted twice, which
// is fine for comparisons).
uint64_t CutWeight(const LevelGraph& g, const std::vector<PartitionId>& part) {
  uint64_t cut = 0;
  for (VertexId u = 0; u < g.n; ++u) {
    for (uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      if (part[u] != part[g.nbr[i]]) cut += g.ewgt[i];
    }
  }
  return cut;
}

// One greedy-graph-growing attempt: BFS-grow k contiguous regions from
// random seeds up to the average weight, then place leftovers next to
// their neighbors.
std::vector<PartitionId> GrowOnce(const LevelGraph& g, PartitionId k,
                                  const std::vector<double>& capacity,
                                  const std::vector<double>& weights,
                                  Rng& rng) {
  std::vector<PartitionId> part(g.n, kInvalidPartition);
  std::vector<uint64_t> load(k, 0);
  std::vector<VertexId> seeds(g.n);
  std::iota(seeds.begin(), seeds.end(), 0u);
  rng.Shuffle(seeds);
  const double mean_target = static_cast<double>(g.total_vweight) /
                             static_cast<double>(k);
  size_t seed_cursor = 0;
  std::vector<VertexId> frontier;
  for (PartitionId p = 0; p < k; ++p) {
    const double target = mean_target * weights[p];
    frontier.clear();
    size_t head = 0;
    while (static_cast<double>(load[p]) < target) {
      if (head == frontier.size()) {
        // Find a fresh seed (new component or region exhausted).
        while (seed_cursor < seeds.size() &&
               part[seeds[seed_cursor]] != kInvalidPartition) {
          ++seed_cursor;
        }
        if (seed_cursor == seeds.size()) break;
        frontier.push_back(seeds[seed_cursor]);
      }
      VertexId u = frontier[head++];
      if (part[u] != kInvalidPartition) continue;
      part[u] = p;
      load[p] += g.vwgt[u];
      for (uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
        if (part[g.nbr[i]] == kInvalidPartition) {
          frontier.push_back(g.nbr[i]);
        }
      }
    }
  }
  // Leftovers: place next to the most-connected partition with room.
  std::vector<uint64_t> conn(k, 0);
  std::vector<PartitionId> touched;
  for (VertexId u = 0; u < g.n; ++u) {
    if (part[u] != kInvalidPartition) continue;
    for (uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
      PartitionId p = part[g.nbr[i]];
      if (p == kInvalidPartition) continue;
      if (conn[p] == 0) touched.push_back(p);
      conn[p] += g.ewgt[i];
    }
    PartitionId best = kInvalidPartition;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId p = 0; p < k; ++p) {
      if (static_cast<double>(load[p] + g.vwgt[u]) > capacity[p]) continue;
      double score = static_cast<double>(conn[p]) -
                     static_cast<double>(load[p]) / capacity[p];
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best == kInvalidPartition) {
      best = static_cast<PartitionId>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    part[u] = best;
    load[best] += g.vwgt[u];
    for (PartitionId p : touched) conn[p] = 0;
    touched.clear();
  }
  return part;
}

// Greedy graph growing with random restarts, keeping the best cut (the
// standard METIS-family initial partitioning).
std::vector<PartitionId> InitialPartition(const LevelGraph& g, PartitionId k,
                                          const std::vector<double>& capacity,
                                          const std::vector<double>& weights,
                                          Rng& rng) {
  constexpr int kRestarts = 4;
  std::vector<PartitionId> best;
  uint64_t best_cut = 0;
  for (int attempt = 0; attempt < kRestarts; ++attempt) {
    std::vector<PartitionId> part = GrowOnce(g, k, capacity, weights, rng);
    uint64_t cut = CutWeight(g, part);
    if (best.empty() || cut < best_cut) {
      best_cut = cut;
      best = std::move(part);
    }
  }
  return best;
}

// Moves vertices out of over-capacity partitions (into the most-connected
// partition with room) until the balance constraint holds or passes are
// exhausted.
void RebalancePass(const LevelGraph& g, PartitionId k,
                   const std::vector<double>& capacity, Rng& rng,
                   std::vector<PartitionId>& part) {
  std::vector<uint64_t> load(k, 0);
  for (VertexId u = 0; u < g.n; ++u) load[part[u]] += g.vwgt[u];
  std::vector<VertexId> order(g.n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<uint64_t> conn(k, 0);
  std::vector<PartitionId> touched;
  for (int pass = 0; pass < 4; ++pass) {
    bool any_over = false;
    for (PartitionId p = 0; p < k; ++p) {
      any_over |= static_cast<double>(load[p]) > capacity[p];
    }
    if (!any_over) return;
    rng.Shuffle(order);
    for (VertexId u : order) {
      const PartitionId cur = part[u];
      if (static_cast<double>(load[cur]) <= capacity[cur]) continue;
      for (uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
        PartitionId p = part[g.nbr[i]];
        if (conn[p] == 0) touched.push_back(p);
        conn[p] += g.ewgt[i];
      }
      PartitionId best = kInvalidPartition;
      double best_score = -std::numeric_limits<double>::infinity();
      for (PartitionId p = 0; p < k; ++p) {
        if (p == cur) continue;
        if (static_cast<double>(load[p] + g.vwgt[u]) > capacity[p]) continue;
        double score = static_cast<double>(conn[p]) -
                       static_cast<double>(load[p]) / capacity[p];
        if (score > best_score) {
          best_score = score;
          best = p;
        }
      }
      for (PartitionId p : touched) conn[p] = 0;
      touched.clear();
      if (best != kInvalidPartition) {
        load[cur] -= g.vwgt[u];
        load[best] += g.vwgt[u];
        part[u] = best;
      }
    }
  }
}

// Greedy boundary refinement: move vertices to the neighboring partition
// with the highest positive cut gain, respecting capacity; zero-gain moves
// are allowed when they reduce the load of an over-loaded partition.
void Refine(const LevelGraph& g, PartitionId k,
            const std::vector<double>& capacity, uint32_t passes, Rng& rng,
            std::vector<PartitionId>& part) {
  std::vector<uint64_t> load(k, 0);
  for (VertexId u = 0; u < g.n; ++u) load[part[u]] += g.vwgt[u];
  std::vector<VertexId> order(g.n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<uint64_t> conn(k, 0);
  std::vector<PartitionId> touched;
  for (uint32_t pass = 0; pass < passes; ++pass) {
    rng.Shuffle(order);
    uint64_t moves = 0;
    for (VertexId u : order) {
      const PartitionId cur = part[u];
      for (uint64_t i = g.offsets[u]; i < g.offsets[u + 1]; ++i) {
        PartitionId p = part[g.nbr[i]];
        if (conn[p] == 0) touched.push_back(p);
        conn[p] += g.ewgt[i];
      }
      PartitionId best = cur;
      int64_t best_gain = 0;
      for (PartitionId p : touched) {
        if (p == cur) continue;
        if (static_cast<double>(load[p]) +
                static_cast<double>(g.vwgt[u]) >
            capacity[p]) {
          continue;
        }
        int64_t gain = static_cast<int64_t>(conn[p]) -
                       static_cast<int64_t>(conn[cur]);
        bool better = gain > best_gain ||
                      (gain == best_gain && gain >= 0 && best == cur &&
                       load[cur] > load[p] + g.vwgt[u]);
        if (better) {
          best_gain = gain;
          best = p;
        }
      }
      for (PartitionId p : touched) conn[p] = 0;
      touched.clear();
      if (best != cur) {
        load[cur] -= g.vwgt[u];
        load[best] += g.vwgt[u];
        part[u] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

}  // namespace

Partitioning MultilevelPartition(const Graph& graph,
                                 const MultilevelOptions& options) {
  SGP_CHECK(options.k > 0);
  Timer timer;
  Rng rng(options.seed);
  const PartitionId k = options.k;

  std::vector<LevelGraph> levels;
  std::vector<std::vector<VertexId>> mappings;
  levels.push_back(BuildBaseLevel(graph, options.vertex_weights));

  const VertexId target = options.coarsen_target != 0
                              ? options.coarsen_target
                              : std::max<VertexId>(128, 20 * k);
  while (levels.back().n > target) {
    std::vector<VertexId> coarse_of;
    VertexId coarse_n = HeavyEdgeMatch(levels.back(), rng, coarse_of);
    if (coarse_n > levels.back().n * 95 / 100) break;  // matching stalled
    levels.push_back(Contract(levels.back(), coarse_of, coarse_n));
    mappings.push_back(std::move(coarse_of));
  }

  // Per-partition capacities: β·(total/k), scaled by relative capacity on
  // heterogeneous clusters.
  std::vector<double> weights(k, 1.0);
  if (!options.capacity_weights.empty()) {
    SGP_CHECK(options.capacity_weights.size() == k);
    double sum = 0;
    for (double w : options.capacity_weights) {
      SGP_CHECK(w > 0);
      sum += w;
    }
    for (PartitionId i = 0; i < k; ++i) {
      weights[i] = options.capacity_weights[i] * static_cast<double>(k) / sum;
    }
  }
  const double mean_capacity =
      std::max(1.0, options.balance_slack *
                        static_cast<double>(levels.front().total_vweight) /
                        static_cast<double>(k));
  std::vector<double> capacity(k);
  std::vector<double> relaxed(k);
  for (PartitionId i = 0; i < k; ++i) {
    capacity[i] = mean_capacity * weights[i];
    // Coarse levels refine against a slightly relaxed capacity — coarse
    // vertices are heavy, and a tight cap freezes all moves; the final
    // level is rebalanced back to the true constraint.
    relaxed[i] = capacity[i] * 1.1;
  }
  std::vector<PartitionId> part =
      InitialPartition(levels.back(), k, relaxed, weights, rng);
  Refine(levels.back(), k, relaxed, options.refinement_passes, rng, part);

  for (size_t level = levels.size() - 1; level-- > 0;) {
    const std::vector<VertexId>& coarse_of = mappings[level];
    std::vector<PartitionId> fine(levels[level].n);
    for (VertexId u = 0; u < levels[level].n; ++u) {
      fine[u] = part[coarse_of[u]];
    }
    part = std::move(fine);
    const std::vector<double>& cap = level == 0 ? capacity : relaxed;
    Refine(levels[level], k, cap, options.refinement_passes, rng, part);
  }
  RebalancePass(levels.front(), k, capacity, rng, part);
  // Polish pass after rebalancing, under the strict constraint.
  Refine(levels.front(), k, capacity, 2, rng, part);

  Partitioning result;
  result.model = CutModel::kEdgeCut;
  result.k = k;
  // The multilevel method holds the whole coarsening hierarchy in memory —
  // the contrast to the O(n + k) streaming synopses (Section 4.1.1).
  uint64_t hierarchy_bytes = 0;
  for (const LevelGraph& level : levels) {
    hierarchy_bytes += level.offsets.size() * sizeof(uint64_t) +
                       level.nbr.size() * sizeof(VertexId) +
                       level.ewgt.size() * sizeof(uint64_t) +
                       level.vwgt.size() * sizeof(uint64_t);
  }
  for (const auto& mapping : mappings) {
    hierarchy_bytes += mapping.size() * sizeof(VertexId);
  }
  result.state_bytes = hierarchy_bytes;
  result.vertex_to_partition = std::move(part);
  DeriveEdgePlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

Partitioning MetisLikePartitioner::Run(const Graph& graph,
                                       const PartitionConfig& config) const {
  MultilevelOptions options;
  options.k = config.k;
  options.balance_slack = config.balance_slack;
  options.seed = config.seed;
  options.capacity_weights = config.capacity_weights;
  return MultilevelPartition(graph, options);
}

}  // namespace sgp
