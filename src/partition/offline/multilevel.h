#ifndef SGP_PARTITION_OFFLINE_MULTILEVEL_H_
#define SGP_PARTITION_OFFLINE_MULTILEVEL_H_

#include <vector>

#include "partition/partitioner.h"

namespace sgp {

/// Options of the offline multilevel partitioner.
struct MultilevelOptions {
  /// Number of partitions.
  PartitionId k = 4;

  /// Balance slack β over total vertex weight.
  double balance_slack = 1.05;

  /// Seed for matching/refinement orders.
  uint64_t seed = 42;

  /// Optional per-vertex weights (size num_vertices). Empty means unit
  /// weights. The workload-aware experiment (Figure 8) passes vertex
  /// access counts here.
  std::vector<uint64_t> vertex_weights;

  /// Greedy boundary-refinement passes per level.
  uint32_t refinement_passes = 8;

  /// Stop coarsening at this many vertices (0 = max(128, 20·k)).
  VertexId coarsen_target = 0;

  /// Relative partition capacities for heterogeneous clusters (empty =
  /// homogeneous). Region growing, refinement and rebalancing all target
  /// capacity-proportional loads.
  std::vector<double> capacity_weights;
};

/// Offline multilevel k-way partitioning in the METIS family (Karypis &
/// Kumar): heavy-edge-matching coarsening, greedy initial partitioning on
/// the coarsest graph, then per-level greedy boundary refinement during
/// uncoarsening. Stands in for METIS (MTS) in all experiments; like METIS
/// it sees the whole graph and therefore produces much better cuts than
/// any single-pass streaming algorithm, at much higher cost.
Partitioning MultilevelPartition(const Graph& graph,
                                 const MultilevelOptions& options);

/// Partitioner-interface adapter (unit vertex weights).
class MetisLikePartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "MTS"; }
  CutModel model() const override { return CutModel::kEdgeCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_OFFLINE_MULTILEVEL_H_
