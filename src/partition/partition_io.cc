#include "partition/partition_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "partition/metrics.h"

namespace sgp {

void WritePartitioning(const Partitioning& partitioning, std::ostream& out) {
  out << "sgp-partitioning v1\n";
  out << "model " << CutModelName(partitioning.model) << " k "
      << partitioning.k << " vertices "
      << partitioning.vertex_to_partition.size() << " edges "
      << partitioning.edge_to_partition.size() << '\n';
  for (size_t v = 0; v < partitioning.vertex_to_partition.size(); ++v) {
    out << "v " << v << ' ' << partitioning.vertex_to_partition[v] << '\n';
  }
  for (size_t e = 0; e < partitioning.edge_to_partition.size(); ++e) {
    out << "e " << e << ' ' << partitioning.edge_to_partition[e] << '\n';
  }
}

void WritePartitioningFile(const Partitioning& partitioning,
                           const std::string& path) {
  std::ofstream out(path);
  SGP_CHECK(out.good() && "cannot open partitioning output file");
  WritePartitioning(partitioning, out);
}

Partitioning ReadPartitioning(const Graph& graph, std::istream& in) {
  std::string line;
  SGP_CHECK(std::getline(in, line) && line == "sgp-partitioning v1");

  SGP_CHECK(std::getline(in, line));
  std::istringstream header(line);
  std::string tok;
  std::string model_name;
  uint64_t k = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  SGP_CHECK(header >> tok && tok == "model");
  SGP_CHECK(header >> model_name);
  SGP_CHECK(header >> tok && tok == "k");
  SGP_CHECK(header >> k);
  SGP_CHECK(header >> tok && tok == "vertices");
  SGP_CHECK(header >> n);
  SGP_CHECK(header >> tok && tok == "edges");
  SGP_CHECK(header >> m);
  SGP_CHECK(n == graph.num_vertices());
  SGP_CHECK(m == graph.num_edges());

  Partitioning p;
  p.k = static_cast<PartitionId>(k);
  if (model_name == "edge-cut") {
    p.model = CutModel::kEdgeCut;
  } else if (model_name == "vertex-cut") {
    p.model = CutModel::kVertexCut;
  } else if (model_name == "hybrid-cut") {
    p.model = CutModel::kHybrid;
  } else {
    SGP_CHECK(false && "unknown cut model in partitioning file");
  }
  p.vertex_to_partition.assign(n, kInvalidPartition);
  p.edge_to_partition.assign(m, kInvalidPartition);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    uint64_t id = 0;
    uint64_t part = 0;
    SGP_CHECK(ls >> kind >> id >> part);
    if (kind == 'v') {
      SGP_CHECK(id < n);
      p.vertex_to_partition[id] = static_cast<PartitionId>(part);
    } else if (kind == 'e') {
      SGP_CHECK(id < m);
      p.edge_to_partition[id] = static_cast<PartitionId>(part);
    } else {
      SGP_CHECK(false && "unknown record kind in partitioning file");
    }
  }
  ValidatePartitioning(graph, p);
  return p;
}

Partitioning ReadPartitioningFile(const Graph& graph,
                                  const std::string& path) {
  std::ifstream in(path);
  SGP_CHECK(in.good() && "cannot open partitioning file");
  return ReadPartitioning(graph, in);
}

}  // namespace sgp
