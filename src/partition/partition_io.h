#ifndef SGP_PARTITION_PARTITION_IO_H_
#define SGP_PARTITION_PARTITION_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Serializes a partitioning in a self-describing text format:
///   sgp-partitioning v1
///   model <edge-cut|vertex-cut|hybrid-cut> k <k> vertices <n> edges <m>
///   v <vertex> <partition>     (n lines)
///   e <edge-id> <partition>    (m lines)
/// The format is what partition_tool writes, and what a loader would ship
/// to its workers.
void WritePartitioning(const Partitioning& partitioning, std::ostream& out);

/// Writes to a file; aborts if the file cannot be opened.
void WritePartitioningFile(const Partitioning& partitioning,
                           const std::string& path);

/// Parses the format above and validates it against `graph` (sizes and
/// ranges must match). Aborts on malformed input.
Partitioning ReadPartitioning(const Graph& graph, std::istream& in);

/// Reads from a file; aborts if the file cannot be opened.
Partitioning ReadPartitioningFile(const Graph& graph,
                                  const std::string& path);

}  // namespace sgp

#endif  // SGP_PARTITION_PARTITION_IO_H_
