#include "partition/partitioner.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"
#include "partition/edgecut/edge_stream_greedy.h"
#include "partition/edgecut/fennel.h"
#include "partition/edgecut/hash_edgecut.h"
#include "partition/edgecut/ldg.h"
#include "partition/edgecut/restreaming.h"
#include "partition/hybrid/ginger.h"
#include "partition/hybrid/hybrid_random.h"
#include "partition/offline/multilevel.h"
#include "partition/vertexcut/dbh.h"
#include "partition/vertexcut/greedy.h"
#include "partition/vertexcut/grid.h"
#include "partition/vertexcut/hash_vertexcut.h"
#include "partition/vertexcut/hdrf.h"

namespace sgp {

std::unique_ptr<Partitioner> TryCreatePartitioner(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "ECR") return std::make_unique<HashEdgeCutPartitioner>();
  if (upper == "LDG") return std::make_unique<LdgPartitioner>();
  if (upper == "FNL" || upper == "FENNEL") {
    return std::make_unique<FennelPartitioner>();
  }
  if (upper == "RLDG") return std::make_unique<RestreamingLdgPartitioner>();
  if (upper == "ESG") return std::make_unique<EdgeStreamGreedyPartitioner>();
  if (upper == "RFNL") {
    return std::make_unique<RestreamingFennelPartitioner>();
  }
  if (upper == "VCR") return std::make_unique<HashVertexCutPartitioner>();
  if (upper == "DBH") return std::make_unique<DbhPartitioner>();
  if (upper == "GRID") return std::make_unique<GridPartitioner>();
  if (upper == "HDRF") return std::make_unique<HdrfPartitioner>();
  if (upper == "PGG") return std::make_unique<PowerGraphGreedyPartitioner>();
  if (upper == "HCR") return std::make_unique<HybridRandomPartitioner>();
  if (upper == "HG" || upper == "GINGER") {
    return std::make_unique<GingerPartitioner>();
  }
  if (upper == "MTS" || upper == "METIS") {
    return std::make_unique<MetisLikePartitioner>();
  }
  return nullptr;
}

std::unique_ptr<Partitioner> CreatePartitioner(std::string_view name) {
  std::unique_ptr<Partitioner> partitioner = TryCreatePartitioner(name);
  SGP_CHECK(partitioner != nullptr && "unknown partitioner name");
  return partitioner;
}

std::vector<std::string> PartitionerNames() {
  return {"VCR", "GRID", "DBH", "HDRF", "PGG", "HCR",
          "HG",  "ECR",  "LDG", "FNL",  "MTS"};
}

std::vector<std::string> PartitionerNames(CutModel model) {
  std::vector<std::string> out;
  for (const std::string& name : PartitionerNames()) {
    if (CreatePartitioner(name)->model() == model) out.push_back(name);
  }
  // The offline MTS baseline produces an edge-cut partitioning.
  return out;
}

}  // namespace sgp
