#include "partition/partitioner.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/check.h"
#include "partition/edgecut/edge_stream_greedy.h"
#include "partition/edgecut/fennel.h"
#include "partition/edgecut/hash_edgecut.h"
#include "partition/edgecut/ldg.h"
#include "partition/edgecut/restreaming.h"
#include "partition/hybrid/ginger.h"
#include "partition/hybrid/hybrid_random.h"
#include "partition/offline/multilevel.h"
#include "partition/twophase/hep.h"
#include "partition/twophase/ne.h"
#include "partition/twophase/two_phase.h"
#include "partition/vertexcut/dbh.h"
#include "partition/vertexcut/greedy.h"
#include "partition/vertexcut/grid.h"
#include "partition/vertexcut/hash_vertexcut.h"
#include "partition/vertexcut/hdrf.h"

namespace sgp {

namespace {

std::string ToUpper(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return upper;
}

template <typename T>
std::unique_ptr<Partitioner> Make() {
  return std::make_unique<T>();
}

PartitionerInfo Info(std::string name, std::vector<std::string> aliases,
                     CutModel model, uint32_t passes, bool needs_graph,
                     bool listed, std::string summary,
                     std::unique_ptr<Partitioner> (*factory)()) {
  PartitionerInfo info;
  info.name = std::move(name);
  info.aliases = std::move(aliases);
  info.model = model;
  info.passes = passes;
  info.needs_graph = needs_graph;
  info.listed = listed;
  info.summary = std::move(summary);
  info.factory = factory;
  return info;
}

// The built-in roster, seeded in the paper's Table 2 order (vertex-cut,
// hybrid, edge-cut, offline) so every listed view preserves the
// pre-registry PartitionerNames() sequence, followed by the unlisted
// variant codes and the two-phase extensions. A central table instead of
// per-translation-unit self-registration statics: the library is linked
// statically, and linkers are free to drop a .o whose only referenced
// symbol is an initializer, which would silently shrink the roster.
std::vector<PartitionerInfo> BuiltinTable() {
  using CM = CutModel;
  std::vector<PartitionerInfo> table;
  table.push_back(Info("VCR", {}, CM::kVertexCut, 1, false, true,
                       "hash vertex-cut: edge placed by endpoint-pair hash",
                       &Make<HashVertexCutPartitioner>));
  table.push_back(Info("GRID", {}, CM::kVertexCut, 1, true, true,
                       "grid-constrained hashing: replicas confined to a "
                       "row+column of a sqrt(k) grid",
                       &Make<GridPartitioner>));
  table.push_back(Info("DBH", {}, CM::kVertexCut, 2, false, true,
                       "degree-based hashing: edge follows its lower-degree "
                       "endpoint (degree pre-pass)",
                       &Make<DbhPartitioner>));
  table.push_back(Info("HDRF", {}, CM::kVertexCut, 1, false, true,
                       "highest-degree replicated first: greedy vertex-cut "
                       "favoring replication of hubs",
                       &Make<HdrfPartitioner>));
  table.push_back(Info("PGG", {}, CM::kVertexCut, 1, true, true,
                       "PowerGraph greedy vertex-cut over current replica "
                       "sets",
                       &Make<PowerGraphGreedyPartitioner>));
  table.push_back(Info("HCR", {}, CM::kHybrid, 1, true, true,
                       "hybrid cut random: low-degree edge-cut, high-degree "
                       "vertex-cut",
                       &Make<HybridRandomPartitioner>));
  table.push_back(Info("HG", {"GINGER"}, CM::kHybrid, 1, true, true,
                       "Ginger: hybrid cut with Fennel-style greedy vertex "
                       "placement",
                       &Make<GingerPartitioner>));
  table.push_back(Info("ECR", {}, CM::kEdgeCut, 1, true, true,
                       "hash edge-cut: vertex placed by hash (random)",
                       &Make<HashEdgeCutPartitioner>));
  table.push_back(Info("LDG", {}, CM::kEdgeCut, 1, true, true,
                       "linear deterministic greedy edge-cut",
                       &Make<LdgPartitioner>));
  table.push_back(Info("FNL", {"FENNEL"}, CM::kEdgeCut, 1, true, true,
                       "Fennel: interpolated greedy edge-cut",
                       &Make<FennelPartitioner>));
  table.push_back(Info("MTS", {"METIS"}, CM::kEdgeCut, 1, true, true,
                       "offline multilevel baseline (METIS-like)",
                       &Make<MetisLikePartitioner>));
  // Variant codes: resolvable by name, excluded from the Table 2 roster.
  table.push_back(Info("RLDG", {}, CM::kEdgeCut, 1, true, false,
                       "restreaming LDG (multiple passes over the vertex "
                       "stream)",
                       &Make<RestreamingLdgPartitioner>));
  table.push_back(Info("RFNL", {}, CM::kEdgeCut, 1, true, false,
                       "restreaming Fennel",
                       &Make<RestreamingFennelPartitioner>));
  table.push_back(Info("ESG", {}, CM::kEdgeCut, 1, true, false,
                       "edge-stream greedy edge-cut",
                       &Make<EdgeStreamGreedyPartitioner>));
  // Two-phase & clustering extensions (beyond the paper's single-pass
  // design space); appended after the Table 2 roster so the original
  // listed order is a stable prefix.
  table.push_back(Info("2PS", {"TWOPHASE"}, CM::kVertexCut, 2, false, true,
                       "two-phase streaming: clustering pass, then "
                       "cluster-aware HDRF scoring",
                       &Make<TwoPhasePartitioner>));
  table.push_back(Info("HEP", {}, CM::kVertexCut, 2, false, true,
                       "hybrid: hub-hub edges packed in memory, "
                       "low-degree tail streamed with HDRF",
                       &Make<HepPartitioner>));
  table.push_back(Info("NE", {}, CM::kVertexCut, 1, true, true,
                       "neighborhood expansion: grow each partition from a "
                       "boundary of minimum external degree",
                       &Make<NePartitioner>));
  return table;
}

std::vector<PartitionerInfo>& MutableTable() {
  static std::vector<PartitionerInfo> table = BuiltinTable();
  return table;
}

bool Matches(const PartitionerInfo& info, const std::string& upper) {
  if (info.name == upper) return true;
  return std::find(info.aliases.begin(), info.aliases.end(), upper) !=
         info.aliases.end();
}

}  // namespace

StreamRunResult Partitioner::RunOnSource(EdgeStreamSource& source,
                                         const PartitionConfig& config) const {
  // Default adapter: materialize the stream into an in-memory Graph and
  // run the graph path with the caller's configuration. Correct for every
  // algorithm; streaming-capable ones override with an O(n + k) synopsis
  // ingest instead.
  StreamRunResult out;
  VertexId max_bound = 0;
  std::vector<StreamEdge> edges;
  ForEachStreamItem(source, [&](const StreamEdge& e) {
    max_bound = std::max({max_bound, e.src + 1, e.dst + 1});
    edges.push_back(e);
  });
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  GraphBuilder builder(max_bound, /*directed=*/false);
  for (const StreamEdge& e : edges) builder.AddEdge(e.src, e.dst);
  edges.clear();
  edges.shrink_to_fit();
  const Graph graph = std::move(builder).Finalize();
  out.partitioning = Run(graph, config);
  out.num_edges = graph.num_edges();
  out.num_vertices = graph.num_vertices();
  return out;
}

const std::vector<PartitionerInfo>& PartitionerTable() {
  return MutableTable();
}

bool RegisterPartitioner(PartitionerInfo info) {
  if (info.name.empty() || info.factory == nullptr) return false;
  std::vector<std::string> keys;
  keys.push_back(ToUpper(info.name));
  for (const std::string& alias : info.aliases) keys.push_back(ToUpper(alias));
  for (const PartitionerInfo& existing : MutableTable()) {
    for (const std::string& key : keys) {
      if (Matches(existing, key)) return false;
    }
  }
  info.name = keys.front();
  for (size_t i = 0; i < info.aliases.size(); ++i) {
    info.aliases[i] = keys[i + 1];
  }
  MutableTable().push_back(std::move(info));
  return true;
}

const PartitionerInfo* FindPartitionerInfo(std::string_view name) {
  const std::string upper = ToUpper(name);
  for (const PartitionerInfo& info : MutableTable()) {
    if (Matches(info, upper)) return &info;
  }
  return nullptr;
}

std::unique_ptr<Partitioner> TryCreatePartitioner(std::string_view name) {
  const PartitionerInfo* info = FindPartitionerInfo(name);
  return info != nullptr ? info->factory() : nullptr;
}

std::unique_ptr<Partitioner> CreatePartitioner(std::string_view name) {
  std::unique_ptr<Partitioner> partitioner = TryCreatePartitioner(name);
  SGP_CHECK(partitioner != nullptr && "unknown partitioner name");
  return partitioner;
}

std::vector<std::string> PartitionerNames() {
  std::vector<std::string> out;
  for (const PartitionerInfo& info : PartitionerTable()) {
    if (info.listed) out.push_back(info.name);
  }
  return out;
}

std::vector<std::string> PartitionerNames(CutModel model) {
  std::vector<std::string> out;
  for (const PartitionerInfo& info : PartitionerTable()) {
    if (info.listed && info.model == model) out.push_back(info.name);
  }
  return out;
}

std::string PartitionerHelpText() {
  std::string out;
  for (CutModel model : {CutModel::kVertexCut, CutModel::kHybrid,
                         CutModel::kEdgeCut}) {
    out += "  ";
    out += CutModelName(model);
    out += ":\n";
    for (const PartitionerInfo& info : PartitionerTable()) {
      if (info.model != model) continue;
      out += "    ";
      out += info.name;
      for (const std::string& alias : info.aliases) {
        out += "|";
        out += alias;
      }
      out += " — ";
      out += info.summary;
      if (info.passes > 1) {
        out += " [" + std::to_string(info.passes) + " passes]";
      }
      if (info.needs_graph) out += " [in-memory]";
      if (!info.listed) out += " [variant]";
      out += "\n";
    }
  }
  return out;
}

}  // namespace sgp
