#ifndef SGP_PARTITION_PARTITIONER_H_
#define SGP_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"

namespace sgp {

/// Interface implemented by every partitioning algorithm. Implementations
/// are stateless: all per-run state lives inside Run(), so a single
/// instance can be reused across graphs and configurations.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Short code used throughout the paper's tables (e.g. "LDG", "HDRF").
  virtual std::string_view name() const = 0;

  /// Cut model this algorithm belongs to (Table 1).
  virtual CutModel model() const = 0;

  /// Partitions `graph` into `config.k` parts. The result always passes
  /// ValidatePartitioning().
  virtual Partitioning Run(const Graph& graph,
                           const PartitionConfig& config) const = 0;
};

/// Creates a partitioner by its paper code. Accepted names (case
/// insensitive):
///   edge-cut   : ECR (hash), LDG, FNL (FENNEL), RLDG, RFNL (re-streaming),
///                ESG (edge-stream greedy, the CST/IOGP family)
///   vertex-cut : VCR (hash), DBH, GRID, HDRF, PGG (PowerGraph greedy)
///   hybrid-cut : HCR (hybrid random), HG (Ginger)
///   offline    : MTS (multilevel, METIS stand-in)
/// Aborts on an unknown name.
std::unique_ptr<Partitioner> CreatePartitioner(std::string_view name);

/// Like CreatePartitioner, but returns nullptr on an unknown name so
/// tools that take user input can report valid names instead of aborting.
std::unique_ptr<Partitioner> TryCreatePartitioner(std::string_view name);

/// All partitioner codes, in the paper's Table 2 order.
std::vector<std::string> PartitionerNames();

/// Partitioner codes restricted to one cut model (MTS counts as edge-cut).
std::vector<std::string> PartitionerNames(CutModel model);

}  // namespace sgp

#endif  // SGP_PARTITION_PARTITIONER_H_
