#ifndef SGP_PARTITION_PARTITIONER_H_
#define SGP_PARTITION_PARTITIONER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "partition/partitioning.h"
#include "stream/source.h"

namespace sgp {

/// Result of running a partitioner straight off an edge stream (no
/// materialized Graph). edge_to_partition is indexed by arrival position;
/// vertex_to_partition covers [0, num_vertices) with masters derived
/// exactly like DeriveMasterPlacement (most incident edges, ties toward
/// the lower partition id; never-seen ids hashed).
struct StreamRunResult {
  Partitioning partitioning;

  /// Edges consumed from the stream.
  uint64_t num_edges = 0;

  /// Vertex-id space after the run (max accepted id + 1, or the
  /// configured bound).
  VertexId num_vertices = 0;

  /// False when the source failed mid-stream (I/O error, or a multi-pass
  /// algorithm met a source that cannot rewind); `error` carries the
  /// diagnostic and the partial results are meaningless.
  bool ok = true;
  std::string error;
};

/// Interface implemented by every partitioning algorithm. Implementations
/// are stateless: all per-run state lives inside Run(), so a single
/// instance can be reused across graphs and configurations.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Short code used throughout the paper's tables (e.g. "LDG", "HDRF").
  virtual std::string_view name() const = 0;

  /// Cut model this algorithm belongs to (Table 1).
  virtual CutModel model() const = 0;

  /// Partitions `graph` into `config.k` parts. The result always passes
  /// ValidatePartitioning().
  virtual Partitioning Run(const Graph& graph,
                           const PartitionConfig& config) const = 0;

  /// Partitions the edges pulled from `source` (from its current
  /// position) into `config.k` parts — the single entry point for
  /// stream-based callers (`partition_tool --input-edgelist`, ingest
  /// pipelines), replacing the old side-door PartitionEdgeStream path.
  ///
  /// Streaming-capable algorithms override this to run graph-free with an
  /// O(n + k) synopsis; multi-pass overrides (DBH's degree pre-pass, the
  /// two-phase family) require source.SupportsRewind() and report a
  /// regular error otherwise. The default implementation is an adapter
  /// that materializes the stream into an in-memory Graph and calls
  /// Run() with natural order — correct for every algorithm, at the
  /// memory cost the registry exposes as PartitionerInfo::needs_graph.
  virtual StreamRunResult RunOnSource(EdgeStreamSource& source,
                                      const PartitionConfig& config) const;
};

/// Capabilities card of one registered algorithm — what tools, the grid
/// runner and the benches need to discover and drive it without
/// hard-coded name lists.
struct PartitionerInfo {
  /// Canonical paper code ("HDRF", "2PS"); the match is case-insensitive.
  std::string name;

  /// Accepted alternate spellings ("FENNEL" for FNL).
  std::vector<std::string> aliases;

  /// Cut model of the produced partitioning (Table 1).
  CutModel model = CutModel::kEdgeCut;

  /// Stream passes RunOnSource makes over the source (1 for single-pass
  /// streaming, 2 for a pre-pass or two-phase algorithm). Sources must
  /// SupportsRewind() when passes > 1.
  uint32_t passes = 1;

  /// True when RunOnSource falls back to materializing the whole graph
  /// in memory (offline and expansion-based algorithms).
  bool needs_graph = false;

  /// True when the code appears in PartitionerNames() — the Table 2
  /// roster plus the two-phase extensions. Variant codes (RLDG, RFNL,
  /// ESG) resolve but stay unlisted, as before the registry redesign.
  bool listed = true;

  /// One-line description used by the generated tool help text.
  std::string summary;

  /// Creates a fresh instance; never null for a registered entry.
  std::unique_ptr<Partitioner> (*factory)() = nullptr;
};

/// The registry: every known algorithm in registration order (the paper's
/// Table 2 order, then the unlisted variants, then the two-phase family).
/// CreatePartitioner / PartitionerNames / the tool help text are all views
/// over this table, so they can never drift apart.
const std::vector<PartitionerInfo>& PartitionerTable();

/// Registers an additional algorithm (extensions, test doubles). Returns
/// false — and registers nothing — when the name or an alias collides
/// with an existing entry. Not thread-safe against concurrent lookups;
/// register before spawning workers.
bool RegisterPartitioner(PartitionerInfo info);

/// Looks up an algorithm by canonical name or alias (case-insensitive);
/// nullptr when unknown. The pointer stays valid until the next
/// RegisterPartitioner call.
const PartitionerInfo* FindPartitionerInfo(std::string_view name);

/// Creates a partitioner by its paper code (case-insensitive); accepted
/// names are exactly the PartitionerTable() entries — see
/// PartitionerHelpText() for the generated list. Aborts on an unknown
/// name.
std::unique_ptr<Partitioner> CreatePartitioner(std::string_view name);

/// Like CreatePartitioner, but returns nullptr on an unknown name so
/// tools that take user input can report valid names instead of aborting.
std::unique_ptr<Partitioner> TryCreatePartitioner(std::string_view name);

/// All listed partitioner codes, in the paper's Table 2 order followed by
/// the two-phase extensions.
std::vector<std::string> PartitionerNames();

/// Listed partitioner codes restricted to one cut model (MTS counts as
/// edge-cut).
std::vector<std::string> PartitionerNames(CutModel model);

/// Human-readable roster generated from the registry — codes grouped by
/// cut model with aliases and capability notes. Tools print this instead
/// of maintaining a name list by hand.
std::string PartitionerHelpText();

}  // namespace sgp

#endif  // SGP_PARTITION_PARTITIONER_H_
