#include "partition/partitioning.h"

#include <algorithm>

#include "common/check.h"
#include "common/hashing.h"

namespace sgp {

std::string_view ScoreModeName(ScoreMode mode) {
  switch (mode) {
    case ScoreMode::kScalar:
      return "scalar";
    case ScoreMode::kBatched:
      return "batched";
    case ScoreMode::kSimd:
      return "simd";
  }
  return "unknown";
}

bool ParseScoreMode(std::string_view name, ScoreMode* mode) {
  if (name == "scalar") {
    *mode = ScoreMode::kScalar;
  } else if (name == "batched") {
    *mode = ScoreMode::kBatched;
  } else if (name == "simd") {
    *mode = ScoreMode::kSimd;
  } else {
    return false;
  }
  return true;
}

std::string_view CutModelName(CutModel model) {
  switch (model) {
    case CutModel::kEdgeCut:
      return "edge-cut";
    case CutModel::kVertexCut:
      return "vertex-cut";
    case CutModel::kHybrid:
      return "hybrid-cut";
  }
  return "unknown";
}

void DeriveEdgePlacement(const Graph& graph, Partitioning* p) {
  SGP_CHECK(p->vertex_to_partition.size() == graph.num_vertices());
  p->edge_to_partition.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    p->edge_to_partition[e] = p->vertex_to_partition[graph.edges()[e].src];
  }
}

void DeriveMasterPlacement(const Graph& graph, Partitioning* p) {
  SGP_CHECK(p->edge_to_partition.size() == graph.num_edges());
  const VertexId n = graph.num_vertices();
  const PartitionId k = p->k;
  // Count incident edges per (vertex, partition) sparsely; replica sets are
  // small (bounded by k), so linear scans of the per-vertex lists are fine.
  std::vector<std::vector<std::pair<PartitionId, uint32_t>>> counts(n);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    PartitionId part = p->edge_to_partition[e];
    for (VertexId v : {graph.edges()[e].src, graph.edges()[e].dst}) {
      auto& vec = counts[v];
      auto it = std::find_if(vec.begin(), vec.end(),
                             [part](const auto& pr) { return pr.first == part; });
      if (it == vec.end()) {
        vec.emplace_back(part, 1u);
      } else {
        ++it->second;
      }
    }
  }
  p->vertex_to_partition.assign(n, kInvalidPartition);
  for (VertexId u = 0; u < n; ++u) {
    if (counts[u].empty()) {
      p->vertex_to_partition[u] =
          static_cast<PartitionId>(HashU64(u) % k);
      continue;
    }
    auto best = counts[u].front();
    for (const auto& pr : counts[u]) {
      if (pr.second > best.second ||
          (pr.second == best.second && pr.first < best.first)) {
        best = pr;
      }
    }
    p->vertex_to_partition[u] = best.first;
  }
}

ReplicaSets ComputeReplicaSets(const Graph& graph, const Partitioning& p) {
  SGP_CHECK(p.vertex_to_partition.size() == graph.num_vertices());
  SGP_CHECK(p.edge_to_partition.size() == graph.num_edges());
  const VertexId n = graph.num_vertices();
  std::vector<std::vector<PartitionId>> sets(n);
  for (VertexId u = 0; u < n; ++u) {
    sets[u].push_back(p.vertex_to_partition[u]);
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    PartitionId part = p.edge_to_partition[e];
    sets[graph.edges()[e].src].push_back(part);
    sets[graph.edges()[e].dst].push_back(part);
  }
  ReplicaSets out;
  out.offsets.assign(static_cast<size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    auto& s = sets[u];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    out.offsets[u + 1] = out.offsets[u] + static_cast<uint32_t>(s.size());
  }
  out.partitions.reserve(out.offsets[n]);
  for (VertexId u = 0; u < n; ++u) {
    out.partitions.insert(out.partitions.end(), sets[u].begin(),
                          sets[u].end());
  }
  return out;
}

}  // namespace sgp
