#ifndef SGP_PARTITION_PARTITIONING_H_
#define SGP_PARTITION_PARTITIONING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "stream/stream.h"

namespace sgp {

/// Cut model of a partitioning algorithm (Section 4).
enum class CutModel {
  kEdgeCut,    // vertex-disjoint: vertices are assigned, edges may be cut
  kVertexCut,  // edge-disjoint: edges are assigned, vertices may be replicated
  kHybrid,     // PowerLyra: edge-cut for low-degree, vertex-cut for high-degree
};

/// Human-readable name of `model`.
std::string_view CutModelName(CutModel model);

/// Implementation of the k-way candidate evaluation every streaming
/// partitioner performs per stream element (partition/score_core.h).
/// All modes produce bit-identical assignments — same scores, same
/// tie-breaks (equal score → lighter load → lower id) — pinned by the
/// equivalence suite; kScalar exists as the reference for that suite and
/// for the per-mode rows of bench_partitioner_speed.
enum class ScoreMode {
  kBatched,  // chunk-batched SoA loops + bit-packed replica membership
  kScalar,   // per-element loops with per-candidate replica-set probes
  kSimd,     // explicit SIMD score+argmax kernels with runtime ISA dispatch
             // (AVX2 or the #pragma omp simd portable twin)
};

/// Human-readable name of `mode` ("scalar" / "batched" / "simd").
std::string_view ScoreModeName(ScoreMode mode);

/// Parses a --score-mode value; returns false (leaving `*mode` untouched)
/// for anything but "scalar", "batched" or "simd".
bool ParseScoreMode(std::string_view name, ScoreMode* mode);

/// Shared configuration for all partitioners. Algorithm-specific parameters
/// carry the defaults used by the paper / original publications.
struct PartitionConfig {
  /// Number of partitions k.
  PartitionId k = 4;

  /// Balance slack β of Equation (1): no partition may exceed β · (total/k).
  double balance_slack = 1.05;

  /// Seed driving stream shuffles and hash functions.
  uint64_t seed = 42;

  /// Arrival order of the stream.
  StreamOrder order = StreamOrder::kRandom;

  /// FENNEL γ exponent of the load term (Equation 5).
  double fennel_gamma = 1.5;

  /// FENNEL α; 0 selects the paper's optimum α = √k · m / n^{3/2} for
  /// γ = 1.5, generalized to α = m · k^{γ-1} / n^{γ}.
  double fennel_alpha = 0.0;

  /// HDRF balance weight λ (Equation 7); λ ≥ 1 protects against the
  /// BFS-order collapse of plain greedy (Section 4.2.2).
  double hdrf_lambda = 1.1;

  /// Degree threshold separating low- from high-degree vertices in the
  /// hybrid-cut model (PowerLyra uses 100 as default).
  uint32_t hybrid_threshold = 100;

  /// Number of passes for the re-streaming variants ([34]).
  uint32_t restream_passes = 5;

  /// Per-pass multiplier on FENNEL's α for re-streaming FENNEL; [34]
  /// anneals the load penalty upward so later passes tighten balance.
  /// 1.0 keeps the objective fixed.
  double restream_alpha_growth = 1.0;

  /// Relative capacities of the k partitions for heterogeneous clusters
  /// (Appendix A: BMI [44], LeBeane et al. [29]). Empty means homogeneous.
  /// When set (size k), every algorithm balances *effective* load —
  /// raw load divided by normalized capacity — instead of raw load, and
  /// hash-based algorithms draw partitions proportionally to capacity.
  /// Normalization lives in PartitionState (partition/state.h).
  std::vector<double> capacity_weights;

  /// Elements per ingest chunk pulled from the stream sources
  /// (stream/source.h). 0 serves the whole stream as a single chunk — the
  /// fast path for in-core graphs. Chunk boundaries never change the
  /// element sequence, so results are independent of this value.
  uint64_t ingest_chunk_size = 0;

  /// Scoring-core implementation (partition/score_core.h). Assignments
  /// are bit-identical in both modes; kScalar is the reference path the
  /// equivalence tests and bench_partitioner_speed compare against.
  ScoreMode score_mode = ScoreMode::kBatched;
};

/// Result of any partitioning algorithm, unified across cut models.
///
/// Every result carries both a vertex placement (master copies) and an edge
/// placement. For edge-cut algorithms the edge placement is derived by
/// grouping the out-edges of each vertex on the vertex's partition, which
/// Appendix B proves is communication-equivalent on a GAS engine. For
/// vertex-cut algorithms the master of a vertex is derived as its
/// most-loaded replica. This unification is exactly how the paper runs
/// edge-cut algorithms on PowerLyra.
struct Partitioning {
  CutModel model = CutModel::kEdgeCut;
  PartitionId k = 0;

  /// Partition of each vertex's master copy; size num_vertices.
  std::vector<PartitionId> vertex_to_partition;

  /// Partition of each edge (indexed by EdgeId); size num_edges.
  std::vector<PartitionId> edge_to_partition;

  /// Wall-clock seconds spent partitioning (the paper's partitioning time).
  double partitioning_seconds = 0;

  /// Bytes of working state the algorithm kept while streaming — the
  /// "synopsis" of Section 2 (assignments, partition loads, replica
  /// tables), excluding the input graph and the output itself. Streaming
  /// algorithms stay at O(n + k); the offline multilevel baseline
  /// materializes the whole coarsening hierarchy, which is the paper's
  /// "fraction of the memory" contrast (Section 4.1.1).
  uint64_t state_bytes = 0;
};

/// Fills `p->edge_to_partition` from `p->vertex_to_partition` by placing
/// each edge on its source's partition (Appendix B derivation).
void DeriveEdgePlacement(const Graph& graph, Partitioning* p);

/// Fills `p->vertex_to_partition` from `p->edge_to_partition`: each vertex's
/// master is its replica with the most incident edges (ties toward the
/// lower partition id); vertices without edges are hashed.
void DeriveMasterPlacement(const Graph& graph, Partitioning* p);

/// Replica sets A(u): the sorted set of partitions holding a copy of each
/// vertex (partitions of incident edges plus the master). Flat CSR layout.
struct ReplicaSets {
  std::vector<uint32_t> offsets;       // size n+1
  std::vector<PartitionId> partitions; // concatenated sorted sets

  std::span<const PartitionId> Of(VertexId u) const {
    return {partitions.data() + offsets[u], partitions.data() + offsets[u + 1]};
  }
};

/// Computes A(u) for every vertex from the edge and master placements.
ReplicaSets ComputeReplicaSets(const Graph& graph, const Partitioning& p);

}  // namespace sgp

#endif  // SGP_PARTITION_PARTITIONING_H_
