#include "partition/score_core.h"

#include <algorithm>

#include "common/telemetry.h"

namespace sgp {

namespace {

// Scoring-core instrumentation (docs/OBSERVABILITY.md, partition.score.*).
// Counters are accumulated in ScoreCoreStats locals on the hot path and
// land here once per run.
struct ScoreMetrics {
  Counter* batches = nullptr;
  Counter* candidates = nullptr;
  Counter* bitset_hits = nullptr;
  Counter* simd_picks = nullptr;
  Counter* simd_fallbacks = nullptr;

  ScoreMetrics() = default;
  explicit ScoreMetrics(MetricsRegistry& reg) {
    batches = reg.GetCounter("partition.score.batches");
    candidates = reg.GetCounter("partition.score.candidates");
    bitset_hits = reg.GetCounter("partition.score.bitset_hits");
    simd_picks = reg.GetCounter("partition.score.simd.picks");
    simd_fallbacks = reg.GetCounter("partition.score.simd.fallbacks");
  }

  static ScoreMetrics& Get() { return CurrentRegistryMetrics<ScoreMetrics>(); }
};

}  // namespace

void FlushScoreCoreStats(const ScoreCoreStats& stats) {
  ScoreMetrics& m = ScoreMetrics::Get();
  if (stats.batches > 0) m.batches->Increment(stats.batches);
  if (stats.candidates > 0) m.candidates->Increment(stats.candidates);
  if (stats.bitset_hits > 0) m.bitset_hits->Increment(stats.bitset_hits);
  if (stats.simd_picks > 0) m.simd_picks->Increment(stats.simd_picks);
  if (stats.simd_fallbacks > 0) {
    m.simd_fallbacks->Increment(stats.simd_fallbacks);
  }
}

ScoreCore::ScoreCore(PartitionState& state, ScoreMode mode)
    : state_(state), mode_(mode) {
  const PartitionId k = state_.k();
  SGP_CHECK(k > 0);
  if (mode_ != ScoreMode::kScalar) {
    scores_.resize(k, 0.0);
    inter_words_.resize((static_cast<uint64_t>(k) + 63) / 64, 0);
    if (state_.replicas_enabled()) state_.replicas().EnableBitIndex(k);
    if (mode_ == ScoreMode::kSimd) tier_ = score::ActiveSimdTier();
  } else {
    all_.resize(k);
    for (PartitionId i = 0; i < k; ++i) all_[i] = i;
  }
}

PartitionId ScoreCore::PlaceHdrfEdgeScalar(VertexId u, VertexId v,
                                           double lambda, HdrfStats& stats) {
  const PartitionId k = state_.k();
  const std::vector<uint64_t>& loads = state_.loads();
  const std::vector<double>& effective = state_.effective();
  ReplicaState& replicas = state_.replicas();

  // Partial degrees observed so far, normalized (Section 4.2.2). An
  // endpoint already in the table is a "hit" — the synopsis had state
  // for it from an earlier edge.
  stats.degree_hits += (state_.degree(u) > 0) + (state_.degree(v) > 0);
  state_.IncrementDegree(u);
  state_.IncrementDegree(v);
  const double du = state_.degree(u);
  const double dv = state_.degree(v);
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;

  // Balance term in the normalized form of the HDRF paper:
  // λ · (maxsize − |Pi|)/(ε + maxsize − minsize). Equation (7) of the
  // survey abbreviates this as λ(1 − |e(Pi)|/C); the normalized form is
  // what keeps the algorithm balanced under adversarial (BFS) orders.
  double max_load, spread;
  score::EffectiveSpread(effective.data(), k, &max_load, &spread);

  PartitionId best = 0;
  double best_score = score::kNegInf;
  for (PartitionId i = 0; i < k; ++i) {
    double g = 0;
    // g(x, Pi) = (1 + (1 − θ(x))) · 1_{A(x)}(Pi): replicating the
    // higher-degree endpoint scores lower, so its locality is
    // sacrificed first.
    if (replicas.Contains(u, i)) g += 1.0 + theta_v;
    if (replicas.Contains(v, i)) g += 1.0 + theta_u;
    const double sc = g + lambda * (max_load - effective[i]) / spread;
    if (sc > best_score) {
      best_score = sc;
      best = i;
    } else if (sc == best_score && loads[i] < loads[best]) {
      ++stats.tie_breaks;  // equal score resolved by the lighter part
      best = i;
    }
  }
  state_.AddLoadUpdatingEffective(best);
  replicas.Add(u, best);
  replicas.Add(v, best);
  return best;
}

PartitionId ScoreCore::PickPggScalar(VertexId u, VertexId v,
                                     uint32_t ext_degree_u,
                                     uint32_t ext_degree_v) {
  ReplicaState& replicas = state_.replicas();
  auto setu = replicas.Of(u);
  auto setv = replicas.Of(v);
  if (!setu.empty() && !setv.empty()) {
    inter_.clear();
    for (PartitionId p : setu) {
      if (replicas.Contains(v, p)) inter_.push_back(p);
    }
    stats_.candidates += setu.size();
    if (!inter_.empty()) return state_.LeastLoaded(inter_);
    // Disjoint replica sets: spread the endpoint with more remaining
    // edges, i.e. place with the replicas of the busier vertex.
    const bool u_busier =
        static_cast<int64_t>(ext_degree_u) - state_.degree(u) >=
        static_cast<int64_t>(ext_degree_v) - state_.degree(v);
    return state_.LeastLoaded(u_busier ? setu : setv);
  }
  if (!setu.empty()) {
    stats_.candidates += setu.size();
    return state_.LeastLoaded(setu);
  }
  if (!setv.empty()) {
    stats_.candidates += setv.size();
    return state_.LeastLoaded(setv);
  }
  stats_.candidates += state_.k();
  return state_.LeastLoaded(all_);
}

}  // namespace sgp
