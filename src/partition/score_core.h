#ifndef SGP_PARTITION_SCORE_CORE_H_
#define SGP_PARTITION_SCORE_CORE_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

/// Shared k-way candidate-evaluation core (the "score core"): every
/// streaming partitioner evaluates all k candidate partitions per stream
/// element, and this layer owns that loop for the whole roster — LDG and
/// FENNEL (Equations 4/5), HDRF (Equation 7), PowerGraph greedy, Ginger
/// (Equation 8) and the edge-stream greedy family — instead of each
/// algorithm hand-rolling its own copy over `partition/state`.
///
/// Layering: PartitionState (flat SoA synopsis: loads, effective loads,
/// capacities, degrees, replica sets) → ScoreCore (candidate scoring +
/// argmax with the canonical tie-break: equal score → lighter load →
/// lower id) → partitioner (stream order, gather, placement recording).
///
/// Three modes, bit-identical by construction and pinned by the
/// equivalence suite (tests/score_core_test.cc,
/// partitioner_property_test.cc):
///  - kBatched: a chunk of B stream elements per call, inner loops reading
///    the SoA arrays directly and replica membership from the bit index
///    (one 64-candidate word per load instead of per-candidate set
///    probes), branch-free score evaluation where it pays.
///  - kScalar: the reference per-element loops with ReplicaState::Contains
///    probes — the pre-refactor code shape, kept for the per-mode rows of
///    bench_partitioner_speed.
///  - kSimd: explicit SIMD kernels behind runtime ISA dispatch (the
///    SimdTier block below) — AVX2 intrinsics or a #pragma omp simd
///    portable twin, same selections, no tie-audit counters.
///
/// Every floating-point expression is textually identical between modes
/// (and to the pre-ScoreCore algorithms), so assignments match down to
/// the last tie-break. Builds must not let the compiler contract a*b+c
/// into FMA (see SGP_NATIVE in CMakeLists.txt) or the two shapes could
/// round differently.

/// Decision counters of the scoring core, accumulated in plain locals and
/// flushed once per run (partition.score.*, docs/OBSERVABILITY.md).
struct ScoreCoreStats {
  uint64_t batches = 0;      // chunk-level scorer invocations
  uint64_t candidates = 0;   // candidate partitions evaluated
  uint64_t bitset_hits = 0;  // replica-membership bits found set (batched)
  uint64_t simd_picks = 0;   // picks served by a SIMD kernel (kSimd only)
  uint64_t simd_fallbacks = 0;  // kSimd picks routed to the batched kernel
                                // (pow-form FENNEL has no SIMD twin)
};

/// Flushes `stats` into the current registry's
/// partition.score.{batches,candidates,bitset_hits} counters.
void FlushScoreCoreStats(const ScoreCoreStats& stats);

/// Decision counters of the HDRF scoring loop (kept distinct from
/// ScoreCoreStats: they feed the long-standing partition.hdrf.* metrics).
struct HdrfStats {
  uint64_t degree_hits = 0;
  uint64_t tie_breaks = 0;
};

namespace score {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Replica-membership row of one vertex: the published (or sequential)
/// word span, plus an optional unpublished worker-delta span that is OR-ed
/// in word-wise (the sharded ingest drivers' combined view).
struct MembershipRow {
  const uint64_t* base = nullptr;
  const uint64_t* delta = nullptr;  // may be null

  uint64_t Word(uint64_t w) const {
    return delta == nullptr ? base[w] : base[w] | delta[w];
  }
  bool Test(PartitionId p) const { return (Word(p >> 6) >> (p & 63)) & 1u; }
};

/// Max effective load and the normalized HDRF spread 1 + (max − min)
/// (ε = 1), with the exact accumulation order of the scalar loop.
inline void EffectiveSpread(const double* effective, PartitionId k,
                            double* max_out, double* spread_out) {
  double max_load = 0;
  double min_load = effective[0];
  for (PartitionId i = 0; i < k; ++i) {
    max_load = std::max(max_load, effective[i]);
    min_load = std::min(min_load, effective[i]);
  }
  *max_out = max_load;
  *spread_out = 1.0 + (max_load - min_load);
}

/// Batched HDRF candidate evaluation: one membership word per endpoint
/// per 64-candidate block, branch-free g-term, argmax with the canonical
/// tie-break. The g accumulation order (u-term then v-term) matches the
/// scalar Contains-probe loop, so scores are bit-identical.
inline PartitionId HdrfPickBatched(PartitionId k, const double* effective,
                                   const uint64_t* loads, MembershipRow u_row,
                                   MembershipRow v_row, double theta_u,
                                   double theta_v, double lambda,
                                   double max_load, double spread,
                                   uint64_t* tie_breaks,
                                   uint64_t* bitset_hits) {
  const double gain_u = 1.0 + theta_v;  // g of replicating endpoint u
  const double gain_v = 1.0 + theta_u;
  PartitionId best = 0;
  double best_score = kNegInf;
  uint64_t ties = 0;
  uint64_t hits = 0;
  for (PartitionId blk = 0; blk < k; blk += 64) {
    const uint64_t wu = u_row.Word(blk >> 6);
    const uint64_t wv = v_row.Word(blk >> 6);
    const PartitionId lim = std::min<PartitionId>(k, blk + 64);
    const uint64_t mask = lim - blk == 64
                              ? ~uint64_t{0}
                              : (uint64_t{1} << (lim - blk)) - 1;
    hits += static_cast<uint64_t>(std::popcount(wu & mask)) +
            static_cast<uint64_t>(std::popcount(wv & mask));
    for (PartitionId i = blk; i < lim; ++i) {
      const double bu = static_cast<double>((wu >> (i - blk)) & 1u);
      const double bv = static_cast<double>((wv >> (i - blk)) & 1u);
      const double g = bu * gain_u + bv * gain_v;
      const double sc = g + lambda * (max_load - effective[i]) / spread;
      if (sc > best_score) {
        best_score = sc;
        best = i;
      } else if (sc == best_score && loads[i] < loads[best]) {
        ++ties;
        best = i;
      }
    }
  }
  *tie_breaks += ties;
  *bitset_hits += hits;
  return best;
}

/// Objective of the streaming greedy vertex placement (LDG Equation 4,
/// FENNEL Equation 5).
struct GreedyObjective {
  bool ldg = true;
  double alpha = 0.0;     // FENNEL α (per pass, restreaming anneals it)
  double gamma = 1.5;     // FENNEL γ
  bool sqrt_form = true;  // γ == 1.5 → sqrt instead of pow
};

inline double GreedyScore(const GreedyObjective& obj, uint32_t count,
                          double size, double capacity, double weight) {
  if (obj.ldg) {
    return static_cast<double>(count) * (1.0 - size / capacity);
  }
  // Effective load: raw size scaled by inverse capacity, so a twice-as-big
  // machine looks half as loaded.
  const double eff = size / weight;
  const double load =
      obj.sqrt_form ? std::sqrt(eff) : std::pow(eff, obj.gamma - 1.0);
  return static_cast<double>(count) - obj.alpha * obj.gamma * load;
}

/// Reference per-element LDG/FENNEL pick: hard capacity skip, argmax,
/// ties toward the smaller partition. kInvalidPartition when every
/// partition is at capacity.
inline PartitionId GreedyPickScalar(PartitionId k,
                                    const uint32_t* neighbor_counts,
                                    const uint64_t* loads,
                                    const double* weights,
                                    const double* capacity,
                                    const GreedyObjective& obj,
                                    uint64_t* tie_breaks) {
  PartitionId best = kInvalidPartition;
  double best_score = kNegInf;
  uint64_t best_load = 0;
  for (PartitionId i = 0; i < k; ++i) {
    const double size = static_cast<double>(loads[i]);
    if (size + 1.0 > capacity[i]) continue;  // hard balance constraint
    const double sc =
        GreedyScore(obj, neighbor_counts[i], size, capacity[i], weights[i]);
    if (sc > best_score) {
      best_score = sc;
      best = i;
      best_load = loads[i];
    } else if (sc == best_score && loads[i] < best_load) {
      ++*tie_breaks;
      best = i;
      best_load = loads[i];
    }
  }
  return best;
}

/// Batched LDG/FENNEL pick: phase 1 materializes every candidate score
/// into `scores` with capacity violations masked to −inf (branch-free,
/// auto-vectorizable over the SoA arrays); phase 2 is the same argmax /
/// tie-break scan as the scalar path. A masked −inf can never win (> is
/// strict and the tie-break needs loads[i] < best_load, which starts at 0
/// with unsigned loads), so selection matches the scalar skip exactly.
inline PartitionId GreedyPickBatched(PartitionId k,
                                     const uint32_t* neighbor_counts,
                                     const uint64_t* loads,
                                     const double* weights,
                                     const double* capacity,
                                     const GreedyObjective& obj,
                                     double* scores, uint64_t* tie_breaks) {
  for (PartitionId i = 0; i < k; ++i) {
    const double size = static_cast<double>(loads[i]);
    const double sc =
        GreedyScore(obj, neighbor_counts[i], size, capacity[i], weights[i]);
    scores[i] = size + 1.0 > capacity[i] ? kNegInf : sc;
  }
  PartitionId best = kInvalidPartition;
  double best_score = kNegInf;
  uint64_t best_load = 0;
  for (PartitionId i = 0; i < k; ++i) {
    if (scores[i] > best_score) {
      best_score = scores[i];
      best = i;
      best_load = loads[i];
    } else if (scores[i] == best_score && best != kInvalidPartition &&
               loads[i] < best_load) {
      ++*tie_breaks;
      best = i;
      best_load = loads[i];
    }
  }
  return best;
}

/// Ginger pick over caller-materialized combined loads ½(|P_v| +
/// (n/m)|P_e|)/w (Equation 8 through FENNEL's γ = 1.5 marginal-cost
/// form); candidates at or above the combined capacity are skipped, ties
/// toward the smaller combined load.
inline PartitionId GingerPickScalar(PartitionId k,
                                    const uint32_t* neighbor_counts,
                                    const double* combined_loads,
                                    double combined_capacity, double alpha,
                                    double gamma, uint64_t* tie_breaks) {
  PartitionId best = kInvalidPartition;
  double best_score = kNegInf;
  double best_load = 0;
  for (PartitionId i = 0; i < k; ++i) {
    const double load = combined_loads[i];
    if (load >= combined_capacity) continue;
    const double sc = static_cast<double>(neighbor_counts[i]) -
                      alpha * gamma * std::sqrt(load);
    if (sc > best_score || (sc == best_score && load < best_load)) {
      if (sc == best_score) ++*tie_breaks;
      best_score = sc;
      best = i;
      best_load = load;
    }
  }
  return best;
}

/// Batched Ginger pick: masked score materialization + the scalar argmax.
/// A masked −inf never wins: > is strict against the −inf start, and the
/// tie-break needs load < best_load, which starts at 0 with non-negative
/// combined loads.
inline PartitionId GingerPickBatched(PartitionId k,
                                     const uint32_t* neighbor_counts,
                                     const double* combined_loads,
                                     double combined_capacity, double alpha,
                                     double gamma, double* scores,
                                     uint64_t* tie_breaks) {
  for (PartitionId i = 0; i < k; ++i) {
    const double load = combined_loads[i];
    const double sc = static_cast<double>(neighbor_counts[i]) -
                      alpha * gamma * std::sqrt(load);
    scores[i] = load >= combined_capacity ? kNegInf : sc;
  }
  PartitionId best = kInvalidPartition;
  double best_score = kNegInf;
  double best_load = 0;
  for (PartitionId i = 0; i < k; ++i) {
    const double load = combined_loads[i];
    if (scores[i] > best_score ||
        (scores[i] == best_score && best != kInvalidPartition &&
         load < best_load)) {
      if (scores[i] == best_score) ++*tie_breaks;
      best_score = scores[i];
      best = i;
      best_load = load;
    }
  }
  return best;
}

/// Least effectively-loaded partition with room for one more element
/// (ties toward the lower id); 0 when every partition is at capacity —
/// the edge-stream greedy family's placement rule.
inline PartitionId LeastLoadedWithRoom(PartitionId k, const uint64_t* loads,
                                       const double* weights,
                                       const double* capacity) {
  PartitionId best = kInvalidPartition;
  for (PartitionId i = 0; i < k; ++i) {
    if (static_cast<double>(loads[i]) + 1.0 > capacity[i]) continue;
    if (best == kInvalidPartition ||
        static_cast<double>(loads[i]) / weights[i] <
            static_cast<double>(loads[best]) / weights[best]) {
      best = i;
    }
  }
  return best == kInvalidPartition ? 0 : best;
}

/// Least effectively-loaded partition over all k, no capacity check (the
/// all-at-capacity fallback of the greedy edge-cut family).
inline PartitionId LeastLoadedAll(PartitionId k, const uint64_t* loads,
                                  const double* weights) {
  PartitionId best = 0;
  for (PartitionId i = 1; i < k; ++i) {
    if (static_cast<double>(loads[i]) / weights[i] <
        static_cast<double>(loads[best]) / weights[best]) {
      best = i;
    }
  }
  return best;
}

/// Least effectively-loaded partition among the set bits of `row` (ties
/// toward the lower id — ascending bit order plus a strict compare). The
/// caller guarantees at least one bit is set below k.
inline PartitionId LeastLoadedOverBits(PartitionId k, const uint64_t* loads,
                                       const double* weights,
                                       MembershipRow row,
                                       uint64_t* bitset_hits) {
  PartitionId best = kInvalidPartition;
  double best_load = 0;
  uint64_t hits = 0;
  const uint64_t num_words = (static_cast<uint64_t>(k) + 63) / 64;
  for (uint64_t w = 0; w < num_words; ++w) {
    uint64_t bits = row.Word(w);
    hits += static_cast<uint64_t>(std::popcount(bits));
    while (bits != 0) {
      const PartitionId p = static_cast<PartitionId>(
          w * 64 + static_cast<uint32_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      const double load = static_cast<double>(loads[p]) / weights[p];
      if (best == kInvalidPartition || load < best_load) {
        best = p;
        best_load = load;
      }
    }
  }
  *bitset_hits += hits;
  return best;
}

/// Word-wise intersection of two combined membership rows.
inline void IntersectRows(PartitionId k, MembershipRow a, MembershipRow b,
                          uint64_t* out, bool* any) {
  const uint64_t num_words = (static_cast<uint64_t>(k) + 63) / 64;
  uint64_t nonzero = 0;
  for (uint64_t w = 0; w < num_words; ++w) {
    out[w] = a.Word(w) & b.Word(w);
    nonzero |= out[w];
  }
  *any = nonzero != 0;
}

// -----------------------------------------------------------------------
// Explicit SIMD kernel tier (ScoreMode::kSimd, partition/score_simd.cc).
//
// Two ISA tiers behind one dispatch point: hand-written AVX2 intrinsics
// (score_simd_avx2.cc, selected at runtime via __builtin_cpu_supports) and
// a `#pragma omp simd` portable twin. Both tiers — and both relative to
// kScalar/kBatched — produce bit-identical selections: every FP expression
// keeps the exact operation order of the scalar reference (no FMA
// contraction: the AVX2 unit is built with -mavx2 only plus
// -ffp-contract=off), and the argmax reductions resolve ties with the full
// canonical rule (equal score → lighter load → lower id), applied
// lane-wise and again at the cross-lane/tail merge.
//
// Counter policy: tie-break audit counters are inherently sequential
// (they count prefix-argmax replacements) and cannot be reproduced by a
// fused SIMD reduction, so kSimd increments *no* tie counters in either
// tier; batches / candidates / bitset_hits are computed exactly as in
// kBatched, keeping every deterministic counter ISA-independent.
//
// Preconditions (hold for every caller in this repo, asserted in debug):
// partition loads < 2^52 (exact u64→double magic conversion) and neighbor
// counts < 2^31 (signed i32→double lanes).
// -----------------------------------------------------------------------

enum class SimdTier {
  kPortable,  // #pragma omp simd loops, any ISA
  kAvx2,      // AVX2 intrinsics (x86-64 with runtime avx2 support)
};

/// Human-readable tier name ("portable" / "avx2").
std::string_view SimdTierName(SimdTier tier);

/// True when `tier` can execute on this machine (kPortable always can).
bool SimdTierAvailable(SimdTier tier);

/// Best available tier, honoring the SGP_FORCE_SCALAR_DISPATCH env
/// override (any non-empty value other than "0" pins kPortable, so
/// sanitizer runs can exercise the portable twin on AVX2 hardware).
/// Re-read per call — it is consulted once per partitioner run.
SimdTier ActiveSimdTier();

/// SIMD HDRF candidate sweep: same scores, selection and bitset-hit audit
/// as HdrfPickBatched, no tie audit. `scores` is k doubles of scratch
/// (used by the portable tier's materialize-then-argmax shape).
PartitionId HdrfPickSimd(SimdTier tier, PartitionId k, const double* effective,
                         const uint64_t* loads, MembershipRow u_row,
                         MembershipRow v_row, double theta_u, double theta_v,
                         double lambda, double max_load, double spread,
                         double* scores, uint64_t* bitset_hits);

/// SIMD LDG/FENNEL pick (sqrt-form FENNEL only — the dispatcher falls
/// back to GreedyPickBatched for the pow-form objective). Selection
/// matches GreedyPickScalar, incl. kInvalidPartition when all full.
PartitionId GreedyPickSimd(SimdTier tier, PartitionId k,
                           const uint32_t* neighbor_counts,
                           const uint64_t* loads, const double* weights,
                           const double* capacity, const GreedyObjective& obj,
                           double* scores);

/// SIMD Ginger pick; selection matches GingerPickScalar.
PartitionId GingerPickSimd(SimdTier tier, PartitionId k,
                           const uint32_t* neighbor_counts,
                           const double* combined_loads,
                           double combined_capacity, double alpha,
                           double gamma, double* scores);

/// SIMD least-effectively-loaded-with-room scan; matches
/// LeastLoadedWithRoom (0 when every partition is at capacity).
PartitionId LeastLoadedWithRoomSimd(SimdTier tier, PartitionId k,
                                    const uint64_t* loads,
                                    const double* weights,
                                    const double* capacity, double* scores);

/// SIMD least-effectively-loaded scan over all k; matches LeastLoadedAll.
PartitionId LeastLoadedAllSimd(SimdTier tier, PartitionId k,
                               const uint64_t* loads, const double* weights,
                               double* scores);

}  // namespace score

/// Edges of lookahead in the chunked scoring loops: while edge i is being
/// scored, the degree entries and bit-matrix rows of edge i+8 are pulled
/// toward the cache. 8 edges ≈ the latency of one k-way sweep.
inline constexpr size_t kScorePrefetchAhead = 8;

/// Per-run scoring context: binds a PartitionState, the mode, the scratch
/// buffers (candidate scores, intersection words) and the decision
/// counters; enables the replica bit index when batched or simd (kSimd
/// resolves its ISA tier once, at construction). Flushes
/// partition.score.* on destruction.
class ScoreCore {
 public:
  ScoreCore(PartitionState& state, ScoreMode mode);
  ~ScoreCore() { FlushScoreCoreStats(stats_); }

  ScoreCore(const ScoreCore&) = delete;
  ScoreCore& operator=(const ScoreCore&) = delete;

  ScoreMode mode() const { return mode_; }
  ScoreCoreStats& stats() { return stats_; }

  /// Marks one batch of stream elements entering the scorer (callers that
  /// drive per-element picks, e.g. the vertex-greedy gather loop, call it
  /// once per source chunk).
  void NoteBatch() { ++stats_.batches; }

  // ---------------------------------------------------------------------
  // HDRF (Section 4.2.2): full state transition per edge — partial-degree
  // updates, scoring, load + effective-load update, replica adds. The
  // state must have degree table, effective loads and replica sets
  // initialized and covering every endpoint of `chunk`. Shared by
  // HdrfPartitioner (in-memory graphs) and the disk ingest path, so both
  // place edges identically.
  // ---------------------------------------------------------------------
  template <typename PlaceFn>
  void PlaceHdrfChunk(std::span<const StreamEdge> chunk, double lambda,
                      HdrfStats& stats, PlaceFn&& place) {
    ++stats_.batches;
    const PartitionId k = state_.k();
    stats_.candidates += static_cast<uint64_t>(chunk.size()) * k;
    if (mode_ == ScoreMode::kScalar) {
      for (const StreamEdge& e : chunk) {
        place(e, PlaceHdrfEdgeScalar(e.src, e.dst, lambda, stats));
      }
      return;
    }
    const bool simd = mode_ == ScoreMode::kSimd;
    if (simd) stats_.simd_picks += static_cast<uint64_t>(chunk.size());
    ReplicaState& replicas = state_.replicas();
    const double* effective = state_.effective().data();
    const uint64_t* loads = state_.loads().data();
    // Every endpoint of the chunk is covered (callers EnsureVertex the
    // whole chunk up front), so degree entries and bit-matrix rows are
    // stable addresses we can pull in ahead of their edge.
    const uint32_t* degrees = state_.degrees().data();
    for (size_t idx = 0; idx < chunk.size(); ++idx) {
      if (idx + kScorePrefetchAhead < chunk.size()) {
        const StreamEdge& f = chunk[idx + kScorePrefetchAhead];
        __builtin_prefetch(&degrees[f.src], 1, 1);
        __builtin_prefetch(&degrees[f.dst], 1, 1);
        __builtin_prefetch(replicas.RowWords(f.src), 1, 1);
        __builtin_prefetch(replicas.RowWords(f.dst), 1, 1);
      }
      const StreamEdge& e = chunk[idx];
      const VertexId u = e.src;
      const VertexId v = e.dst;
      stats.degree_hits += (state_.degree(u) > 0) + (state_.degree(v) > 0);
      state_.IncrementDegree(u);
      state_.IncrementDegree(v);
      const double du = state_.degree(u);
      const double dv = state_.degree(v);
      const double theta_u = du / (du + dv);
      const double theta_v = 1.0 - theta_u;
      double max_load, spread;
      score::EffectiveSpread(effective, k, &max_load, &spread);
      const PartitionId best =
          simd ? score::HdrfPickSimd(
                     tier_, k, effective, loads,
                     {replicas.RowWords(u), nullptr},
                     {replicas.RowWords(v), nullptr}, theta_u, theta_v,
                     lambda, max_load, spread, scores_.data(),
                     &stats_.bitset_hits)
               : score::HdrfPickBatched(
                     k, effective, loads, {replicas.RowWords(u), nullptr},
                     {replicas.RowWords(v), nullptr}, theta_u, theta_v,
                     lambda, max_load, spread, &stats.tie_breaks,
                     &stats_.bitset_hits);
      state_.AddLoadUpdatingEffective(best);
      replicas.Add(u, best);
      replicas.Add(v, best);
      place(e, best);
    }
  }

  /// Reference single-edge HDRF transition (the pre-ScoreCore
  /// PlaceHdrfEdge, per-candidate Contains probes).
  PartitionId PlaceHdrfEdgeScalar(VertexId u, VertexId v, double lambda,
                                  HdrfStats& stats);

  // ---------------------------------------------------------------------
  // PowerGraph greedy: intersection-first replica-set placement.
  // `ext_degree(v)` is the full degree of v in the input (the busier-
  // endpoint rule compares remaining = full − placed degrees).
  // ---------------------------------------------------------------------
  template <typename ExtDegreeFn, typename PlaceFn>
  void PlacePggChunk(std::span<const StreamEdge> chunk,
                     ExtDegreeFn&& ext_degree, PlaceFn&& place) {
    ++stats_.batches;
    const PartitionId k = state_.k();
    ReplicaState& replicas = state_.replicas();
    const uint64_t* loads = state_.loads().data();
    const double* weights = state_.weights().data();
    // Every set bit scanned is both a bitset hit and an evaluated
    // candidate, so candidates ride on the hit counter's delta.
    auto pick_over = [&](score::MembershipRow row) {
      const uint64_t before = stats_.bitset_hits;
      const PartitionId t = score::LeastLoadedOverBits(k, loads, weights, row,
                                                       &stats_.bitset_hits);
      stats_.candidates += stats_.bitset_hits - before;
      return t;
    };
    // kSimd intentionally shares the batched path here: PGG scans sparse
    // replica sets (≤ a handful of set bits), where the word-at-a-time
    // bit scan beats any dense k-lane sweep.
    for (size_t idx = 0; idx < chunk.size(); ++idx) {
      if (mode_ != ScoreMode::kScalar &&
          idx + kScorePrefetchAhead < chunk.size()) {
        const StreamEdge& f = chunk[idx + kScorePrefetchAhead];
        __builtin_prefetch(replicas.RowWords(f.src), 1, 1);
        __builtin_prefetch(replicas.RowWords(f.dst), 1, 1);
      }
      const StreamEdge& e = chunk[idx];
      const VertexId u = e.src;
      const VertexId v = e.dst;
      PartitionId target;
      if (mode_ == ScoreMode::kScalar) {
        target = PickPggScalar(u, v, ext_degree(u), ext_degree(v));
      } else {
        const bool u_empty = replicas.Of(u).empty();
        const bool v_empty = replicas.Of(v).empty();
        const score::MembershipRow row_u{replicas.RowWords(u), nullptr};
        const score::MembershipRow row_v{replicas.RowWords(v), nullptr};
        if (!u_empty && !v_empty) {
          bool any = false;
          score::IntersectRows(k, row_u, row_v, inter_words_.data(), &any);
          if (any) {
            target = pick_over({inter_words_.data(), nullptr});
          } else {
            // Disjoint replica sets: place with the replicas of the
            // endpoint that has more unplaced edges left.
            const bool u_busier =
                static_cast<int64_t>(ext_degree(u)) - state_.degree(u) >=
                static_cast<int64_t>(ext_degree(v)) - state_.degree(v);
            target = pick_over(u_busier ? row_u : row_v);
          }
        } else if (!u_empty) {
          target = pick_over(row_u);
        } else if (!v_empty) {
          target = pick_over(row_v);
        } else {
          stats_.candidates += k;
          target = state_.LeastLoaded();
        }
      }
      place(e, target);
      state_.AddLoad(target);
      state_.IncrementDegree(u);
      state_.IncrementDegree(v);
      replicas.Add(u, target);
      replicas.Add(v, target);
    }
  }

  // ---------------------------------------------------------------------
  // Vertex-greedy family (LDG / FENNEL / re-streaming): the caller
  // gathers |P ∩ N(u)| into a dense scratch and the core performs the
  // k-way pick. kInvalidPartition when every partition is at capacity.
  // ---------------------------------------------------------------------
  PartitionId PickGreedyVertex(const uint32_t* neighbor_counts,
                               const score::GreedyObjective& objective,
                               uint64_t* tie_breaks) {
    stats_.candidates += state_.k();
    if (mode_ == ScoreMode::kScalar) {
      return score::GreedyPickScalar(
          state_.k(), neighbor_counts, state_.loads().data(),
          state_.weights().data(), state_.capacities().data(), objective,
          tie_breaks);
    }
    if (mode_ == ScoreMode::kSimd) {
      if (objective.ldg || objective.sqrt_form) {
        ++stats_.simd_picks;
        return score::GreedyPickSimd(
            tier_, state_.k(), neighbor_counts, state_.loads().data(),
            state_.weights().data(), state_.capacities().data(), objective,
            scores_.data());
      }
      // Pow-form FENNEL has no SIMD twin; route to the batched kernel.
      // kSimd audits no ties, so the tie counter stays untouched.
      ++stats_.simd_fallbacks;
      uint64_t unaudited_ties = 0;
      return score::GreedyPickBatched(
          state_.k(), neighbor_counts, state_.loads().data(),
          state_.weights().data(), state_.capacities().data(), objective,
          scores_.data(), &unaudited_ties);
    }
    return score::GreedyPickBatched(
        state_.k(), neighbor_counts, state_.loads().data(),
        state_.weights().data(), state_.capacities().data(), objective,
        scores_.data(), tie_breaks);
  }

  /// Ginger (Equation 8) pick over caller-materialized combined loads.
  PartitionId PickGingerVertex(const uint32_t* neighbor_counts,
                               const double* combined_loads,
                               double combined_capacity, double alpha,
                               double gamma, uint64_t* tie_breaks) {
    stats_.candidates += state_.k();
    if (mode_ == ScoreMode::kScalar) {
      return score::GingerPickScalar(state_.k(), neighbor_counts,
                                     combined_loads, combined_capacity,
                                     alpha, gamma, tie_breaks);
    }
    if (mode_ == ScoreMode::kSimd) {
      ++stats_.simd_picks;
      return score::GingerPickSimd(tier_, state_.k(), neighbor_counts,
                                   combined_loads, combined_capacity, alpha,
                                   gamma, scores_.data());
    }
    return score::GingerPickBatched(state_.k(), neighbor_counts,
                                    combined_loads, combined_capacity, alpha,
                                    gamma, scores_.data(), tie_breaks);
  }

  /// Edge-stream greedy placement rule: least effectively-loaded
  /// partition with room, 0 when all are full.
  PartitionId PickLeastLoadedWithRoom() {
    stats_.candidates += state_.k();
    if (mode_ == ScoreMode::kSimd) {
      ++stats_.simd_picks;
      return score::LeastLoadedWithRoomSimd(
          tier_, state_.k(), state_.loads().data(), state_.weights().data(),
          state_.capacities().data(), scores_.data());
    }
    return score::LeastLoadedWithRoom(state_.k(), state_.loads().data(),
                                      state_.weights().data(),
                                      state_.capacities().data());
  }

  /// All-at-capacity fallback: least effective load, no caps.
  PartitionId PickLeastLoadedAll() {
    stats_.candidates += state_.k();
    if (mode_ == ScoreMode::kSimd) {
      ++stats_.simd_picks;
      return score::LeastLoadedAllSimd(tier_, state_.k(),
                                       state_.loads().data(),
                                       state_.weights().data(),
                                       scores_.data());
    }
    return score::LeastLoadedAll(state_.k(), state_.loads().data(),
                                 state_.weights().data());
  }

 private:
  PartitionId PickPggScalar(VertexId u, VertexId v, uint32_t ext_degree_u,
                            uint32_t ext_degree_v);

  PartitionState& state_;
  ScoreMode mode_;
  score::SimdTier tier_ = score::SimdTier::kPortable;  // kSimd only
  ScoreCoreStats stats_;
  std::vector<double> scores_;        // batched candidate scores, size k
  std::vector<uint64_t> inter_words_; // intersection scratch, ceil(k/64)
  std::vector<PartitionId> all_;      // [0, k), the scalar PGG cold set
  std::vector<PartitionId> inter_;    // scalar PGG intersection scratch
};

}  // namespace sgp

#endif  // SGP_PARTITION_SCORE_CORE_H_
