#include <bit>
#include <cmath>
#include <cstdlib>

#include "partition/score_simd_internal.h"

// ScoreMode::kSimd — ISA dispatch plus the portable `#pragma omp simd`
// twin of the AVX2 kernels (score_simd_avx2.cc). The portable shape is
// materialize-then-argmax: an elementwise vectorizable scoring loop into
// the `scores` scratch (every expression textually identical to the
// kBatched loops of score_core.h, so the doubles are bit-identical), then
// a sequential full-lexicographic reduction. This unit is compiled with
// -fopenmp-simd only — no arch flags — so it runs anywhere; without
// OpenMP-SIMD support the pragmas are ignored and the loops stay scalar,
// which changes nothing but speed.

namespace sgp::score {

namespace {

constexpr double kPosInf = std::numeric_limits<double>::infinity();

PartitionId HdrfPickPortable(PartitionId k, const double* effective,
                             const uint64_t* loads, MembershipRow u_row,
                             MembershipRow v_row, double gain_u, double gain_v,
                             double lambda, double max_load, double spread,
                             double* scores, uint64_t* bitset_hits) {
  uint64_t hits = 0;
  for (PartitionId blk = 0; blk < k; blk += 64) {
    const uint64_t wu = RowWord(u_row, blk >> 6);
    const uint64_t wv = RowWord(v_row, blk >> 6);
    const PartitionId lim = k < blk + 64 ? k : blk + 64;
    const uint64_t mask = lim - blk == 64
                              ? ~uint64_t{0}
                              : (uint64_t{1} << (lim - blk)) - 1;
    hits += static_cast<uint64_t>(std::popcount(wu & mask)) +
            static_cast<uint64_t>(std::popcount(wv & mask));
#pragma omp simd
    for (PartitionId i = blk; i < lim; ++i) {
      const double bu = static_cast<double>((wu >> (i - blk)) & 1u);
      const double bv = static_cast<double>((wv >> (i - blk)) & 1u);
      const double g = bu * gain_u + bv * gain_v;
      scores[i] = g + lambda * (max_load - effective[i]) / spread;
    }
  }
  *bitset_hits += hits;
  LexBestU64 best;
  for (PartitionId i = 0; i < k; ++i) MergeU64(&best, scores[i], loads[i], i);
  return best.index;
}

PartitionId GreedyPickPortable(PartitionId k, const uint32_t* neighbor_counts,
                               const uint64_t* loads, const double* weights,
                               const double* capacity,
                               const GreedyObjective& obj, double* scores) {
  if (obj.ldg) {
#pragma omp simd
    for (PartitionId i = 0; i < k; ++i) {
      const double size = static_cast<double>(loads[i]);
      const double sc =
          static_cast<double>(neighbor_counts[i]) * (1.0 - size / capacity[i]);
      scores[i] = size + 1.0 > capacity[i] ? kNegInf : sc;
    }
  } else {
    // obj.alpha * obj.gamma * load associates left, so hoisting the
    // product keeps the doubles bit-identical to GreedyScore.
    const double ag = obj.alpha * obj.gamma;
#pragma omp simd
    for (PartitionId i = 0; i < k; ++i) {
      const double size = static_cast<double>(loads[i]);
      const double sc = static_cast<double>(neighbor_counts[i]) -
                        ag * std::sqrt(size / weights[i]);
      scores[i] = size + 1.0 > capacity[i] ? kNegInf : sc;
    }
  }
  LexBestU64 best;
  for (PartitionId i = 0; i < k; ++i) MergeU64(&best, scores[i], loads[i], i);
  // −inf only arises from capacity masking (all inputs finite), so it
  // signals every partition full — the scalar path's kInvalidPartition.
  return best.score == kNegInf ? kInvalidPartition : best.index;
}

PartitionId GingerPickPortable(PartitionId k, const uint32_t* neighbor_counts,
                               const double* combined_loads,
                               double combined_capacity, double alpha,
                               double gamma, double* scores) {
  const double ag = alpha * gamma;
#pragma omp simd
  for (PartitionId i = 0; i < k; ++i) {
    const double load = combined_loads[i];
    const double sc =
        static_cast<double>(neighbor_counts[i]) - ag * std::sqrt(load);
    scores[i] = load >= combined_capacity ? kNegInf : sc;
  }
  LexBestF64 best;
  for (PartitionId i = 0; i < k; ++i) {
    MergeF64(&best, scores[i], combined_loads[i], i);
  }
  return best.score == kNegInf ? kInvalidPartition : best.index;
}

PartitionId LeastLoadedWithRoomPortable(PartitionId k, const uint64_t* loads,
                                        const double* weights,
                                        const double* capacity,
                                        double* scores) {
#pragma omp simd
  for (PartitionId i = 0; i < k; ++i) {
    const double size = static_cast<double>(loads[i]);
    scores[i] = size + 1.0 > capacity[i] ? kPosInf : size / weights[i];
  }
  LexMin best;
  for (PartitionId i = 0; i < k; ++i) MergeMin(&best, scores[i], i);
  // All at capacity leaves every effective load +inf → partition 0, the
  // LeastLoadedWithRoom fallback.
  return best.eff == kPosInf ? 0 : best.index;
}

PartitionId LeastLoadedAllPortable(PartitionId k, const uint64_t* loads,
                                   const double* weights, double* scores) {
#pragma omp simd
  for (PartitionId i = 0; i < k; ++i) {
    scores[i] = static_cast<double>(loads[i]) / weights[i];
  }
  LexMin best;
  for (PartitionId i = 0; i < k; ++i) MergeMin(&best, scores[i], i);
  return best.index;
}

bool UseAvx2(SimdTier tier) {
  // A forced kAvx2 degrades to portable when the CPU lacks it, so the
  // forced-dispatch tests can enumerate tiers unconditionally.
  return tier == SimdTier::kAvx2 && avx2::Available();
}

}  // namespace

std::string_view SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kPortable:
      return "portable";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SimdTierAvailable(SimdTier tier) {
  return tier == SimdTier::kPortable || avx2::Available();
}

SimdTier ActiveSimdTier() {
  const char* force = std::getenv("SGP_FORCE_SCALAR_DISPATCH");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return SimdTier::kPortable;
  }
  return avx2::Available() ? SimdTier::kAvx2 : SimdTier::kPortable;
}

PartitionId HdrfPickSimd(SimdTier tier, PartitionId k, const double* effective,
                         const uint64_t* loads, MembershipRow u_row,
                         MembershipRow v_row, double theta_u, double theta_v,
                         double lambda, double max_load, double spread,
                         double* scores, uint64_t* bitset_hits) {
  const double gain_u = 1.0 + theta_v;  // g of replicating endpoint u
  const double gain_v = 1.0 + theta_u;
  if (UseAvx2(tier)) {
    return avx2::HdrfPick(k, effective, loads, u_row, v_row, gain_u, gain_v,
                          lambda, max_load, spread, bitset_hits);
  }
  return HdrfPickPortable(k, effective, loads, u_row, v_row, gain_u, gain_v,
                          lambda, max_load, spread, scores, bitset_hits);
}

PartitionId GreedyPickSimd(SimdTier tier, PartitionId k,
                           const uint32_t* neighbor_counts,
                           const uint64_t* loads, const double* weights,
                           const double* capacity, const GreedyObjective& obj,
                           double* scores) {
  SGP_CHECK(obj.ldg || obj.sqrt_form);  // pow-form falls back before here
  if (UseAvx2(tier)) {
    return avx2::GreedyPick(k, neighbor_counts, loads, weights, capacity, obj);
  }
  return GreedyPickPortable(k, neighbor_counts, loads, weights, capacity, obj,
                            scores);
}

PartitionId GingerPickSimd(SimdTier tier, PartitionId k,
                           const uint32_t* neighbor_counts,
                           const double* combined_loads,
                           double combined_capacity, double alpha,
                           double gamma, double* scores) {
  if (UseAvx2(tier)) {
    return avx2::GingerPick(k, neighbor_counts, combined_loads,
                            combined_capacity, alpha, gamma);
  }
  return GingerPickPortable(k, neighbor_counts, combined_loads,
                            combined_capacity, alpha, gamma, scores);
}

PartitionId LeastLoadedWithRoomSimd(SimdTier tier, PartitionId k,
                                    const uint64_t* loads,
                                    const double* weights,
                                    const double* capacity, double* scores) {
  if (UseAvx2(tier)) {
    return avx2::LeastLoadedWithRoom(k, loads, weights, capacity);
  }
  return LeastLoadedWithRoomPortable(k, loads, weights, capacity, scores);
}

PartitionId LeastLoadedAllSimd(SimdTier tier, PartitionId k,
                               const uint64_t* loads, const double* weights,
                               double* scores) {
  if (UseAvx2(tier)) {
    return avx2::LeastLoadedAll(k, loads, weights);
  }
  return LeastLoadedAllPortable(k, loads, weights, scores);
}

}  // namespace sgp::score
