#include "partition/score_simd_internal.h"

// AVX2 backend of the SIMD kernel tier. Compiled with -mavx2 only (no
// -mfma, so a*b+c cannot contract into FMA) plus -ffp-contract=off; every
// arithmetic op below maps 1:1 onto an IEEE-exact instruction in the
// exact order of the scalar reference, which is what makes the selections
// bit-identical:
//   - membership bit → {0.0, 1.0} multiply becomes an AND against a
//     cmpeq-derived all-ones mask (x & ~0 == x, x & 0 == +0.0 == 0.0·x
//     for the strictly positive gains),
//   - u64 loads become doubles via the 2^52 magic-number trick, exact for
//     values < 2^52 (partition loads are element counts),
//   - neighbor counts ride signed i32→double lanes, exact below 2^31,
//   - vdivpd / vsqrtpd are correctly rounded per element.
// The argmax runs lane-wise with the incumbent-keeping rule (indices
// ascend within a lane, so full ties keep the lower id), then the four
// lane winners and the scalar tail merge through the full lexicographic
// rule (score desc, load asc, index asc) — a plain lane-order reduction
// would mis-rank equal (score, load) pairs whose indices interleave
// across lanes.

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace sgp::score::avx2 {

namespace {

// u64 → double, exact for values < 2^52: OR the value into the mantissa
// of 2^52 and subtract 2^52.
inline __m256d U64ToDouble(__m256i v) {
  const __m256i magic_i = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d magic_d = _mm256_set1_pd(4503599627370496.0);  // 2^52
  return _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(v, magic_i)), magic_d);
}

inline __m256d BlendPd(__m256d keep, __m256d take, __m256d mask) {
  return _mm256_blendv_pd(keep, take, mask);
}

inline __m256i BlendI64(__m256i keep, __m256i take, __m256d mask) {
  return _mm256_castpd_si256(_mm256_blendv_pd(
      _mm256_castsi256_pd(keep), _mm256_castsi256_pd(take), mask));
}

// Keep in sync with score::GreedyScore (score_core.h); re-derived here so
// this unit emits no COMDAT-inline copy compiled with AVX2 flags. The
// dispatcher guarantees sqrt-form (or LDG).
inline double GreedyScoreTail(const GreedyObjective& obj, uint32_t count,
                              double size, double capacity, double weight) {
  if (obj.ldg) {
    return static_cast<double>(count) * (1.0 - size / capacity);
  }
  const double eff = size / weight;
  const double load = std::sqrt(eff);
  return static_cast<double>(count) - obj.alpha * obj.gamma * load;
}

}  // namespace

bool Available() { return __builtin_cpu_supports("avx2"); }

PartitionId HdrfPick(PartitionId k, const double* effective,
                     const uint64_t* loads, MembershipRow u_row,
                     MembershipRow v_row, double gain_u, double gain_v,
                     double lambda, double max_load, double spread,
                     uint64_t* bitset_hits) {
  // Bitset-hit audit, identical to the HdrfPickBatched popcount loop so
  // the counter stays ISA-independent.
  uint64_t hits = 0;
  for (PartitionId blk = 0; blk < k; blk += 64) {
    const uint64_t wu = RowWord(u_row, blk >> 6);
    const uint64_t wv = RowWord(v_row, blk >> 6);
    const PartitionId lim = k < blk + 64 ? k : blk + 64;
    const uint64_t mask = lim - blk == 64
                              ? ~uint64_t{0}
                              : (uint64_t{1} << (lim - blk)) - 1;
    hits += static_cast<uint64_t>(__builtin_popcountll(wu & mask)) +
            static_cast<uint64_t>(__builtin_popcountll(wv & mask));
  }
  *bitset_hits += hits;

  const __m256d v_gain_u = _mm256_set1_pd(gain_u);
  const __m256d v_gain_v = _mm256_set1_pd(gain_v);
  const __m256d v_lambda = _mm256_set1_pd(lambda);
  const __m256d v_max = _mm256_set1_pd(max_load);
  const __m256d v_spread = _mm256_set1_pd(spread);
  const __m256i v_one = _mm256_set1_epi64x(1);
  const __m256i v_four = _mm256_set1_epi64x(4);
  const __m256i lane_off = _mm256_setr_epi64x(0, 1, 2, 3);

  __m256d best_sc = _mm256_set1_pd(kNegInf);
  __m256i best_ld = _mm256_setzero_si256();
  __m256i best_ix = _mm256_setzero_si256();
  __m256i cur_ix = lane_off;

  const PartitionId vec_end = k & ~PartitionId{3};
  PartitionId i = 0;
  for (; i < vec_end; i += 4) {
    // The group is 4-aligned, so all four candidates read the same
    // 64-bit membership word.
    const uint64_t wu = RowWord(u_row, i >> 6);
    const uint64_t wv = RowWord(v_row, i >> 6);
    const __m256i shift = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(i & 63)), lane_off);
    const __m256i bits_u = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(wu)),
                          shift),
        v_one);
    const __m256i bits_v = _mm256_and_si256(
        _mm256_srlv_epi64(_mm256_set1_epi64x(static_cast<long long>(wv)),
                          shift),
        v_one);
    const __m256d mu = _mm256_castsi256_pd(_mm256_cmpeq_epi64(bits_u, v_one));
    const __m256d mv = _mm256_castsi256_pd(_mm256_cmpeq_epi64(bits_v, v_one));
    // bu·gain_u + bv·gain_v with bu, bv ∈ {0.0, 1.0} — the AND against the
    // all-ones/all-zero masks reproduces the multiply bit-for-bit.
    const __m256d g = _mm256_add_pd(_mm256_and_pd(mu, v_gain_u),
                                    _mm256_and_pd(mv, v_gain_v));
    const __m256d eff = _mm256_loadu_pd(effective + i);
    // g + λ(max − eff)/spread in the scalar association order.
    const __m256d sc = _mm256_add_pd(
        g, _mm256_div_pd(_mm256_mul_pd(v_lambda, _mm256_sub_pd(v_max, eff)),
                         v_spread));
    const __m256i ld = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(loads + i));
    const __m256d gt = _mm256_cmp_pd(sc, best_sc, _CMP_GT_OQ);
    const __m256d eq = _mm256_cmp_pd(sc, best_sc, _CMP_EQ_OQ);
    // Loads are element counts < 2^63, so the signed compare is safe.
    const __m256d lighter =
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(best_ld, ld));
    const __m256d take = _mm256_or_pd(gt, _mm256_and_pd(eq, lighter));
    best_sc = BlendPd(best_sc, sc, take);
    best_ld = BlendI64(best_ld, ld, take);
    best_ix = BlendI64(best_ix, cur_ix, take);
    cur_ix = _mm256_add_epi64(cur_ix, v_four);
  }

  LexBestU64 best;
  if (vec_end > 0) {
    alignas(32) double lane_sc[4];
    alignas(32) uint64_t lane_ld[4];
    alignas(32) uint64_t lane_ix[4];
    _mm256_store_pd(lane_sc, best_sc);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_ld), best_ld);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_ix), best_ix);
    for (int l = 0; l < 4; ++l) {
      MergeU64(&best, lane_sc[l], lane_ld[l],
               static_cast<PartitionId>(lane_ix[l]));
    }
  }
  for (; i < k; ++i) {
    const uint64_t wu = RowWord(u_row, i >> 6);
    const uint64_t wv = RowWord(v_row, i >> 6);
    const double bu = static_cast<double>((wu >> (i & 63)) & 1u);
    const double bv = static_cast<double>((wv >> (i & 63)) & 1u);
    const double g = bu * gain_u + bv * gain_v;
    const double sc = g + lambda * (max_load - effective[i]) / spread;
    MergeU64(&best, sc, loads[i], i);
  }
  return best.index;
}

PartitionId GreedyPick(PartitionId k, const uint32_t* neighbor_counts,
                       const uint64_t* loads, const double* weights,
                       const double* capacity, const GreedyObjective& obj) {
  const double ag = obj.alpha * obj.gamma;
  const __m256d v_one = _mm256_set1_pd(1.0);
  const __m256d v_neg_inf = _mm256_set1_pd(kNegInf);
  const __m256d v_ag = _mm256_set1_pd(ag);
  const __m256i v_four = _mm256_set1_epi64x(4);
  const __m256i lane_off = _mm256_setr_epi64x(0, 1, 2, 3);

  __m256d best_sc = _mm256_set1_pd(kNegInf);
  __m256i best_ld = _mm256_setzero_si256();
  __m256i best_ix = _mm256_setzero_si256();
  __m256i cur_ix = lane_off;

  const PartitionId vec_end = k & ~PartitionId{3};
  PartitionId i = 0;
  for (; i < vec_end; i += 4) {
    const __m256i ld = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(loads + i));
    const __m256d size = U64ToDouble(ld);
    const __m256d cap = _mm256_loadu_pd(capacity + i);
    const __m256d cnt = _mm256_cvtepi32_pd(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(neighbor_counts + i)));
    __m256d sc;
    if (obj.ldg) {
      // count · (1 − size/capacity)
      sc = _mm256_mul_pd(cnt,
                         _mm256_sub_pd(v_one, _mm256_div_pd(size, cap)));
    } else {
      // count − (αγ)·√(size/weight)
      const __m256d wgt = _mm256_loadu_pd(weights + i);
      sc = _mm256_sub_pd(
          cnt, _mm256_mul_pd(v_ag,
                             _mm256_sqrt_pd(_mm256_div_pd(size, wgt))));
    }
    const __m256d over =
        _mm256_cmp_pd(_mm256_add_pd(size, v_one), cap, _CMP_GT_OQ);
    sc = BlendPd(sc, v_neg_inf, over);
    const __m256d gt = _mm256_cmp_pd(sc, best_sc, _CMP_GT_OQ);
    const __m256d eq = _mm256_cmp_pd(sc, best_sc, _CMP_EQ_OQ);
    const __m256d lighter =
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(best_ld, ld));
    const __m256d take = _mm256_or_pd(gt, _mm256_and_pd(eq, lighter));
    best_sc = BlendPd(best_sc, sc, take);
    best_ld = BlendI64(best_ld, ld, take);
    best_ix = BlendI64(best_ix, cur_ix, take);
    cur_ix = _mm256_add_epi64(cur_ix, v_four);
  }

  LexBestU64 best;
  if (vec_end > 0) {
    alignas(32) double lane_sc[4];
    alignas(32) uint64_t lane_ld[4];
    alignas(32) uint64_t lane_ix[4];
    _mm256_store_pd(lane_sc, best_sc);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_ld), best_ld);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_ix), best_ix);
    for (int l = 0; l < 4; ++l) {
      MergeU64(&best, lane_sc[l], lane_ld[l],
               static_cast<PartitionId>(lane_ix[l]));
    }
  }
  for (; i < k; ++i) {
    const double size = static_cast<double>(loads[i]);
    const double sc =
        GreedyScoreTail(obj, neighbor_counts[i], size, capacity[i],
                        weights[i]);
    MergeU64(&best, size + 1.0 > capacity[i] ? kNegInf : sc, loads[i], i);
  }
  return best.score == kNegInf ? kInvalidPartition : best.index;
}

PartitionId GingerPick(PartitionId k, const uint32_t* neighbor_counts,
                       const double* combined_loads, double combined_capacity,
                       double alpha, double gamma) {
  const double ag = alpha * gamma;
  const __m256d v_neg_inf = _mm256_set1_pd(kNegInf);
  const __m256d v_ag = _mm256_set1_pd(ag);
  const __m256d v_cap = _mm256_set1_pd(combined_capacity);
  const __m256i v_four = _mm256_set1_epi64x(4);
  const __m256i lane_off = _mm256_setr_epi64x(0, 1, 2, 3);

  __m256d best_sc = _mm256_set1_pd(kNegInf);
  __m256d best_ld = _mm256_setzero_pd();
  __m256i best_ix = _mm256_setzero_si256();
  __m256i cur_ix = lane_off;

  const PartitionId vec_end = k & ~PartitionId{3};
  PartitionId i = 0;
  for (; i < vec_end; i += 4) {
    const __m256d ld = _mm256_loadu_pd(combined_loads + i);
    const __m256d cnt = _mm256_cvtepi32_pd(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(neighbor_counts + i)));
    // count − (αγ)·√load
    __m256d sc = _mm256_sub_pd(cnt, _mm256_mul_pd(v_ag, _mm256_sqrt_pd(ld)));
    const __m256d over = _mm256_cmp_pd(ld, v_cap, _CMP_GE_OQ);
    sc = BlendPd(sc, v_neg_inf, over);
    const __m256d gt = _mm256_cmp_pd(sc, best_sc, _CMP_GT_OQ);
    const __m256d eq = _mm256_cmp_pd(sc, best_sc, _CMP_EQ_OQ);
    const __m256d lighter = _mm256_cmp_pd(ld, best_ld, _CMP_LT_OQ);
    const __m256d take = _mm256_or_pd(gt, _mm256_and_pd(eq, lighter));
    best_sc = BlendPd(best_sc, sc, take);
    best_ld = BlendPd(best_ld, ld, take);
    best_ix = BlendI64(best_ix, cur_ix, take);
    cur_ix = _mm256_add_epi64(cur_ix, v_four);
  }

  LexBestF64 best;
  if (vec_end > 0) {
    alignas(32) double lane_sc[4];
    alignas(32) double lane_ld[4];
    alignas(32) uint64_t lane_ix[4];
    _mm256_store_pd(lane_sc, best_sc);
    _mm256_store_pd(lane_ld, best_ld);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_ix), best_ix);
    for (int l = 0; l < 4; ++l) {
      MergeF64(&best, lane_sc[l], lane_ld[l],
               static_cast<PartitionId>(lane_ix[l]));
    }
  }
  for (; i < k; ++i) {
    const double load = combined_loads[i];
    const double sc =
        static_cast<double>(neighbor_counts[i]) - alpha * gamma *
        std::sqrt(load);
    MergeF64(&best, load >= combined_capacity ? kNegInf : sc, load, i);
  }
  return best.score == kNegInf ? kInvalidPartition : best.index;
}

namespace {

// Shared least-loaded scan: effective loads with capacity-violating (or
// no) entries masked to +inf, lex-min (effective, index).
inline LexMin LeastLoadedScan(PartitionId k, const uint64_t* loads,
                              const double* weights, const double* capacity) {
  const __m256d v_inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d v_one = _mm256_set1_pd(1.0);
  const __m256i v_four = _mm256_set1_epi64x(4);
  const __m256i lane_off = _mm256_setr_epi64x(0, 1, 2, 3);

  __m256d best_eff = v_inf;
  __m256i best_ix = _mm256_setzero_si256();
  __m256i cur_ix = lane_off;

  const PartitionId vec_end = k & ~PartitionId{3};
  PartitionId i = 0;
  for (; i < vec_end; i += 4) {
    const __m256i ld = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(loads + i));
    const __m256d size = U64ToDouble(ld);
    const __m256d wgt = _mm256_loadu_pd(weights + i);
    __m256d eff = _mm256_div_pd(size, wgt);
    if (capacity != nullptr) {
      const __m256d cap = _mm256_loadu_pd(capacity + i);
      const __m256d over =
          _mm256_cmp_pd(_mm256_add_pd(size, v_one), cap, _CMP_GT_OQ);
      eff = BlendPd(eff, v_inf, over);
    }
    const __m256d take = _mm256_cmp_pd(eff, best_eff, _CMP_LT_OQ);
    best_eff = BlendPd(best_eff, eff, take);
    best_ix = BlendI64(best_ix, cur_ix, take);
    cur_ix = _mm256_add_epi64(cur_ix, v_four);
  }

  LexMin best;
  if (vec_end > 0) {
    alignas(32) double lane_eff[4];
    alignas(32) uint64_t lane_ix[4];
    _mm256_store_pd(lane_eff, best_eff);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_ix), best_ix);
    for (int l = 0; l < 4; ++l) {
      MergeMin(&best, lane_eff[l], static_cast<PartitionId>(lane_ix[l]));
    }
  }
  for (; i < k; ++i) {
    const double size = static_cast<double>(loads[i]);
    const bool over = capacity != nullptr && size + 1.0 > capacity[i];
    MergeMin(&best,
             over ? std::numeric_limits<double>::infinity()
                  : size / weights[i],
             i);
  }
  return best;
}

}  // namespace

PartitionId LeastLoadedWithRoom(PartitionId k, const uint64_t* loads,
                                const double* weights,
                                const double* capacity) {
  const LexMin best = LeastLoadedScan(k, loads, weights, capacity);
  return best.eff == std::numeric_limits<double>::infinity() ? 0 : best.index;
}

PartitionId LeastLoadedAll(PartitionId k, const uint64_t* loads,
                           const double* weights) {
  return LeastLoadedScan(k, loads, weights, nullptr).index;
}

}  // namespace sgp::score::avx2

#else  // !(defined(__x86_64__) && defined(__AVX2__))

// Non-x86-64 (or a toolchain without AVX2 support): the dispatcher sees
// Available() == false and routes every pick to the portable tier; the
// kernel stubs are unreachable.

namespace sgp::score::avx2 {

bool Available() { return false; }

PartitionId HdrfPick(PartitionId, const double*, const uint64_t*,
                     MembershipRow, MembershipRow, double, double, double,
                     double, double, uint64_t*) {
  SGP_CHECK(false);
  return kInvalidPartition;
}

PartitionId GreedyPick(PartitionId, const uint32_t*, const uint64_t*,
                       const double*, const double*, const GreedyObjective&) {
  SGP_CHECK(false);
  return kInvalidPartition;
}

PartitionId GingerPick(PartitionId, const uint32_t*, const double*, double,
                       double, double) {
  SGP_CHECK(false);
  return kInvalidPartition;
}

PartitionId LeastLoadedWithRoom(PartitionId, const uint64_t*, const double*,
                                const double*) {
  SGP_CHECK(false);
  return kInvalidPartition;
}

PartitionId LeastLoadedAll(PartitionId, const uint64_t*, const double*) {
  SGP_CHECK(false);
  return kInvalidPartition;
}

}  // namespace sgp::score::avx2

#endif  // defined(__x86_64__) && defined(__AVX2__)
