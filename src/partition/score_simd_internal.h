#ifndef SGP_PARTITION_SCORE_SIMD_INTERNAL_H_
#define SGP_PARTITION_SCORE_SIMD_INTERNAL_H_

#include <cstdint>

#include "partition/score_core.h"

// Internal interface between the ISA-dispatching SIMD tier
// (score_simd.cc) and its AVX2 backend (score_simd_avx2.cc). Everything
// here is `static inline` on purpose: the AVX2 unit is compiled with
// -mavx2, and any COMDAT-inline function it emitted could be picked by
// the linker for every other caller, leaking VEX-encoded code into
// builds that must run on pre-AVX hardware. Internal linkage keeps each
// unit's copy local. For the same reason the AVX2 backend re-derives the
// few scalar expressions it needs (tail elements, membership words)
// instead of calling the COMDAT-inline helpers of score_core.h; the
// expressions are kept textually identical — see the pairing comments.

namespace sgp::score {

// Running lexicographic argmax over (score desc, load asc, index asc) —
// the canonical tie-break. Used for the cross-lane/tail merges, where the
// within-lane "keep the incumbent on full ties" shortcut is wrong because
// lane winners' indices interleave.
struct LexBestU64 {
  double score = kNegInf;
  uint64_t load = 0;
  PartitionId index = kInvalidPartition;
};

static inline void MergeU64(LexBestU64* b, double score, uint64_t load,
                            PartitionId index) {
  if (score > b->score ||
      (score == b->score &&
       (load < b->load || (load == b->load && index < b->index)))) {
    b->score = score;
    b->load = load;
    b->index = index;
  }
}

// Same, with double loads (Ginger's combined loads).
struct LexBestF64 {
  double score = kNegInf;
  double load = 0;
  PartitionId index = kInvalidPartition;
};

static inline void MergeF64(LexBestF64* b, double score, double load,
                            PartitionId index) {
  if (score > b->score ||
      (score == b->score &&
       (load < b->load || (load == b->load && index < b->index)))) {
    b->score = score;
    b->load = load;
    b->index = index;
  }
}

// Running lexicographic argmin over (effective load asc, index asc) for
// the least-loaded scans.
struct LexMin {
  double eff = std::numeric_limits<double>::infinity();
  PartitionId index = kInvalidPartition;
};

static inline void MergeMin(LexMin* b, double eff, PartitionId index) {
  if (eff < b->eff || (eff == b->eff && index < b->index)) {
    b->eff = eff;
    b->index = index;
  }
}

// Combined membership word without going through the COMDAT-inline
// MembershipRow::Word (see file comment). Must stay textually identical.
static inline uint64_t RowWord(const MembershipRow& row, uint64_t w) {
  return row.delta == nullptr ? row.base[w] : row.base[w] | row.delta[w];
}

// AVX2 backend. On non-x86-64 builds these are stubs with
// Available() == false; the dispatcher never calls a stub kernel.
namespace avx2 {

bool Available();

PartitionId HdrfPick(PartitionId k, const double* effective,
                     const uint64_t* loads, MembershipRow u_row,
                     MembershipRow v_row, double gain_u, double gain_v,
                     double lambda, double max_load, double spread,
                     uint64_t* bitset_hits);

PartitionId GreedyPick(PartitionId k, const uint32_t* neighbor_counts,
                       const uint64_t* loads, const double* weights,
                       const double* capacity, const GreedyObjective& obj);

PartitionId GingerPick(PartitionId k, const uint32_t* neighbor_counts,
                       const double* combined_loads, double combined_capacity,
                       double alpha, double gamma);

PartitionId LeastLoadedWithRoom(PartitionId k, const uint64_t* loads,
                                const double* weights, const double* capacity);

PartitionId LeastLoadedAll(PartitionId k, const uint64_t* loads,
                           const double* weights);

}  // namespace avx2

}  // namespace sgp::score

#endif  // SGP_PARTITION_SCORE_SIMD_INTERNAL_H_
