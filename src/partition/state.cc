#include "partition/state.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"

namespace sgp {

namespace {

// State-layer instrumentation: how many synopses were built and how many
// bytes they held at construction-complete time (docs/OBSERVABILITY.md,
// partition.state.*). Bytes are recorded by the algorithms when they
// finish, via Partitioning::state_bytes, so the registry only counts
// constructions here.
struct StateMetrics {
  Counter* builds = nullptr;

  StateMetrics() = default;
  explicit StateMetrics(MetricsRegistry& reg) {
    builds = reg.GetCounter("partition.state.builds");
  }

  static StateMetrics& Get() {
    return CurrentRegistryMetrics<StateMetrics>();
  }
};

// Mean-1 normalized capacity weights: empty input (homogeneous) yields
// all-ones; otherwise weights scaled so they average 1. Aborts if a
// non-empty vector has the wrong size or non-positive entries. File-local:
// every algorithm gets its weights through PartitionState.
std::vector<double> NormalizedCapacities(const PartitionConfig& config) {
  if (config.capacity_weights.empty()) {
    return std::vector<double>(config.k, 1.0);
  }
  SGP_CHECK(config.capacity_weights.size() == config.k);
  double sum = 0;
  for (double w : config.capacity_weights) {
    SGP_CHECK(w > 0);
    sum += w;
  }
  std::vector<double> out(config.capacity_weights);
  const double scale = static_cast<double>(config.k) / sum;
  for (double& w : out) w *= scale;
  return out;
}

template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

PartitionState::PartitionState(const PartitionConfig& config)
    : k_(config.k),
      heterogeneous_(!config.capacity_weights.empty()),
      weights_(NormalizedCapacities(config)),
      loads_(config.k, 0) {
  SGP_CHECK(k_ > 0);
  StateMetrics::Get().builds->Increment();
}

PartitionId PartitionState::LeastLoaded() const {
  PartitionId best = 0;
  double best_load = EffectiveLoad(0);
  for (PartitionId i = 1; i < k_; ++i) {
    const double load = EffectiveLoad(i);
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

PartitionId PartitionState::LeastLoaded(
    std::span<const PartitionId> candidates) const {
  PartitionId best = candidates.front();
  double best_load = EffectiveLoad(best);
  for (PartitionId p : candidates.subspan(1)) {
    const double load = EffectiveLoad(p);
    if (load < best_load || (load == best_load && p < best)) {
      best_load = load;
      best = p;
    }
  }
  return best;
}

void PartitionState::InitCapacities(uint64_t total_items,
                                    double balance_slack) {
  capacity_.resize(k_);
  for (PartitionId i = 0; i < k_; ++i) {
    capacity_[i] = std::max(
        1.0, balance_slack * static_cast<double>(total_items) /
                 static_cast<double>(k_) * weights_[i]);
  }
}

void PartitionState::InitEffectiveLoads() {
  effective_.resize(k_);
  for (PartitionId i = 0; i < k_; ++i) {
    effective_[i] = static_cast<double>(loads_[i]) / weights_[i];
  }
}

void PartitionState::InitSecondaryLoads() { secondary_.assign(k_, 0); }

void PartitionState::InitDegreeTable(VertexId num_vertices) {
  degree_.assign(num_vertices, 0);
  degree_enabled_ = true;
}

void PartitionState::InitReplicas(VertexId num_vertices) {
  replicas_ = ReplicaState(num_vertices);
  replicas_enabled_ = true;
}

PartitionId PartitionState::AddPartition() {
  SGP_CHECK(!heterogeneous_);
  SGP_CHECK(capacity_.empty() && effective_.empty() && secondary_.empty());
  const PartitionId fresh = k_;
  ++k_;
  weights_.push_back(1.0);
  loads_.push_back(0);
  return fresh;
}

void PartitionState::EnsureVertex(VertexId v) {
  if (degree_enabled_ && v >= degree_.size()) {
    degree_.resize(static_cast<size_t>(v) + 1, 0);
  }
  if (replicas_enabled_) replicas_.EnsureVertex(v);
}

uint64_t PartitionState::SynopsisBytes() const {
  uint64_t bytes = VectorBytes(weights_) + VectorBytes(loads_) +
                   VectorBytes(capacity_) + VectorBytes(effective_) +
                   VectorBytes(secondary_) + VectorBytes(degree_);
  if (replicas_enabled_) bytes += replicas_.SynopsisBytes();
  return bytes + aux_bytes_;
}

CapacityAwareHasher::CapacityAwareHasher(const PartitionState& state)
    : k_(state.k()) {
  SGP_CHECK(k_ > 0);
  if (!state.heterogeneous()) return;
  const std::vector<double>& norm = state.weights();
  cumulative_.resize(k_);
  double acc = 0;
  for (PartitionId i = 0; i < k_; ++i) {
    acc += norm[i];
    cumulative_[i] = acc;
  }
  cumulative_.back() = static_cast<double>(k_);  // guard rounding
}

PartitionId CapacityAwareHasher::Pick(uint64_t hash) const {
  if (cumulative_.empty()) return static_cast<PartitionId>(hash % k_);
  const double u = static_cast<double>(hash >> 11) * 0x1.0p-53 *
                   static_cast<double>(k_);
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<PartitionId>(it - cumulative_.begin());
}

ShardedPartitionState::ShardedPartitionState(const PartitionConfig& config,
                                             uint32_t num_workers)
    : global_(config),
      delta_loads_(num_workers,
                   std::vector<uint64_t>(config.k, 0)),
      delta_degrees_(num_workers),
      touched_degrees_(num_workers),
      delta_replicas_(num_workers),
      replica_records_(num_workers) {
  SGP_CHECK(num_workers > 0);
}

void ShardedPartitionState::InitDegreeTable(VertexId num_vertices) {
  global_.InitDegreeTable(num_vertices);
  for (auto& d : delta_degrees_) d.assign(num_vertices, 0);
}

void ShardedPartitionState::IncrementWorkerDegree(uint32_t w, VertexId v) {
  if (delta_degrees_[w][v] == 0) touched_degrees_[w].push_back(v);
  ++delta_degrees_[w][v];
}

void ShardedPartitionState::InitReplicas(VertexId num_vertices) {
  global_.InitReplicas(num_vertices);
  for (auto& r : delta_replicas_) r = ReplicaState(num_vertices);
}

void ShardedPartitionState::AddWorkerReplica(uint32_t w, VertexId u,
                                             PartitionId p) {
  delta_replicas_[w].Add(u, p);
  replica_records_[w].emplace_back(u, p);
}

void ShardedPartitionState::Publish() {
  const PartitionId k = global_.k();
  for (uint32_t w = 0; w < num_workers(); ++w) {
    for (PartitionId p = 0; p < k; ++p) {
      for (uint64_t i = 0; i < delta_loads_[w][p]; ++i) global_.AddLoad(p);
      delta_loads_[w][p] = 0;
    }
    for (VertexId v : touched_degrees_[w]) {
      for (uint32_t i = 0; i < delta_degrees_[w][v]; ++i) {
        global_.IncrementDegree(v);
      }
      delta_degrees_[w][v] = 0;
    }
    touched_degrees_[w].clear();
    for (const auto& [u, p] : replica_records_[w]) {
      global_.replicas().Add(u, p);
      delta_replicas_[w].Clear(u);
    }
    replica_records_[w].clear();
  }
  if (!global_.effective().empty()) global_.InitEffectiveLoads();
}

uint64_t ShardedPartitionState::SynopsisBytes() const {
  uint64_t bytes = global_.SynopsisBytes();
  for (uint32_t w = 0; w < num_workers(); ++w) {
    bytes += VectorBytes(delta_loads_[w]) + VectorBytes(delta_degrees_[w]) +
             VectorBytes(touched_degrees_[w]) +
             VectorBytes(replica_records_[w]) +
             delta_replicas_[w].SynopsisBytes();
  }
  return bytes;
}

}  // namespace sgp
