#ifndef SGP_PARTITION_STATE_H_
#define SGP_PARTITION_STATE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"
#include "partition/partitioning.h"
#include "partition/vertexcut/replica_state.h"

namespace sgp {

/// Shared partition-state core: the O(n + k) synopsis every streaming
/// partitioner maintains (Section 2). One PartitionState owns the
/// per-partition loads, the mean-1 normalized capacity weights of
/// heterogeneous clusters, the hard balance caps of Equation (1), the
/// streaming degree table, and the replica sets A(u) — replacing the
/// per-algorithm copies that used to live in greedy_core, HDRF, PGG and
/// Ginger. Components beyond loads+weights are opt-in (Init*) so
/// SynopsisBytes() reflects exactly what an algorithm kept.
///
/// All accessors preserve the exact floating-point expressions of the
/// pre-refactor algorithms (effective load = double(load)/weight, room =
/// !(double(load) + 1 > capacity)), so moving onto this class is
/// byte-identical per seed.
class PartitionState {
 public:
  explicit PartitionState(const PartitionConfig& config);

  PartitionId k() const { return k_; }

  /// True when the config carries per-partition capacity weights.
  bool heterogeneous() const { return heterogeneous_; }

  /// Mean-1 normalized capacity weights (all ones when homogeneous).
  const std::vector<double>& weights() const { return weights_; }

  // ---------------------------------------------------------------------
  // Per-partition loads (vertex counts for edge-cut algorithms, edge
  // counts for vertex-cut algorithms).
  // ---------------------------------------------------------------------
  const std::vector<uint64_t>& loads() const { return loads_; }
  uint64_t load(PartitionId p) const { return loads_[p]; }
  void AddLoad(PartitionId p) { ++loads_[p]; }
  void RemoveLoad(PartitionId p) { --loads_[p]; }

  /// Capacity-normalized load: a twice-as-big machine looks half as
  /// loaded (Appendix A heterogeneous balancing).
  double EffectiveLoad(PartitionId p) const {
    return static_cast<double>(loads_[p]) / weights_[p];
  }

  /// Least effectively-loaded partition, ties toward the lower id.
  PartitionId LeastLoaded() const;

  /// Least effectively-loaded among `candidates` (non-empty), ties toward
  /// the lower id.
  PartitionId LeastLoaded(std::span<const PartitionId> candidates) const;

  // ---------------------------------------------------------------------
  // Hard balance caps C_i = max(1, β·(total/k)·w_i) of Equation (1).
  // ---------------------------------------------------------------------
  void InitCapacities(uint64_t total_items, double balance_slack);
  const std::vector<double>& capacities() const { return capacity_; }
  double capacity(PartitionId p) const { return capacity_[p]; }
  bool HasRoom(PartitionId p) const {
    return !(static_cast<double>(loads_[p]) + 1.0 > capacity_[p]);
  }

  // ---------------------------------------------------------------------
  // Incrementally maintained effective loads (HDRF reads all k per edge,
  // so the division is paid once per placement, not k times per edge).
  // ---------------------------------------------------------------------
  void InitEffectiveLoads();
  const std::vector<double>& effective() const { return effective_; }
  void AddLoadUpdatingEffective(PartitionId p) {
    ++loads_[p];
    effective_[p] = static_cast<double>(loads_[p]) / weights_[p];
  }

  // ---------------------------------------------------------------------
  // Secondary loads (Ginger balances vertex and edge load jointly).
  // ---------------------------------------------------------------------
  void InitSecondaryLoads();
  const std::vector<uint64_t>& secondary_loads() const { return secondary_; }
  void AddSecondaryLoad(PartitionId p, uint64_t delta) {
    secondary_[p] += delta;
  }

  // ---------------------------------------------------------------------
  // Streaming degree table (HDRF's partial degrees, PGG's placed
  // degrees — the "greedy degree table" of Section 4.2.2).
  // ---------------------------------------------------------------------
  void InitDegreeTable(VertexId num_vertices);
  const std::vector<uint32_t>& degrees() const { return degree_; }
  uint32_t degree(VertexId v) const { return degree_[v]; }
  void IncrementDegree(VertexId v) { ++degree_[v]; }

  // ---------------------------------------------------------------------
  // Replica sets A(u).
  // ---------------------------------------------------------------------
  void InitReplicas(VertexId num_vertices);
  bool replicas_enabled() const { return replicas_enabled_; }
  ReplicaState& replicas() { return replicas_; }
  const ReplicaState& replicas() const { return replicas_; }

  /// Grows the degree table / replica sets to cover `v` — used by ingest
  /// paths that discover the vertex-id space as edges arrive (disk
  /// streaming) instead of knowing n up front.
  void EnsureVertex(VertexId v);

  /// Vertices currently covered by the degree table (0 when disabled).
  VertexId num_tracked_vertices() const {
    return static_cast<VertexId>(degree_.size());
  }

  // ---------------------------------------------------------------------
  // Elastic resharding: growing k at runtime.
  // ---------------------------------------------------------------------

  /// Appends one empty partition (weight 1.0) and returns its id — the
  /// split path of the elastic resharder. Only supported on homogeneous
  /// states whose derived per-partition tables (capacities, effective
  /// loads, secondary loads) are uninitialized; growing those would
  /// silently change every other partition's normalized weight.
  PartitionId AddPartition();

  // ---------------------------------------------------------------------
  // Synopsis accounting: Partitioning::state_bytes is computed one way
  // for every algorithm — the bytes of every live component plus whatever
  // auxiliary state the algorithm registered (assignment arrays,
  // per-vertex neighbor tables).
  // ---------------------------------------------------------------------
  void NoteAuxiliaryBytes(uint64_t bytes) { aux_bytes_ += bytes; }
  uint64_t SynopsisBytes() const;

 private:
  PartitionId k_;
  bool heterogeneous_;
  std::vector<double> weights_;
  std::vector<uint64_t> loads_;
  std::vector<double> capacity_;
  std::vector<double> effective_;
  std::vector<uint64_t> secondary_;
  std::vector<uint32_t> degree_;
  bool degree_enabled_ = false;
  ReplicaState replicas_;
  bool replicas_enabled_ = false;
  uint64_t aux_bytes_ = 0;
};

/// Maps hash values to partitions, proportionally to capacities on
/// heterogeneous clusters and as plain `hash mod k` on homogeneous ones
/// (so homogeneous results are unchanged by this feature). Built from the
/// PartitionState that owns the normalized weights.
class CapacityAwareHasher {
 public:
  explicit CapacityAwareHasher(const PartitionState& state);

  /// Deterministic partition pick for a (well-mixed) hash value.
  PartitionId Pick(uint64_t hash) const;

 private:
  PartitionId k_;
  std::vector<double> cumulative_;  // empty on homogeneous clusters
};

/// Sharded synopsis for the parallel-ingest drivers: one published global
/// PartitionState plus per-worker unpublished deltas. Between barriers a
/// worker sees the published state plus only its own delta — the stale
/// view whose quality cost bench_ablation_parallel_ingest sweeps.
/// Publish() merges every worker's delta in worker order and clears them;
/// the caller accounts the records it broadcast (ParallelStreamResult).
class ShardedPartitionState {
 public:
  ShardedPartitionState(const PartitionConfig& config, uint32_t num_workers);

  PartitionState& global() { return global_; }
  const PartitionState& global() const { return global_; }
  uint32_t num_workers() const {
    return static_cast<uint32_t>(delta_loads_.size());
  }

  // ---- loads: published + own unpublished delta
  uint64_t CombinedLoad(uint32_t w, PartitionId p) const {
    return global_.load(p) + delta_loads_[w][p];
  }
  double CombinedEffectiveLoad(uint32_t w, PartitionId p) const {
    return static_cast<double>(CombinedLoad(w, p)) / global_.weights()[p];
  }
  void AddWorkerLoad(uint32_t w, PartitionId p) { ++delta_loads_[w][p]; }

  // ---- streaming degree table (edge drivers)
  void InitDegreeTable(VertexId num_vertices);
  uint32_t CombinedDegree(uint32_t w, VertexId v) const {
    return global_.degree(v) + delta_degrees_[w][v];
  }
  void IncrementWorkerDegree(uint32_t w, VertexId v);

  // ---- replica sets (edge drivers)
  void InitReplicas(VertexId num_vertices);
  bool ReplicaContains(uint32_t w, VertexId u, PartitionId p) const {
    return global_.replicas().Contains(u, p) ||
           delta_replicas_[w].Contains(u, p);
  }
  bool HasAnyReplica(uint32_t w, VertexId u) const {
    return !global_.replicas().Of(u).empty() ||
           !delta_replicas_[w].Of(u).empty();
  }
  void AddWorkerReplica(uint32_t w, VertexId u, PartitionId p);

  /// Mirrors the published set and every worker delta into bit indices;
  /// the batched sharded scorers then read each vertex's combined
  /// membership as GlobalReplicaRow(u) OR DeltaReplicaRow(w, u).
  void EnableReplicaBitIndex() {
    global_.replicas().EnableBitIndex(global_.k());
    for (ReplicaState& r : delta_replicas_) r.EnableBitIndex(global_.k());
  }
  const uint64_t* GlobalReplicaRow(VertexId u) const {
    return global_.replicas().RowWords(u);
  }
  const uint64_t* DeltaReplicaRow(uint32_t w, VertexId u) const {
    return delta_replicas_[w].RowWords(u);
  }

  /// Visits the combined replica set of `u` as worker `w` sees it:
  /// published entries first, then the worker's unpublished additions
  /// (disjoint by construction of AddWorkerReplica).
  template <typename Fn>
  void ForEachReplica(uint32_t w, VertexId u, Fn&& fn) const {
    for (PartitionId p : global_.replicas().Of(u)) fn(p);
    for (PartitionId p : delta_replicas_[w].Of(u)) fn(p);
  }

  /// Barrier: merges every worker's deltas into the published state in
  /// worker order and clears them. Refreshes the global effective-load
  /// table when enabled.
  void Publish();

  /// Global synopsis plus all per-worker delta state.
  uint64_t SynopsisBytes() const;

 private:
  PartitionState global_;
  std::vector<std::vector<uint64_t>> delta_loads_;
  std::vector<std::vector<uint32_t>> delta_degrees_;
  std::vector<std::vector<VertexId>> touched_degrees_;
  std::vector<ReplicaState> delta_replicas_;
  std::vector<std::vector<std::pair<VertexId, PartitionId>>> replica_records_;
  bool effective_enabled_ = false;
};

}  // namespace sgp

#endif  // SGP_PARTITION_STATE_H_
