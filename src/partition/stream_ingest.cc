#include "partition/stream_ingest.h"

namespace sgp {

bool ParseStreamIngestAlgo(std::string_view name, StreamIngestAlgo* algo) {
  if (name == "vcr") {
    *algo = StreamIngestAlgo::kHashVertexCut;
  } else if (name == "dbh") {
    *algo = StreamIngestAlgo::kDbh;
  } else if (name == "hdrf") {
    *algo = StreamIngestAlgo::kHdrf;
  } else {
    return false;
  }
  return true;
}

StreamIngestResult PartitionEdgeStream(EdgeStreamSource& source,
                                       StreamIngestAlgo algo,
                                       const PartitionConfig& config) {
  const char* name = "VCR";
  switch (algo) {
    case StreamIngestAlgo::kHashVertexCut:
      name = "VCR";
      break;
    case StreamIngestAlgo::kDbh:
      name = "DBH";
      break;
    case StreamIngestAlgo::kHdrf:
      name = "HDRF";
      break;
  }
  return CreatePartitioner(name)->RunOnSource(source, config);
}

}  // namespace sgp
