#include "partition/stream_ingest.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "partition/score_core.h"
#include "partition/state.h"

namespace sgp {

namespace {

// Streaming master derivation: per-vertex sparse (partition, incident
// edge count) lists, exactly the accounting DeriveMasterPlacement does on
// a materialized graph. The winner rule (max count, ties toward the lower
// partition id) is order-independent, so streaming arrival order yields
// the same masters.
class MasterTracker {
 public:
  void Note(VertexId v, PartitionId part) {
    if (v >= counts_.size()) counts_.resize(static_cast<size_t>(v) + 1);
    auto& vec = counts_[v];
    auto it = std::find_if(vec.begin(), vec.end(),
                           [part](const auto& pr) { return pr.first == part; });
    if (it == vec.end()) {
      vec.emplace_back(part, 1u);
      ++total_entries_;
    } else {
      ++it->second;
    }
  }

  // Masters for [0, n): most incident edges, ties toward the lower
  // partition id; ids with no edges are hashed like DeriveMasterPlacement.
  std::vector<PartitionId> Derive(VertexId n, PartitionId k) const {
    std::vector<PartitionId> masters(n, kInvalidPartition);
    for (VertexId u = 0; u < n; ++u) {
      if (u >= counts_.size() || counts_[u].empty()) {
        masters[u] = static_cast<PartitionId>(HashU64(u) % k);
        continue;
      }
      auto best = counts_[u].front();
      for (const auto& pr : counts_[u]) {
        if (pr.second > best.second ||
            (pr.second == best.second && pr.first < best.first)) {
          best = pr;
        }
      }
      masters[u] = best.first;
    }
    return masters;
  }

  uint64_t SynopsisBytes() const {
    return counts_.capacity() * sizeof(counts_[0]) +
           total_entries_ * (sizeof(PartitionId) + sizeof(uint32_t));
  }

 private:
  std::vector<std::vector<std::pair<PartitionId, uint32_t>>> counts_;
  uint64_t total_entries_ = 0;
};

}  // namespace

bool ParseStreamIngestAlgo(std::string_view name, StreamIngestAlgo* algo) {
  if (name == "vcr") {
    *algo = StreamIngestAlgo::kHashVertexCut;
  } else if (name == "dbh") {
    *algo = StreamIngestAlgo::kDbh;
  } else if (name == "hdrf") {
    *algo = StreamIngestAlgo::kHdrf;
  } else {
    return false;
  }
  return true;
}

StreamIngestResult PartitionEdgeStream(EdgeStreamSource& source,
                                       StreamIngestAlgo algo,
                                       const PartitionConfig& config) {
  SGP_CHECK(config.k > 0);
  Timer timer;
  StreamIngestResult out;
  out.partitioning.model = CutModel::kVertexCut;
  out.partitioning.k = config.k;

  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  MasterTracker masters;
  VertexId max_bound = 0;

  // DBH pre-pass: stream occurrence counts stand in for degrees (equal to
  // graph degrees on duplicate-free undirected inputs).
  std::vector<uint32_t> stream_degree;
  if (algo == StreamIngestAlgo::kDbh) {
    ForEachStreamItem(source, [&](const StreamEdge& e) {
      const VertexId hi = std::max(e.src, e.dst);
      if (hi >= stream_degree.size()) {
        stream_degree.resize(static_cast<size_t>(hi) + 1, 0);
      }
      ++stream_degree[e.src];
      ++stream_degree[e.dst];
    });
    if (!source.ok()) {
      out.ok = false;
      out.error = source.error();
      return out;
    }
    source.Reset();
  }

  if (algo == StreamIngestAlgo::kHdrf) {
    state.InitDegreeTable(0);
    state.InitEffectiveLoads();
    state.InitReplicas(0);
  }

  ScoreCore core(state, config.score_mode);
  HdrfStats hdrf_stats;
  auto record = [&](const StreamEdge& e, PartitionId target) {
    max_bound = std::max({max_bound, e.src + 1, e.dst + 1});
    out.partitioning.edge_to_partition.push_back(target);
    masters.Note(e.src, target);
    masters.Note(e.dst, target);
    ++out.num_edges;
  };
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    if (algo == StreamIngestAlgo::kHdrf) {
      // Grow the id space over the whole chunk up front, so the scorer's
      // bit-index rows are stable while it batches the chunk.
      for (const StreamEdge& e : chunk) {
        state.EnsureVertex(std::max(e.src, e.dst));
      }
      core.PlaceHdrfChunk(chunk, config.hdrf_lambda, hdrf_stats, record);
      continue;
    }
    core.NoteBatch();
    for (const StreamEdge& e : chunk) {
      PartitionId target;
      if (algo == StreamIngestAlgo::kHashVertexCut) {
        uint64_t h = HashCombine(HashU64Seeded(e.src, config.seed),
                                 HashU64Seeded(e.dst, config.seed));
        target = hasher.Pick(h);
      } else {
        VertexId pivot = stream_degree[e.src] <= stream_degree[e.dst]
                             ? e.src
                             : e.dst;
        target = hasher.Pick(HashU64Seeded(pivot, config.seed));
      }
      record(e, target);
    }
  }
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }

  out.num_vertices = max_bound;
  out.partitioning.vertex_to_partition =
      masters.Derive(out.num_vertices, config.k);
  state.NoteAuxiliaryBytes(masters.SynopsisBytes() +
                           stream_degree.capacity() * sizeof(uint32_t));
  out.partitioning.state_bytes = state.SynopsisBytes();
  out.partitioning.partitioning_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace sgp
