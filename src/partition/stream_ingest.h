#ifndef SGP_PARTITION_STREAM_INGEST_H_
#define SGP_PARTITION_STREAM_INGEST_H_

#include <cstdint>
#include <string>

#include "partition/partitioner.h"
#include "stream/source.h"

namespace sgp {

/// Legacy enum of the first graph-free ingest algorithms. The unified
/// entry point is Partitioner::RunOnSource (any registered code works,
/// see PartitionerTable()); this enum and PartitionEdgeStream survive as
/// a thin compatibility wrapper over it.
enum class StreamIngestAlgo {
  kHashVertexCut,  // stateless hash of both endpoints (VCR)
  kDbh,            // degree-based hashing; needs a degree pre-pass
  kHdrf,           // HDRF greedy over the shared partition state
};

/// Parses "vcr" / "dbh" / "hdrf"; returns false on anything else.
bool ParseStreamIngestAlgo(std::string_view name, StreamIngestAlgo* algo);

/// Result of a stream-ingest run — now the unified RunOnSource result.
using StreamIngestResult = StreamRunResult;

/// Runs `algo` over `source` from its current position by dispatching to
/// the registered partitioner's RunOnSource. DBH performs a
/// degree-counting pre-pass and then rewinds the source, so it needs
/// SupportsRewind() (both provided sources qualify). For in-memory
/// sources over a duplicate-free graph the assignments are identical to
/// the corresponding Partitioner::Run.
StreamIngestResult PartitionEdgeStream(EdgeStreamSource& source,
                                       StreamIngestAlgo algo,
                                       const PartitionConfig& config);

}  // namespace sgp

#endif  // SGP_PARTITION_STREAM_INGEST_H_
