#ifndef SGP_PARTITION_STREAM_INGEST_H_
#define SGP_PARTITION_STREAM_INGEST_H_

#include <cstdint>
#include <string>

#include "partition/partitioning.h"
#include "stream/source.h"

namespace sgp {

/// Vertex-cut algorithms runnable straight off an edge stream — no
/// materialized Graph required, O(n + k) synopsis only. This is the
/// paper's streaming-ingest model taken literally: the partitioner sees
/// each edge once, in arrival order, and keeps only its synopsis.
enum class StreamIngestAlgo {
  kHashVertexCut,  // stateless hash of both endpoints (VCR)
  kDbh,            // degree-based hashing; needs a degree pre-pass
  kHdrf,           // HDRF greedy over the shared partition state
};

/// Parses "vcr" / "dbh" / "hdrf"; returns false on anything else.
bool ParseStreamIngestAlgo(std::string_view name, StreamIngestAlgo* algo);

/// Result of a stream-ingest run.
struct StreamIngestResult {
  /// edge_to_partition is indexed by arrival position;
  /// vertex_to_partition covers [0, num_vertices) with masters derived
  /// exactly like DeriveMasterPlacement (most incident edges, ties toward
  /// the lower partition id; never-seen ids hashed).
  Partitioning partitioning;

  /// Edges consumed from the stream.
  uint64_t num_edges = 0;

  /// Vertex-id space after the run (max accepted id + 1, or the
  /// configured bound).
  VertexId num_vertices = 0;

  /// False when the source failed mid-stream; `error` has the diagnostic
  /// and the partial results are meaningless.
  bool ok = true;
  std::string error;
};

/// Runs `algo` over `source` from its current position. DBH performs a
/// degree-counting pre-pass and then Reset()s the source, so it needs a
/// rewindable stream (both provided sources are). For in-memory sources
/// over a duplicate-free graph the assignments are identical to the
/// corresponding Partitioner::Run.
StreamIngestResult PartitionEdgeStream(EdgeStreamSource& source,
                                       StreamIngestAlgo algo,
                                       const PartitionConfig& config);

}  // namespace sgp

#endif  // SGP_PARTITION_STREAM_INGEST_H_
