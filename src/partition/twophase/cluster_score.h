#ifndef SGP_PARTITION_TWOPHASE_CLUSTER_SCORE_H_
#define SGP_PARTITION_TWOPHASE_CLUSTER_SCORE_H_

#include <vector>

#include "partition/score_core.h"
#include "partition/state.h"

namespace sgp {
namespace twophase {

/// Shared placement core of the two-phase family: an HDRF-shaped pick
/// (Equation 7 g-term + λ balance term, canonical tie-break) where each
/// endpoint's replica membership is augmented with one optional extra
/// partition — the endpoint's cluster home (2PS) — and θ comes from
/// final pass-1 degrees instead of partial streaming degrees. On top of
/// the pick it enforces the Equation (1) hard caps: a full winner falls
/// back to the least effectively-loaded partition with room (the same
/// scalar scan in every mode, so all modes stay bit-identical).
///
/// Batched mode ORs the cluster home into the membership word via
/// MembershipRow's delta slot (a precomputed one-hot row per partition);
/// scalar mode computes the same bits with Contains-or-home probes. The
/// floating-point expressions are textually identical to
/// score::HdrfPickBatched, so the two modes agree to the last tie-break.
class ClusterScorer {
 public:
  /// `state` must have capacities, effective loads and replica sets
  /// initialized; `core` must be constructed over the same state (it owns
  /// the mode and the partition.score.* accounting).
  ClusterScorer(PartitionState& state, ScoreCore& core, double lambda)
      : state_(state), core_(core), lambda_(lambda) {
    const PartitionId k = state.k();
    words_ = (static_cast<uint64_t>(k) + 63) / 64;
    // k one-hot rows plus a trailing all-zero row for "no cluster home".
    onehot_.assign(words_ * (static_cast<uint64_t>(k) + 1), 0);
    for (PartitionId p = 0; p < k; ++p) {
      onehot_[static_cast<uint64_t>(p) * words_ + (p >> 6)] =
          uint64_t{1} << (p & 63);
    }
    if (core.mode() == ScoreMode::kSimd) {
      tier_ = score::ActiveSimdTier();
      scores_.assign(k, 0.0);
    }
  }

  /// Membership-delta row for a cluster home (the all-zero row when the
  /// endpoint has none).
  const uint64_t* RowFor(PartitionId home) const {
    const uint64_t row = home == kInvalidPartition
                             ? static_cast<uint64_t>(state_.k())
                             : static_cast<uint64_t>(home);
    return onehot_.data() + row * words_;
  }

  /// Scores, capacity-checks and commits one edge: updates loads,
  /// effective loads and both endpoints' replica sets, and returns the
  /// chosen partition.
  PartitionId Place(VertexId u, VertexId v, PartitionId home_u,
                    PartitionId home_v, double theta_u, double theta_v,
                    HdrfStats& stats) {
    const PartitionId k = state_.k();
    ReplicaState& replicas = state_.replicas();
    const double* effective = state_.effective().data();
    const uint64_t* loads = state_.loads().data();
    core_.stats().candidates += k;
    double max_load, spread;
    score::EffectiveSpread(effective, k, &max_load, &spread);
    PartitionId best;
    if (core_.mode() == ScoreMode::kScalar) {
      best = PickScalar(u, v, home_u, home_v, theta_u, theta_v, max_load,
                        spread, &stats.tie_breaks);
    } else if (core_.mode() == ScoreMode::kSimd) {
      ++core_.stats().simd_picks;
      best = score::HdrfPickSimd(
          tier_, k, effective, loads, {replicas.RowWords(u), RowFor(home_u)},
          {replicas.RowWords(v), RowFor(home_v)}, theta_u, theta_v, lambda_,
          max_load, spread, scores_.data(), &core_.stats().bitset_hits);
    } else {
      best = score::HdrfPickBatched(
          k, effective, loads, {replicas.RowWords(u), RowFor(home_u)},
          {replicas.RowWords(v), RowFor(home_v)}, theta_u, theta_v, lambda_,
          max_load, spread, &stats.tie_breaks, &core_.stats().bitset_hits);
    }
    if (!state_.HasRoom(best)) {
      best = score::LeastLoadedWithRoom(k, loads, state_.weights().data(),
                                        state_.capacities().data());
    }
    state_.AddLoadUpdatingEffective(best);
    replicas.Add(u, best);
    replicas.Add(v, best);
    return best;
  }

  uint64_t SynopsisBytes() const {
    return onehot_.capacity() * sizeof(uint64_t);
  }

 private:
  // Reference twin of the batched pick: per-candidate Contains-or-home
  // probes, every floating-point expression textually identical.
  PartitionId PickScalar(VertexId u, VertexId v, PartitionId home_u,
                         PartitionId home_v, double theta_u, double theta_v,
                         double max_load, double spread,
                         uint64_t* tie_breaks) const {
    const PartitionId k = state_.k();
    const ReplicaState& replicas = state_.replicas();
    const double* effective = state_.effective().data();
    const uint64_t* loads = state_.loads().data();
    const double gain_u = 1.0 + theta_v;
    const double gain_v = 1.0 + theta_u;
    PartitionId best = 0;
    double best_score = score::kNegInf;
    for (PartitionId i = 0; i < k; ++i) {
      const double bu = static_cast<double>(
          static_cast<unsigned>(replicas.Contains(u, i) || home_u == i));
      const double bv = static_cast<double>(
          static_cast<unsigned>(replicas.Contains(v, i) || home_v == i));
      const double g = bu * gain_u + bv * gain_v;
      const double sc = g + lambda_ * (max_load - effective[i]) / spread;
      if (sc > best_score) {
        best_score = sc;
        best = i;
      } else if (sc == best_score && loads[i] < loads[best]) {
        ++*tie_breaks;
        best = i;
      }
    }
    return best;
  }

  PartitionState& state_;
  ScoreCore& core_;
  double lambda_;
  score::SimdTier tier_ = score::SimdTier::kPortable;  // kSimd only
  uint64_t words_ = 0;
  std::vector<uint64_t> onehot_;
  std::vector<double> scores_;  // kSimd portable-tier scratch
};

}  // namespace twophase
}  // namespace sgp

#endif  // SGP_PARTITION_TWOPHASE_CLUSTER_SCORE_H_
