#include "partition/twophase/clustering.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace sgp {

uint64_t ClusteringResult::SynopsisBytes() const {
  return cluster_of.capacity() * sizeof(uint32_t) +
         degree.capacity() * sizeof(uint32_t) +
         cluster_volume.capacity() * sizeof(uint64_t);
}

ClusteringResult StreamClusters(EdgeStreamSource& source,
                                const PartitionConfig& config) {
  SGP_CHECK(config.k > 0);
  ClusteringResult out;
  std::vector<uint32_t>& cluster = out.cluster_of;
  std::vector<uint32_t>& degree = out.degree;
  std::vector<uint64_t> volume;  // by provisional (uncompacted) cluster id

  auto ensure = [&](VertexId v) {
    if (v >= cluster.size()) {
      cluster.resize(static_cast<size_t>(v) + 1, kInvalidCluster);
      degree.resize(static_cast<size_t>(v) + 1, 0);
    }
  };
  auto cluster_for = [&](VertexId v) {
    if (cluster[v] == kInvalidCluster) {
      cluster[v] = static_cast<uint32_t>(volume.size());
      volume.push_back(0);
    }
    return cluster[v];
  };

  ForEachStreamItem(source, [&](const StreamEdge& e) {
    const VertexId u = e.src;
    const VertexId v = e.dst;
    ensure(std::max(u, v));
    ++degree[u];
    ++degree[v];
    const uint32_t cu = cluster_for(u);
    const uint32_t cv = cluster_for(v);
    ++volume[cu];
    ++volume[cv];
    const uint64_t i = out.num_edges++;
    // Streaming volume cap: the bound 2m/k scaled by the balance slack,
    // evaluated against the prefix length instead of a (possibly unknown)
    // total edge count.
    out.volume_cap = std::max<uint64_t>(
        2, static_cast<uint64_t>(config.balance_slack *
                                 (2.0 * static_cast<double>(i + 1)) /
                                 static_cast<double>(config.k)));
    if (cu == cv || u == v) return;
    if (volume[cu] <= volume[cv]) {
      if (volume[cv] + degree[u] <= out.volume_cap) {
        volume[cu] -= degree[u];
        volume[cv] += degree[u];
        cluster[u] = cv;
        ++out.moves;
      }
    } else if (volume[cu] + degree[v] <= out.volume_cap) {
      volume[cv] -= degree[v];
      volume[cu] += degree[v];
      cluster[v] = cu;
      ++out.moves;
    }
  });
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }

  out.num_vertices = static_cast<VertexId>(cluster.size());

  // Compact to dense ids in first-appearance (vertex id) order and
  // recompute final volumes from the final degrees, so downstream packing
  // sees the post-move membership exactly.
  std::vector<uint32_t> remap(volume.size(), kInvalidCluster);
  for (VertexId v = 0; v < out.num_vertices; ++v) {
    if (cluster[v] == kInvalidCluster) continue;
    uint32_t& dense = remap[cluster[v]];
    if (dense == kInvalidCluster) {
      dense = out.num_clusters++;
      out.cluster_volume.push_back(0);
    }
    cluster[v] = dense;
    out.cluster_volume[dense] += degree[v];
  }
  return out;
}

std::vector<PartitionId> PackClusters(const ClusteringResult& clusters,
                                      PartitionId k,
                                      const std::vector<double>& weights) {
  std::vector<uint32_t> order(clusters.num_clusters);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (clusters.cluster_volume[a] != clusters.cluster_volume[b]) {
      return clusters.cluster_volume[a] > clusters.cluster_volume[b];
    }
    return a < b;
  });
  std::vector<PartitionId> part(clusters.num_clusters, 0);
  std::vector<uint64_t> bin(k, 0);
  for (uint32_t c : order) {
    PartitionId best = 0;
    double best_load = static_cast<double>(bin[0]) / weights[0];
    for (PartitionId p = 1; p < k; ++p) {
      const double load = static_cast<double>(bin[p]) / weights[p];
      if (load < best_load) {
        best = p;
        best_load = load;
      }
    }
    part[c] = best;
    bin[best] += clusters.cluster_volume[c];
  }
  return part;
}

}  // namespace sgp
