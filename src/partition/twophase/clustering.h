#ifndef SGP_PARTITION_TWOPHASE_CLUSTERING_H_
#define SGP_PARTITION_TWOPHASE_CLUSTERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "partition/partitioning.h"
#include "stream/source.h"

namespace sgp {

/// Cluster ids are dense after StreamClusters compaction; vertices never
/// seen by the stream keep this sentinel.
inline constexpr uint32_t kInvalidCluster = ~uint32_t{0};

/// Result of the streaming clustering pass (2PS phase 1).
struct ClusteringResult {
  /// Per-vertex dense cluster id over [0, num_vertices); kInvalidCluster
  /// for ids inside the bound that never appeared on an edge.
  std::vector<uint32_t> cluster_of;

  /// Final per-vertex stream degrees (occurrence counts — equal to graph
  /// degrees on duplicate-free inputs). 2PS phase 2 reads its θ from
  /// these instead of partial streaming degrees.
  std::vector<uint32_t> degree;

  /// Final volume (sum of member degrees) per dense cluster id.
  std::vector<uint64_t> cluster_volume;

  uint32_t num_clusters = 0;
  uint64_t num_edges = 0;
  VertexId num_vertices = 0;

  /// Volume-bounded single-vertex moves performed.
  uint64_t moves = 0;

  /// The volume cap in effect at the end of the pass.
  uint64_t volume_cap = 0;

  bool ok = true;
  std::string error;

  uint64_t SynopsisBytes() const;
};

/// One streaming pass of Hollocou-style clustering with a volume bound
/// (the 2PS phase-1 heuristic): every edge increments both endpoint
/// degrees and cluster volumes, then the endpoint whose cluster has the
/// smaller volume migrates into the other endpoint's cluster — but only
/// if the target stays under the cap. The cap grows with the edges seen
/// so far, cap(i) = max(2, ⌊slack · 2(i+1)/k⌋), so the pass never needs
/// |E| up front and a disk stream clusters identically to an in-memory
/// replay of the same sequence. Decisions are per-edge, so results are
/// chunk-size independent.
ClusteringResult StreamClusters(EdgeStreamSource& source,
                                const PartitionConfig& config);

/// Packs the clusters onto k partitions: clusters in decreasing volume
/// (ties toward the lower cluster id) each go to the partition with the
/// least accumulated volume per capacity weight (ties toward the lower
/// partition id). Returns the per-cluster partition, size num_clusters.
std::vector<PartitionId> PackClusters(const ClusteringResult& clusters,
                                      PartitionId k,
                                      const std::vector<double>& weights);

}  // namespace sgp

#endif  // SGP_PARTITION_TWOPHASE_CLUSTERING_H_
