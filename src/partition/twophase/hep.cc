#include "partition/twophase/hep.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/master_tracker.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "partition/twophase/cluster_score.h"

namespace sgp {

namespace {

struct HepMetrics {
  Counter* hub_vertices = nullptr;
  Counter* hub_edges = nullptr;
  Counter* streamed_edges = nullptr;
  Counter* tie_breaks = nullptr;
  Histogram* pass1_wall = nullptr;
  Histogram* pass2_wall = nullptr;

  HepMetrics() = default;
  explicit HepMetrics(MetricsRegistry& reg) {
    hub_vertices = reg.GetCounter("partition.hep.hub.vertices");
    hub_edges = reg.GetCounter("partition.hep.hub.edges");
    streamed_edges = reg.GetCounter("partition.hep.streamed.edges");
    tie_breaks = reg.GetCounter("partition.hep.tie_breaks");
    pass1_wall = reg.GetHistogram("partition.hep.pass1.wall_seconds",
                                  MetricOptions::WallClock());
    pass2_wall = reg.GetHistogram("partition.hep.pass2.wall_seconds",
                                  MetricOptions::WallClock());
  }

  static HepMetrics& Get() { return CurrentRegistryMetrics<HepMetrics>(); }
};

// Least effectively-loaded partition with room among the replicas of `h`,
// ties toward the lower id (explicit compare, so the Of() iteration order
// never matters); kInvalidPartition when none qualifies.
PartitionId LeastLoadedReplicaWithRoom(const PartitionState& state,
                                       VertexId h) {
  PartitionId best = kInvalidPartition;
  for (PartitionId p : state.replicas().Of(h)) {
    if (!state.HasRoom(p)) continue;
    if (best == kInvalidPartition ||
        state.EffectiveLoad(p) < state.EffectiveLoad(best) ||
        (state.EffectiveLoad(p) == state.EffectiveLoad(best) && p < best)) {
      best = p;
    }
  }
  return best;
}

StreamRunResult RunHep(EdgeStreamSource& source, const PartitionConfig& config,
                       VertexId min_vertices) {
  SGP_CHECK(config.k > 0);
  Timer timer;
  StreamRunResult out;
  out.partitioning.model = CutModel::kVertexCut;
  out.partitioning.k = config.k;

  HepMetrics& metrics = HepMetrics::Get();

  // ---- Pass 1: exact stream degrees (occurrence counts).
  Timer pass1;
  std::vector<uint32_t> degree;
  uint64_t total_edges = 0;
  ForEachStreamItem(source, [&](const StreamEdge& e) {
    const VertexId hi = std::max(e.src, e.dst);
    if (hi >= degree.size()) degree.resize(static_cast<size_t>(hi) + 1, 0);
    ++degree[e.src];
    ++degree[e.dst];
    ++total_edges;
  });
  metrics.pass1_wall->Record(pass1.ElapsedSeconds());
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  if (!source.SupportsRewind()) {
    out.ok = false;
    out.error = "HEP requires a rewindable source (degree pre-pass)";
    return out;
  }
  source.Rewind();
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }

  // ---- Pass 2: split at the hybrid threshold. Low-degree edges stream
  // through the exact-degree HDRF scorer immediately; hub-hub edges are
  // deferred into the in-memory core.
  Timer pass2;
  const uint32_t threshold = config.hybrid_threshold;
  const VertexId n =
      std::max(min_vertices, static_cast<VertexId>(degree.size()));
  PartitionState state(config);
  state.InitCapacities(total_edges, config.balance_slack);
  state.InitEffectiveLoads();
  state.InitReplicas(n);
  ScoreCore core(state, config.score_mode);
  twophase::ClusterScorer scorer(state, core, config.hdrf_lambda);

  std::vector<PartitionId>& assign = out.partitioning.edge_to_partition;
  MasterTracker masters;
  HdrfStats stats;
  auto record = [&](const StreamEdge& e, PartitionId target) {
    if (e.id >= assign.size()) {
      assign.resize(static_cast<size_t>(e.id) + 1, kInvalidPartition);
    }
    assign[e.id] = target;
    masters.Note(e.src, target);
    masters.Note(e.dst, target);
    ++out.num_edges;
  };

  std::vector<StreamEdge> hub_edges;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.NoteBatch();
    for (const StreamEdge& e : chunk) {
      if (degree[e.src] >= threshold && degree[e.dst] >= threshold) {
        hub_edges.push_back(e);
        continue;
      }
      const double du = degree[e.src];
      const double dv = degree[e.dst];
      const double theta_u = du / (du + dv);
      const double theta_v = 1.0 - theta_u;
      record(e, scorer.Place(e.src, e.dst, kInvalidPartition,
                             kInvalidPartition, theta_u, theta_v, stats));
    }
  }
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  const uint64_t streamed = out.num_edges;

  // ---- In-memory hub core, NE-style: hubs in decreasing degree order
  // (ties toward the lower id) each pull their unassigned hub edges as a
  // block into the hub's least-loaded replica partition with room — the
  // expansion keeps a hub's edges together, the caps keep it balanced.
  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < degree.size(); ++v) {
    if (degree[v] >= threshold) hubs.push_back(v);
  }
  std::sort(hubs.begin(), hubs.end(), [&](VertexId a, VertexId b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });
  // Per-hub index into hub_edges; every hub edge appears under both
  // endpoints, the assigned check keeps it single-placement.
  std::vector<std::vector<uint32_t>> incident(hubs.size());
  std::vector<uint32_t> hub_rank(degree.size(), ~uint32_t{0});
  for (uint32_t i = 0; i < hubs.size(); ++i) hub_rank[hubs[i]] = i;
  std::vector<bool> placed(hub_edges.size(), false);
  for (uint32_t i = 0; i < hub_edges.size(); ++i) {
    incident[hub_rank[hub_edges[i].src]].push_back(i);
    if (hub_edges[i].dst != hub_edges[i].src) {
      incident[hub_rank[hub_edges[i].dst]].push_back(i);
    }
  }
  for (uint32_t r = 0; r < hubs.size(); ++r) {
    const VertexId h = hubs[r];
    PartitionId target = LeastLoadedReplicaWithRoom(state, h);
    for (uint32_t idx : incident[r]) {
      if (placed[idx]) continue;
      if (target == kInvalidPartition || !state.HasRoom(target)) {
        target = score::LeastLoadedWithRoom(
            state.k(), state.loads().data(), state.weights().data(),
            state.capacities().data());
      }
      placed[idx] = true;
      const StreamEdge& e = hub_edges[idx];
      state.AddLoadUpdatingEffective(target);
      state.replicas().Add(e.src, target);
      state.replicas().Add(e.dst, target);
      record(e, target);
    }
  }
  metrics.pass2_wall->Record(pass2.ElapsedSeconds());

  out.num_vertices = n;
  out.partitioning.vertex_to_partition = masters.Derive(n, config.k);
  state.NoteAuxiliaryBytes(degree.capacity() * sizeof(uint32_t) +
                           hub_edges.capacity() * sizeof(StreamEdge) +
                           masters.SynopsisBytes() + scorer.SynopsisBytes() +
                           assign.capacity() * sizeof(PartitionId));
  out.partitioning.state_bytes = state.SynopsisBytes();
  out.partitioning.partitioning_seconds = timer.ElapsedSeconds();

  metrics.hub_vertices->Increment(hubs.size());
  metrics.hub_edges->Increment(hub_edges.size());
  metrics.streamed_edges->Increment(streamed);
  metrics.tie_breaks->Increment(stats.tie_breaks);
  return out;
}

}  // namespace

Partitioning HepPartitioner::Run(const Graph& graph,
                                 const PartitionConfig& config) const {
  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  StreamRunResult run = RunHep(source, config, graph.num_vertices());
  SGP_CHECK(run.ok);
  SGP_CHECK(run.partitioning.edge_to_partition.size() == graph.num_edges());
  return std::move(run.partitioning);
}

StreamRunResult HepPartitioner::RunOnSource(
    EdgeStreamSource& source, const PartitionConfig& config) const {
  return RunHep(source, config, 0);
}

}  // namespace sgp
