#ifndef SGP_PARTITION_TWOPHASE_HEP_H_
#define SGP_PARTITION_TWOPHASE_HEP_H_

#include "partition/partitioner.h"

namespace sgp {

/// HEP-style hybrid vertex-cut: a degree pre-pass splits the edges at
/// config.hybrid_threshold — edges between two high-degree vertices (the
/// dense hub core) are buffered and partitioned in memory NE-style
/// (hub by hub in decreasing degree order, each hub's block going to its
/// least-loaded replica partition with room), while the low-degree tail
/// is streamed through the exact-degree HDRF scorer the moment it
/// arrives. Both parts share one PartitionState, so the streamed tail
/// sees the loads and replica sets the hub blocks will join and vice
/// versa. Needs a rewindable source (degree pre-pass + placement pass).
class HepPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "HEP"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
  StreamRunResult RunOnSource(EdgeStreamSource& source,
                              const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_TWOPHASE_HEP_H_
