#include "partition/twophase/ne.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/score_core.h"
#include "partition/state.h"

namespace sgp {

namespace {

struct NeMetrics {
  Counter* seeds = nullptr;
  Counter* expansions = nullptr;
  Counter* claimed_edges = nullptr;
  Counter* fallback_edges = nullptr;
  Histogram* expand_wall = nullptr;

  NeMetrics() = default;
  explicit NeMetrics(MetricsRegistry& reg) {
    seeds = reg.GetCounter("partition.ne.seeds");
    expansions = reg.GetCounter("partition.ne.expansions");
    claimed_edges = reg.GetCounter("partition.ne.claimed.edges");
    fallback_edges = reg.GetCounter("partition.ne.fallback.edges");
    expand_wall = reg.GetHistogram("partition.ne.expand.wall_seconds",
                                   MetricOptions::WallClock());
  }

  static NeMetrics& Get() { return CurrentRegistryMetrics<NeMetrics>(); }
};

// Incident-edge CSR: every edge listed under both endpoints, paired with
// the opposite endpoint.
struct IncidenceIndex {
  std::vector<uint64_t> offsets;
  std::vector<EdgeId> edge;
  std::vector<VertexId> other;

  explicit IncidenceIndex(const Graph& graph) {
    const VertexId n = graph.num_vertices();
    offsets.assign(static_cast<size_t>(n) + 1, 0);
    for (const Edge& e : graph.edges()) {
      ++offsets[e.src + 1];
      ++offsets[e.dst + 1];
    }
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    edge.resize(offsets[n]);
    other.resize(offsets[n]);
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    const std::vector<Edge>& edges = graph.edges();
    for (EdgeId id = 0; id < edges.size(); ++id) {
      const Edge& e = edges[id];
      edge[cursor[e.src]] = id;
      other[cursor[e.src]++] = e.dst;
      edge[cursor[e.dst]] = id;
      other[cursor[e.dst]++] = e.src;
    }
  }

  uint64_t Bytes() const {
    return offsets.capacity() * sizeof(uint64_t) +
           edge.capacity() * sizeof(EdgeId) +
           other.capacity() * sizeof(VertexId);
  }
};

}  // namespace

Partitioning NePartitioner::Run(const Graph& graph,
                                const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const PartitionId k = config.k;
  const VertexId n = graph.num_vertices();
  const EdgeId m = graph.num_edges();

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = k;
  result.edge_to_partition.assign(m, kInvalidPartition);

  NeMetrics& metrics = NeMetrics::Get();
  ScopedTimer expand_timer(metrics.expand_wall);

  PartitionState state(config);
  state.InitCapacities(m, config.balance_slack);

  const IncidenceIndex inc(graph);
  auto unassigned_degree = [&](VertexId v) {
    uint32_t d = 0;
    for (uint64_t i = inc.offsets[v]; i < inc.offsets[v + 1]; ++i) {
      d += result.edge_to_partition[inc.edge[i]] == kInvalidPartition;
    }
    return d;
  };

  // Seed order: lowest degree first (ties toward the lower id) — the
  // expansion starts at the periphery and keeps the dense core intact
  // for as long as possible.
  std::vector<VertexId> seed_order(n);
  std::iota(seed_order.begin(), seed_order.end(), 0u);
  std::sort(seed_order.begin(), seed_order.end(),
            [&](VertexId a, VertexId b) {
              if (graph.Degree(a) != graph.Degree(b)) {
                return graph.Degree(a) < graph.Degree(b);
              }
              return a < b;
            });
  size_t seed_cursor = 0;

  // core_of[v]: the partition whose core v joined (a vertex joins exactly
  // one core; boundary membership is per-partition via the stamp).
  std::vector<PartitionId> core_of(n, kInvalidPartition);
  std::vector<PartitionId> boundary_stamp(n, kInvalidPartition);
  uint64_t seeds = 0, expansions = 0, claimed = 0;

  // Min-heap of (unassigned-degree-at-push, vertex); lazy keys — stale
  // entries are re-pushed with their current key, so each pop acts on the
  // true minimum (ties toward the lower id via pair ordering).
  using QItem = std::pair<uint32_t, VertexId>;
  for (PartitionId p = 0; p + 1 < k; ++p) {
    std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> heap;
    while (state.HasRoom(p)) {
      if (heap.empty()) {
        // Fresh seed: next vertex with an unassigned incident edge.
        while (seed_cursor < seed_order.size() &&
               (core_of[seed_order[seed_cursor]] != kInvalidPartition ||
                unassigned_degree(seed_order[seed_cursor]) == 0)) {
          ++seed_cursor;
        }
        if (seed_cursor == seed_order.size()) break;  // nothing left anywhere
        const VertexId seed = seed_order[seed_cursor];
        heap.emplace(unassigned_degree(seed), seed);
        boundary_stamp[seed] = p;
        ++seeds;
      }
      const auto [key, x] = heap.top();
      heap.pop();
      if (core_of[x] != kInvalidPartition) continue;
      const uint32_t cur = unassigned_degree(x);
      if (cur != key) {
        if (cur > 0) heap.emplace(cur, x);
        continue;
      }
      // Move x into the core of p and claim its unassigned edges.
      core_of[x] = p;
      ++expansions;
      for (uint64_t i = inc.offsets[x];
           i < inc.offsets[x + 1] && state.HasRoom(p); ++i) {
        const EdgeId id = inc.edge[i];
        if (result.edge_to_partition[id] != kInvalidPartition) continue;
        result.edge_to_partition[id] = p;
        state.AddLoad(p);
        ++claimed;
        const VertexId y = inc.other[i];
        if (core_of[y] == kInvalidPartition && boundary_stamp[y] != p) {
          boundary_stamp[y] = p;
          heap.emplace(unassigned_degree(y), y);
        }
      }
    }
  }

  // Remainder: everything the expansion never reached (plus all of a
  // k == 1 run) goes to the least-loaded partition with room, in natural
  // edge order — the empty last partition absorbs it first.
  uint64_t fallback = 0;
  for (EdgeId id = 0; id < m; ++id) {
    if (result.edge_to_partition[id] != kInvalidPartition) continue;
    const PartitionId target = score::LeastLoadedWithRoom(
        k, state.loads().data(), state.weights().data(),
        state.capacities().data());
    result.edge_to_partition[id] = target;
    state.AddLoad(target);
    ++fallback;
  }

  state.NoteAuxiliaryBytes(inc.Bytes() +
                           core_of.capacity() * sizeof(PartitionId) +
                           boundary_stamp.capacity() * sizeof(PartitionId) +
                           result.edge_to_partition.capacity() *
                               sizeof(PartitionId));
  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();

  metrics.seeds->Increment(seeds);
  metrics.expansions->Increment(expansions);
  metrics.claimed_edges->Increment(claimed);
  metrics.fallback_edges->Increment(fallback);
  return result;
}

}  // namespace sgp
