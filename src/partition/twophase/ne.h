#ifndef SGP_PARTITION_TWOPHASE_NE_H_
#define SGP_PARTITION_TWOPHASE_NE_H_

#include "partition/partitioner.h"

namespace sgp {

/// NE-inspired neighborhood expansion (KDD'17 family, ROADMAP item 1):
/// grows partitions 0..k-2 one at a time over the in-memory graph. Each
/// partition starts from the lowest-degree unplaced seed and repeatedly
/// moves the boundary vertex with the fewest unassigned incident edges
/// into the core, claiming all of that vertex's unassigned edges, until
/// the partition hits its Equation (1) cap. Whatever the expansion never
/// reached is distributed in natural edge order to the least-loaded
/// partition with room (the last partition starts empty, so it absorbs
/// the remainder first). Deterministic: no randomness, ties always
/// toward the lower id; stream order and seed are ignored like the
/// offline MTS baseline.
class NePartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "NE"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_TWOPHASE_NE_H_
