#include "partition/twophase/two_phase.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/master_tracker.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "partition/twophase/cluster_score.h"
#include "partition/twophase/clustering.h"

namespace sgp {

namespace {

// Clustering-pass and placement-pass counters, accumulated in locals and
// flushed once per run (partition.cluster.*, docs/OBSERVABILITY.md).
struct TwoPhaseMetrics {
  Counter* clusters = nullptr;
  Counter* moves = nullptr;
  Counter* pass1_edges = nullptr;
  Counter* volume_cap = nullptr;
  Counter* edges_assigned = nullptr;
  Counter* tie_breaks = nullptr;
  Histogram* pass1_wall = nullptr;
  Histogram* pass2_wall = nullptr;

  TwoPhaseMetrics() = default;
  explicit TwoPhaseMetrics(MetricsRegistry& reg) {
    clusters = reg.GetCounter("partition.cluster.clusters");
    moves = reg.GetCounter("partition.cluster.moves");
    pass1_edges = reg.GetCounter("partition.cluster.pass1.edges");
    volume_cap = reg.GetCounter("partition.cluster.volume_cap");
    edges_assigned = reg.GetCounter("partition.cluster.edges.assigned");
    tie_breaks = reg.GetCounter("partition.cluster.tie_breaks");
    pass1_wall = reg.GetHistogram("partition.cluster.pass1.wall_seconds",
                                  MetricOptions::WallClock());
    pass2_wall = reg.GetHistogram("partition.cluster.pass2.wall_seconds",
                                  MetricOptions::WallClock());
  }

  static TwoPhaseMetrics& Get() {
    return CurrentRegistryMetrics<TwoPhaseMetrics>();
  }
};

// Both entry points run this core; `min_vertices` carries the graph path's
// full vertex space (isolated vertices included), 0 for discover-from-
// stream. Assignments are recorded by StreamEdge::id, which is the dense
// EdgeId for in-memory sources and the arrival index for disk streams —
// identical sequences therefore fill identical vectors.
StreamRunResult RunTwoPhase(EdgeStreamSource& source,
                            const PartitionConfig& config,
                            VertexId min_vertices) {
  SGP_CHECK(config.k > 0);
  Timer timer;
  StreamRunResult out;
  out.partitioning.model = CutModel::kVertexCut;
  out.partitioning.k = config.k;

  TwoPhaseMetrics& metrics = TwoPhaseMetrics::Get();

  // ---- Pass 1: streaming clustering.
  Timer pass1;
  ClusteringResult clusters = StreamClusters(source, config);
  metrics.pass1_wall->Record(pass1.ElapsedSeconds());
  if (!clusters.ok) {
    out.ok = false;
    out.error = clusters.error;
    return out;
  }
  if (!source.SupportsRewind()) {
    out.ok = false;
    out.error = "2PS requires a rewindable source (two passes)";
    return out;
  }
  source.Rewind();
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }

  // ---- Pass 2: cluster-aware HDRF over the identical sequence.
  Timer pass2;
  const VertexId n = std::max(min_vertices, clusters.num_vertices);
  PartitionState state(config);
  state.InitCapacities(clusters.num_edges, config.balance_slack);
  state.InitEffectiveLoads();
  state.InitReplicas(n);
  ScoreCore core(state, config.score_mode);
  twophase::ClusterScorer scorer(state, core, config.hdrf_lambda);
  const std::vector<PartitionId> cluster_part =
      PackClusters(clusters, config.k, state.weights());
  auto home_of = [&](VertexId u) {
    const uint32_t c =
        u < clusters.cluster_of.size() ? clusters.cluster_of[u] : kInvalidCluster;
    return c == kInvalidCluster ? kInvalidPartition : cluster_part[c];
  };

  std::vector<PartitionId>& assign = out.partitioning.edge_to_partition;
  MasterTracker masters;
  HdrfStats stats;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.NoteBatch();
    for (const StreamEdge& e : chunk) {
      const double du = clusters.degree[e.src];
      const double dv = clusters.degree[e.dst];
      const double theta_u = du / (du + dv);
      const double theta_v = 1.0 - theta_u;
      const PartitionId target =
          scorer.Place(e.src, e.dst, home_of(e.src), home_of(e.dst), theta_u,
                       theta_v, stats);
      if (e.id >= assign.size()) {
        assign.resize(static_cast<size_t>(e.id) + 1, kInvalidPartition);
      }
      assign[e.id] = target;
      masters.Note(e.src, target);
      masters.Note(e.dst, target);
      ++out.num_edges;
    }
  }
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  metrics.pass2_wall->Record(pass2.ElapsedSeconds());

  out.num_vertices = n;
  out.partitioning.vertex_to_partition = masters.Derive(n, config.k);
  state.NoteAuxiliaryBytes(clusters.SynopsisBytes() + masters.SynopsisBytes() +
                           scorer.SynopsisBytes() +
                           cluster_part.capacity() * sizeof(PartitionId) +
                           assign.capacity() * sizeof(PartitionId));
  out.partitioning.state_bytes = state.SynopsisBytes();
  out.partitioning.partitioning_seconds = timer.ElapsedSeconds();

  metrics.clusters->Increment(clusters.num_clusters);
  metrics.moves->Increment(clusters.moves);
  metrics.pass1_edges->Increment(clusters.num_edges);
  metrics.volume_cap->Increment(clusters.volume_cap);
  metrics.edges_assigned->Increment(out.num_edges);
  metrics.tie_breaks->Increment(stats.tie_breaks);
  return out;
}

}  // namespace

Partitioning TwoPhasePartitioner::Run(const Graph& graph,
                                      const PartitionConfig& config) const {
  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  StreamRunResult run = RunTwoPhase(source, config, graph.num_vertices());
  SGP_CHECK(run.ok);
  SGP_CHECK(run.partitioning.edge_to_partition.size() == graph.num_edges());
  return std::move(run.partitioning);
}

StreamRunResult TwoPhasePartitioner::RunOnSource(
    EdgeStreamSource& source, const PartitionConfig& config) const {
  return RunTwoPhase(source, config, 0);
}

}  // namespace sgp
