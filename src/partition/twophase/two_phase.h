#ifndef SGP_PARTITION_TWOPHASE_TWO_PHASE_H_
#define SGP_PARTITION_TWOPHASE_TWO_PHASE_H_

#include "partition/partitioner.h"

namespace sgp {

/// 2PS: two-phase streaming edge partitioning (PAPERS.md, "2PS:
/// High-Quality Edge Partitioning with Two-Phase Streaming"). Pass 1
/// clusters the vertices with volume-bounded streaming clustering
/// (twophase/clustering.h) and packs the clusters onto the k partitions;
/// pass 2 re-streams the identical edge sequence and scores each edge
/// with the cluster-aware HDRF core (twophase/cluster_score.h): an
/// endpoint counts as present on its cluster's home partition, so edges
/// inside a cluster collapse onto one partition while the λ term and the
/// Equation (1) caps keep the loads balanced. Needs a rewindable source;
/// both passes see the exact same sequence, so a disk stream partitions
/// bit-identically to an in-memory replay.
class TwoPhasePartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "2PS"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
  StreamRunResult RunOnSource(EdgeStreamSource& source,
                              const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_TWOPHASE_TWO_PHASE_H_
