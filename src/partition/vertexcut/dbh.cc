#include "partition/vertexcut/dbh.h"

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "partition/state.h"

namespace sgp {

Partitioning DbhPartitioner::Run(const Graph& graph,
                                 const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = config.k;
  result.edge_to_partition.resize(graph.num_edges());
  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edges()[e];
    VertexId pivot = graph.Degree(edge.src) <= graph.Degree(edge.dst)
                         ? edge.src
                         : edge.dst;
    result.edge_to_partition[e] =
        hasher.Pick(HashU64Seeded(pivot, config.seed));
  }
  // O(k) synopsis: capacity weights for the hasher, nothing per edge.
  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
