#include "partition/vertexcut/dbh.h"

#include <algorithm>

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "partition/master_tracker.h"
#include "partition/score_core.h"
#include "partition/state.h"

namespace sgp {

Partitioning DbhPartitioner::Run(const Graph& graph,
                                 const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = config.k;
  result.edge_to_partition.resize(graph.num_edges());
  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edges()[e];
    VertexId pivot = graph.Degree(edge.src) <= graph.Degree(edge.dst)
                         ? edge.src
                         : edge.dst;
    result.edge_to_partition[e] =
        hasher.Pick(HashU64Seeded(pivot, config.seed));
  }
  // O(k) synopsis: capacity weights for the hasher, nothing per edge.
  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

StreamRunResult DbhPartitioner::RunOnSource(EdgeStreamSource& source,
                                            const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  StreamRunResult out;
  out.partitioning.model = CutModel::kVertexCut;
  out.partitioning.k = config.k;
  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  ScoreCore core(state, config.score_mode);
  MasterTracker masters;
  VertexId max_bound = 0;

  // Degree pre-pass: stream occurrence counts stand in for degrees (equal
  // to graph degrees on duplicate-free undirected inputs).
  std::vector<uint32_t> stream_degree;
  ForEachStreamItem(source, [&](const StreamEdge& e) {
    const VertexId hi = std::max(e.src, e.dst);
    if (hi >= stream_degree.size()) {
      stream_degree.resize(static_cast<size_t>(hi) + 1, 0);
    }
    ++stream_degree[e.src];
    ++stream_degree[e.dst];
  });
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  if (!source.SupportsRewind()) {
    out.ok = false;
    out.error = "DBH requires a rewindable source (degree pre-pass)";
    return out;
  }
  source.Rewind();

  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.NoteBatch();
    for (const StreamEdge& e : chunk) {
      VertexId pivot =
          stream_degree[e.src] <= stream_degree[e.dst] ? e.src : e.dst;
      const PartitionId target = hasher.Pick(HashU64Seeded(pivot, config.seed));
      max_bound = std::max({max_bound, e.src + 1, e.dst + 1});
      out.partitioning.edge_to_partition.push_back(target);
      masters.Note(e.src, target);
      masters.Note(e.dst, target);
      ++out.num_edges;
    }
  }
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  out.num_vertices = max_bound;
  out.partitioning.vertex_to_partition = masters.Derive(max_bound, config.k);
  state.NoteAuxiliaryBytes(masters.SynopsisBytes() +
                           stream_degree.capacity() * sizeof(uint32_t));
  out.partitioning.state_bytes = state.SynopsisBytes();
  out.partitioning.partitioning_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace sgp
