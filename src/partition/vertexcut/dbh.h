#ifndef SGP_PARTITION_VERTEXCUT_DBH_H_
#define SGP_PARTITION_VERTEXCUT_DBH_H_

#include "partition/partitioner.h"

namespace sgp {

/// Degree-Based Hashing (Xie et al., NIPS'14): edge (u,v) is placed by
/// hashing the endpoint of smaller degree, so high-degree vertices are the
/// ones replicated. Relies on a priori degree knowledge (Section 4.2.2);
/// this implementation uses the exact undirected degrees, matching the
/// paper's evaluation setting where graphs are loaded from storage.
class DbhPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "DBH"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;

  /// Graph-free ingest: a degree-counting pre-pass (stream occurrence
  /// counts stand in for degrees), then a rewind and the hashing pass.
  /// Reports a regular error when the source cannot rewind.
  StreamRunResult RunOnSource(EdgeStreamSource& source,
                              const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_DBH_H_
