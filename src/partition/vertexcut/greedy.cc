#include "partition/vertexcut/greedy.h"

#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

Partitioning PowerGraphGreedyPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const PartitionId k = config.k;

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = k;
  result.edge_to_partition.resize(graph.num_edges());

  // Synopsis: replica sets A(u), placed degrees (how many incident edges
  // of each vertex were already assigned) and edge loads.
  PartitionState state(config);
  state.InitReplicas(graph.num_vertices());
  state.InitDegreeTable(graph.num_vertices());
  ReplicaState& replicas = state.replicas();
  std::vector<PartitionId> all(k);
  for (PartitionId i = 0; i < k; ++i) all[i] = i;
  std::vector<PartitionId> intersection;

  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  ForEachStreamItem(source, [&](const StreamEdge& se) {
    const VertexId u = se.src;
    const VertexId v = se.dst;
    auto setu = replicas.Of(u);
    auto setv = replicas.Of(v);

    PartitionId target;
    if (!setu.empty() && !setv.empty()) {
      intersection.clear();
      for (PartitionId p : setu) {
        if (replicas.Contains(v, p)) intersection.push_back(p);
      }
      if (!intersection.empty()) {
        target = state.LeastLoaded(intersection);
      } else {
        // Disjoint replica sets: spread the endpoint with more remaining
        // edges, i.e. place with the replicas of the busier vertex.
        const bool u_busier =
            static_cast<int64_t>(graph.Degree(u)) - state.degree(u) >=
            static_cast<int64_t>(graph.Degree(v)) - state.degree(v);
        target = state.LeastLoaded(u_busier ? setu : setv);
      }
    } else if (!setu.empty()) {
      target = state.LeastLoaded(setu);
    } else if (!setv.empty()) {
      target = state.LeastLoaded(setv);
    } else {
      target = state.LeastLoaded(all);
    }

    result.edge_to_partition[se.id] = target;
    state.AddLoad(target);
    state.IncrementDegree(u);
    state.IncrementDegree(v);
    replicas.Add(u, target);
    replicas.Add(v, target);
  });
  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
