#include "partition/vertexcut/greedy.h"

#include "common/check.h"
#include "common/timer.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

Partitioning PowerGraphGreedyPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = config.k;
  result.edge_to_partition.resize(graph.num_edges());

  // Synopsis: replica sets A(u), placed degrees (how many incident edges
  // of each vertex were already assigned) and edge loads.
  PartitionState state(config);
  state.InitReplicas(graph.num_vertices());
  state.InitDegreeTable(graph.num_vertices());
  ScoreCore core(state, config.score_mode);

  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.PlacePggChunk(
        chunk, [&](VertexId x) { return graph.Degree(x); },
        [&](const StreamEdge& se, PartitionId target) {
          result.edge_to_partition[se.id] = target;
        });
  }
  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
