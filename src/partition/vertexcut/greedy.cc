#include "partition/vertexcut/greedy.h"

#include <span>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "partition/vertexcut/replica_state.h"
#include "stream/stream.h"

namespace sgp {

namespace {

// Least-loaded partition among `candidates` in capacity-normalized load
// (ties toward lower id).
PartitionId LeastLoaded(std::span<const PartitionId> candidates,
                        const std::vector<uint64_t>& loads,
                        const std::vector<double>& weights) {
  PartitionId best = candidates[0];
  for (PartitionId p : candidates) {
    const double lp = static_cast<double>(loads[p]) / weights[p];
    const double lb = static_cast<double>(loads[best]) / weights[best];
    if (lp < lb || (lp == lb && p < best)) best = p;
  }
  return best;
}

}  // namespace

Partitioning PowerGraphGreedyPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const PartitionId k = config.k;

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = k;
  result.edge_to_partition.resize(graph.num_edges());

  ReplicaState replicas(graph.num_vertices());
  std::vector<uint32_t> placed_degree(graph.num_vertices(), 0);
  std::vector<uint64_t> loads(k, 0);
  const std::vector<double> weights = NormalizedCapacities(config);
  std::vector<PartitionId> all(k);
  for (PartitionId i = 0; i < k; ++i) all[i] = i;
  std::vector<PartitionId> intersection;

  for (EdgeId e : MakeEdgeStream(graph, config.order, config.seed)) {
    const Edge& edge = graph.edges()[e];
    const VertexId u = edge.src;
    const VertexId v = edge.dst;
    auto setu = replicas.Of(u);
    auto setv = replicas.Of(v);

    PartitionId target;
    if (!setu.empty() && !setv.empty()) {
      intersection.clear();
      for (PartitionId p : setu) {
        if (replicas.Contains(v, p)) intersection.push_back(p);
      }
      if (!intersection.empty()) {
        target = LeastLoaded(intersection, loads, weights);
      } else {
        // Disjoint replica sets: spread the endpoint with more remaining
        // edges, i.e. place with the replicas of the busier vertex.
        const bool u_busier =
            static_cast<int64_t>(graph.Degree(u)) - placed_degree[u] >=
            static_cast<int64_t>(graph.Degree(v)) - placed_degree[v];
        target = LeastLoaded(u_busier ? setu : setv, loads, weights);
      }
    } else if (!setu.empty()) {
      target = LeastLoaded(setu, loads, weights);
    } else if (!setv.empty()) {
      target = LeastLoaded(setv, loads, weights);
    } else {
      target = LeastLoaded(all, loads, weights);
    }

    result.edge_to_partition[e] = target;
    ++loads[target];
    ++placed_degree[u];
    ++placed_degree[v];
    replicas.Add(u, target);
    replicas.Add(v, target);
  }
  uint64_t replica_entries = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    replica_entries += replicas.Of(v).size();
  }
  result.state_bytes =
      replica_entries * sizeof(PartitionId) +
      static_cast<uint64_t>(graph.num_vertices()) * sizeof(uint32_t) +
      static_cast<uint64_t>(k) * sizeof(uint64_t);
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
