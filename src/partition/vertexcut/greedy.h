#ifndef SGP_PARTITION_VERTEXCUT_GREEDY_H_
#define SGP_PARTITION_VERTEXCUT_GREEDY_H_

#include "partition/partitioner.h"

namespace sgp {

/// PowerGraph's greedy vertex-cut heuristic (Gonzalez et al., OSDI'12):
///   1. both endpoints share a replica partition → least-loaded common one;
///   2. both have replicas but disjoint → least-loaded replica partition of
///      the endpoint with more remaining (partial) degree;
///   3. one endpoint has replicas → its least-loaded replica partition;
///   4. neither has replicas → least-loaded partition overall.
/// Known to be sensitive to stream order — a BFS stream can collapse it
/// into one giant partition (Section 4.2.2), which the stream-order
/// ablation benchmark demonstrates.
class PowerGraphGreedyPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "PGG"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_GREEDY_H_
