#include "partition/vertexcut/grid.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

namespace {

// Largest divisor of k that is ≤ √k, giving the most square grid.
PartitionId GridRows(PartitionId k) {
  PartitionId best = 1;
  for (PartitionId r = 1;
       static_cast<uint64_t>(r) * r <= static_cast<uint64_t>(k); ++r) {
    if (k % r == 0) best = r;
  }
  return best;
}

}  // namespace

Partitioning GridPartitioner::Run(const Graph& graph,
                                  const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const PartitionId k = config.k;
  const PartitionId rows = GridRows(k);
  const PartitionId cols = k / rows;

  auto row_of = [cols](PartitionId p) { return p / cols; };
  auto col_of = [cols](PartitionId p) { return p % cols; };
  auto in_constrained_set = [&](PartitionId p, PartitionId home) {
    return row_of(p) == row_of(home) || col_of(p) == col_of(home);
  };

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = k;
  result.edge_to_partition.resize(graph.num_edges());
  PartitionState state(config);
  const std::vector<double>& weights = state.weights();
  const std::vector<uint64_t>& loads = state.loads();
  std::vector<PartitionId> candidates;
  candidates.reserve(rows + cols);

  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  ForEachStreamItem(source, [&](const StreamEdge& edge) {
    PartitionId home_u = static_cast<PartitionId>(
        HashU64Seeded(edge.src, config.seed) % k);
    PartitionId home_v = static_cast<PartitionId>(
        HashU64Seeded(edge.dst, config.seed) % k);
    // Intersection of the two constrained sets; guaranteed non-empty since
    // it always contains (row(u), col(v)) and (row(v), col(u)).
    candidates.clear();
    PartitionId ru = row_of(home_u);
    PartitionId cu = col_of(home_u);
    for (PartitionId c = 0; c < cols; ++c) {
      PartitionId p = ru * cols + c;
      if (in_constrained_set(p, home_v)) candidates.push_back(p);
    }
    for (PartitionId r = 0; r < rows; ++r) {
      PartitionId p = r * cols + cu;
      if (p != home_u && in_constrained_set(p, home_v)) {
        candidates.push_back(p);
      }
    }
    SGP_DCHECK(!candidates.empty());
    // First-seen candidate wins ties (the candidate order is part of the
    // Grid construction), so this cannot use state.LeastLoaded().
    PartitionId best = candidates[0];
    for (PartitionId p : candidates) {
      if (static_cast<double>(loads[p]) / weights[p] <
          static_cast<double>(loads[best]) / weights[best]) {
        best = p;
      }
    }
    result.edge_to_partition[edge.id] = best;
    state.AddLoad(best);
  });
  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
