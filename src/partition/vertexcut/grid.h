#ifndef SGP_PARTITION_VERTEXCUT_GRID_H_
#define SGP_PARTITION_VERTEXCUT_GRID_H_

#include "partition/partitioner.h"

namespace sgp {

/// Grid partitioning (Jain et al., GRADES'13): partitions are arranged on a
/// 2-D grid; each vertex hashes to a home cell, and an edge may only go to
/// a cell in the intersection of its endpoints' constrained sets (the row
/// and column of each home cell), choosing the least-loaded. This bounds
/// each vertex's replication factor by 2√k − 1 (Section 4.2.2).
class GridPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "GRID"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_GRID_H_
