#include "partition/vertexcut/hash_vertexcut.h"

#include "common/check.h"
#include "common/hashing.h"
#include "common/timer.h"
#include "partition/master_tracker.h"
#include "partition/score_core.h"
#include "partition/state.h"

namespace sgp {

Partitioning HashVertexCutPartitioner::Run(
    const Graph& graph, const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = config.k;
  result.edge_to_partition.resize(graph.num_edges());
  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edges()[e];
    uint64_t h = HashCombine(HashU64Seeded(edge.src, config.seed),
                             HashU64Seeded(edge.dst, config.seed));
    result.edge_to_partition[e] = hasher.Pick(h);
  }
  // O(k) synopsis: capacity weights for the hasher, nothing per edge.
  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

StreamRunResult HashVertexCutPartitioner::RunOnSource(
    EdgeStreamSource& source, const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  StreamRunResult out;
  out.partitioning.model = CutModel::kVertexCut;
  out.partitioning.k = config.k;
  PartitionState state(config);
  const CapacityAwareHasher hasher(state);
  ScoreCore core(state, config.score_mode);
  MasterTracker masters;
  VertexId max_bound = 0;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.NoteBatch();
    for (const StreamEdge& e : chunk) {
      uint64_t h = HashCombine(HashU64Seeded(e.src, config.seed),
                               HashU64Seeded(e.dst, config.seed));
      const PartitionId target = hasher.Pick(h);
      max_bound = std::max({max_bound, e.src + 1, e.dst + 1});
      out.partitioning.edge_to_partition.push_back(target);
      masters.Note(e.src, target);
      masters.Note(e.dst, target);
      ++out.num_edges;
    }
  }
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  out.num_vertices = max_bound;
  out.partitioning.vertex_to_partition = masters.Derive(max_bound, config.k);
  state.NoteAuxiliaryBytes(masters.SynopsisBytes());
  out.partitioning.state_bytes = state.SynopsisBytes();
  out.partitioning.partitioning_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace sgp
