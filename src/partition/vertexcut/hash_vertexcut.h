#ifndef SGP_PARTITION_VERTEXCUT_HASH_VERTEXCUT_H_
#define SGP_PARTITION_VERTEXCUT_HASH_VERTEXCUT_H_

#include "partition/partitioner.h"

namespace sgp {

/// Hash-based random vertex-cut partitioning (VCR): edge (u,v) goes to
/// hash(u ∥ v) mod k. Perfectly balanced in edge counts but replicates
/// aggressively (Section 4.2.2).
class HashVertexCutPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "VCR"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;

  /// Graph-free single-pass ingest: O(n + k) synopsis, identical
  /// assignments to Run on a duplicate-free in-memory replay.
  StreamRunResult RunOnSource(EdgeStreamSource& source,
                              const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_HASH_VERTEXCUT_H_
