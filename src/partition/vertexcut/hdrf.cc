#include "partition/vertexcut/hdrf.h"

#include <limits>
#include <vector>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/vertexcut/replica_state.h"
#include "stream/stream.h"

namespace sgp {

namespace {

// Decision counters of the HDRF scoring loop, accumulated in locals and
// flushed once per Run (no atomics on the per-edge path).
struct HdrfMetrics {
  Counter* edges_assigned;
  Counter* degree_table_hits;
  Counter* tie_breaks;
  Histogram* assign_wall;

  static HdrfMetrics& Get() {
    static HdrfMetrics* metrics = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      auto* m = new HdrfMetrics();
      m->edges_assigned = reg.GetCounter("partition.hdrf.edges.assigned");
      m->degree_table_hits =
          reg.GetCounter("partition.hdrf.degree_table.hits");
      m->tie_breaks = reg.GetCounter("partition.hdrf.tie_breaks");
      m->assign_wall = reg.GetHistogram("partition.hdrf.assign.wall_seconds",
                                        MetricOptions::WallClock());
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

Partitioning HdrfPartitioner::Run(const Graph& graph,
                                  const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const PartitionId k = config.k;
  const double lambda = config.hdrf_lambda;

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = k;
  result.edge_to_partition.resize(graph.num_edges());

  HdrfMetrics& metrics = HdrfMetrics::Get();
  ScopedTimer assign_timer(metrics.assign_wall);
  uint64_t local_degree_hits = 0;
  uint64_t local_tie_breaks = 0;

  ReplicaState replicas(graph.num_vertices());
  std::vector<uint32_t> partial_degree(graph.num_vertices(), 0);
  std::vector<uint64_t> loads(k, 0);
  const std::vector<double> weights = NormalizedCapacities(config);
  std::vector<double> effective(k, 0.0);

  for (EdgeId e : MakeEdgeStream(graph, config.order, config.seed)) {
    const Edge& edge = graph.edges()[e];
    const VertexId u = edge.src;
    const VertexId v = edge.dst;
    // Partial degrees observed so far, normalized (Section 4.2.2). An
    // endpoint already in the table is a "hit" — the synopsis had state
    // for it from an earlier edge.
    local_degree_hits += (partial_degree[u] > 0) + (partial_degree[v] > 0);
    ++partial_degree[u];
    ++partial_degree[v];
    const double du = partial_degree[u];
    const double dv = partial_degree[v];
    const double theta_u = du / (du + dv);
    const double theta_v = 1.0 - theta_u;

    // Balance term in the normalized form of the HDRF paper:
    // λ · (maxsize − |Pi|)/(ε + maxsize − minsize). Equation (7) of the
    // survey abbreviates this as λ(1 − |e(Pi)|/C); the normalized form is
    // what keeps the algorithm balanced under adversarial (BFS) orders.
    double max_load = 0;
    double min_load = effective[0];
    for (PartitionId i = 0; i < k; ++i) {
      max_load = std::max(max_load, effective[i]);
      min_load = std::min(min_load, effective[i]);
    }
    const double spread = 1.0 + (max_load - min_load);  // ε = 1

    PartitionId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId i = 0; i < k; ++i) {
      double g = 0;
      // g(x, Pi) = (1 + (1 − θ(x))) · 1_{A(x)}(Pi): replicating the
      // higher-degree endpoint scores lower, so its locality is
      // sacrificed first.
      if (replicas.Contains(u, i)) g += 1.0 + theta_v;
      if (replicas.Contains(v, i)) g += 1.0 + theta_u;
      double score = g + lambda * (max_load - effective[i]) / spread;
      if (score > best_score) {
        best_score = score;
        best = i;
      } else if (score == best_score && loads[i] < loads[best]) {
        ++local_tie_breaks;  // equal score resolved by the lighter part
        best = i;
      }
    }
    result.edge_to_partition[e] = best;
    ++loads[best];
    effective[best] = static_cast<double>(loads[best]) / weights[best];
    replicas.Add(u, best);
    replicas.Add(v, best);
  }
  metrics.edges_assigned->Increment(graph.num_edges());
  metrics.degree_table_hits->Increment(local_degree_hits);
  metrics.tie_breaks->Increment(local_tie_breaks);

  uint64_t replica_entries = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    replica_entries += replicas.Of(v).size();
  }
  result.state_bytes =
      replica_entries * sizeof(PartitionId) +
      static_cast<uint64_t>(graph.num_vertices()) * sizeof(uint32_t) +
      static_cast<uint64_t>(k) * 2 * sizeof(uint64_t);
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
