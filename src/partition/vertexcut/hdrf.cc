#include "partition/vertexcut/hdrf.h"

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

namespace {

// Decision counters of the HDRF scoring loop, accumulated in locals and
// flushed once per Run (no atomics on the per-edge path).
struct HdrfMetrics {
  Counter* edges_assigned = nullptr;
  Counter* degree_table_hits = nullptr;
  Counter* tie_breaks = nullptr;
  Histogram* assign_wall = nullptr;

  HdrfMetrics() = default;
  explicit HdrfMetrics(MetricsRegistry& reg) {
    edges_assigned = reg.GetCounter("partition.hdrf.edges.assigned");
    degree_table_hits = reg.GetCounter("partition.hdrf.degree_table.hits");
    tie_breaks = reg.GetCounter("partition.hdrf.tie_breaks");
    assign_wall = reg.GetHistogram("partition.hdrf.assign.wall_seconds",
                                   MetricOptions::WallClock());
  }

  static HdrfMetrics& Get() { return CurrentRegistryMetrics<HdrfMetrics>(); }
};

}  // namespace

Partitioning HdrfPartitioner::Run(const Graph& graph,
                                  const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const double lambda = config.hdrf_lambda;

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = config.k;
  result.edge_to_partition.resize(graph.num_edges());

  HdrfMetrics& metrics = HdrfMetrics::Get();
  ScopedTimer assign_timer(metrics.assign_wall);

  PartitionState state(config);
  state.InitDegreeTable(graph.num_vertices());
  state.InitEffectiveLoads();
  state.InitReplicas(graph.num_vertices());
  ScoreCore core(state, config.score_mode);

  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  HdrfStats stats;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.PlaceHdrfChunk(chunk, lambda, stats,
                        [&](const StreamEdge& edge, PartitionId target) {
                          result.edge_to_partition[edge.id] = target;
                        });
  }
  metrics.edges_assigned->Increment(graph.num_edges());
  metrics.degree_table_hits->Increment(stats.degree_hits);
  metrics.tie_breaks->Increment(stats.tie_breaks);

  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sgp
