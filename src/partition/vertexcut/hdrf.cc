#include "partition/vertexcut/hdrf.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "partition/master_tracker.h"
#include "partition/score_core.h"
#include "partition/state.h"
#include "stream/source.h"

namespace sgp {

namespace {

// Decision counters of the HDRF scoring loop, accumulated in locals and
// flushed once per Run (no atomics on the per-edge path).
struct HdrfMetrics {
  Counter* edges_assigned = nullptr;
  Counter* degree_table_hits = nullptr;
  Counter* tie_breaks = nullptr;
  Histogram* assign_wall = nullptr;

  HdrfMetrics() = default;
  explicit HdrfMetrics(MetricsRegistry& reg) {
    edges_assigned = reg.GetCounter("partition.hdrf.edges.assigned");
    degree_table_hits = reg.GetCounter("partition.hdrf.degree_table.hits");
    tie_breaks = reg.GetCounter("partition.hdrf.tie_breaks");
    assign_wall = reg.GetHistogram("partition.hdrf.assign.wall_seconds",
                                   MetricOptions::WallClock());
  }

  static HdrfMetrics& Get() { return CurrentRegistryMetrics<HdrfMetrics>(); }
};

}  // namespace

Partitioning HdrfPartitioner::Run(const Graph& graph,
                                  const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  const double lambda = config.hdrf_lambda;

  Partitioning result;
  result.model = CutModel::kVertexCut;
  result.k = config.k;
  result.edge_to_partition.resize(graph.num_edges());

  HdrfMetrics& metrics = HdrfMetrics::Get();
  ScopedTimer assign_timer(metrics.assign_wall);

  PartitionState state(config);
  state.InitDegreeTable(graph.num_vertices());
  state.InitEffectiveLoads();
  state.InitReplicas(graph.num_vertices());
  ScoreCore core(state, config.score_mode);

  InMemoryEdgeSource source(graph, config.order, config.seed,
                            config.ingest_chunk_size);
  HdrfStats stats;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    core.PlaceHdrfChunk(chunk, lambda, stats,
                        [&](const StreamEdge& edge, PartitionId target) {
                          result.edge_to_partition[edge.id] = target;
                        });
  }
  metrics.edges_assigned->Increment(graph.num_edges());
  metrics.degree_table_hits->Increment(stats.degree_hits);
  metrics.tie_breaks->Increment(stats.tie_breaks);

  result.state_bytes = state.SynopsisBytes();
  DeriveMasterPlacement(graph, &result);
  result.partitioning_seconds = timer.ElapsedSeconds();
  return result;
}

StreamRunResult HdrfPartitioner::RunOnSource(
    EdgeStreamSource& source, const PartitionConfig& config) const {
  SGP_CHECK(config.k > 0);
  Timer timer;
  StreamRunResult out;
  out.partitioning.model = CutModel::kVertexCut;
  out.partitioning.k = config.k;

  HdrfMetrics& metrics = HdrfMetrics::Get();
  ScopedTimer assign_timer(metrics.assign_wall);

  PartitionState state(config);
  state.InitDegreeTable(0);
  state.InitEffectiveLoads();
  state.InitReplicas(0);
  ScoreCore core(state, config.score_mode);
  MasterTracker masters;
  VertexId max_bound = 0;
  HdrfStats stats;
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    // Grow the id space over the whole chunk up front, so the scorer's
    // bit-index rows are stable while it batches the chunk.
    for (const StreamEdge& e : chunk) {
      state.EnsureVertex(std::max(e.src, e.dst));
    }
    core.PlaceHdrfChunk(chunk, config.hdrf_lambda, stats,
                        [&](const StreamEdge& e, PartitionId target) {
                          max_bound = std::max({max_bound, e.src + 1,
                                                e.dst + 1});
                          out.partitioning.edge_to_partition.push_back(target);
                          masters.Note(e.src, target);
                          masters.Note(e.dst, target);
                          ++out.num_edges;
                        });
  }
  if (!source.ok()) {
    out.ok = false;
    out.error = source.error();
    return out;
  }
  metrics.edges_assigned->Increment(out.num_edges);
  metrics.degree_table_hits->Increment(stats.degree_hits);
  metrics.tie_breaks->Increment(stats.tie_breaks);

  out.num_vertices = max_bound;
  out.partitioning.vertex_to_partition = masters.Derive(max_bound, config.k);
  state.NoteAuxiliaryBytes(masters.SynopsisBytes());
  out.partitioning.state_bytes = state.SynopsisBytes();
  out.partitioning.partitioning_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace sgp
