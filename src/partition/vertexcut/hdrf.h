#ifndef SGP_PARTITION_VERTEXCUT_HDRF_H_
#define SGP_PARTITION_VERTEXCUT_HDRF_H_

#include "partition/partitioner.h"

namespace sgp {

/// High-Degree Replicated First (Petroni et al., CIKM'15). Greedy
/// vertex-cut that prefers replicating the endpoint of higher *partial*
/// degree, preserving locality of low-degree vertices without a
/// degree-precomputation pass (Equation 7). The λ balance weight makes it
/// robust to adversarial (e.g. BFS) stream orders, unlike plain
/// PowerGraph greedy.
class HdrfPartitioner final : public Partitioner {
 public:
  std::string_view name() const override { return "HDRF"; }
  CutModel model() const override { return CutModel::kVertexCut; }
  Partitioning Run(const Graph& graph,
                   const PartitionConfig& config) const override;

  /// Graph-free single-pass ingest over the shared partition state,
  /// identical assignments to Run on a duplicate-free in-memory replay.
  StreamRunResult RunOnSource(EdgeStreamSource& source,
                              const PartitionConfig& config) const override;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_HDRF_H_
