#ifndef SGP_PARTITION_VERTEXCUT_HDRF_CORE_H_
#define SGP_PARTITION_VERTEXCUT_HDRF_CORE_H_

#include <algorithm>
#include <limits>

#include "partition/state.h"

namespace sgp::internal_vertexcut {

/// Decision counters of the HDRF scoring loop; callers accumulate in
/// locals and flush to the metrics registry once per run.
struct HdrfStats {
  uint64_t degree_hits = 0;
  uint64_t tie_breaks = 0;
};

/// One HDRF edge placement (Section 4.2.2): performs the full state
/// transition — partial-degree updates, scoring, load + effective-load
/// update, replica adds — and returns the chosen partition. The state must
/// have its degree table, effective loads and replica sets initialized and
/// covering `u` and `v`. Shared by HdrfPartitioner (in-memory graphs) and
/// the disk ingest path, so both place edges identically.
inline PartitionId PlaceHdrfEdge(PartitionState& state, VertexId u,
                                 VertexId v, double lambda,
                                 HdrfStats& stats) {
  const PartitionId k = state.k();
  const std::vector<uint64_t>& loads = state.loads();
  const std::vector<double>& effective = state.effective();
  ReplicaState& replicas = state.replicas();

  // Partial degrees observed so far, normalized (Section 4.2.2). An
  // endpoint already in the table is a "hit" — the synopsis had state
  // for it from an earlier edge.
  stats.degree_hits += (state.degree(u) > 0) + (state.degree(v) > 0);
  state.IncrementDegree(u);
  state.IncrementDegree(v);
  const double du = state.degree(u);
  const double dv = state.degree(v);
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;

  // Balance term in the normalized form of the HDRF paper:
  // λ · (maxsize − |Pi|)/(ε + maxsize − minsize). Equation (7) of the
  // survey abbreviates this as λ(1 − |e(Pi)|/C); the normalized form is
  // what keeps the algorithm balanced under adversarial (BFS) orders.
  double max_load = 0;
  double min_load = effective[0];
  for (PartitionId i = 0; i < k; ++i) {
    max_load = std::max(max_load, effective[i]);
    min_load = std::min(min_load, effective[i]);
  }
  const double spread = 1.0 + (max_load - min_load);  // ε = 1

  PartitionId best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (PartitionId i = 0; i < k; ++i) {
    double g = 0;
    // g(x, Pi) = (1 + (1 − θ(x))) · 1_{A(x)}(Pi): replicating the
    // higher-degree endpoint scores lower, so its locality is
    // sacrificed first.
    if (replicas.Contains(u, i)) g += 1.0 + theta_v;
    if (replicas.Contains(v, i)) g += 1.0 + theta_u;
    double score = g + lambda * (max_load - effective[i]) / spread;
    if (score > best_score) {
      best_score = score;
      best = i;
    } else if (score == best_score && loads[i] < loads[best]) {
      ++stats.tie_breaks;  // equal score resolved by the lighter part
      best = i;
    }
  }
  state.AddLoadUpdatingEffective(best);
  replicas.Add(u, best);
  replicas.Add(v, best);
  return best;
}

}  // namespace sgp::internal_vertexcut

#endif  // SGP_PARTITION_VERTEXCUT_HDRF_CORE_H_
