#ifndef SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_
#define SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/dense_bitset.h"
#include "common/types.h"

namespace sgp {

/// Incrementally maintained replica sets A(u) used by the greedy vertex-cut
/// partitioners (PowerGraph greedy, HDRF). This is the "distributed table
/// with the values of A(u)" the paper notes greedy methods must share
/// among workers (Section 4.2.2). Sets are tiny (≤ k entries, overwhelmingly
/// ≤ 4 in practice), so each set keeps its first kInline entries in place
/// and only spills to a heap vector beyond that — the hot path performs no
/// allocation. Spilled vectors are kept sorted so hub vertices with
/// replicas on many partitions answer Contains() by binary search instead
/// of a linear scan (which degraded quadratically at large k).
///
/// An optional bit index (EnableBitIndex) additionally mirrors membership
/// into a dense vertex × partition BitMatrix. The batched ScoreCore reads
/// whole 64-candidate membership words from it (`RowWords`), replacing the
/// per-candidate Contains probes in the k-way scoring loops.
class ReplicaState {
 public:
  ReplicaState() = default;
  explicit ReplicaState(VertexId num_vertices) : sets_(num_vertices) {}

  /// Grows the vertex space to cover `u` (sources that discover ids).
  void EnsureVertex(VertexId u) {
    if (u >= sets_.size()) sets_.resize(static_cast<size_t>(u) + 1);
    if (bit_index_enabled_) bits_.EnsureRows(sets_.size());
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(sets_.size());
  }

  // ---------------------------------------------------------------------
  // Bit index.
  // ---------------------------------------------------------------------

  /// Mirrors membership into a vertex × k bit matrix (idempotent for a
  /// fixed k). Existing entries are replayed, so it can be enabled on a
  /// populated table; afterwards Add/Clear keep both views in sync.
  void EnableBitIndex(PartitionId k) {
    SGP_CHECK(k > 0);
    if (bit_index_enabled_ && bits_.cols() == k) return;
    bits_.Reset(sets_.size(), k);
    bit_index_enabled_ = true;
    for (VertexId u = 0; u < num_vertices(); ++u) {
      for (PartitionId p : Of(u)) bits_.Set(u, p);
    }
  }

  bool bit_index_enabled() const { return bit_index_enabled_; }
  uint64_t words_per_row() const { return bits_.words_per_row(); }

  /// Membership words of `u` (ceil(k/64) words, bit p set iff p ∈ A(u)).
  /// Valid only while the bit index is enabled.
  const uint64_t* RowWords(VertexId u) const { return bits_.Row(u); }

  // ---------------------------------------------------------------------
  // Set operations.
  // ---------------------------------------------------------------------

  /// True if partition `p` already holds a replica of `u`. Inline sets do
  /// one short linear scan; spilled sets binary-search the sorted vector.
  bool Contains(VertexId u, PartitionId p) const {
    const Set& s = sets_[u];
    if (s.size <= kInline) {
      const auto begin = s.inline_items.begin();
      return std::find(begin, begin + s.size, p) != begin + s.size;
    }
    return std::binary_search(s.overflow.begin(), s.overflow.end(), p);
  }

  /// Records that partition `p` now holds a replica of `u` (idempotent).
  void Add(VertexId u, PartitionId p) {
    if (Contains(u, p)) return;
    sets_[u].Insert(p);
    ++total_entries_;
    if (sets_[u].size > kInline) {
      // Spilling moves all kInline+1 entries to the heap at once; later
      // additions grow the heap set by one.
      overflow_entries_ += sets_[u].size == kInline + 1 ? kInline + 1 : 1;
    }
    if (bit_index_enabled_) bits_.Set(u, p);
  }

  /// Partitions currently holding a replica of `u`: insertion order while
  /// the set is inline, ascending once it has spilled. Every consumer
  /// (least-loaded picks, intersection scans) is order-independent.
  std::span<const PartitionId> Of(VertexId u) const {
    return sets_[u].Items();
  }

  /// Empties the set of `u` (the sharded deltas reset touched vertices
  /// after each barrier without an O(n) sweep).
  void Clear(VertexId u) {
    Set& s = sets_[u];
    total_entries_ -= s.size;
    if (s.size > kInline) overflow_entries_ -= s.size;
    s.size = 0;
    s.overflow.clear();
    if (bit_index_enabled_) bits_.ClearRow(u);
  }

  /// Sum of all set sizes — the replica-table term of SynopsisBytes().
  uint64_t total_entries() const { return total_entries_; }

  /// Bytes of working state this table holds: the dense array of
  /// small-buffer sets, every heap-resident overflow entry, and the bit
  /// index when enabled.
  uint64_t SynopsisBytes() const {
    return sets_.capacity() * sizeof(Set) +
           overflow_entries_ * sizeof(PartitionId) + bits_.MemoryBytes();
  }

  static constexpr uint32_t kInline = 4;

 private:

  // Small-buffer set: entries live in `inline_items` until the set grows
  // past kInline, at which point all entries move to `overflow` — sorted,
  // so Items() returns one contiguous ascending span and Contains() can
  // binary-search.
  struct Set {
    std::array<PartitionId, kInline> inline_items;
    uint32_t size = 0;
    std::vector<PartitionId> overflow;

    std::span<const PartitionId> Items() const {
      return size <= kInline
                 ? std::span<const PartitionId>(inline_items.data(), size)
                 : std::span<const PartitionId>(overflow);
    }

    // Caller guarantees `p` is absent.
    void Insert(PartitionId p) {
      if (size < kInline) {
        inline_items[size] = p;
      } else {
        if (size == kInline) {
          overflow.assign(inline_items.begin(), inline_items.end());
          std::sort(overflow.begin(), overflow.end());
        }
        overflow.insert(
            std::upper_bound(overflow.begin(), overflow.end(), p), p);
      }
      ++size;
    }
  };

  std::vector<Set> sets_;
  BitMatrix bits_;
  bool bit_index_enabled_ = false;
  uint64_t total_entries_ = 0;
  uint64_t overflow_entries_ = 0;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_
