#ifndef SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_
#define SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_

#include <algorithm>
#include <span>
#include <vector>

#include "common/types.h"

namespace sgp {

/// Incrementally maintained replica sets A(u) used by the greedy vertex-cut
/// partitioners (PowerGraph greedy, HDRF). This is the "distributed table
/// with the values of A(u)" the paper notes greedy methods must share
/// among workers (Section 4.2.2). Sets are tiny (≤ k entries), so linear
/// scans beat any hashed structure.
class ReplicaState {
 public:
  explicit ReplicaState(VertexId num_vertices) : sets_(num_vertices) {}

  /// True if partition `p` already holds a replica of `u`.
  bool Contains(VertexId u, PartitionId p) const {
    const auto& s = sets_[u];
    return std::find(s.begin(), s.end(), p) != s.end();
  }

  /// Records that partition `p` now holds a replica of `u` (idempotent).
  void Add(VertexId u, PartitionId p) {
    if (!Contains(u, p)) sets_[u].push_back(p);
  }

  /// Partitions currently holding a replica of `u` (unsorted).
  std::span<const PartitionId> Of(VertexId u) const { return sets_[u]; }

 private:
  std::vector<std::vector<PartitionId>> sets_;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_
