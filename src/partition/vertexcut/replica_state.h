#ifndef SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_
#define SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "common/types.h"

namespace sgp {

/// Incrementally maintained replica sets A(u) used by the greedy vertex-cut
/// partitioners (PowerGraph greedy, HDRF). This is the "distributed table
/// with the values of A(u)" the paper notes greedy methods must share
/// among workers (Section 4.2.2). Sets are tiny (≤ k entries, overwhelmingly
/// ≤ 4 in practice), so each set keeps its first kInline entries in place
/// and only spills to a heap vector beyond that — the hot path performs no
/// allocation and one short linear scan.
class ReplicaState {
 public:
  ReplicaState() = default;
  explicit ReplicaState(VertexId num_vertices) : sets_(num_vertices) {}

  /// Grows the vertex space to cover `u` (sources that discover ids).
  void EnsureVertex(VertexId u) {
    if (u >= sets_.size()) sets_.resize(static_cast<size_t>(u) + 1);
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(sets_.size());
  }

  /// True if partition `p` already holds a replica of `u`.
  bool Contains(VertexId u, PartitionId p) const {
    auto s = sets_[u].Items();
    return std::find(s.begin(), s.end(), p) != s.end();
  }

  /// Records that partition `p` now holds a replica of `u` (idempotent).
  void Add(VertexId u, PartitionId p) {
    if (Contains(u, p)) return;
    sets_[u].PushBack(p);
    ++total_entries_;
    if (sets_[u].size > kInline) {
      // Spilling moves all kInline+1 entries to the heap at once; later
      // additions grow the heap set by one.
      overflow_entries_ += sets_[u].size == kInline + 1 ? kInline + 1 : 1;
    }
  }

  /// Partitions currently holding a replica of `u`, in insertion order.
  std::span<const PartitionId> Of(VertexId u) const {
    return sets_[u].Items();
  }

  /// Empties the set of `u` (the sharded deltas reset touched vertices
  /// after each barrier without an O(n) sweep).
  void Clear(VertexId u) {
    Set& s = sets_[u];
    total_entries_ -= s.size;
    if (s.size > kInline) overflow_entries_ -= s.size;
    s.size = 0;
    s.overflow.clear();
  }

  /// Sum of all set sizes — the replica-table term of SynopsisBytes().
  uint64_t total_entries() const { return total_entries_; }

  /// Bytes of working state this table holds: the dense array of
  /// small-buffer sets plus every heap-resident overflow entry.
  uint64_t SynopsisBytes() const {
    return sets_.capacity() * sizeof(Set) +
           overflow_entries_ * sizeof(PartitionId);
  }

  static constexpr uint32_t kInline = 4;

 private:

  // Small-buffer set: entries live in `inline_items` until the set grows
  // past kInline, at which point all entries move to `overflow` so Items()
  // can always return one contiguous span.
  struct Set {
    std::array<PartitionId, kInline> inline_items;
    uint32_t size = 0;
    std::vector<PartitionId> overflow;

    std::span<const PartitionId> Items() const {
      return size <= kInline
                 ? std::span<const PartitionId>(inline_items.data(), size)
                 : std::span<const PartitionId>(overflow);
    }

    void PushBack(PartitionId p) {
      if (size < kInline) {
        inline_items[size] = p;
      } else {
        if (size == kInline) {
          overflow.assign(inline_items.begin(), inline_items.end());
        }
        overflow.push_back(p);
      }
      ++size;
    }
  };

  std::vector<Set> sets_;
  uint64_t total_entries_ = 0;
  uint64_t overflow_entries_ = 0;
};

}  // namespace sgp

#endif  // SGP_PARTITION_VERTEXCUT_REPLICA_STATE_H_
