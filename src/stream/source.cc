#include "stream/source.h"

#include <algorithm>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "graph/io.h"

namespace sgp {

namespace {

// Chunk-refill instrumentation shared by every source. `stream.chunks` is
// deterministic (a function of stream length and chunk size);
// `stream.refill_nanos` is wall time and registered as such so
// deterministic exports exclude it (docs/OBSERVABILITY.md).
struct SourceMetrics {
  Counter* chunks = nullptr;
  Counter* refill_nanos = nullptr;
  Counter* disk_edges = nullptr;
  Counter* disk_skipped_lines = nullptr;

  SourceMetrics() = default;
  explicit SourceMetrics(MetricsRegistry& reg) {
    chunks = reg.GetCounter("stream.chunks");
    refill_nanos =
        reg.GetCounter("stream.refill_nanos", MetricOptions::WallClock());
    disk_edges = reg.GetCounter("stream.disk.edges");
    disk_skipped_lines = reg.GetCounter("stream.disk.skipped_lines");
  }

  static SourceMetrics& Get() {
    return CurrentRegistryMetrics<SourceMetrics>();
  }
};

}  // namespace

InMemoryVertexSource::InMemoryVertexSource(const Graph& graph,
                                           StreamOrder order, uint64_t seed,
                                           uint64_t chunk_size)
    : order_(MakeVertexStream(graph, order, seed)),
      chunk_size_(chunk_size == 0 ? order_.size() : chunk_size) {}

std::span<const VertexId> InMemoryVertexSource::NextChunk() {
  if (pos_ >= order_.size()) return {};
  Timer timer;
  const uint64_t len = std::min<uint64_t>(chunk_size_, order_.size() - pos_);
  std::span<const VertexId> chunk(order_.data() + pos_, len);
  pos_ += len;
  SourceMetrics& metrics = SourceMetrics::Get();
  metrics.chunks->Increment();
  metrics.refill_nanos->Increment(timer.ElapsedNanos());
  return chunk;
}

InMemoryEdgeSource::InMemoryEdgeSource(const Graph& graph, StreamOrder order,
                                       uint64_t seed, uint64_t chunk_size)
    : graph_(graph),
      order_(MakeEdgeStream(graph, order, seed)),
      chunk_size_(chunk_size == 0 ? order_.size() : chunk_size) {
  buffer_.resize(std::min<uint64_t>(
      std::max<uint64_t>(1, chunk_size_), order_.size()));
}

std::span<const StreamEdge> InMemoryEdgeSource::NextChunk() {
  if (pos_ >= order_.size()) return {};
  Timer timer;
  const uint64_t len = std::min<uint64_t>(chunk_size_, order_.size() - pos_);
  for (uint64_t i = 0; i < len; ++i) {
    const EdgeId e = order_[pos_ + i];
    const Edge& edge = graph_.edges()[e];
    buffer_[i] = StreamEdge{e, edge.src, edge.dst};
  }
  pos_ += len;
  SourceMetrics& metrics = SourceMetrics::Get();
  metrics.chunks->Increment();
  metrics.refill_nanos->Increment(timer.ElapsedNanos());
  return {buffer_.data(), len};
}

EdgeListFileSource::EdgeListFileSource(const std::string& path)
    : EdgeListFileSource(path, Options()) {}

EdgeListFileSource::EdgeListFileSource(const std::string& path,
                                       const Options& options)
    : path_(path), options_(options) {
  SGP_CHECK(options_.chunk_size >= 1);
  buffer_.reserve(options_.chunk_size);
  Reset();
}

void EdgeListFileSource::Reset() {
  in_.close();
  in_.clear();
  in_.open(path_);
  line_number_ = 0;
  next_edge_id_ = 0;
  skipped_lines_ = 0;
  max_vertex_bound_ = 0;
  if (!in_.good()) {
    ok_ = false;
    error_ = "cannot open edge list file: " + path_;
    return;
  }
  ok_ = true;
  error_.clear();
}

std::span<const StreamEdge> EdgeListFileSource::NextChunk() {
  if (!ok_) return {};
  Timer timer;
  buffer_.clear();
  const VertexId limit =
      options_.num_vertices != 0 ? options_.num_vertices : kInvalidVertex;
  std::string line;
  while (buffer_.size() < options_.chunk_size && std::getline(in_, line)) {
    ++line_number_;
    Edge edge;
    switch (ParseEdgeListLine(line, line_number_, limit, &edge, &error_)) {
      case EdgeLineStatus::kIgnored:
        continue;
      case EdgeLineStatus::kSkipped:
        ++skipped_lines_;
        SourceMetrics::Get().disk_skipped_lines->Increment();
        continue;
      case EdgeLineStatus::kError:
        ok_ = false;
        return {};
      case EdgeLineStatus::kEdge:
        break;
    }
    // GraphBuilder drops self-loops during canonicalization; mirroring
    // that here keeps disk edge ids aligned with in-memory EdgeIds for
    // duplicate-free inputs.
    if (edge.src == edge.dst) continue;
    buffer_.push_back(StreamEdge{next_edge_id_++, edge.src, edge.dst});
    max_vertex_bound_ =
        std::max({max_vertex_bound_, edge.src + 1, edge.dst + 1});
  }
  if (buffer_.empty()) return {};
  SourceMetrics& metrics = SourceMetrics::Get();
  metrics.chunks->Increment();
  metrics.disk_edges->Increment(buffer_.size());
  metrics.refill_nanos->Increment(timer.ElapsedNanos());
  return {buffer_.data(), buffer_.size()};
}

}  // namespace sgp
