#ifndef SGP_STREAM_SOURCE_H_
#define SGP_STREAM_SOURCE_H_

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "stream/stream.h"

namespace sgp {

/// Pull-based, chunk-batched ingest layer (Section 2: a streaming
/// partitioner consumes the graph as it arrives and keeps only an O(n+k)
/// synopsis). Partitioners pull chunks from a source instead of receiving
/// a fully materialized arrival sequence, which lets the same algorithm
/// code run over in-memory replays of the four stream orders and over a
/// bounded-memory disk edge list. Chunk boundaries never change the
/// element sequence, so results are independent of chunk size.

/// One element of an edge stream: the edge id (the dense EdgeId for
/// in-memory graphs; the arrival index for disk streams) plus both
/// endpoints, so consumers need no random access into an edge array.
struct StreamEdge {
  EdgeId id = 0;
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
};

/// Pull-based vertex stream: each element is a vertex id; consumers read
/// the adjacency N(u) from wherever they can (the in-memory adapters pair
/// with a Graph). An empty chunk signals end of stream.
class VertexStreamSource {
 public:
  virtual ~VertexStreamSource() = default;

  /// Next batch of vertices; empty exactly at end of stream. The returned
  /// span is valid until the next NextChunk()/Reset() call.
  virtual std::span<const VertexId> NextChunk() = 0;

  /// Rewinds to the beginning of the stream (multi-pass / re-streaming).
  virtual void Reset() = 0;

  /// True when the source can replay its stream from the beginning —
  /// the capability multi-pass algorithms (re-streaming, two-phase) probe
  /// before relying on Rewind(). Both provided sources can; a wrapper
  /// over a non-seekable input overrides this to false.
  virtual bool SupportsRewind() const { return true; }

  /// Rewinds to the beginning for another pass. Every pass replays the
  /// exact same element sequence. Call only when SupportsRewind().
  virtual void Rewind() { Reset(); }

  /// Total elements if known up front; 0 when the source cannot tell
  /// without consuming itself.
  virtual uint64_t size_hint() const = 0;
};

/// Pull-based edge stream. An empty chunk signals end of stream.
class EdgeStreamSource {
 public:
  virtual ~EdgeStreamSource() = default;
  virtual std::span<const StreamEdge> NextChunk() = 0;
  virtual void Reset() = 0;
  virtual uint64_t size_hint() const = 0;

  /// True when the source can replay its stream from the beginning (the
  /// multi-pass capability: a degree pre-pass, two-phase clustering, or
  /// re-streaming all need it). In-memory replays and seekable files can
  /// rewind; single-shot inputs (pipes) cannot and must override.
  virtual bool SupportsRewind() const { return true; }

  /// Rewinds to the beginning for another pass over the identical element
  /// sequence (ids included). Call only when SupportsRewind(); sources
  /// that cannot rewind enter the failed state (ok() == false) instead.
  virtual void Rewind() { Reset(); }

  /// False when the stream failed mid-way (I/O error, malformed input);
  /// an empty chunk then means "failed", not "done". In-memory sources
  /// never fail.
  virtual bool ok() const { return true; }
  virtual std::string error() const { return {}; }
};

/// Drains `source` from its current position, invoking `fn` per element.
template <typename Source, typename Fn>
void ForEachStreamItem(Source& source, Fn&& fn) {
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (const auto& item : chunk) fn(item);
  }
}

/// In-memory vertex source: replays MakeVertexStream(graph, order, seed)
/// chunk by chunk, so the element sequence is bit-identical to the
/// materialized path for every seed. chunk_size 0 serves the whole stream
/// as one chunk (the fast path for in-core graphs).
class InMemoryVertexSource final : public VertexStreamSource {
 public:
  InMemoryVertexSource(const Graph& graph, StreamOrder order, uint64_t seed,
                       uint64_t chunk_size = 0);

  std::span<const VertexId> NextChunk() override;
  void Reset() override { pos_ = 0; }
  uint64_t size_hint() const override { return order_.size(); }

 private:
  std::vector<VertexId> order_;
  uint64_t chunk_size_;
  uint64_t pos_ = 0;
};

/// In-memory edge source: replays MakeEdgeStream(graph, order, seed),
/// materializing only one chunk of StreamEdge records at a time on top of
/// the edge-id order (the id order itself is O(m), exactly like the
/// pre-source materialized path).
class InMemoryEdgeSource final : public EdgeStreamSource {
 public:
  InMemoryEdgeSource(const Graph& graph, StreamOrder order, uint64_t seed,
                     uint64_t chunk_size = 0);

  std::span<const StreamEdge> NextChunk() override;
  void Reset() override { pos_ = 0; }
  uint64_t size_hint() const override { return order_.size(); }

 private:
  const Graph& graph_;
  std::vector<EdgeId> order_;
  std::vector<StreamEdge> buffer_;
  uint64_t chunk_size_;
  uint64_t pos_ = 0;
};

/// Bounded-memory disk edge source: streams a whitespace-separated edge
/// list ("src dst" per line) through the hardened ParseEdgeListLine
/// reader, holding only one chunk of edges in memory. Mirrors the
/// GraphBuilder canonicalization it can afford statelessly: self-loops
/// are dropped (duplicate suppression would need O(m) state, so inputs
/// with duplicates simply stream them — ids then diverge from the
/// deduplicated in-memory Graph). Only natural order is possible without
/// materializing the file. Malformed lines are skipped and counted;
/// out-of-range ids put the source in a failed state (ok() == false).
class EdgeListFileSource final : public EdgeStreamSource {
 public:
  struct Options {
    /// Edges per chunk; must be >= 1.
    uint64_t chunk_size = 4096;

    /// Exclusive vertex-id bound; 0 grows the id space from the data.
    VertexId num_vertices = 0;
  };

  explicit EdgeListFileSource(const std::string& path);
  EdgeListFileSource(const std::string& path, const Options& options);

  /// False when the file cannot be opened or a line had an out-of-range
  /// id; `error()` carries the diagnostic. NextChunk() returns empty.
  bool ok() const override { return ok_; }
  std::string error() const override { return error_; }

  std::span<const StreamEdge> NextChunk() override;

  /// Re-opens the file (multi-pass, e.g. a degree-counting pre-pass).
  /// Skipped-line and id-space accounting restart with the pass.
  void Reset() override;

  uint64_t size_hint() const override { return 0; }

  /// Malformed lines skipped so far (this pass).
  uint64_t skipped_lines() const { return skipped_lines_; }

  /// Max vertex id accepted + 1 so far (this pass); the id space a
  /// consumer must have grown to after draining the stream.
  VertexId max_vertex_bound() const { return max_vertex_bound_; }

 private:
  std::string path_;
  Options options_;
  std::ifstream in_;
  std::vector<StreamEdge> buffer_;
  bool ok_ = true;
  std::string error_;
  uint64_t line_number_ = 0;
  uint64_t next_edge_id_ = 0;
  uint64_t skipped_lines_ = 0;
  VertexId max_vertex_bound_ = 0;
};

/// Models a non-seekable input (a pipe, a network feed) on top of any edge
/// source: chunks pass through unchanged, but the stream cannot be
/// replayed. Rewind()/Reset() put the source into the failed state instead
/// of aborting, so multi-pass partitioners can report "source does not
/// support rewind" as a regular StreamRunResult error. Used by tests and
/// tools to prove the single-pass algorithms never rely on a second pass.
class SinglePassEdgeSource final : public EdgeStreamSource {
 public:
  explicit SinglePassEdgeSource(EdgeStreamSource& inner) : inner_(inner) {}

  std::span<const StreamEdge> NextChunk() override {
    if (failed_) return {};
    return inner_.NextChunk();
  }
  bool SupportsRewind() const override { return false; }
  void Rewind() override { Fail(); }
  void Reset() override { Fail(); }
  uint64_t size_hint() const override { return inner_.size_hint(); }
  bool ok() const override { return !failed_ && inner_.ok(); }
  std::string error() const override {
    return failed_ ? "single-pass source cannot rewind" : inner_.error();
  }

 private:
  void Fail() { failed_ = true; }

  EdgeStreamSource& inner_;
  bool failed_ = false;
};

}  // namespace sgp

#endif  // SGP_STREAM_SOURCE_H_
