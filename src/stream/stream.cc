#include "stream/stream.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/check.h"
#include "common/random.h"
#include "common/telemetry.h"

namespace sgp {

namespace {

// Ingest-rate instrumentation: one flush per stream materialization, no
// per-element work (stream construction is on the partitioners' hot path).
struct StreamMetrics {
  Counter* vertex_builds = nullptr;
  Counter* vertex_items = nullptr;
  Counter* edge_builds = nullptr;
  Counter* edge_items = nullptr;
  Histogram* build_wall = nullptr;

  StreamMetrics() = default;
  explicit StreamMetrics(MetricsRegistry& reg) {
    vertex_builds = reg.GetCounter("stream.vertex_stream.builds");
    vertex_items = reg.GetCounter("stream.vertex_stream.items");
    edge_builds = reg.GetCounter("stream.edge_stream.builds");
    edge_items = reg.GetCounter("stream.edge_stream.items");
    build_wall = reg.GetHistogram("stream.build.wall_seconds",
                                  MetricOptions::WallClock());
  }

  static StreamMetrics& Get() {
    return CurrentRegistryMetrics<StreamMetrics>();
  }
};

// Identity id sequence, optionally shuffled: the natural/random base
// order shared by the vertex and edge streams.
template <typename Id>
std::vector<Id> BaseOrder(uint64_t count, bool shuffled, uint64_t seed) {
  std::vector<Id> ids(count);
  std::iota(ids.begin(), ids.end(), Id{0});
  if (shuffled) {
    Rng rng(seed);
    rng.Shuffle(ids);
  }
  return ids;
}

// Traversal order over the undirected graph, covering every component.
// `depth_first` selects DFS, otherwise BFS. Component roots are chosen in
// random order so the traversal does not privilege low vertex ids.
std::vector<VertexId> TraversalOrder(const Graph& graph, bool depth_first,
                                     uint64_t seed) {
  const VertexId n = graph.num_vertices();
  Rng rng(seed);
  std::vector<VertexId> roots(n);
  std::iota(roots.begin(), roots.end(), 0u);
  rng.Shuffle(roots);

  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::deque<VertexId> frontier;
  for (VertexId root : roots) {
    if (visited[root]) continue;
    visited[root] = true;
    frontier.push_back(root);
    while (!frontier.empty()) {
      VertexId u;
      if (depth_first) {
        u = frontier.back();
        frontier.pop_back();
      } else {
        u = frontier.front();
        frontier.pop_front();
      }
      order.push_back(u);
      for (VertexId v : graph.Neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          frontier.push_back(v);
        }
      }
    }
  }
  return order;
}

}  // namespace

StreamOrder ParseStreamOrder(std::string_view name) {
  if (name == "natural") return StreamOrder::kNatural;
  if (name == "random") return StreamOrder::kRandom;
  if (name == "bfs") return StreamOrder::kBfs;
  if (name == "dfs") return StreamOrder::kDfs;
  SGP_CHECK(false && "unknown stream order");
  return StreamOrder::kNatural;
}

std::string_view StreamOrderName(StreamOrder order) {
  switch (order) {
    case StreamOrder::kNatural:
      return "natural";
    case StreamOrder::kRandom:
      return "random";
    case StreamOrder::kBfs:
      return "bfs";
    case StreamOrder::kDfs:
      return "dfs";
  }
  return "unknown";
}

std::vector<VertexId> MakeVertexStream(const Graph& graph, StreamOrder order,
                                       uint64_t seed) {
  StreamMetrics& metrics = StreamMetrics::Get();
  ScopedTimer build_timer(metrics.build_wall);
  metrics.vertex_builds->Increment();
  metrics.vertex_items->Increment(graph.num_vertices());
  const VertexId n = graph.num_vertices();
  switch (order) {
    case StreamOrder::kNatural:
    case StreamOrder::kRandom:
      return BaseOrder<VertexId>(n, order == StreamOrder::kRandom, seed);
    case StreamOrder::kBfs:
      return TraversalOrder(graph, /*depth_first=*/false, seed);
    case StreamOrder::kDfs:
      return TraversalOrder(graph, /*depth_first=*/true, seed);
  }
  return {};
}

std::vector<EdgeId> MakeEdgeStream(const Graph& graph, StreamOrder order,
                                   uint64_t seed) {
  StreamMetrics& metrics = StreamMetrics::Get();
  ScopedTimer build_timer(metrics.build_wall);
  metrics.edge_builds->Increment();
  metrics.edge_items->Increment(graph.num_edges());
  const EdgeId m = graph.num_edges();
  std::vector<EdgeId> ids =
      BaseOrder<EdgeId>(m, order == StreamOrder::kRandom, seed);
  switch (order) {
    case StreamOrder::kNatural:
    case StreamOrder::kRandom:
      return ids;
    case StreamOrder::kBfs:
    case StreamOrder::kDfs: {
      std::vector<VertexId> vertex_order = TraversalOrder(
          graph, /*depth_first=*/order == StreamOrder::kDfs, seed);
      std::vector<uint32_t> position(graph.num_vertices());
      for (uint32_t i = 0; i < vertex_order.size(); ++i) {
        position[vertex_order[i]] = i;
      }
      std::stable_sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
        const Edge& ea = graph.edges()[a];
        const Edge& eb = graph.edges()[b];
        return std::min(position[ea.src], position[ea.dst]) <
               std::min(position[eb.src], position[eb.dst]);
      });
      return ids;
    }
  }
  return ids;
}

}  // namespace sgp
