#ifndef SGP_STREAM_STREAM_H_
#define SGP_STREAM_STREAM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace sgp {

/// Order in which graph elements arrive at the partitioner (Section 3). The
/// streaming literature evaluates natural (as-generated), random, BFS and
/// DFS orders; greedy vertex-cut is famously sensitive to BFS order
/// (Section 4.2.2), which the ablation benchmarks reproduce.
enum class StreamOrder {
  kNatural,
  kRandom,
  kBfs,
  kDfs,
};

/// Parses "natural" / "random" / "bfs" / "dfs".
StreamOrder ParseStreamOrder(std::string_view name);

/// Human-readable name of `order`.
std::string_view StreamOrderName(StreamOrder order);

/// Produces the sequence of vertex ids for a vertex stream: each element of
/// the stream is a vertex together with its full adjacency list
/// (Section 4.1.1); consumers read Neighbors(u) from the graph.
std::vector<VertexId> MakeVertexStream(const Graph& graph, StreamOrder order,
                                       uint64_t seed);

/// Produces the sequence of edge ids (indexes into graph.edges()) for an
/// edge stream (Section 4.2.2). BFS/DFS order edges by the traversal
/// position of their earlier-discovered endpoint.
std::vector<EdgeId> MakeEdgeStream(const Graph& graph, StreamOrder order,
                                   uint64_t seed);

}  // namespace sgp

#endif  // SGP_STREAM_STREAM_H_
