#include "advisor/advisor.h"

#include <gtest/gtest.h>
#include "graph/datasets.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"

namespace sgp {
namespace {

TEST(AdvisorTest, LatencyCriticalOnlineGetsHashing) {
  AdvisorQuery q;
  q.workload = WorkloadClass::kOnlineQueries;
  q.latency_critical = true;
  Recommendation r = Recommend(q);
  EXPECT_EQ(r.partitioner, "ECR");
}

TEST(AdvisorTest, OverloadedOnlineGetsHashing) {
  AdvisorQuery q;
  q.workload = WorkloadClass::kOnlineQueries;
  q.latency_critical = false;
  q.high_load = true;
  EXPECT_EQ(Recommend(q).partitioner, "ECR");
}

TEST(AdvisorTest, ThroughputOrientedOnlineGetsFennel) {
  AdvisorQuery q;
  q.workload = WorkloadClass::kOnlineQueries;
  q.latency_critical = false;
  q.high_load = false;
  EXPECT_EQ(Recommend(q).partitioner, "FNL");
}

TEST(AdvisorTest, AnalyticsBranchMatchesFigure9) {
  AdvisorQuery q;
  q.workload = WorkloadClass::kOfflineAnalytics;
  q.degree = DegreeDistribution::kLowDegree;
  EXPECT_EQ(Recommend(q).partitioner, "FNL");
  q.degree = DegreeDistribution::kHeavyTailed;
  EXPECT_EQ(Recommend(q).partitioner, "HG");
  q.degree = DegreeDistribution::kPowerLaw;
  EXPECT_EQ(Recommend(q).partitioner, "HDRF");
}

TEST(AdvisorTest, RecommendationsAreCreatable) {
  for (WorkloadClass wl :
       {WorkloadClass::kOfflineAnalytics, WorkloadClass::kOnlineQueries}) {
    for (DegreeDistribution d :
         {DegreeDistribution::kLowDegree, DegreeDistribution::kHeavyTailed,
          DegreeDistribution::kPowerLaw}) {
      for (bool latency : {false, true}) {
        AdvisorQuery q;
        q.workload = wl;
        q.degree = d;
        q.latency_critical = latency;
        Recommendation r = Recommend(q);
        EXPECT_NE(CreatePartitioner(r.partitioner), nullptr);
        EXPECT_FALSE(r.rationale.empty());
      }
    }
  }
}

TEST(AdvisorOutcomeTest, AnalyticsRecommendationsBeatHashOnReplication) {
  // The analytics branches rest on cut quality: on each branch's graph
  // the recommended algorithm must beat random placement of the same cut
  // model on replication factor.
  struct Case {
    const char* dataset;
    DegreeDistribution degree;
  };
  for (const Case& c : {Case{"usaroad", DegreeDistribution::kLowDegree},
                        Case{"twitter", DegreeDistribution::kHeavyTailed},
                        Case{"uk2007", DegreeDistribution::kPowerLaw}}) {
    Graph g = MakeDataset(c.dataset, 10);
    AdvisorQuery q;
    q.workload = WorkloadClass::kOfflineAnalytics;
    q.degree = c.degree;
    Recommendation rec = Recommend(q);
    PartitionConfig cfg;
    cfg.k = 16;
    PartitionMetrics recommended =
        ComputeMetrics(g, CreatePartitioner(rec.partitioner)->Run(g, cfg));
    PartitionMetrics random =
        ComputeMetrics(g, CreatePartitioner("VCR")->Run(g, cfg));
    EXPECT_LT(recommended.replication_factor, random.replication_factor)
        << c.dataset;
  }
}

TEST(AdvisorOutcomeTest, ClassifierFeedsTreeConsistently) {
  // classify → recommend must produce a creatable partitioner whose cut
  // model matches the recommendation for every dataset.
  for (const std::string& name : DatasetNames()) {
    Graph g = MakeDataset(name, 10);
    AdvisorQuery q;
    q.workload = WorkloadClass::kOfflineAnalytics;
    q.degree = ClassifyGraph(g);
    Recommendation rec = Recommend(q);
    auto partitioner = CreatePartitioner(rec.partitioner);
    EXPECT_EQ(partitioner->model(), rec.model) << name;
  }
}

TEST(ClassifyGraphTest, RoadNetworkIsLowDegree) {
  EXPECT_EQ(ClassifyGraph(MakeDataset("usaroad", 10)),
            DegreeDistribution::kLowDegree);
}

TEST(ClassifyGraphTest, WebGraphIsSkewed) {
  DegreeDistribution d = ClassifyGraph(MakeDataset("uk2007", 11));
  EXPECT_NE(d, DegreeDistribution::kLowDegree);
}

TEST(ClassifyGraphTest, SocialGraphIsSkewed) {
  DegreeDistribution d = ClassifyGraph(MakeDataset("twitter", 11));
  EXPECT_NE(d, DegreeDistribution::kLowDegree);
}

TEST(ClassifyGraphTest, EmptyGraphDefaultsLowDegree) {
  GraphBuilder b(4, false);
  Graph g = std::move(b).Finalize();
  EXPECT_EQ(ClassifyGraph(g), DegreeDistribution::kLowDegree);
}

}  // namespace
}  // namespace sgp
