// Randomized oracle test: GraphBuilder's de-duplication and adjacency
// semantics checked against a naive std::set-based reference over many
// random edge sequences.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>
#include "common/random.h"
#include "graph/graph.h"

namespace sgp {
namespace {

struct ReferenceGraph {
  std::set<std::pair<VertexId, VertexId>> edges;  // canonical form
  std::vector<std::set<VertexId>> neighbors;

  ReferenceGraph(VertexId n) : neighbors(n) {}

  void Add(VertexId u, VertexId v, bool directed) {
    if (u == v) return;
    auto key = directed || u <= v ? std::make_pair(u, v)
                                  : std::make_pair(v, u);
    edges.insert(key);
    neighbors[u].insert(v);
    neighbors[v].insert(u);
  }
};

class BuilderOracleTest : public ::testing::TestWithParam<bool> {};

TEST_P(BuilderOracleTest, MatchesNaiveReferenceOnRandomSequences) {
  const bool directed = GetParam();
  Rng rng(directed ? 101 : 202);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId n = 2 + static_cast<VertexId>(rng.UniformInt(30));
    const int ops = static_cast<int>(rng.UniformInt(200));
    GraphBuilder builder(n, directed);
    ReferenceGraph ref(n);
    for (int i = 0; i < ops; ++i) {
      VertexId u = static_cast<VertexId>(rng.UniformInt(n));
      VertexId v = static_cast<VertexId>(rng.UniformInt(n));
      builder.AddEdge(u, v);
      ref.Add(u, v, directed);
    }
    Graph g = std::move(builder).Finalize();

    // Edge multiset matches (count + canonical membership).
    ASSERT_EQ(g.num_edges(), ref.edges.size()) << "trial " << trial;
    for (const Edge& e : g.edges()) {
      auto key = directed || e.src <= e.dst
                     ? std::make_pair(e.src, e.dst)
                     : std::make_pair(e.dst, e.src);
      ASSERT_TRUE(ref.edges.count(key)) << "trial " << trial;
    }
    // Undirected neighborhoods match exactly.
    for (VertexId u = 0; u < n; ++u) {
      auto nb = g.Neighbors(u);
      ASSERT_EQ(nb.size(), ref.neighbors[u].size())
          << "trial " << trial << " u=" << u;
      ASSERT_TRUE(std::equal(nb.begin(), nb.end(),
                             ref.neighbors[u].begin()));
    }
    // Directed graphs: out/in degree sums both equal the edge count.
    if (directed) {
      uint64_t out_sum = 0;
      uint64_t in_sum = 0;
      for (VertexId u = 0; u < n; ++u) {
        out_sum += g.OutDegree(u);
        in_sum += g.InDegree(u);
      }
      ASSERT_EQ(out_sum, g.num_edges());
      ASSERT_EQ(in_sum, g.num_edges());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Directedness, BuilderOracleTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "directed" : "undirected";
                         });

}  // namespace
}  // namespace sgp
