// Remaining common utilities: hashing and the table printer.
#include <set>
#include <sstream>

#include <gtest/gtest.h>
#include "common/hashing.h"
#include "common/table_printer.h"

namespace sgp {
namespace {

TEST(HashingTest, DeterministicAndDistinct) {
  EXPECT_EQ(HashU64(42), HashU64(42));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(HashU64(i));
  EXPECT_EQ(seen.size(), 10000u);  // no collisions on small consecutive ids
}

TEST(HashingTest, ConsecutiveInputsSpreadAcrossBuckets) {
  // hash mod k over consecutive ids must be near-uniform — this is what
  // the "hash partitioning is balanced" assumption rests on.
  std::vector<int> counts(8, 0);
  for (uint64_t i = 0; i < 8000; ++i) ++counts[HashU64(i) % 8];
  for (int c : counts) {
    EXPECT_GT(c, 900);
    EXPECT_LT(c, 1100);
  }
}

TEST(HashingTest, SeedChangesPlacement) {
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    same += HashU64Seeded(i, 1) % 16 == HashU64Seeded(i, 2) % 16;
  }
  // ~1/16 collisions expected, not ~1.
  EXPECT_LT(same, 150);
}

TEST(HashingTest, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "bbbb"});
  t.AddRow({"xxxxx", "y"});
  std::ostringstream out;
  t.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("a      bbbb"), std::string::npos);
  EXPECT_NE(s.find("xxxxx  y"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterTest, FormatCountSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(TablePrinterDeathTest, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "SGP_CHECK");
}

}  // namespace
}  // namespace sgp
