// Parameterized graph-database sweep: plan-level invariants for every
// (algorithm × k × query kind) combination.
#include <string>
#include <tuple>

#include <gtest/gtest.h>
#include "graph/datasets.h"
#include "graphdb/graphdb.h"
#include "partition/partitioner.h"

namespace sgp {
namespace {

using SweepParam = std::tuple<std::string, PartitionId, QueryKind>;

class DbSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static const Graph& TestGraph() {
    static const Graph* graph = new Graph(MakeDataset("ldbc", 9));
    return *graph;
  }
};

TEST_P(DbSweepTest, PlanInvariants) {
  const auto& [algo, k, kind] = GetParam();
  const Graph& g = TestGraph();
  PartitionConfig cfg;
  cfg.k = k;
  GraphDatabase db(g, CreatePartitioner(algo)->Run(g, cfg));
  const DbCostModel& cost = db.cost_model();

  for (VertexId start : {0u, 7u, 99u, 250u}) {
    Query q{kind, start, /*target=*/start == 0 ? 99u : 0u};
    QueryPlan plan = db.Plan(q);

    // The coordinator is the owner under the partition-aware router.
    ASSERT_EQ(plan.coordinator, db.Owner(start));

    // Remote messages come in request/response pairs, and bytes are only
    // charged when messages exist.
    ASSERT_EQ(plan.remote_messages % 2, 0u);
    if (plan.remote_messages == 0) {
      ASSERT_EQ(plan.network_bytes, 0u);
    } else {
      ASSERT_GE(plan.network_bytes,
                plan.remote_messages / 2 * cost.bytes_per_request);
    }

    // Reads are conserved across rounds.
    uint64_t round_reads = 0;
    for (const auto& round : plan.rounds) {
      ASSERT_FALSE(round.empty());
      for (const auto& task : round) {
        ASSERT_LT(task.worker, k);
        round_reads += task.reads;
      }
    }
    ASSERT_EQ(round_reads, plan.total_reads);

    // Kind-specific read accounting.
    const uint64_t deg = g.Degree(start);
    if (kind == QueryKind::kOneHop) {
      ASSERT_EQ(plan.total_reads, 1 + deg);
      ASSERT_EQ(plan.result_size, deg);
    }
    if (kind == QueryKind::kTwoHop) {
      // 1 start read + neighbor reads + distinct 2-hop records.
      ASSERT_EQ(plan.total_reads, 1 + deg + plan.result_size);
    }
    // With one partition there is never remote traffic.
    if (k == 1) {
      ASSERT_EQ(plan.remote_messages, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsClustersKinds, DbSweepTest,
    ::testing::Combine(::testing::Values("ECR", "LDG", "FNL", "MTS"),
                       ::testing::Values(1u, 4u, 16u),
                       ::testing::Values(QueryKind::kOneHop,
                                         QueryKind::kTwoHop,
                                         QueryKind::kShortestPath)),
    [](const auto& info) {
      std::string kind =
          std::get<2>(info.param) == QueryKind::kOneHop      ? "onehop"
          : std::get<2>(info.param) == QueryKind::kTwoHop    ? "twohop"
                                                             : "sp";
      return std::get<0>(info.param) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_" + kind;
    });

}  // namespace
}  // namespace sgp
