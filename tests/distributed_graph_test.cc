#include "engine/distributed_graph.h"

#include <set>

#include <gtest/gtest.h>
#include "graph/datasets.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

TEST(DistributedGraphTest, MasterIsFirstReplica) {
  Graph g = testing::MakeCycle(6);
  Partitioning p =
      testing::MakeEdgeCutPartitioning(g, 3, {0, 0, 1, 1, 2, 2});
  DistributedGraph dg(g, p);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(dg.Replicas(v)[0].partition, dg.Master(v));
  }
}

TEST(DistributedGraphTest, ReplicationFactorMatchesMetrics) {
  Graph g = testing::MakeFigure10Graph();
  Partitioning p =
      testing::MakeVertexCutPartitioning(g, 3, {0, 1, 2, 0, 1, 2, 0, 1, 2});
  DistributedGraph dg(g, p);
  PartitionMetrics m = ComputeMetrics(g, p);
  EXPECT_DOUBLE_EQ(dg.replication_factor(), m.replication_factor);
}

TEST(DistributedGraphTest, EdgeCountsPerReplicaDirected) {
  // 0→1 on partition 0, 1→2 on partition 1.
  Graph g = testing::MakeGraph(3, /*directed=*/true, {{0, 1}, {1, 2}});
  Partitioning p = testing::MakeVertexCutPartitioning(g, 2, {0, 1});
  DistributedGraph dg(g, p);
  // Vertex 1: in-edge on partition 0, out-edge on partition 1.
  bool saw_p0 = false;
  bool saw_p1 = false;
  for (const auto& r : dg.Replicas(1)) {
    if (r.partition == 0) {
      saw_p0 = true;
      EXPECT_EQ(r.in_edges, 1u);
      EXPECT_EQ(r.out_edges, 0u);
    }
    if (r.partition == 1) {
      saw_p1 = true;
      EXPECT_EQ(r.in_edges, 0u);
      EXPECT_EQ(r.out_edges, 1u);
    }
  }
  EXPECT_TRUE(saw_p0);
  EXPECT_TRUE(saw_p1);
}

TEST(DistributedGraphTest, UndirectedEdgesCountBothWays) {
  Graph g = testing::MakePath(2);
  Partitioning p = testing::MakeVertexCutPartitioning(g, 2, {1});
  DistributedGraph dg(g, p);
  for (VertexId v : {0u, 1u}) {
    for (const auto& r : dg.Replicas(v)) {
      if (r.partition == 1) {
        EXPECT_EQ(r.in_edges, 1u);
        EXPECT_EQ(r.out_edges, 1u);
      }
    }
  }
}

// Regression for the two-pass counting build: the "master first" contract
// must hold for every vertex under real partitioner output — including
// masters that hold no incident edge — and a vertex must never have two
// replicas on the same partition. Edge counts must add back up to the
// direction-resolved degrees.
TEST(DistributedGraphTest, MasterIsAlwaysFrontReplica) {
  for (const char* dataset : {"twitter", "usaroad"}) {
    Graph g = MakeDataset(dataset, 8);
    for (const char* algo : {"HDRF", "LDG", "VCR"}) {
      PartitionConfig cfg;
      cfg.k = 8;
      Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
      DistributedGraph dg(g, p);
      uint64_t total_replicas = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        auto replicas = dg.Replicas(v);
        ASSERT_FALSE(replicas.empty()) << algo << " v=" << v;
        EXPECT_EQ(replicas.front().partition, dg.Master(v))
            << algo << " v=" << v;
        std::set<PartitionId> partitions;
        uint64_t in_sum = 0;
        uint64_t out_sum = 0;
        for (const auto& r : replicas) {
          EXPECT_TRUE(partitions.insert(r.partition).second)
              << algo << " v=" << v << " duplicate partition " << r.partition;
          in_sum += r.in_edges;
          out_sum += r.out_edges;
        }
        if (g.directed()) {
          EXPECT_EQ(in_sum, g.InDegree(v)) << algo << " v=" << v;
          EXPECT_EQ(out_sum, g.OutDegree(v)) << algo << " v=" << v;
        } else {
          // Undirected: every incident edge counts in both directions, and
          // the graph's canonical edge list stores each edge once.
          EXPECT_EQ(in_sum, out_sum) << algo << " v=" << v;
        }
        total_replicas += replicas.size();
      }
      EXPECT_EQ(dg.num_replicas(), total_replicas);
    }
  }
}

TEST(DistributedGraphTest, MasterWithoutEdgesGetsEmptyFrontReplica) {
  // Vertex 2's master is partition 1, but both its incident edges live on
  // partition 0: the build must materialize an edgeless master replica and
  // still put it first.
  Graph g = testing::MakeGraph(3, /*directed=*/true, {{0, 2}, {2, 1}});
  Partitioning p;
  p.model = CutModel::kVertexCut;
  p.k = 2;
  p.vertex_to_partition = {0, 0, 1};
  p.edge_to_partition = {0, 0};
  DistributedGraph dg(g, p);
  auto replicas = dg.Replicas(2);
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0].partition, 1u);
  EXPECT_EQ(replicas[0].in_edges, 0u);
  EXPECT_EQ(replicas[0].out_edges, 0u);
  EXPECT_EQ(replicas[1].partition, 0u);
  EXPECT_EQ(replicas[1].in_edges, 1u);
  EXPECT_EQ(replicas[1].out_edges, 1u);
}

TEST(DistributedGraphTest, EdgesPerPartitionSumsToTotal) {
  Graph g = testing::MakeFigure10Graph();
  Partitioning p =
      testing::MakeVertexCutPartitioning(g, 3, {0, 0, 0, 1, 1, 1, 2, 2, 2});
  DistributedGraph dg(g, p);
  uint64_t total = 0;
  for (uint64_t c : dg.edges_per_partition()) total += c;
  EXPECT_EQ(total, g.num_edges());
}

TEST(DistributedGraphTest, EdgeCutPlacementHasNoOutEdgeMirrors) {
  // Appendix B: grouping out-edges by source means no mirror ever holds
  // out-edges — the structural reason edge-cut PageRank needs no
  // master→mirror synchronization.
  Graph g = testing::MakeFigure10Graph();
  Partitioning p =
      testing::MakeEdgeCutPartitioning(g, 3, {0, 1, 2, 0, 1, 2});
  DistributedGraph dg(g, p);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& r : dg.Replicas(v)) {
      if (r.partition != dg.Master(v)) {
        EXPECT_EQ(r.out_edges, 0u) << "v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace sgp
