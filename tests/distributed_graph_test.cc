#include "engine/distributed_graph.h"

#include <gtest/gtest.h>
#include "partition/metrics.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

TEST(DistributedGraphTest, MasterIsFirstReplica) {
  Graph g = testing::MakeCycle(6);
  Partitioning p =
      testing::MakeEdgeCutPartitioning(g, 3, {0, 0, 1, 1, 2, 2});
  DistributedGraph dg(g, p);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(dg.Replicas(v)[0].partition, dg.Master(v));
  }
}

TEST(DistributedGraphTest, ReplicationFactorMatchesMetrics) {
  Graph g = testing::MakeFigure10Graph();
  Partitioning p =
      testing::MakeVertexCutPartitioning(g, 3, {0, 1, 2, 0, 1, 2, 0, 1, 2});
  DistributedGraph dg(g, p);
  PartitionMetrics m = ComputeMetrics(g, p);
  EXPECT_DOUBLE_EQ(dg.replication_factor(), m.replication_factor);
}

TEST(DistributedGraphTest, EdgeCountsPerReplicaDirected) {
  // 0→1 on partition 0, 1→2 on partition 1.
  Graph g = testing::MakeGraph(3, /*directed=*/true, {{0, 1}, {1, 2}});
  Partitioning p = testing::MakeVertexCutPartitioning(g, 2, {0, 1});
  DistributedGraph dg(g, p);
  // Vertex 1: in-edge on partition 0, out-edge on partition 1.
  bool saw_p0 = false;
  bool saw_p1 = false;
  for (const auto& r : dg.Replicas(1)) {
    if (r.partition == 0) {
      saw_p0 = true;
      EXPECT_EQ(r.in_edges, 1u);
      EXPECT_EQ(r.out_edges, 0u);
    }
    if (r.partition == 1) {
      saw_p1 = true;
      EXPECT_EQ(r.in_edges, 0u);
      EXPECT_EQ(r.out_edges, 1u);
    }
  }
  EXPECT_TRUE(saw_p0);
  EXPECT_TRUE(saw_p1);
}

TEST(DistributedGraphTest, UndirectedEdgesCountBothWays) {
  Graph g = testing::MakePath(2);
  Partitioning p = testing::MakeVertexCutPartitioning(g, 2, {1});
  DistributedGraph dg(g, p);
  for (VertexId v : {0u, 1u}) {
    for (const auto& r : dg.Replicas(v)) {
      if (r.partition == 1) {
        EXPECT_EQ(r.in_edges, 1u);
        EXPECT_EQ(r.out_edges, 1u);
      }
    }
  }
}

TEST(DistributedGraphTest, EdgesPerPartitionSumsToTotal) {
  Graph g = testing::MakeFigure10Graph();
  Partitioning p =
      testing::MakeVertexCutPartitioning(g, 3, {0, 0, 0, 1, 1, 1, 2, 2, 2});
  DistributedGraph dg(g, p);
  uint64_t total = 0;
  for (uint64_t c : dg.edges_per_partition()) total += c;
  EXPECT_EQ(total, g.num_edges());
}

TEST(DistributedGraphTest, EdgeCutPlacementHasNoOutEdgeMirrors) {
  // Appendix B: grouping out-edges by source means no mirror ever holds
  // out-edges — the structural reason edge-cut PageRank needs no
  // master→mirror synchronization.
  Graph g = testing::MakeFigure10Graph();
  Partitioning p =
      testing::MakeEdgeCutPartitioning(g, 3, {0, 1, 2, 0, 1, 2});
  DistributedGraph dg(g, p);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& r : dg.Replicas(v)) {
      if (r.partition != dg.Master(v)) {
        EXPECT_EQ(r.out_edges, 0u) << "v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace sgp
