// Dynamic re-partitioning (Hermes/Leopard family) and the edge-stream
// edge-cut greedy (CST/IOGP family).
#include <gtest/gtest.h>
#include "graph/datasets.h"
#include "partition/dynamic/dynamic_partitioner.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

TEST(DynamicPartitionerTest, PlacesEveryFedVertex) {
  DynamicOptions opts;
  opts.k = 4;
  DynamicPartitioner dp(opts);
  Graph g = MakeDataset("ldbc", 9);
  for (const Edge& e : g.edges()) dp.AddEdge(e.src, e.dst);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.Degree(v) > 0) {
      ASSERT_LT(dp.PartitionOf(v), opts.k);
    }
  }
  uint64_t total = 0;
  for (uint64_t s : dp.partition_sizes()) total += s;
  EXPECT_GT(total, 0u);
}

TEST(DynamicPartitionerTest, SnapshotIsValidPartitioning) {
  DynamicOptions opts;
  opts.k = 8;
  DynamicPartitioner dp(opts);
  Graph g = MakeDataset("ldbc", 9);
  for (const Edge& e : g.edges()) dp.AddEdge(e.src, e.dst);
  Partitioning p = dp.Snapshot(g);
  ValidatePartitioning(g, p);
}

TEST(DynamicPartitionerTest, BeatsHashOnCommunityGraph) {
  Graph g = MakeDataset("ldbc", 11);
  DynamicOptions opts;
  opts.k = 8;
  DynamicPartitioner dp(opts);
  for (const Edge& e : g.edges()) dp.AddEdge(e.src, e.dst);
  PartitionMetrics dynamic = ComputeMetrics(g, dp.Snapshot(g));
  PartitionConfig cfg;
  cfg.k = 8;
  PartitionMetrics hash =
      ComputeMetrics(g, CreatePartitioner("ECR")->Run(g, cfg));
  EXPECT_LT(dynamic.edge_cut_ratio, hash.edge_cut_ratio * 0.9);
}

TEST(DynamicPartitionerTest, MaintainsBalanceWhileGrowing) {
  Graph g = MakeDataset("twitter", 10);
  DynamicOptions opts;
  opts.k = 8;
  opts.balance_slack = 1.2;
  DynamicPartitioner dp(opts);
  for (const Edge& e : g.edges()) dp.AddEdge(e.src, e.dst);
  PartitionMetrics m = ComputeMetrics(g, dp.Snapshot(g));
  EXPECT_LE(m.vertex_imbalance, 1.35);
}

TEST(DynamicPartitionerTest, BootstrapPreservesAssignment) {
  Graph g = MakeDataset("usaroad", 9);
  PartitionConfig cfg;
  cfg.k = 4;
  Partitioning initial = CreatePartitioner("LDG")->Run(g, cfg);
  DynamicOptions opts;
  opts.k = 4;
  DynamicPartitioner dp(opts);
  dp.Bootstrap(g, initial);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(dp.PartitionOf(v), initial.vertex_to_partition[v]);
  }
}

TEST(DynamicPartitionerTest, MigrationsRepairBadBootstrap) {
  // Bootstrap two cliques on the wrong sides, then feed the bridge-free
  // remaining edges: migrations must reduce the cut.
  GraphBuilder b(16, /*directed=*/false);
  std::vector<Edge> first_half;
  std::vector<Edge> second_half;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      ((u + v) % 2 == 0 ? first_half : second_half).push_back({u, v});
    }
  }
  for (VertexId u = 8; u < 16; ++u) {
    for (VertexId v = u + 1; v < 16; ++v) {
      ((u + v) % 2 == 0 ? first_half : second_half).push_back({u, v});
    }
  }
  for (const Edge& e : first_half) b.AddEdge(e.src, e.dst);
  Graph half = std::move(b).Finalize();
  // Alternating (bad) bootstrap assignment.
  std::vector<PartitionId> bad(16);
  for (VertexId v = 0; v < 16; ++v) bad[v] = v % 2;
  Partitioning initial = testing::MakeEdgeCutPartitioning(half, 2, bad);

  DynamicOptions opts;
  opts.k = 2;
  opts.migration_gain = 1.0;  // eager migration
  opts.balance_slack = 1.5;   // room to move
  DynamicPartitioner dp(opts);
  dp.Bootstrap(half, initial);
  for (const Edge& e : second_half) dp.AddEdge(e.src, e.dst);
  EXPECT_GT(dp.total_migrations(), 0u);
}

TEST(DynamicPartitionerTest, GrowsVertexSpaceOnDemand) {
  DynamicOptions opts;
  opts.k = 2;
  DynamicPartitioner dp(opts);
  dp.AddEdge(0, 1);
  dp.AddEdge(1000, 1001);
  EXPECT_EQ(dp.num_vertices(), 1002u);
  EXPECT_LT(dp.PartitionOf(1000), 2u);
  EXPECT_EQ(dp.PartitionOf(500), kInvalidPartition);
}

TEST(DynamicPartitionerTest, SplitPartitionMovesHalfToFreshPartition) {
  Graph g = MakeDataset("ldbc", 9);
  PartitionConfig pcfg;
  pcfg.k = 4;
  DynamicOptions opts;
  opts.k = 4;
  DynamicPartitioner dp(opts);
  dp.Bootstrap(g, CreatePartitioner("LDG")->Run(g, pcfg));
  const uint64_t before = dp.partition_sizes()[2];
  ASSERT_GT(before, 1u);
  SplitReport report = dp.SplitPartition(2);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.new_partition, 4u);
  EXPECT_EQ(report.moved_vertices, before / 2);
  EXPECT_GT(report.migration_bytes, 0u);
  EXPECT_EQ(report.migration_bytes, dp.total_migration_bytes());
  EXPECT_EQ(dp.k(), 5u);
  EXPECT_EQ(dp.alive_k(), 5u);
  EXPECT_EQ(dp.partition_sizes()[4], before / 2);
  EXPECT_EQ(dp.partition_sizes()[2], before - before / 2);
  // The snapshot stays a valid partitioning over the grown id space.
  ValidatePartitioning(g, dp.Snapshot(g));
}

TEST(DynamicPartitionerTest, SplitGuardsMatchDrainGuards) {
  Graph g = MakeDataset("ldbc", 9);
  PartitionConfig pcfg;
  pcfg.k = 4;
  DynamicOptions opts;
  opts.k = 4;
  DynamicPartitioner dp(opts);
  dp.Bootstrap(g, CreatePartitioner("LDG")->Run(g, pcfg));
  EXPECT_EQ(dp.SplitPartition(7).status, ReshapeStatus::kInvalidPartition);
  ASSERT_TRUE(dp.MergePartition(1).ok());
  EXPECT_EQ(dp.SplitPartition(1).status, ReshapeStatus::kAlreadyDisabled);
  EXPECT_EQ(dp.k(), 4u);  // failed reshapes never allocate partitions
}

TEST(DynamicPartitionerTest, MergeThenSplitRoundTripKeepsAllVertices) {
  Graph g = MakeDataset("ldbc", 9);
  PartitionConfig pcfg;
  pcfg.k = 4;
  DynamicOptions opts;
  opts.k = 4;
  DynamicPartitioner dp(opts);
  dp.Bootstrap(g, CreatePartitioner("LDG")->Run(g, pcfg));
  DrainReport merged = dp.MergePartition(3);
  ASSERT_TRUE(merged.ok());
  SplitReport split = dp.SplitPartition(0);
  ASSERT_TRUE(split.ok());
  // Migration bytes accumulate across reshapes under one cost model.
  EXPECT_EQ(dp.total_migration_bytes(),
            merged.migration_bytes + split.migration_bytes);
  uint64_t total = 0;
  for (uint64_t s : dp.partition_sizes()) total += s;
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_EQ(dp.partition_sizes()[3], 0u);
}

TEST(EdgeStreamGreedyTest, ValidAndBalanced) {
  Graph g = MakeDataset("ldbc", 10);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning p = CreatePartitioner("ESG")->Run(g, cfg);
  ValidatePartitioning(g, p);
  PartitionMetrics m = ComputeMetrics(g, p);
  EXPECT_LE(m.vertex_imbalance, 1.25);
}

TEST(EdgeStreamGreedyTest, BetterThanHashWorseThanVertexStream) {
  // The Section 4.1.2 claim: edge-stream edge-cut beats hashing but
  // cannot reach vertex-stream (LDG) quality because adjacency is never
  // complete at decision time.
  Graph g = MakeDataset("ldbc", 11);
  PartitionConfig cfg;
  cfg.k = 8;
  double esg = ComputeMetrics(g, CreatePartitioner("ESG")->Run(g, cfg))
                   .edge_cut_ratio;
  double ecr = ComputeMetrics(g, CreatePartitioner("ECR")->Run(g, cfg))
                   .edge_cut_ratio;
  double ldg = ComputeMetrics(g, CreatePartitioner("LDG")->Run(g, cfg))
                   .edge_cut_ratio;
  EXPECT_LT(esg, ecr);
  EXPECT_GT(esg, ldg);
}

}  // namespace
}  // namespace sgp
