// Edge cases and failure injection across the whole stack: empty graphs,
// single vertices, k larger than n, isolated vertices, unreachable
// targets, degenerate configurations.
#include <limits>

#include <gtest/gtest.h>
#include "engine/engine.h"
#include "engine/programs.h"
#include "graph/datasets.h"
#include "graphdb/event_sim.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

Graph EmptyGraph(VertexId n = 0) {
  GraphBuilder b(n, /*directed=*/false);
  return std::move(b).Finalize();
}

TEST(EdgeCaseTest, PartitionEmptyGraph) {
  Graph g = EmptyGraph();
  for (const std::string& algo : PartitionerNames()) {
    PartitionConfig cfg;
    cfg.k = 4;
    Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
    ValidatePartitioning(g, p);
    EXPECT_TRUE(p.vertex_to_partition.empty()) << algo;
  }
}

TEST(EdgeCaseTest, PartitionEdgelessVertices) {
  Graph g = EmptyGraph(10);
  for (const std::string& algo : PartitionerNames()) {
    PartitionConfig cfg;
    cfg.k = 4;
    Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
    ValidatePartitioning(g, p);
    PartitionMetrics m = ComputeMetrics(g, p);
    EXPECT_DOUBLE_EQ(m.replication_factor, 1.0) << algo;
    EXPECT_DOUBLE_EQ(m.edge_cut_ratio, 0.0) << algo;
  }
}

TEST(EdgeCaseTest, KLargerThanN) {
  Graph g = testing::MakePath(4);
  for (const std::string& algo : PartitionerNames()) {
    PartitionConfig cfg;
    cfg.k = 16;
    Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
    ValidatePartitioning(g, p);
  }
}

TEST(EdgeCaseTest, KEqualsOneIsAlwaysPerfect) {
  Graph g = MakeDataset("ldbc", 8);
  for (const std::string& algo : PartitionerNames()) {
    PartitionConfig cfg;
    cfg.k = 1;
    PartitionMetrics m =
        ComputeMetrics(g, CreatePartitioner(algo)->Run(g, cfg));
    EXPECT_DOUBLE_EQ(m.edge_cut_ratio, 0.0) << algo;
    EXPECT_DOUBLE_EQ(m.replication_factor, 1.0) << algo;
  }
}

TEST(EdgeCaseTest, EngineOnEmptyGraph) {
  Graph g = EmptyGraph();
  PartitionConfig cfg;
  cfg.k = 2;
  Partitioning p = CreatePartitioner("ECR")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats stats = engine.Run(WccProgram());
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_TRUE(stats.values.empty());
}

TEST(EdgeCaseTest, EngineSingleVertex) {
  Graph g = EmptyGraph(1);
  PartitionConfig cfg;
  cfg.k = 2;
  Partitioning p = CreatePartitioner("ECR")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats pr = engine.Run(PageRankProgram(5));
  EXPECT_DOUBLE_EQ(pr.values[0], 0.15);
  EngineStats sssp = engine.Run(SsspProgram(0));
  EXPECT_DOUBLE_EQ(sssp.values[0], 0.0);
}

TEST(EdgeCaseTest, EngineDisconnectedGraph) {
  Graph g = testing::MakeGraph(6, /*directed=*/false,
                               {{0, 1}, {1, 2}, {3, 4}});
  PartitionConfig cfg;
  cfg.k = 3;
  Partitioning p = CreatePartitioner("LDG")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats sssp = engine.Run(SsspProgram(0));
  EXPECT_EQ(sssp.values[2], 2.0);
  EXPECT_EQ(sssp.values[3], std::numeric_limits<double>::infinity());
  EXPECT_EQ(sssp.values[5], std::numeric_limits<double>::infinity());
  EngineStats wcc = engine.Run(WccProgram());
  EXPECT_EQ(wcc.values[4], 3.0);
  EXPECT_EQ(wcc.values[5], 5.0);
}

TEST(EdgeCaseTest, DatabaseQueryOnIsolatedVertex) {
  Graph g = testing::MakeGraph(4, /*directed=*/false, {{0, 1}});
  PartitionConfig cfg;
  cfg.k = 2;
  GraphDatabase db(g, CreatePartitioner("ECR")->Run(g, cfg));
  QueryPlan plan = db.Plan({QueryKind::kOneHop, 3, 0});
  EXPECT_EQ(plan.result_size, 0u);
  EXPECT_EQ(plan.total_reads, 1u);  // still reads the (empty) adjacency
}

TEST(EdgeCaseTest, ShortestPathUnreachableTerminates) {
  Graph g = testing::MakeGraph(5, /*directed=*/false, {{0, 1}, {2, 3}});
  PartitionConfig cfg;
  cfg.k = 2;
  GraphDatabase db(g, CreatePartitioner("ECR")->Run(g, cfg));
  QueryPlan plan = db.Plan({QueryKind::kShortestPath, 0, 3});
  EXPECT_EQ(plan.result_size, 0u);  // unreachable
}

TEST(EdgeCaseTest, SimWithOneClientOneWorker) {
  Graph g = MakeDataset("ldbc", 8);
  PartitionConfig cfg;
  cfg.k = 1;
  GraphDatabase db(g, CreatePartitioner("ECR")->Run(g, cfg));
  Workload w(g, {});
  SimConfig sim;
  sim.clients = 1;
  sim.num_queries = 100;
  SimResult r = SimulateClosedLoop(db, w, sim);
  EXPECT_EQ(r.completed, 90u);
  EXPECT_GT(r.throughput_qps, 0.0);
}

TEST(EdgeCaseDeathTest, PartitionerRejectsUnknownName) {
  EXPECT_DEATH(CreatePartitioner("NOPE"), "SGP_CHECK");
}

TEST(EdgeCaseDeathTest, BuilderRejectsOutOfRangeVertex) {
  GraphBuilder b(2, /*directed=*/false);
  EXPECT_DEATH(b.AddEdge(0, 5), "SGP_CHECK");
}

TEST(EdgeCaseDeathTest, DatasetRejectsUnknownName) {
  EXPECT_DEATH(MakeDataset("nope", 10), "SGP_CHECK");
}

TEST(EdgeCaseTest, MetricsOnSelfContainedPartition) {
  // All vertices and edges on one partition of many.
  Graph g = testing::MakeCycle(6);
  Partitioning p = testing::MakeEdgeCutPartitioning(
      g, 4, std::vector<PartitionId>(6, 2));
  PartitionMetrics m = ComputeMetrics(g, p);
  EXPECT_DOUBLE_EQ(m.edge_cut_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.replication_factor, 1.0);
  EXPECT_DOUBLE_EQ(m.vertex_imbalance, 4.0);  // max/avg with 3 empty parts
}

}  // namespace
}  // namespace sgp
