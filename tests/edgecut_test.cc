#include <gtest/gtest.h>
#include "graph/datasets.h"
#include "graph/generators.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

PartitionMetrics RunAlgo(const Graph& g, const std::string& name,
                         PartitionId k, uint64_t seed = 42) {
  auto partitioner = CreatePartitioner(name);
  PartitionConfig cfg;
  cfg.k = k;
  cfg.seed = seed;
  Partitioning p = partitioner->Run(g, cfg);
  ValidatePartitioning(g, p);
  return ComputeMetrics(g, p);
}

TEST(HashEdgeCutTest, PerfectlyDeterministicPerSeed) {
  Graph g = ErdosRenyi(500, 2000, 1);
  auto partitioner = CreatePartitioner("ECR");
  PartitionConfig a;
  a.k = 4;
  a.seed = 1;
  PartitionConfig b = a;
  b.seed = 2;
  EXPECT_EQ(partitioner->Run(g, a).vertex_to_partition,
            partitioner->Run(g, a).vertex_to_partition);
  EXPECT_NE(partitioner->Run(g, a).vertex_to_partition,
            partitioner->Run(g, b).vertex_to_partition);
}

TEST(LdgTest, GroupsCommunitiesTogether) {
  // Two cliques joined by a single bridge: LDG with k=2 should cut only
  // the bridge (or very near that).
  GraphBuilder b(12, /*directed=*/false);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  for (VertexId u = 6; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(0, 6);
  Graph g = std::move(b).Finalize();
  PartitionMetrics m = RunAlgo(g, "LDG", 2);
  EXPECT_LE(m.edge_cut_ratio, 3.0 / 31.0);
  EXPECT_DOUBLE_EQ(m.vertex_imbalance, 1.0);
}

TEST(LdgTest, StrictBalanceOnCommunityGraph) {
  Graph g = MakeDataset("ldbc", 10);
  PartitionMetrics m = RunAlgo(g, "LDG", 8);
  // LDG's multiplicative penalty enforces the hard capacity β·n/k.
  EXPECT_LE(m.vertex_imbalance, 1.06);
}

TEST(LdgTest, BeatsHashOnCommunityGraph) {
  Graph g = MakeDataset("ldbc", 11);
  PartitionMetrics hash = RunAlgo(g, "ECR", 8);
  PartitionMetrics ldg = RunAlgo(g, "LDG", 8);
  EXPECT_LT(ldg.edge_cut_ratio, hash.edge_cut_ratio * 0.8);
}

TEST(FennelTest, BeatsHashOnCommunityGraph) {
  Graph g = MakeDataset("ldbc", 11);
  PartitionMetrics hash = RunAlgo(g, "ECR", 8);
  PartitionMetrics fnl = RunAlgo(g, "FNL", 8);
  EXPECT_LT(fnl.edge_cut_ratio, hash.edge_cut_ratio * 0.8);
}

TEST(FennelTest, RespectsHardCapacity) {
  Graph g = MakeDataset("twitter", 10);
  auto partitioner = CreatePartitioner("FNL");
  PartitionConfig cfg;
  cfg.k = 8;
  cfg.balance_slack = 1.1;
  Partitioning p = partitioner->Run(g, cfg);
  PartitionMetrics m = ComputeMetrics(g, p);
  EXPECT_LE(m.vertex_imbalance, 1.11);
}

TEST(FennelTest, AlphaOverrideChangesResult) {
  Graph g = MakeDataset("ldbc", 10);
  auto partitioner = CreatePartitioner("FNL");
  PartitionConfig a;
  a.k = 4;
  PartitionConfig b = a;
  b.fennel_alpha = 1e-9;  // essentially no load penalty
  Partitioning pa = partitioner->Run(g, a);
  Partitioning pb = partitioner->Run(g, b);
  EXPECT_NE(pa.vertex_to_partition, pb.vertex_to_partition);
}

TEST(RestreamingTest, ImprovesCutOverSinglePass) {
  Graph g = MakeDataset("ldbc", 11);
  PartitionMetrics single = RunAlgo(g, "LDG", 8);
  PartitionMetrics restreamed = RunAlgo(g, "RLDG", 8);
  EXPECT_LE(restreamed.edge_cut_ratio, single.edge_cut_ratio + 1e-9);
}

TEST(RestreamingTest, FennelVariantImprovesToo) {
  Graph g = MakeDataset("ldbc", 11);
  PartitionMetrics single = RunAlgo(g, "FNL", 8);
  PartitionMetrics restreamed = RunAlgo(g, "RFNL", 8);
  EXPECT_LE(restreamed.edge_cut_ratio, single.edge_cut_ratio + 0.01);
}

TEST(RestreamingTest, OnePassEqualsBaseAlgorithm) {
  Graph g = MakeDataset("usaroad", 10);
  auto base = CreatePartitioner("LDG");
  auto restream = CreatePartitioner("RLDG");
  PartitionConfig cfg;
  cfg.k = 4;
  cfg.restream_passes = 1;
  EXPECT_EQ(base->Run(g, cfg).vertex_to_partition,
            restream->Run(g, cfg).vertex_to_partition);
}

TEST(EdgeCutModelTest, DerivedEdgePlacementFollowsVertices) {
  Graph g = MakeDataset("usaroad", 8);
  auto partitioner = CreatePartitioner("LDG");
  PartitionConfig cfg;
  cfg.k = 4;
  Partitioning p = partitioner->Run(g, cfg);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(p.edge_to_partition[e],
              p.vertex_to_partition[g.edges()[e].src]);
  }
}

TEST(SynopsisTest, StreamingUsesFractionOfOfflineMemory) {
  // Section 4.1.1: LDG/FENNEL "only use a fraction of memory" compared to
  // METIS, and are roughly an order of magnitude faster.
  Graph g = MakeDataset("twitter", 12);
  PartitionConfig cfg;
  cfg.k = 32;
  Partitioning ldg = CreatePartitioner("LDG")->Run(g, cfg);
  Partitioning fnl = CreatePartitioner("FNL")->Run(g, cfg);
  Partitioning mts = CreatePartitioner("MTS")->Run(g, cfg);
  EXPECT_GT(ldg.state_bytes, 0u);
  EXPECT_LT(ldg.state_bytes * 5, mts.state_bytes);
  EXPECT_LT(fnl.state_bytes * 5, mts.state_bytes);
  EXPECT_LT(ldg.partitioning_seconds, mts.partitioning_seconds);
}

TEST(EdgeCutStreamOrderTest, QualityIsOrderSensitiveButValid) {
  Graph g = MakeDataset("ldbc", 10);
  auto partitioner = CreatePartitioner("LDG");
  for (StreamOrder order : {StreamOrder::kNatural, StreamOrder::kRandom,
                            StreamOrder::kBfs, StreamOrder::kDfs}) {
    PartitionConfig cfg;
    cfg.k = 8;
    cfg.order = order;
    Partitioning p = partitioner->Run(g, cfg);
    ValidatePartitioning(g, p);
    PartitionMetrics m = ComputeMetrics(g, p);
    EXPECT_LE(m.vertex_imbalance, 1.06)
        << "order=" << StreamOrderName(order);
  }
}

}  // namespace
}  // namespace sgp
