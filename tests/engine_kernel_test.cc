// Kernel-equivalence suite: the compile-time-specialized superstep kernels
// (engine/kernel.h) must produce byte-identical EngineStats to the generic
// virtual-dispatch path for every program, graph kind, worker-speed
// profile, and fault configuration. GenericProgramView pins a program to
// the generic path, so the same AnalyticsEngine instance runs both kernels
// on the same distributed graph.
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>
#include "common/telemetry.h"
#include "engine/engine.h"
#include "engine/programs.h"
#include "graph/datasets.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

// Exact bit equality for doubles: distinguishes -0.0 from 0.0 and treats
// equal-bit infinities as equal — "byte-identical", not "approximately".
::testing::AssertionResult BitsEqual(const char* a_expr, const char* b_expr,
                                     double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ: " << a << " vs " << b;
}

void ExpectBitsEqual(const std::vector<double>& a,
                     const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_PRED_FORMAT2(BitsEqual, a[i], b[i]) << what << "[" << i << "]";
  }
}

void ExpectStatsByteIdentical(const EngineStats& s, const EngineStats& g) {
  EXPECT_EQ(s.iterations, g.iterations);
  EXPECT_EQ(s.gather_messages, g.gather_messages);
  EXPECT_EQ(s.sync_messages, g.sync_messages);
  EXPECT_EQ(s.total_network_bytes, g.total_network_bytes);
  ExpectBitsEqual(s.compute_seconds_per_worker, g.compute_seconds_per_worker,
                  "compute_seconds_per_worker");
  EXPECT_EQ(s.bytes_per_worker, g.bytes_per_worker);
  EXPECT_PRED_FORMAT2(BitsEqual, s.simulated_seconds, g.simulated_seconds);
  EXPECT_EQ(s.active_per_iteration, g.active_per_iteration);
  EXPECT_EQ(s.messages_per_iteration, g.messages_per_iteration);
  ExpectBitsEqual(s.values, g.values, "values");
  EXPECT_EQ(s.checkpoints, g.checkpoints);
  EXPECT_EQ(s.crashes_recovered, g.crashes_recovered);
  EXPECT_EQ(s.replayed_supersteps, g.replayed_supersteps);
  EXPECT_PRED_FORMAT2(BitsEqual, s.checkpoint_seconds, g.checkpoint_seconds);
  EXPECT_PRED_FORMAT2(BitsEqual, s.recovery_seconds, g.recovery_seconds);
}

std::unique_ptr<VertexProgram> MakeProgram(const std::string& name,
                                           const Graph& g) {
  if (name == "PageRank") return std::make_unique<PageRankProgram>(12);
  if (name == "WCC") return std::make_unique<WccProgram>();
  VertexId source = 0;
  while (g.Degree(source) == 0) ++source;
  return std::make_unique<SsspProgram>(source);
}

// program × dataset × partitioner × heterogeneous-speeds × faults.
using EquivParam = std::tuple<std::string, std::string, std::string, bool, bool>;

class KernelEquivalenceTest : public ::testing::TestWithParam<EquivParam> {};

TEST_P(KernelEquivalenceTest, SpecializedMatchesGenericByteForByte) {
  const auto& [prog_name, dataset, algo, hetero, with_faults] = GetParam();
  Graph g = MakeDataset(dataset, 8);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning p = CreatePartitioner(algo)->Run(g, cfg);

  EngineCostModel cost;
  if (hetero) {
    // LeBeane-style heterogeneous cluster: speeds that do not divide
    // evenly, so precomputed per-replica divisions face awkward rounding.
    cost.worker_speeds = {1.0, 2.0, 0.5, 3.0, 1.0, 0.7, 1.3, 2.0};
  }
  EngineFaultConfig faults;
  if (with_faults) {
    faults.checkpoint_interval = 3;
    faults.crashes = {{1, 2}, {0, 5}};
  }

  AnalyticsEngine engine(g, p, cost);
  auto program = MakeProgram(prog_name, g);
  GenericProgramView generic(*program);

  EngineStats specialized = engine.Run(*program, faults);
  EngineStats fallback = engine.Run(generic, faults);
  ExpectStatsByteIdentical(specialized, fallback);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KernelEquivalenceTest,
    ::testing::Combine(::testing::Values("PageRank", "WCC", "SSSP"),
                       ::testing::Values("twitter", "usaroad"),
                       ::testing::Values("HDRF", "LDG"),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::get<2>(info.param) +
             (std::get<3>(info.param) ? "_hetero" : "_uniform") +
             (std::get<4>(info.param) ? "_faults" : "_nofaults");
    });

// Sender-side aggregation off (Bourse et al. comparison mode): per-edge
// gather messages flow through the precomputed message fields.
TEST(KernelEquivalenceTest, NoAggregationMatches) {
  Graph g = MakeDataset("twitter", 8);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning p = CreatePartitioner("VCR")->Run(g, cfg);
  EngineCostModel cost;
  cost.sender_side_aggregation = false;
  AnalyticsEngine engine(g, p, cost);
  PageRankProgram pr(8);
  GenericProgramView generic(pr);
  ExpectStatsByteIdentical(engine.Run(pr), engine.Run(generic));
}

TEST(KernelEquivalenceTest, SinglePartitionAndTinyGraphsMatch) {
  for (VertexId n : {0u, 1u, 2u, 5u}) {
    Graph g = testing::MakePath(n);
    Partitioning p = testing::MakeEdgeCutPartitioning(
        g, 1, std::vector<PartitionId>(g.num_vertices(), 0));
    AnalyticsEngine engine(g, p);
    PageRankProgram pr(5);
    GenericProgramView generic_pr(pr);
    ExpectStatsByteIdentical(engine.Run(pr), engine.Run(generic_pr));
    WccProgram wcc;
    GenericProgramView generic_wcc(wcc);
    ExpectStatsByteIdentical(engine.Run(wcc), engine.Run(generic_wcc));
  }
}

// --- Dispatch metering ---

uint64_t CounterValue(MetricsRegistry& reg, const char* name) {
  for (const MetricSample& m : reg.Snapshot()) {
    if (m.name == name) return m.counter_value;
  }
  return 0;
}

TEST(KernelDispatchTest, CountersMeterSpecializedAndGenericRuns) {
  Graph g = testing::MakeCycle(12);
  Partitioning p =
      testing::MakeEdgeCutPartitioning(
          g, 2, std::vector<PartitionId>(g.num_vertices(), 0));
  AnalyticsEngine engine(g, p);
  PageRankProgram pr(3);
  GenericProgramView generic(pr);

  MetricsRegistry local;
  ScopedMetricsRegistry scoped(&local);
  engine.Run(pr);       // specialized kernel
  engine.Run(generic);  // pinned to the virtual path
  EXPECT_EQ(CounterValue(local, "engine.kernel.specialized"), 1u);
  EXPECT_EQ(CounterValue(local, "engine.kernel.generic"), 1u);
}

// A program whose kind() lies about its dynamic type must fall back to the
// generic path (the dynamic_cast guard) instead of crashing or
// misinterpreting the object.
class ImpostorProgram final : public VertexProgram {
 public:
  std::string_view name() const override { return "Impostor"; }
  double InitialValue(VertexId, const Graph&) const override { return 1.0; }
  double GatherNeutral() const override { return 0.0; }
  double GatherContribution(VertexId, VertexId, double value_u,
                            const Graph&) const override {
    return value_u;
  }
  double Combine(double a, double b) const override { return a + b; }
  double Apply(VertexId, double, double gathered, uint64_t,
               const Graph&) const override {
    return 0.5 * gathered;
  }
  EdgeDirection gather_direction() const override {
    return EdgeDirection::kIn;
  }
  EdgeDirection scatter_direction() const override {
    return EdgeDirection::kOut;
  }
  bool all_active() const override { return true; }
  uint32_t max_iterations() const override { return 4; }
  ProgramKind kind() const override { return ProgramKind::kPageRank; }
};

TEST(KernelDispatchTest, MislabeledKindFallsBackToGenericPath) {
  Graph g = testing::MakeCycle(10);
  Partitioning p =
      testing::MakeEdgeCutPartitioning(
          g, 2, std::vector<PartitionId>(g.num_vertices(), 0));
  AnalyticsEngine engine(g, p);
  ImpostorProgram impostor;

  MetricsRegistry local;
  ScopedMetricsRegistry scoped(&local);
  EngineStats stats = engine.Run(impostor);
  EXPECT_EQ(stats.iterations, 4u);
  EXPECT_EQ(CounterValue(local, "engine.kernel.specialized"), 0u);
  EXPECT_EQ(CounterValue(local, "engine.kernel.generic"), 1u);
}

}  // namespace
}  // namespace sgp
