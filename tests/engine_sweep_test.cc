// Parameterized engine sweep: accounting invariants that must hold for
// every (workload × partitioner × cluster size) combination, beyond the
// value-correctness checks of engine_test.cc.
#include <string>
#include <tuple>

#include <gtest/gtest.h>
#include "engine/engine.h"
#include "engine/programs.h"
#include "graph/datasets.h"
#include "partition/partitioner.h"

namespace sgp {
namespace {

using SweepParam = std::tuple<std::string, std::string, PartitionId>;

class EngineSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static const Graph& TestGraph() {
    static const Graph* graph = new Graph(MakeDataset("ldbc", 9));
    return *graph;
  }
};

TEST_P(EngineSweepTest, AccountingInvariants) {
  const auto& [workload, algo, k] = GetParam();
  const Graph& g = TestGraph();
  PartitionConfig cfg;
  cfg.k = k;
  Partitioning p = CreatePartitioner(algo)->Run(g, cfg);
  AnalyticsEngine engine(g, p);

  EngineStats stats;
  if (workload == "pagerank") {
    stats = engine.Run(PageRankProgram(5));
  } else if (workload == "wcc") {
    stats = engine.Run(WccProgram());
  } else {
    VertexId source = 0;
    while (g.Degree(source) == 0) ++source;
    stats = engine.Run(SsspProgram(source));
  }

  // Message/byte conservation: every message was counted once at the
  // sender and once at the receiver, 16 bytes each.
  uint64_t per_worker_bytes = 0;
  for (uint64_t b : stats.bytes_per_worker) per_worker_bytes += b;
  EXPECT_EQ(per_worker_bytes, 2 * stats.total_network_bytes);
  EXPECT_EQ(stats.total_network_bytes,
            (stats.gather_messages + stats.sync_messages) * 16);

  // Compute accounting: total compute is bounded below by one pass over
  // the gather edges (iteration 1 touches every active vertex's edges).
  double total_compute = 0;
  for (double c : stats.compute_seconds_per_worker) total_compute += c;
  EXPECT_GT(total_compute, 0.0);

  // Simulated time is at least the barrier cost and at most the fully
  // serialized cost.
  EngineCostModel cost;
  EXPECT_GE(stats.simulated_seconds,
            stats.iterations * cost.superstep_latency_seconds);
  EXPECT_LE(stats.simulated_seconds,
            total_compute +
                static_cast<double>(2 * stats.total_network_bytes) /
                    cost.network_bytes_per_second +
                stats.iterations * cost.superstep_latency_seconds + 1e-9);

  // k = 1 never communicates; k > 1 on a connected-ish graph does.
  if (k == 1) {
    EXPECT_EQ(stats.total_network_bytes, 0u);
  } else {
    EXPECT_GT(stats.total_network_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAlgorithmsClusters, EngineSweepTest,
    ::testing::Combine(::testing::Values("pagerank", "wcc", "sssp"),
                       ::testing::Values("ECR", "LDG", "HDRF", "HG"),
                       ::testing::Values(1u, 4u, 32u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) +
             "_k" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace sgp
