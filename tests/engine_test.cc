#include "engine/engine.h"

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>
#include "engine/programs.h"
#include "engine/reference.h"
#include "graph/datasets.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

// --- Correctness: results must not depend on the partitioning ---

using CorrectnessParam = std::tuple<std::string, std::string>;

class EngineCorrectnessTest
    : public ::testing::TestWithParam<CorrectnessParam> {};

TEST_P(EngineCorrectnessTest, MatchesSingleMachineReference) {
  const auto& [algo, dataset] = GetParam();
  Graph g = MakeDataset(dataset, 9);
  auto partitioner = CreatePartitioner(algo);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning p = partitioner->Run(g, cfg);
  AnalyticsEngine engine(g, p);

  // PageRank.
  EngineStats pr = engine.Run(PageRankProgram(10));
  auto pr_ref = ReferencePageRank(g, 10);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NEAR(pr.values[v], pr_ref[v], 1e-9) << "PageRank v=" << v;
  }

  // WCC.
  EngineStats wcc = engine.Run(WccProgram());
  auto wcc_ref = ReferenceWcc(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(wcc.values[v], wcc_ref[v]) << "WCC v=" << v;
  }

  // SSSP from a fixed source with at least one edge.
  VertexId source = 0;
  while (g.Degree(source) == 0) ++source;
  EngineStats sssp = engine.Run(SsspProgram(source));
  auto sssp_ref = ReferenceSssp(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(sssp.values[v], sssp_ref[v]) << "SSSP v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AcrossPartitioners, EngineCorrectnessTest,
    ::testing::Combine(::testing::Values("ECR", "LDG", "VCR", "HDRF", "HCR",
                                         "HG", "MTS"),
                       ::testing::Values("twitter", "usaroad")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// --- Communication accounting (Appendix B) ---

TEST(EngineCommunicationTest, EdgeCutPageRankNeedsNoScatterSync) {
  Graph g = testing::MakeFigure10Graph();
  Partitioning p =
      testing::MakeEdgeCutPartitioning(g, 3, {0, 1, 2, 0, 1, 2});
  AnalyticsEngine engine(g, p);
  EngineStats stats = engine.Run(PageRankProgram(5));
  EXPECT_EQ(stats.sync_messages, 0u);
  EXPECT_GT(stats.gather_messages, 0u);
}

TEST(EngineCommunicationTest, EdgeCutPageRankGatherMatchesFormula) {
  // With out-edges grouped by source, each vertex receives one gather
  // message per mirror per iteration: total = iterations · n · (RF − 1).
  Graph g = MakeDataset("twitter", 8);
  auto partitioner = CreatePartitioner("LDG");
  PartitionConfig cfg;
  cfg.k = 4;
  Partitioning p = partitioner->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  const uint32_t iters = 7;
  EngineStats stats = engine.Run(PageRankProgram(iters));
  const double rf = engine.distributed_graph().replication_factor();
  const double expected =
      static_cast<double>(iters) *
      (rf - 1.0) * static_cast<double>(g.num_vertices());
  EXPECT_NEAR(static_cast<double>(stats.gather_messages), expected, 1e-6);
}

TEST(EngineCommunicationTest, VertexCutPageRankSyncsBothWays) {
  // A random vertex-cut mixes in- and out-edges on mirrors: both message
  // kinds appear, and the total exceeds an equivalent edge-cut's.
  Graph g = MakeDataset("twitter", 8);
  PartitionConfig cfg;
  cfg.k = 4;
  Partitioning p = CreatePartitioner("VCR")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats stats = engine.Run(PageRankProgram(5));
  EXPECT_GT(stats.sync_messages, 0u);
  EXPECT_GT(stats.gather_messages, 0u);
}

TEST(EngineCommunicationTest, MessagesScaleWithReplicationFactor) {
  // Figure 1: network I/O is a linear function of the replication factor.
  Graph g = MakeDataset("twitter", 9);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning good = CreatePartitioner("HDRF")->Run(g, cfg);
  Partitioning bad = CreatePartitioner("VCR")->Run(g, cfg);
  AnalyticsEngine engine_good(g, good);
  AnalyticsEngine engine_bad(g, bad);
  double rf_good = engine_good.distributed_graph().replication_factor();
  double rf_bad = engine_bad.distributed_graph().replication_factor();
  ASSERT_LT(rf_good, rf_bad);
  EngineStats s_good = engine_good.Run(PageRankProgram(5));
  EngineStats s_bad = engine_bad.Run(PageRankProgram(5));
  EXPECT_LT(s_good.total_network_bytes, s_bad.total_network_bytes);
}

TEST(EngineCommunicationTest, SinglePartitionHasNoNetworkTraffic) {
  Graph g = MakeDataset("ldbc", 8);
  PartitionConfig cfg;
  cfg.k = 1;
  Partitioning p = CreatePartitioner("ECR")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats stats = engine.Run(PageRankProgram(5));
  EXPECT_EQ(stats.total_network_bytes, 0u);
  EXPECT_EQ(stats.gather_messages, 0u);
  EXPECT_EQ(stats.sync_messages, 0u);
}

// --- Workload dynamics ---

TEST(EngineWorkloadTest, PageRankRunsExactlyMaxIterations) {
  Graph g = MakeDataset("usaroad", 8);
  PartitionConfig cfg;
  cfg.k = 4;
  Partitioning p = CreatePartitioner("ECR")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EXPECT_EQ(engine.Run(PageRankProgram(12)).iterations, 12u);
}

TEST(EngineWorkloadTest, WccIterationsTrackDiameterNotCap) {
  Graph g = testing::MakePath(40);
  PartitionConfig cfg;
  cfg.k = 4;
  Partitioning p = CreatePartitioner("ECR")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats stats = engine.Run(WccProgram());
  EXPECT_GE(stats.iterations, 39u);  // labels flow along the path
  EXPECT_LE(stats.iterations, 41u);
}

TEST(EngineWorkloadTest, SsspFrontierGrowsAndShrinks) {
  Graph g = MakeDataset("usaroad", 10);
  PartitionConfig cfg;
  cfg.k = 4;
  Partitioning p = CreatePartitioner("LDG")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats stats = engine.Run(SsspProgram(0));
  // Long-diameter graph: many iterations, far fewer messages per
  // iteration than PageRank.
  EXPECT_GT(stats.iterations, 20u);
}

TEST(EngineWorkloadTest, PageRankCommunicatesMostPerIteration) {
  // PageRank is all-active: per-iteration traffic exceeds WCC's average
  // (Section 6.2.1).
  Graph g = MakeDataset("twitter", 9);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning p = CreatePartitioner("HDRF")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats pr = engine.Run(PageRankProgram(10));
  EngineStats wcc = engine.Run(WccProgram());
  double pr_per_iter = static_cast<double>(pr.total_network_bytes) /
                       pr.iterations;
  double wcc_per_iter = static_cast<double>(wcc.total_network_bytes) /
                        wcc.iterations;
  EXPECT_GT(pr_per_iter, wcc_per_iter);
}

TEST(EngineCostModelTest, SimulatedTimeIncreasesWithWork) {
  Graph g = MakeDataset("ldbc", 9);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning p = CreatePartitioner("FNL")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  double t5 = engine.Run(PageRankProgram(5)).simulated_seconds;
  double t10 = engine.Run(PageRankProgram(10)).simulated_seconds;
  EXPECT_GT(t10, t5);
  EXPECT_NEAR(t10, 2 * t5, 0.2 * t10);
}

TEST(EngineCostModelTest, ComputeLoadDistributionCoversAllWorkers) {
  Graph g = MakeDataset("twitter", 9);
  PartitionConfig cfg;
  cfg.k = 8;
  Partitioning p = CreatePartitioner("HDRF")->Run(g, cfg);
  AnalyticsEngine engine(g, p);
  EngineStats stats = engine.Run(PageRankProgram(5));
  ASSERT_EQ(stats.compute_seconds_per_worker.size(), 8u);
  for (double s : stats.compute_seconds_per_worker) EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace sgp
