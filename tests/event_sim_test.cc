#include "graphdb/event_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/telemetry.h"
#include "graph/datasets.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"

namespace sgp {
namespace {

GraphDatabase MakeDb(const Graph& g, const std::string& algo, PartitionId k,
                     DbCostModel cost = {}) {
  PartitionConfig cfg;
  cfg.k = k;
  return GraphDatabase(g, CreatePartitioner(algo)->Run(g, cfg), cost);
}

SimConfig SmallSim(uint32_t clients = 32, uint64_t queries = 3000) {
  SimConfig cfg;
  cfg.clients = clients;
  cfg.num_queries = queries;
  return cfg;
}

TEST(EventSimTest, CompletesRequestedQueries) {
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "ECR", 4);
  Workload w(g, {});
  SimResult r = SimulateClosedLoop(db, w, SmallSim());
  EXPECT_EQ(r.completed, 3000u - 300u);  // minus warmup
  EXPECT_GT(r.throughput_qps, 0.0);
  EXPECT_GT(r.window_seconds, 0.0);
}

TEST(EventSimTest, DeterministicPerSeed) {
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "FNL", 4);
  Workload w(g, {});
  SimResult a = SimulateClosedLoop(db, w, SmallSim());
  SimResult b = SimulateClosedLoop(db, w, SmallSim());
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_DOUBLE_EQ(a.latency.p99, b.latency.p99);
}

TEST(EventSimTest, LatencyAtLeastNetworkFloor) {
  // Any query pays client→coordinator and coordinator→client hops plus at
  // least one read.
  Graph g = MakeDataset("ldbc", 9);
  DbCostModel cost;
  GraphDatabase db = MakeDb(g, "ECR", 4, cost);
  Workload w(g, {});
  SimResult r = SimulateClosedLoop(db, w, SmallSim());
  EXPECT_GE(r.latency.min, 2 * cost.network_latency_seconds);
}

TEST(EventSimTest, MoreClientsRaiseThroughputUntilSaturation) {
  Graph g = MakeDataset("ldbc", 10);
  GraphDatabase db = MakeDb(g, "ECR", 8);
  Workload w(g, {});
  SimResult low = SimulateClosedLoop(db, w, SmallSim(4, 4000));
  SimResult mid = SimulateClosedLoop(db, w, SmallSim(32, 4000));
  EXPECT_GT(mid.throughput_qps, low.throughput_qps);
}

TEST(EventSimTest, OverloadInflatesLatency) {
  Graph g = MakeDataset("ldbc", 10);
  GraphDatabase db = MakeDb(g, "ECR", 8);
  Workload w(g, {});
  SimResult medium = SimulateClosedLoop(db, w, SmallSim(8 * 12, 6000));
  SimResult high = SimulateClosedLoop(db, w, SmallSim(8 * 24, 6000));
  EXPECT_GT(high.latency.mean, medium.latency.mean);
}

TEST(EventSimTest, ReadsLandOnOwners) {
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "LDG", 4);
  Workload w(g, {});
  SimResult r = SimulateClosedLoop(db, w, SmallSim());
  ASSERT_EQ(r.reads_per_worker.size(), 4u);
  double total = 0;
  for (double reads : r.reads_per_worker) total += reads;
  EXPECT_GT(total, 0.0);
}

TEST(EventSimTest, SkewedWorkloadConcentratesReads) {
  Graph g = MakeDataset("ldbc", 10);
  GraphDatabase db = MakeDb(g, "FNL", 8);
  WorkloadConfig uniform_cfg;
  uniform_cfg.skew = 0.0;
  WorkloadConfig skewed_cfg;
  skewed_cfg.skew = 1.4;
  Workload uniform(g, uniform_cfg);
  Workload skewed(g, skewed_cfg);
  SimResult ru = SimulateClosedLoop(db, uniform, SmallSim(64, 6000));
  SimResult rs = SimulateClosedLoop(db, skewed, SmallSim(64, 6000));
  auto rsd = [](const std::vector<double>& v) {
    return Summarize(v).RelativeStdDev();
  };
  EXPECT_GT(rsd(rs.reads_per_worker), rsd(ru.reads_per_worker));
}

TEST(EventSimTest, NetworkBytesMatchPlannedTraffic) {
  // A single-partition database never talks over the network.
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "ECR", 1);
  Workload w(g, {});
  SimResult r = SimulateClosedLoop(db, w, SmallSim());
  EXPECT_EQ(r.total_network_bytes, 0u);
  EXPECT_EQ(r.total_remote_messages, 0u);
}

TEST(EventSimTest, ZeroClientsYieldEmptyResult) {
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "ECR", 4);
  Workload w(g, {});
  SimResult r = SimulateClosedLoop(db, w, SmallSim(0, 3000));
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.throughput_qps, 0.0);
  EXPECT_EQ(r.window_seconds, 0.0);
  EXPECT_EQ(r.latency.count, 0u);
  ASSERT_EQ(r.reads_per_worker.size(), 4u);
  for (double reads : r.reads_per_worker) EXPECT_EQ(reads, 0.0);
  EXPECT_TRUE(r.Traces().empty());
  EXPECT_DOUBLE_EQ(r.availability.availability, 1.0);
}

TEST(EventSimTest, ZeroQueriesYieldEmptyResult) {
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "ECR", 4);
  Workload w(g, {});
  SimResult r = SimulateClosedLoop(db, w, SmallSim(8, 0));
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.throughput_qps, 0.0);
  EXPECT_EQ(r.total_network_bytes, 0u);
}

TEST(EventSimTest, FullWarmupYieldsEmptyResult) {
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "ECR", 4);
  Workload w(g, {});
  SimConfig cfg = SmallSim(8, 500);
  cfg.warmup_fraction = 1.0;
  SimResult r = SimulateClosedLoop(db, w, cfg);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.window_seconds, 0.0);
  cfg.warmup_fraction = 1.5;  // > 1 must behave identically
  SimResult r2 = SimulateClosedLoop(db, w, cfg);
  EXPECT_EQ(r2.completed, 0u);
  cfg.warmup_fraction = -0.1;  // negative fractions are also degenerate
  SimResult r3 = SimulateClosedLoop(db, w, cfg);
  EXPECT_EQ(r3.completed, 0u);
}

TEST(EventSimTest, LatencyHistogramMatchesExactQuantiles) {
  // The simulator publishes every measured latency into the global
  // per-query-kind histogram; its quantile estimates must agree with the
  // exact sample quantiles in SimResult up to the bucket resolution
  // (32 buckets/decade => <= 10^(1/32)-1 ~= 7.5% relative error).
  MetricsRegistry::Global().Reset();
  Graph g = MakeDataset("ldbc", 9);
  GraphDatabase db = MakeDb(g, "ECR", 4);
  Workload w(g, {});
  SimResult r = SimulateClosedLoop(db, w, SmallSim());
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "graphdb.query_latency.one_hop.sim_seconds");
  ASSERT_EQ(h->count(), r.latency.count);
  EXPECT_DOUBLE_EQ(h->min(), r.latency.min);
  EXPECT_DOUBLE_EQ(h->max(), r.latency.max);
  const double tolerance = std::pow(10.0, 1.0 / 32.0) - 1.0;
  EXPECT_NEAR(h->Quantile(0.5) / r.latency.median, 1.0, tolerance);
  EXPECT_NEAR(h->Quantile(0.99) / r.latency.p99, 1.0, tolerance);
}

TEST(EventSimTest, TwoHopIsSlowerThanOneHop) {
  Graph g = MakeDataset("ldbc", 10);
  GraphDatabase db = MakeDb(g, "ECR", 8);
  WorkloadConfig one;
  one.kind = QueryKind::kOneHop;
  WorkloadConfig two;
  two.kind = QueryKind::kTwoHop;
  SimResult r1 = SimulateClosedLoop(db, Workload(g, one), SmallSim(16, 2000));
  SimResult r2 = SimulateClosedLoop(db, Workload(g, two), SmallSim(16, 2000));
  EXPECT_GT(r2.latency.mean, r1.latency.mean);
  EXPECT_LT(r2.throughput_qps, r1.throughput_qps);
}

}  // namespace
}  // namespace sgp
